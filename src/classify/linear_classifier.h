// Rubine's statistical single-stroke classifier (Section 4.2): one linear
// evaluation function per class over the feature vector, trained in closed
// form under a shared-covariance Gaussian model. This is the "full
// classifier" C of the paper, and — trained on subgesture sets — also the
// ambiguous/unambiguous classifier of Section 4.6.
#ifndef GRANDMA_SRC_CLASSIFY_LINEAR_CLASSIFIER_H_
#define GRANDMA_SRC_CLASSIFY_LINEAR_CLASSIFIER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "classify/training_set.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "linalg/vec_view.h"
#include "linalg/vector.h"
#include "robust/fault_stats.h"

namespace grandma::classify {

// The outcome of classifying one feature vector.
struct Classification {
  ClassId class_id = 0;
  // Winning evaluation v_c = w_c0 + w_c . f.
  double score = 0.0;
  // Rubine's estimate of P(correct): 1 / sum_j exp(v_j - v_i). Near 1 when
  // the winner dominates, near 1/C when all classes tie.
  double probability = 0.0;
  // Squared Mahalanobis distance from f to the winning class mean; large
  // values flag outliers that belong to no trained class.
  double mahalanobis_squared = 0.0;
};

// One rank of an n-best result: a class, its evaluation v_c, and its
// calibrated probability share exp(v_c - v_top) / sum_j exp(v_j - v_top).
// The shares over ALL classes sum to 1 (Rubine's P(correct) generalized to
// every rank), so clients can read rank gaps as confidence margins.
struct NBestEntry {
  ClassId class_id = 0;
  double score = 0.0;
  double probability = 0.0;
};

// How many ranked alternatives the fixed-size n-best surfaces carry
// (FireEvent, serve::RecognitionResult). EvaluateNBest itself accepts any
// span length.
inline constexpr std::size_t kMaxNBest = 4;

// Linear discriminator with per-class weights and biases.
//
// Training (closed form, optimal under per-class Gaussians with a common
// covariance): per-class mean feature vectors mu_c, pooled covariance Sigma,
// weights w_c = Sigma^-1 mu_c and constant w_c0 = -1/2 mu_c^T Sigma^-1 mu_c.
// A singular Sigma (linearly dependent features in the training data) is
// repaired with escalating ridge terms; see linalg::InvertCovarianceWithRepair.
//
// Thread-safety: const methods (Evaluate, Classify, Mahalanobis*, and the
// *View/*Into kernel flavors) are pure reads with no internal caching and are
// safe to call concurrently from many threads once training has
// happened-before the sharing (the serve layer relies on this); the kernel
// flavors write only into caller-owned scratch, so concurrent callers are
// independent as long as each brings its own buffers. Train and AdjustBias
// mutate and must not race with reads.
class LinearClassifier {
 public:
  LinearClassifier() = default;

  // Trains on `data`. Every class needs at least one example and the total
  // example count must exceed the class count (for the pooled covariance to
  // have positive degrees of freedom); throws std::invalid_argument
  // otherwise. Returns the ridge magnitude used to repair the covariance
  // (0.0 when none was needed).
  //
  // Degradation ladder (counted into `stats` when given): non-finite example
  // vectors are dropped; a singular Sigma is repaired with escalating ridge
  // terms; if even that fails, a diagonal-covariance fallback is used. Only
  // structurally unusable training sets (too few classes/examples) throw.
  double Train(const FeatureTrainingSet& data, robust::FaultStats* stats = nullptr);

  bool trained() const { return !weights_.empty(); }
  std::size_t num_classes() const { return weights_.size(); }
  std::size_t dimension() const { return trained() ? weights_.front().size() : 0; }

  // Per-class evaluations v_c(f). Requires trained(). Allocates the result;
  // the hot path uses EvaluateInto.
  std::vector<double> Evaluate(const linalg::Vector& f) const;

  // argmax over Evaluate(f), with probability and Mahalanobis diagnostics.
  // Allocates internal scratch; the hot path uses ClassifyView.
  Classification Classify(const linalg::Vector& f) const;

  // --- Zero-allocation kernel surface -------------------------------------
  // These run over the structure-of-arrays weight block and the flat mean
  // block, writing into caller-owned scratch (see eager::Workspace). Results
  // are bit-identical to the allocating flavors above, which are implemented
  // on top of them.

  // The batched evaluator: scores ALL classes in one pass over the
  // feature-major SoA weight block via the dispatched simd::EvaluateAll
  // kernel. Bit-identical across dispatch tiers and to the classic
  // "bias + Dot(weights_row, f)" per-class loop (see simd.h for why).
  // `scores` must be sized num_classes().
  void EvaluateAllInto(linalg::VecView f, linalg::MutVecView scores) const;

  // Multi-feature-vector variant: scores `batch` feature vectors (rows of
  // `features`, `feature_stride` doubles apart, each dimension() wide) into
  // rows of `scores` (`scores_stride` doubles apart, each num_classes()
  // wide). Row r's scores are bit-identical to EvaluateAllInto on row r —
  // the batch loops the same per-row kernel, so batched and per-point
  // callers can never disagree.
  void EvaluateBatchInto(const double* features, std::size_t batch,
                         std::size_t feature_stride, double* scores,
                         std::size_t scores_stride) const;

  // Writes v_c(f) for every class into `scores` (size num_classes()).
  // Thin wrapper over EvaluateAllInto, kept for the scalar-view API surface.
  void EvaluateInto(linalg::VecView f, linalg::MutVecView scores) const;

  // argmax over EvaluateInto only — no probability, no Mahalanobis. This is
  // what a per-point doneness test actually needs; `scores` is scratch of
  // size num_classes().
  ClassId BestClassView(linalg::VecView f, linalg::MutVecView scores) const;

  // True when BestClassView's winner would land in [0, split) — WITHOUT
  // materializing the scores (no scratch at all). For class layouts that
  // keep the interesting subset in a prefix (the AUC's complete-first set
  // order) this replaces the whole evaluate + argmax + membership-test
  // chain with one fused sweep of the weight block; the answer is identical
  // to `BestClassView(f, scores) < split` on every dispatch tier, NaN
  // features included (see simd::EvaluateArgMaxInPrefix).
  bool EvaluateWinnerInPrefix(linalg::VecView f, std::size_t split) const;

  // Full Classification (argmax + probability + Mahalanobis) reusing caller
  // scratch: `scores` sized num_classes(), `diff` sized dimension().
  Classification ClassifyView(linalg::VecView f, linalg::MutVecView scores,
                              linalg::MutVecView diff) const;

  // Top-n classes by evaluation score over one batched EvaluateAllInto pass.
  // Writes min(out.size(), num_classes()) entries into `out`, sorted by
  // descending score with ties broken toward the lower class id — the same
  // strict-> first-max rule as BestClassView, so out[0].class_id and
  // out[0].score are bit-identical to Classify/ClassifyView on the same
  // features, and out[0].probability is bit-identical to
  // Classification::probability (both reduce to 1 / sum_j exp(v_j - v_top)
  // with the same summation order). Scores come from the dispatched SoA
  // kernel, so the whole ranking is bit-identical across SIMD tiers.
  // `scores` is caller scratch sized num_classes(); returns the number of
  // entries written. Allocation-free.
  std::size_t EvaluateNBest(linalg::VecView f, linalg::MutVecView scores,
                            std::span<NBestEntry> out) const;

  // Squared Mahalanobis distance with caller scratch (`diff` sized
  // dimension()).
  double MahalanobisSquaredView(linalg::VecView f, ClassId c, linalg::MutVecView diff) const;

  // Squared Mahalanobis distance (f - mu_c)^T Sigma^-1 (f - mu_c).
  double MahalanobisSquared(const linalg::Vector& f, ClassId c) const;
  // Squared Mahalanobis distance between two arbitrary points under the
  // trained common covariance. The eager trainer measures set-mean to
  // set-mean distances with this.
  double MahalanobisSquaredBetween(const linalg::Vector& a, const linalg::Vector& b) const;

  // Misclassification-cost biasing (Section 4.2): adds `delta` to class c's
  // constant term, making c more (delta > 0) or less (delta < 0) likely.
  void AdjustBias(ClassId c, double delta);

  double bias(ClassId c) const { return biases_.at(c); }
  const linalg::Vector& weights(ClassId c) const { return weights_.at(c); }
  const linalg::Vector& mean(ClassId c) const { return means_.at(c); }
  const linalg::Matrix& inverse_covariance() const { return inverse_covariance_; }

  // Direct constructor from already-computed parameters (used by io::).
  static LinearClassifier FromParameters(std::vector<linalg::Vector> weights,
                                         std::vector<double> biases,
                                         std::vector<linalg::Vector> means,
                                         linalg::Matrix inverse_covariance);

  // Padded row width of the SoA weight block: num_classes() rounded up so
  // each feature row starts 64-byte aligned. Exposed for bench/test
  // introspection.
  std::size_t class_stride() const { return class_stride_; }

 private:
  // Rebuilds the contiguous kernel blocks below from weights_/means_; called
  // whenever the per-class parameters change (Train, FromParameters).
  void RebuildKernelBlocks();

  std::vector<linalg::Vector> weights_;  // w_c, one per class (owning)
  std::vector<double> biases_;           // w_c0
  std::vector<linalg::Vector> means_;    // mu_c (owning)
  linalg::Matrix inverse_covariance_;    // Sigma^-1

  // Classify-time kernel layout. Weights live feature-major
  // (structure-of-arrays): soa_weights_[i * class_stride_ + c] is w_c[i],
  // rows padded with zeros to class_stride_ (a multiple of 8 doubles, so
  // every feature row is 64-byte aligned inside the aligned block) — the
  // batched evaluator reads class-contiguous lanes per feature. Means stay
  // class-major (dimension()-wide rows) for the Mahalanobis diff. Both
  // always mirror weights_/means_.
  linalg::simd::AlignedBuffer soa_weights_;
  std::size_t class_stride_ = 0;
  linalg::simd::AlignedBuffer flat_means_;
};

// Computes Rubine's P(correct) estimate given all per-class scores and the
// index of the winner.
double RecognitionProbability(const std::vector<double>& scores, ClassId winner);
// View flavor (identical arithmetic, no allocation).
double RecognitionProbability(linalg::VecView scores, ClassId winner);

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_LINEAR_CLASSIFIER_H_
