#include "classify/training_set.h"

#include <stdexcept>

#include "features/extractor.h"

namespace grandma::classify {

ClassId ClassRegistry::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  const ClassId id = names_.size();
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

ClassId ClassRegistry::Require(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    throw std::out_of_range("ClassRegistry: unknown class name: " + std::string(name));
  }
  return it->second;
}

bool ClassRegistry::Contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& ClassRegistry::Name(ClassId id) const { return names_.at(id); }

ClassId GestureTrainingSet::Add(std::string_view class_name, geom::Gesture gesture) {
  const ClassId id = registry_.Intern(class_name);
  if (examples_.size() <= id) {
    examples_.resize(id + 1);
  }
  examples_[id].push_back(std::move(gesture));
  return id;
}

std::size_t GestureTrainingSet::total_examples() const {
  std::size_t total = 0;
  for (const auto& per_class : examples_) {
    total += per_class.size();
  }
  return total;
}

void FeatureTrainingSet::Add(ClassId c, linalg::Vector features) {
  if (examples_.size() <= c) {
    examples_.resize(c + 1);
  }
  if (!examples_[c].empty() && examples_[c].front().size() != features.size()) {
    throw std::invalid_argument("FeatureTrainingSet::Add: inconsistent feature dimension");
  }
  examples_[c].push_back(std::move(features));
}

std::size_t FeatureTrainingSet::total_examples() const {
  std::size_t total = 0;
  for (const auto& per_class : examples_) {
    total += per_class.size();
  }
  return total;
}

std::size_t FeatureTrainingSet::dimension() const {
  for (const auto& per_class : examples_) {
    if (!per_class.empty()) {
      return per_class.front().size();
    }
  }
  return 0;
}

bool FeatureTrainingSet::EveryClassHasAtLeast(std::size_t n) const {
  for (const auto& per_class : examples_) {
    if (per_class.size() < n) {
      return false;
    }
  }
  return true;
}

FeatureTrainingSet ExtractFeatureSet(const GestureTrainingSet& gestures,
                                     const features::FeatureMask& mask) {
  FeatureTrainingSet out(gestures.num_classes());
  for (ClassId c = 0; c < gestures.num_classes(); ++c) {
    for (const geom::Gesture& g : gestures.ExamplesOf(c)) {
      out.Add(c, mask.Project(features::ExtractFeatures(g)));
    }
  }
  return out;
}

}  // namespace grandma::classify
