// The gesture-level recognizer applications use: feature extraction + mask +
// linear classifier + class names, as one value.
#ifndef GRANDMA_SRC_CLASSIFY_GESTURE_CLASSIFIER_H_
#define GRANDMA_SRC_CLASSIFY_GESTURE_CLASSIFIER_H_

#include <span>
#include <string>

#include "classify/linear_classifier.h"
#include "classify/training_set.h"
#include "features/feature_vector.h"
#include "geom/gesture.h"

namespace grandma::classify {

// Full-gesture classifier C(g) (Section 4.2). Immutable after Train.
//
// Thread-safety: const methods are safe to share across threads after Train
// (see LinearClassifier). mutable_linear() is the one escape hatch that can
// mutate a trained instance (bias tweaking during AUC training); never call
// it on an instance that has been published to other threads — serve freezes
// classifiers behind shared_ptr<const RecognizerBundle> for exactly this.
class GestureClassifier {
 public:
  GestureClassifier() = default;

  // Trains on `examples` using the features selected by `mask`.
  // Returns the covariance-repair ridge used (0.0 normally). `stats`
  // (optional) accumulates degradation counters; see LinearClassifier::Train.
  double Train(const GestureTrainingSet& examples,
               const features::FeatureMask& mask = features::FeatureMask::All(),
               robust::FaultStats* stats = nullptr);

  bool trained() const { return linear_.trained(); }
  std::size_t num_classes() const { return linear_.num_classes(); }

  // Classifies a complete gesture.
  Classification Classify(const geom::Gesture& g) const;
  // Classifies an already-extracted (unmasked, 13-entry) feature vector.
  // Allocates internal scratch; the hot path uses ClassifyFeaturesView.
  Classification ClassifyFeatures(const linalg::Vector& full_features) const;

  // Zero-allocation flavor: projects `full_features` through the mask into
  // `masked` (size mask().count()), then classifies with caller scratch
  // (`scores` sized num_classes(), `diff` sized mask().count()). Bit-identical
  // to ClassifyFeatures, which is implemented on top of it.
  Classification ClassifyFeaturesView(linalg::VecView full_features, linalg::MutVecView masked,
                                      linalg::MutVecView scores, linalg::MutVecView diff) const;

  // Ranked n-best over a full 13-entry feature view, same scratch contract
  // as ClassifyFeaturesView. When `top` is non-null it also fills the full
  // Classification of the winner (argmax + probability + Mahalanobis),
  // bit-identical to ClassifyFeaturesView on the same features (`diff` is
  // only touched in that case). Returns the number of entries written.
  std::size_t EvaluateNBestView(linalg::VecView full_features, linalg::MutVecView masked,
                                linalg::MutVecView scores, linalg::MutVecView diff,
                                std::span<NBestEntry> out, Classification* top = nullptr) const;

  const std::string& ClassName(ClassId c) const { return registry_.Name(c); }
  const ClassRegistry& registry() const { return registry_; }
  const features::FeatureMask& mask() const { return mask_; }
  const LinearClassifier& linear() const { return linear_; }
  LinearClassifier& mutable_linear() { return linear_; }

  // Reassembles a classifier from persisted parameters (io::serialize).
  static GestureClassifier FromParameters(ClassRegistry registry, features::FeatureMask mask,
                                          LinearClassifier linear);

 private:
  ClassRegistry registry_;
  features::FeatureMask mask_;
  LinearClassifier linear_;
};

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_GESTURE_CLASSIFIER_H_
