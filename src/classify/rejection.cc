#include "classify/rejection.h"

namespace grandma::classify {

RejectReason EvaluateRejection(const RejectionPolicy& policy, const Classification& result,
                               std::size_t dimension) {
  if (policy.use_probability && result.probability < policy.min_probability) {
    return RejectReason::kLowProbability;
  }
  if (policy.use_distance) {
    double limit = policy.max_mahalanobis_squared;
    if (limit <= 0.0) {
      // Default bound grows with dimension: half the squared dimension is
      // comfortably beyond the bulk of a chi-squared(dimension) distribution
      // for the feature counts used here.
      const double d = static_cast<double>(dimension);
      limit = 0.5 * d * d;
    }
    if (result.mahalanobis_squared > limit) {
      return RejectReason::kOutlierDistance;
    }
  }
  return RejectReason::kAccepted;
}

bool ShouldReject(const RejectionPolicy& policy, const Classification& result,
                  std::size_t dimension) {
  return EvaluateRejection(policy, result, dimension) != RejectReason::kAccepted;
}

}  // namespace grandma::classify
