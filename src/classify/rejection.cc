#include "classify/rejection.h"

namespace grandma::classify {

const char* RejectReasonName(RejectReason r) {
  switch (r) {
    case RejectReason::kAccepted:
      return "accepted";
    case RejectReason::kLowProbability:
      return "low_probability";
    case RejectReason::kOutlierDistance:
      return "outlier_distance";
    case RejectReason::kNearTie:
      return "near_tie";
  }
  return "unknown";
}

const char* NBestActionName(NBestAction a) {
  switch (a) {
    case NBestAction::kAccept:
      return "accept";
    case NBestAction::kDefer:
      return "defer";
    case NBestAction::kAskAgain:
      return "ask_again";
  }
  return "unknown";
}

double EffectiveMahalanobisLimit(const RejectionPolicy& policy, std::size_t dimension) {
  if (policy.max_mahalanobis_squared > 0.0) {
    return policy.max_mahalanobis_squared;
  }
  // Default bound grows with dimension: half the squared dimension is
  // comfortably beyond the bulk of a chi-squared(dimension) distribution
  // for the feature counts used here.
  const double d = static_cast<double>(dimension);
  return 0.5 * d * d;
}

RejectReason EvaluateRejection(const RejectionPolicy& policy, const Classification& result,
                               std::size_t dimension) {
  if (policy.use_probability && result.probability < policy.min_probability) {
    return RejectReason::kLowProbability;
  }
  if (policy.use_distance &&
      result.mahalanobis_squared > EffectiveMahalanobisLimit(policy, dimension)) {
    return RejectReason::kOutlierDistance;
  }
  return RejectReason::kAccepted;
}

bool ShouldReject(const RejectionPolicy& policy, const Classification& result,
                  std::size_t dimension) {
  return EvaluateRejection(policy, result, dimension) != RejectReason::kAccepted;
}

NBestDecision DecideNBest(const RejectionPolicy& policy, std::span<const NBestEntry> nbest,
                          double top1_mahalanobis_sq, std::size_t dimension) {
  NBestDecision decision;
  if (nbest.empty()) {
    decision.action = NBestAction::kAskAgain;
    decision.reason = RejectReason::kOutlierDistance;
    return decision;
  }
  decision.margin = nbest.size() > 1 ? nbest[0].probability - nbest[1].probability
                                     : nbest[0].probability;
  // Outliers first: when the stroke is far from every trained class, the
  // ranked alternatives are all noise and showing them would mislead.
  if (policy.use_distance &&
      top1_mahalanobis_sq > EffectiveMahalanobisLimit(policy, dimension)) {
    decision.action = NBestAction::kAskAgain;
    decision.reason = RejectReason::kOutlierDistance;
    return decision;
  }
  if (policy.use_probability && nbest[0].probability < policy.min_probability) {
    decision.action = NBestAction::kDefer;
    decision.reason = RejectReason::kLowProbability;
    return decision;
  }
  if (policy.min_margin > 0.0 && decision.margin < policy.min_margin) {
    decision.action = NBestAction::kDefer;
    decision.reason = RejectReason::kNearTie;
    return decision;
  }
  return decision;
}

}  // namespace grandma::classify
