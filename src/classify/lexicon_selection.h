// Lexicon selection (Grosek & Kutz, "Selecting a Small Set of Optimal
// Gestures from an Extensive Lexicon"): given a classifier trained on a
// large generated lexicon, find the k-subset of classes that keeps the most
// separable vocabulary. Separation between two classes is the Mahalanobis
// distance between their trained means under the pooled covariance,
// discounted by how often the train set actually confuses them; greedy
// backward elimination repeatedly finds the worst surviving pair and drops
// its more crowded member, reporting every drop and why.
//
// Everything here is deterministic and SIMD-tier-independent: pairwise
// separations use the non-dispatched linalg::QuadraticForm and the
// confusion matrix comes from Classify, which is bit-identical across
// dispatch tiers — so the same seed and training set produce byte-identical
// reports on any hardware.
#ifndef GRANDMA_SRC_CLASSIFY_LEXICON_SELECTION_H_
#define GRANDMA_SRC_CLASSIFY_LEXICON_SELECTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "classify/evaluation.h"
#include "classify/gesture_classifier.h"
#include "classify/training_set.h"

namespace grandma::classify {

struct LexiconSelectionOptions {
  // Survivor count k. Clamped to [2, num_classes]; k >= num_classes keeps
  // everything (the report then documents zero drops).
  std::size_t target_classes = 50;
  // Weight of observed confusion in the effective separation
  //   E(c,d) = S(c,d) / (1 + confusion_weight * confusion_rate(c,d)).
  // 0 ranks pairs purely by Mahalanobis distance between means.
  double confusion_weight = 4.0;
  // Pairs whose raw separation falls below this are collisions — duplicate
  // or degenerate classes. They are dropped first and flagged, never fatal.
  double collision_epsilon = 1e-9;
};

// One eliminated class and the evidence that doomed it.
struct DroppedClass {
  ClassId class_id = 0;
  std::string name;
  // The surviving partner of the worst pair this class was dropped from.
  ClassId nearest = 0;
  std::string nearest_name;
  // Mahalanobis^2 between the pair's trained means.
  double separation = 0.0;
  // Symmetric train-set confusion fraction of the pair.
  double confusion_rate = 0.0;
  double effective_separation = 0.0;
  // True when the pair was closer than collision_epsilon (duplicate class).
  bool collision = false;
  // 0 = first class dropped.
  std::size_t drop_order = 0;
};

struct LexiconSelectionReport {
  // Kept class ids, ascending (ids are the classifier's — i.e. positions in
  // the training set's insertion order).
  std::vector<ClassId> selected;
  std::vector<std::string> selected_names;
  // In drop order.
  std::vector<DroppedClass> dropped;
  std::size_t collisions = 0;
  // Train-set accuracy of the full classifier (the confusion matrix the
  // selection ranked pairs with).
  double full_train_accuracy = 0.0;
  // Smallest effective separation among surviving pairs (the bottleneck the
  // pruned lexicon still carries).
  double min_surviving_separation = 0.0;

  std::string ToString() const;
  std::string ToJson() const;
};

// Runs the selection. `classifier` must be trained on `train` (same class
// ids / insertion order); throws std::invalid_argument otherwise.
LexiconSelectionReport SelectLexicon(const GestureClassifier& classifier,
                                     const GestureTrainingSet& train,
                                     const LexiconSelectionOptions& options = {});

// Builds the training subset containing only `keep` (any order; examples are
// copied, names re-interned in `keep` order). Ids in the result are dense
// 0..keep.size()-1.
GestureTrainingSet FilterClasses(const GestureTrainingSet& full,
                                 const std::vector<ClassId>& keep);

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_LEXICON_SELECTION_H_
