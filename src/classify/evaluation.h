// Accuracy accounting used by the experiment harnesses: confusion matrices
// and k-fold cross-validation over gesture training sets.
#ifndef GRANDMA_SRC_CLASSIFY_EVALUATION_H_
#define GRANDMA_SRC_CLASSIFY_EVALUATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "classify/gesture_classifier.h"
#include "classify/training_set.h"

namespace grandma::classify {

// Counts of (actual, predicted) pairs.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes)
      : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {}

  void Record(ClassId actual, ClassId predicted);

  std::size_t count(ClassId actual, ClassId predicted) const;
  std::size_t total() const { return total_; }
  std::size_t correct() const;
  // Fraction correct in [0, 1]; 0 when empty.
  double Accuracy() const;
  // Per-class recall: correct_c / total_c; 0 for empty classes.
  double Recall(ClassId c) const;

  std::size_t num_classes() const { return num_classes_; }

  // Fixed-width table with the given class names as labels.
  std::string ToString(const ClassRegistry& registry) const;

 private:
  std::size_t num_classes_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Classifies every gesture in `test` with `classifier` (class ids must align,
// e.g. test built with the same insertion order or the classifier's own
// registry) and tallies the confusion matrix.
ConfusionMatrix EvaluateClassifier(const GestureClassifier& classifier,
                                   const GestureTrainingSet& test);

// Result of one cross-validation run.
struct CrossValidationResult {
  double mean_accuracy = 0.0;
  double min_accuracy = 1.0;
  double max_accuracy = 0.0;
  std::vector<double> fold_accuracies;
};

// Deterministic k-fold cross-validation: splits each class's examples into k
// contiguous folds (examples should already be in randomized order; the
// synthetic generator's outputs are i.i.d.). Trains on k-1 folds, tests on
// the held-out fold. Requires every class to have at least k examples.
CrossValidationResult CrossValidate(const GestureTrainingSet& data, std::size_t k,
                                    const features::FeatureMask& mask);

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_EVALUATION_H_
