// Rejection policy: when should the recognizer decline to name a class at
// all? Rubine's recognizer rejects on (a) low estimated probability of
// correct classification and (b) feature vectors far (in Mahalanobis terms)
// from every class mean. GDP treats a rejected gesture as a no-op.
#ifndef GRANDMA_SRC_CLASSIFY_REJECTION_H_
#define GRANDMA_SRC_CLASSIFY_REJECTION_H_

#include <span>

#include "classify/linear_classifier.h"

namespace grandma::classify {

struct RejectionPolicy {
  // Reject when P(correct) estimate falls below this. Rubine suggests 0.95.
  double min_probability = 0.95;
  // Reject when the squared Mahalanobis distance to the winning class mean
  // exceeds this. The dissertation's rule of thumb is ~ (dimension/2)^2 * 4 —
  // we default to a generous half-F-squared bound computed from dimension at
  // check time when this is <= 0.
  double max_mahalanobis_squared = 0.0;
  // N-best only: defer when the winner's probability share leads the
  // runner-up's by less than this (a near-tie the client should resolve).
  // <= 0 disables the margin test. Ignored by EvaluateRejection, which sees
  // a single Classification and has no runner-up to measure against.
  double min_margin = 0.0;
  // Disable either test.
  bool use_probability = true;
  bool use_distance = true;
};

enum class RejectReason {
  kAccepted,
  kLowProbability,
  kOutlierDistance,
  // N-best only: winner and runner-up probability shares within min_margin.
  kNearTie,
};

const char* RejectReasonName(RejectReason r);

// The distance bound EvaluateRejection/DecideNBest actually apply: the
// configured max_mahalanobis_squared when positive, otherwise the
// dimension-derived default (0.5 * d^2) computed at check time.
double EffectiveMahalanobisLimit(const RejectionPolicy& policy, std::size_t dimension);

// Applies `policy` to an already-computed classification of `f`.
RejectReason EvaluateRejection(const RejectionPolicy& policy, const Classification& result,
                               std::size_t dimension);

// True when the result should be rejected.
bool ShouldReject(const RejectionPolicy& policy, const Classification& result,
                  std::size_t dimension);

// What a client should do with an n-best result ("High Five" semantics):
// accept the winner, show the ranked alternatives and defer to the user, or
// ask for the gesture again because it resembles nothing that was trained.
enum class NBestAction {
  kAccept,
  kDefer,
  kAskAgain,
};

const char* NBestActionName(NBestAction a);

struct NBestDecision {
  NBestAction action = NBestAction::kAccept;
  RejectReason reason = RejectReason::kAccepted;
  // Winner's probability share minus the runner-up's (the winner's share
  // itself when there is no runner-up). Reported even when accepted.
  double margin = 0.0;
};

// Maps an n-best result onto a client-facing action. Precedence: an outlier
// distance (winner's Mahalanobis beyond EffectiveMahalanobisLimit) is
// kAskAgain — the stroke looks like nothing trained, so re-drawing beats
// picking among alternatives; a low winner probability or a sub-min_margin
// near-tie is kDefer — the ranked alternatives are worth showing. An empty
// `nbest` (untrained/degenerate caller) is kAskAgain. `top1_mahalanobis_sq`
// is the winner's Classification::mahalanobis_squared.
NBestDecision DecideNBest(const RejectionPolicy& policy, std::span<const NBestEntry> nbest,
                          double top1_mahalanobis_sq, std::size_t dimension);

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_REJECTION_H_
