// Rejection policy: when should the recognizer decline to name a class at
// all? Rubine's recognizer rejects on (a) low estimated probability of
// correct classification and (b) feature vectors far (in Mahalanobis terms)
// from every class mean. GDP treats a rejected gesture as a no-op.
#ifndef GRANDMA_SRC_CLASSIFY_REJECTION_H_
#define GRANDMA_SRC_CLASSIFY_REJECTION_H_

#include "classify/linear_classifier.h"

namespace grandma::classify {

struct RejectionPolicy {
  // Reject when P(correct) estimate falls below this. Rubine suggests 0.95.
  double min_probability = 0.95;
  // Reject when the squared Mahalanobis distance to the winning class mean
  // exceeds this. The dissertation's rule of thumb is ~ (dimension/2)^2 * 4 —
  // we default to a generous half-F-squared bound computed from dimension at
  // check time when this is <= 0.
  double max_mahalanobis_squared = 0.0;
  // Disable either test.
  bool use_probability = true;
  bool use_distance = true;
};

enum class RejectReason {
  kAccepted,
  kLowProbability,
  kOutlierDistance,
};

// Applies `policy` to an already-computed classification of `f`.
RejectReason EvaluateRejection(const RejectionPolicy& policy, const Classification& result,
                               std::size_t dimension);

// True when the result should be rejected.
bool ShouldReject(const RejectionPolicy& policy, const Classification& result,
                  std::size_t dimension);

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_REJECTION_H_
