// Labeled example containers for classifier training: a name<->id registry,
// a gesture-level training set (what applications collect), and a
// feature-level training set (what the trainers consume; the eager trainer
// also builds these directly from subgesture feature vectors).
#ifndef GRANDMA_SRC_CLASSIFY_TRAINING_SET_H_
#define GRANDMA_SRC_CLASSIFY_TRAINING_SET_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "features/feature_vector.h"
#include "geom/gesture.h"
#include "linalg/vector.h"

namespace grandma::classify {

// Class id: dense index 0..C-1 as the paper's c subscript.
using ClassId = std::size_t;

// Bidirectional mapping between class names and dense ids.
class ClassRegistry {
 public:
  // Returns the id of `name`, interning it if new.
  ClassId Intern(std::string_view name);

  // Id lookup without interning; throws std::out_of_range when absent.
  ClassId Require(std::string_view name) const;
  bool Contains(std::string_view name) const;

  const std::string& Name(ClassId id) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ClassId> ids_;
};

// Gestures grouped by class — the g_ce of Section 4.2.
class GestureTrainingSet {
 public:
  ClassId Add(std::string_view class_name, geom::Gesture gesture);

  std::size_t num_classes() const { return registry_.size(); }
  // Total number of examples across classes.
  std::size_t total_examples() const;

  const std::vector<geom::Gesture>& ExamplesOf(ClassId c) const { return examples_.at(c); }
  const std::string& ClassName(ClassId c) const { return registry_.Name(c); }
  const ClassRegistry& registry() const { return registry_; }

 private:
  ClassRegistry registry_;
  std::vector<std::vector<geom::Gesture>> examples_;
};

// Feature vectors grouped by class; all vectors must share one dimension.
class FeatureTrainingSet {
 public:
  FeatureTrainingSet() = default;
  explicit FeatureTrainingSet(std::size_t num_classes) : examples_(num_classes) {}

  // Grows the class list to at least c+1 classes and appends the example.
  void Add(ClassId c, linalg::Vector features);

  std::size_t num_classes() const { return examples_.size(); }
  std::size_t total_examples() const;
  // Dimension of the feature vectors; 0 when empty.
  std::size_t dimension() const;

  const std::vector<linalg::Vector>& ExamplesOf(ClassId c) const { return examples_.at(c); }

  // True when every class has at least `n` examples.
  bool EveryClassHasAtLeast(std::size_t n) const;

 private:
  std::vector<std::vector<linalg::Vector>> examples_;
};

// Extracts (masked) features of every gesture in `gestures`, preserving the
// class grouping.
FeatureTrainingSet ExtractFeatureSet(const GestureTrainingSet& gestures,
                                     const features::FeatureMask& mask);

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_TRAINING_SET_H_
