#include "classify/evaluation.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace grandma::classify {

void ConfusionMatrix::Record(ClassId actual, ClassId predicted) {
  if (actual >= num_classes_ || predicted >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::Record: class id out of range");
  }
  ++counts_[actual * num_classes_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(ClassId actual, ClassId predicted) const {
  if (actual >= num_classes_ || predicted >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::count: class id out of range");
  }
  return counts_[actual * num_classes_ + predicted];
}

std::size_t ConfusionMatrix::correct() const {
  std::size_t sum = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    sum += counts_[c * num_classes_ + c];
  }
  return sum;
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(correct()) / static_cast<double>(total_);
}

double ConfusionMatrix::Recall(ClassId c) const {
  std::size_t row_total = 0;
  for (std::size_t p = 0; p < num_classes_; ++p) {
    row_total += counts_[c * num_classes_ + p];
  }
  if (row_total == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[c * num_classes_ + c]) / static_cast<double>(row_total);
}

std::string ConfusionMatrix::ToString(const ClassRegistry& registry) const {
  std::ostringstream os;
  std::size_t label_width = 8;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    label_width = std::max(label_width, registry.Name(c).size() + 1);
  }
  os << std::setw(static_cast<int>(label_width)) << "actual\\pred";
  for (std::size_t p = 0; p < num_classes_; ++p) {
    os << std::setw(8) << registry.Name(p).substr(0, 7);
  }
  os << "\n";
  for (std::size_t a = 0; a < num_classes_; ++a) {
    os << std::setw(static_cast<int>(label_width)) << registry.Name(a);
    for (std::size_t p = 0; p < num_classes_; ++p) {
      os << std::setw(8) << count(a, p);
    }
    os << "\n";
  }
  os << "accuracy: " << std::fixed << std::setprecision(4) << Accuracy() << " (" << correct()
     << "/" << total_ << ")\n";
  return os.str();
}

ConfusionMatrix EvaluateClassifier(const GestureClassifier& classifier,
                                   const GestureTrainingSet& test) {
  ConfusionMatrix cm(classifier.num_classes());
  for (ClassId c = 0; c < test.num_classes(); ++c) {
    for (const geom::Gesture& g : test.ExamplesOf(c)) {
      cm.Record(c, classifier.Classify(g).class_id);
    }
  }
  return cm;
}

CrossValidationResult CrossValidate(const GestureTrainingSet& data, std::size_t k,
                                    const features::FeatureMask& mask) {
  if (k < 2) {
    throw std::invalid_argument("CrossValidate requires k >= 2");
  }
  for (ClassId c = 0; c < data.num_classes(); ++c) {
    if (data.ExamplesOf(c).size() < k) {
      throw std::invalid_argument("CrossValidate: class " + data.ClassName(c) +
                                  " has fewer examples than folds");
    }
  }
  CrossValidationResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    GestureTrainingSet train;
    GestureTrainingSet test;
    for (ClassId c = 0; c < data.num_classes(); ++c) {
      const auto& examples = data.ExamplesOf(c);
      const std::string& name = data.ClassName(c);
      for (std::size_t e = 0; e < examples.size(); ++e) {
        if (e % k == fold) {
          test.Add(name, examples[e]);
        } else {
          train.Add(name, examples[e]);
        }
      }
    }
    GestureClassifier classifier;
    classifier.Train(train, mask);
    const double acc = EvaluateClassifier(classifier, test).Accuracy();
    result.fold_accuracies.push_back(acc);
    result.min_accuracy = std::min(result.min_accuracy, acc);
    result.max_accuracy = std::max(result.max_accuracy, acc);
  }
  double sum = 0.0;
  for (double a : result.fold_accuracies) {
    sum += a;
  }
  result.mean_accuracy = sum / static_cast<double>(result.fold_accuracies.size());
  return result;
}

}  // namespace grandma::classify
