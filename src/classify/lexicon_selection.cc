#include "classify/lexicon_selection.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace grandma::classify {

namespace {

// Dense upper-triangular pair index for c < d.
std::size_t PairIndex(std::size_t c, std::size_t d, std::size_t n) {
  return c * n + d;
}

}  // namespace

LexiconSelectionReport SelectLexicon(const GestureClassifier& classifier,
                                     const GestureTrainingSet& train,
                                     const LexiconSelectionOptions& options) {
  if (!classifier.trained()) {
    throw std::invalid_argument("SelectLexicon: classifier is not trained");
  }
  const std::size_t n = classifier.num_classes();
  if (train.num_classes() != n) {
    throw std::invalid_argument("SelectLexicon: classifier/training class count mismatch");
  }
  if (n < 2) {
    throw std::invalid_argument("SelectLexicon: need at least two classes");
  }
  const std::size_t k = std::min(std::max<std::size_t>(options.target_classes, 2), n);

  LexiconSelectionReport report;

  // The evidence: train-set confusion and pairwise mean separation. Both
  // tier-independent (see header).
  const ConfusionMatrix confusion = EvaluateClassifier(classifier, train);
  report.full_train_accuracy = confusion.Accuracy();

  const LinearClassifier& linear = classifier.linear();
  std::vector<double> separation(n * n, 0.0);
  std::vector<double> confusion_rate(n * n, 0.0);
  std::vector<double> effective(n * n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t examples_c = train.ExamplesOf(c).size();
    for (std::size_t d = c + 1; d < n; ++d) {
      const double s = linear.MahalanobisSquaredBetween(linear.mean(c), linear.mean(d));
      const std::size_t cross = confusion.count(c, d) + confusion.count(d, c);
      const std::size_t denom = examples_c + train.ExamplesOf(d).size();
      const double rate =
          denom > 0 ? static_cast<double>(cross) / static_cast<double>(denom) : 0.0;
      const std::size_t idx = PairIndex(c, d, n);
      separation[idx] = s;
      confusion_rate[idx] = rate;
      effective[idx] = s / (1.0 + options.confusion_weight * rate);
    }
  }

  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;

  // Total effective separation of `c` to every other surviving class — the
  // crowding measure that decides which member of the worst pair to drop.
  auto crowding = [&](std::size_t c) {
    double total = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
      if (d == c || !alive[d]) {
        continue;
      }
      total += effective[PairIndex(std::min(c, d), std::max(c, d), n)];
    }
    return total;
  };

  while (alive_count > k) {
    // Worst surviving pair: smallest effective separation, ties toward the
    // lexicographically first (c, d) — fully deterministic.
    std::size_t worst_c = n;
    std::size_t worst_d = n;
    double worst_e = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (!alive[c]) {
        continue;
      }
      for (std::size_t d = c + 1; d < n; ++d) {
        if (!alive[d]) {
          continue;
        }
        const double e = effective[PairIndex(c, d, n)];
        if (worst_c == n || e < worst_e) {
          worst_c = c;
          worst_d = d;
          worst_e = e;
        }
      }
    }
    if (worst_c == n) {
      break;  // unreachable while alive_count >= 2, kept as a guard
    }
    // Drop the more crowded member (smaller total separation to the rest);
    // ties drop the higher id, keeping the earlier, more canonical class.
    const double crowd_c = crowding(worst_c);
    const double crowd_d = crowding(worst_d);
    const std::size_t victim = crowd_c < crowd_d ? worst_c : worst_d;
    const std::size_t partner = victim == worst_c ? worst_d : worst_c;

    DroppedClass drop;
    drop.class_id = victim;
    drop.name = train.ClassName(victim);
    drop.nearest = partner;
    drop.nearest_name = train.ClassName(partner);
    const std::size_t idx = PairIndex(worst_c, worst_d, n);
    drop.separation = separation[idx];
    drop.confusion_rate = confusion_rate[idx];
    drop.effective_separation = effective[idx];
    drop.collision = separation[idx] < options.collision_epsilon;
    drop.drop_order = report.dropped.size();
    if (drop.collision) {
      ++report.collisions;
    }
    report.dropped.push_back(std::move(drop));

    alive[victim] = false;
    --alive_count;
  }

  report.min_surviving_separation = 0.0;
  bool first_pair = true;
  for (std::size_t c = 0; c < n; ++c) {
    if (!alive[c]) {
      continue;
    }
    report.selected.push_back(c);
    report.selected_names.push_back(train.ClassName(c));
    for (std::size_t d = c + 1; d < n; ++d) {
      if (!alive[d]) {
        continue;
      }
      const double e = effective[PairIndex(c, d, n)];
      if (first_pair || e < report.min_surviving_separation) {
        report.min_surviving_separation = e;
        first_pair = false;
      }
    }
  }
  return report;
}

GestureTrainingSet FilterClasses(const GestureTrainingSet& full,
                                 const std::vector<ClassId>& keep) {
  GestureTrainingSet out;
  for (ClassId c : keep) {
    const std::string& name = full.ClassName(c);  // throws on bad id
    for (const geom::Gesture& g : full.ExamplesOf(c)) {
      out.Add(name, g);
    }
  }
  return out;
}

std::string LexiconSelectionReport::ToString() const {
  std::ostringstream out;
  out << "lexicon selection: kept " << selected.size() << ", dropped " << dropped.size()
      << " (" << collisions << " collisions), full train accuracy " << full_train_accuracy
      << ", min surviving separation " << min_surviving_separation << "\n";
  for (const DroppedClass& d : dropped) {
    out << "  drop[" << d.drop_order << "] " << d.name << " (id " << d.class_id
        << "): nearest " << d.nearest_name << ", separation " << d.separation
        << ", confusion " << d.confusion_rate << ", effective " << d.effective_separation
        << (d.collision ? " [COLLISION]" : "") << "\n";
  }
  return out.str();
}

std::string LexiconSelectionReport::ToJson() const {
  std::ostringstream out;
  out << "{\"kept\": " << selected.size() << ", \"dropped\": " << dropped.size()
      << ", \"collisions\": " << collisions
      << ", \"full_train_accuracy\": " << full_train_accuracy
      << ", \"min_surviving_separation\": " << min_surviving_separation << ", \"drops\": [";
  for (std::size_t i = 0; i < dropped.size(); ++i) {
    const DroppedClass& d = dropped[i];
    if (i > 0) {
      out << ", ";
    }
    out << "{\"name\": \"" << d.name << "\", \"nearest\": \"" << d.nearest_name
        << "\", \"separation\": " << d.separation
        << ", \"confusion_rate\": " << d.confusion_rate
        << ", \"effective_separation\": " << d.effective_separation
        << ", \"collision\": " << (d.collision ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace grandma::classify
