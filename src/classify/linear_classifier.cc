#include "classify/linear_classifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/solve.h"
#include "linalg/stats.h"

namespace grandma::classify {

namespace {

bool AllFinite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) {
      return false;
    }
  }
  return true;
}

// Last-resort covariance inverse when even ridge repair fails (a non-finite
// or hopelessly scaled Sigma): an independent-features model built from the
// diagonal, with a variance floor. Always finite, always invertible, and a
// reasonable classifier — per-feature whitening instead of full Mahalanobis.
linalg::Matrix DiagonalFallbackInverse(const linalg::Matrix& sigma, double* floor_used) {
  double max_var = 0.0;
  for (std::size_t i = 0; i < sigma.rows(); ++i) {
    const double v = sigma(i, i);
    if (std::isfinite(v) && v > max_var) {
      max_var = v;
    }
  }
  const double floor = std::max(max_var, 1.0) * 1e-8;
  if (floor_used != nullptr) {
    *floor_used = floor;
  }
  linalg::Matrix inv(sigma.rows(), sigma.cols());
  for (std::size_t i = 0; i < sigma.rows(); ++i) {
    const double v = sigma(i, i);
    inv(i, i) = 1.0 / (std::isfinite(v) && v > floor ? v : floor);
  }
  return inv;
}

}  // namespace

double LinearClassifier::Train(const FeatureTrainingSet& data, robust::FaultStats* stats) {
  const std::size_t num_classes = data.num_classes();
  if (num_classes < 2) {
    throw std::invalid_argument("LinearClassifier::Train needs at least two classes");
  }
  const std::size_t dim = data.dimension();
  if (dim == 0) {
    throw std::invalid_argument("LinearClassifier::Train: empty training data");
  }
  if (data.total_examples() <= num_classes) {
    throw std::invalid_argument(
        "LinearClassifier::Train: need more examples than classes for the pooled covariance");
  }

  std::vector<linalg::Vector> means;
  means.reserve(num_classes);
  linalg::PooledCovariance pooled(dim);
  std::size_t finite_examples = 0;
  for (ClassId c = 0; c < num_classes; ++c) {
    const auto& examples = data.ExamplesOf(c);
    if (examples.empty()) {
      throw std::invalid_argument("LinearClassifier::Train: class " + std::to_string(c) +
                                  " has no examples");
    }
    linalg::ScatterAccumulator scatter(dim);
    for (const linalg::Vector& f : examples) {
      if (f.size() != dim) {
        throw std::invalid_argument("LinearClassifier::Train: inconsistent dimensions");
      }
      // A non-finite example would poison the mean and covariance of its
      // whole class; drop it and account for the drop instead.
      if (!AllFinite(f)) {
        if (stats != nullptr) {
          ++stats->training_examples_dropped;
        }
        continue;
      }
      scatter.Add(f);
      ++finite_examples;
    }
    if (scatter.count() == 0) {
      throw std::invalid_argument("LinearClassifier::Train: class " + std::to_string(c) +
                                  " has no finite examples");
    }
    means.push_back(scatter.Mean());
    pooled.AddClass(scatter);
  }
  if (finite_examples <= num_classes) {
    throw std::invalid_argument(
        "LinearClassifier::Train: need more finite examples than classes");
  }

  const linalg::Matrix sigma = pooled.Estimate();
  double ridge_used = 0.0;
  auto inverse = linalg::InvertCovarianceWithRepair(sigma, /*initial_ridge=*/1e-8,
                                                    /*max_ridge=*/1e6, &ridge_used);
  if (stats != nullptr && inverse.has_value() && ridge_used > 0.0) {
    ++stats->covariance_ridge_repairs;
  }
  if (!inverse.has_value()) {
    // Even escalating ridge could not produce an invertible matrix — degrade
    // to a diagonal model rather than failing the whole trainer.
    inverse = DiagonalFallbackInverse(sigma, &ridge_used);
    if (stats != nullptr) {
      ++stats->covariance_diagonal_fallbacks;
    }
  }

  weights_.clear();
  biases_.clear();
  means_ = std::move(means);
  inverse_covariance_ = std::move(*inverse);
  weights_.reserve(num_classes);
  biases_.reserve(num_classes);
  for (ClassId c = 0; c < num_classes; ++c) {
    linalg::Vector w = linalg::Multiply(inverse_covariance_, means_[c]);
    const double bias = -0.5 * linalg::Dot(w, means_[c]);
    weights_.push_back(std::move(w));
    biases_.push_back(bias);
  }
  return ridge_used;
}

std::vector<double> LinearClassifier::Evaluate(const linalg::Vector& f) const {
  if (!trained()) {
    throw std::logic_error("LinearClassifier::Evaluate before Train");
  }
  if (f.size() != dimension()) {
    throw std::invalid_argument("LinearClassifier::Evaluate: dimension mismatch");
  }
  std::vector<double> scores(num_classes());
  for (ClassId c = 0; c < num_classes(); ++c) {
    scores[c] = biases_[c] + linalg::Dot(weights_[c], f);
  }
  return scores;
}

Classification LinearClassifier::Classify(const linalg::Vector& f) const {
  const std::vector<double> scores = Evaluate(f);
  ClassId best = 0;
  for (ClassId c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[best]) {
      best = c;
    }
  }
  Classification result;
  result.class_id = best;
  result.score = scores[best];
  result.probability = RecognitionProbability(scores, best);
  result.mahalanobis_squared = MahalanobisSquared(f, best);
  return result;
}

double LinearClassifier::MahalanobisSquared(const linalg::Vector& f, ClassId c) const {
  return MahalanobisSquaredBetween(f, means_.at(c));
}

double LinearClassifier::MahalanobisSquaredBetween(const linalg::Vector& a,
                                                   const linalg::Vector& b) const {
  if (!trained()) {
    throw std::logic_error("LinearClassifier::MahalanobisSquaredBetween before Train");
  }
  const linalg::Vector d = a - b;
  return linalg::QuadraticForm(d, inverse_covariance_, d);
}

void LinearClassifier::AdjustBias(ClassId c, double delta) { biases_.at(c) += delta; }

LinearClassifier LinearClassifier::FromParameters(std::vector<linalg::Vector> weights,
                                                  std::vector<double> biases,
                                                  std::vector<linalg::Vector> means,
                                                  linalg::Matrix inverse_covariance) {
  if (weights.size() != biases.size() || weights.size() != means.size()) {
    throw std::invalid_argument("LinearClassifier::FromParameters: inconsistent sizes");
  }
  LinearClassifier out;
  out.weights_ = std::move(weights);
  out.biases_ = std::move(biases);
  out.means_ = std::move(means);
  out.inverse_covariance_ = std::move(inverse_covariance);
  return out;
}

double RecognitionProbability(const std::vector<double>& scores, ClassId winner) {
  const double v_i = scores.at(winner);
  double denom = 0.0;
  for (double v_j : scores) {
    denom += std::exp(v_j - v_i);
  }
  return 1.0 / denom;
}

}  // namespace grandma::classify
