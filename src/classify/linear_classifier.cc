#include "classify/linear_classifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/simd.h"
#include "linalg/solve.h"
#include "linalg/stats.h"
#include "obs/trace.h"

namespace grandma::classify {

namespace {

bool AllFinite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) {
      return false;
    }
  }
  return true;
}

// Last-resort covariance inverse when even ridge repair fails (a non-finite
// or hopelessly scaled Sigma): an independent-features model built from the
// diagonal, with a variance floor. Always finite, always invertible, and a
// reasonable classifier — per-feature whitening instead of full Mahalanobis.
linalg::Matrix DiagonalFallbackInverse(const linalg::Matrix& sigma, double* floor_used) {
  double max_var = 0.0;
  for (std::size_t i = 0; i < sigma.rows(); ++i) {
    const double v = sigma(i, i);
    if (std::isfinite(v) && v > max_var) {
      max_var = v;
    }
  }
  const double floor = std::max(max_var, 1.0) * 1e-8;
  if (floor_used != nullptr) {
    *floor_used = floor;
  }
  linalg::Matrix inv(sigma.rows(), sigma.cols());
  for (std::size_t i = 0; i < sigma.rows(); ++i) {
    const double v = sigma(i, i);
    inv(i, i) = 1.0 / (std::isfinite(v) && v > floor ? v : floor);
  }
  return inv;
}

}  // namespace

double LinearClassifier::Train(const FeatureTrainingSet& data, robust::FaultStats* stats) {
  TRACE_SPAN("classify.train");
  const std::size_t num_classes = data.num_classes();
  if (num_classes < 2) {
    throw std::invalid_argument("LinearClassifier::Train needs at least two classes");
  }
  const std::size_t dim = data.dimension();
  if (dim == 0) {
    throw std::invalid_argument("LinearClassifier::Train: empty training data");
  }
  if (data.total_examples() <= num_classes) {
    throw std::invalid_argument(
        "LinearClassifier::Train: need more examples than classes for the pooled covariance");
  }

  std::vector<linalg::Vector> means;
  means.reserve(num_classes);
  linalg::PooledCovariance pooled(dim);
  std::size_t finite_examples = 0;
  for (ClassId c = 0; c < num_classes; ++c) {
    const auto& examples = data.ExamplesOf(c);
    if (examples.empty()) {
      throw std::invalid_argument("LinearClassifier::Train: class " + std::to_string(c) +
                                  " has no examples");
    }
    linalg::ScatterAccumulator scatter(dim);
    for (const linalg::Vector& f : examples) {
      if (f.size() != dim) {
        throw std::invalid_argument("LinearClassifier::Train: inconsistent dimensions");
      }
      // A non-finite example would poison the mean and covariance of its
      // whole class; drop it and account for the drop instead.
      if (!AllFinite(f)) {
        if (stats != nullptr) {
          ++stats->training_examples_dropped;
        }
        continue;
      }
      scatter.Add(f);
      ++finite_examples;
    }
    if (scatter.count() == 0) {
      throw std::invalid_argument("LinearClassifier::Train: class " + std::to_string(c) +
                                  " has no finite examples");
    }
    means.push_back(scatter.Mean());
    pooled.AddClass(scatter);
  }
  if (finite_examples <= num_classes) {
    throw std::invalid_argument(
        "LinearClassifier::Train: need more finite examples than classes");
  }

  const linalg::Matrix sigma = pooled.Estimate();
  double ridge_used = 0.0;
  auto inverse = linalg::InvertCovarianceWithRepair(sigma, /*initial_ridge=*/1e-8,
                                                    /*max_ridge=*/1e6, &ridge_used);
  if (stats != nullptr && inverse.has_value() && ridge_used > 0.0) {
    ++stats->covariance_ridge_repairs;
  }
  if (!inverse.has_value()) {
    // Even escalating ridge could not produce an invertible matrix — degrade
    // to a diagonal model rather than failing the whole trainer.
    inverse = DiagonalFallbackInverse(sigma, &ridge_used);
    if (stats != nullptr) {
      ++stats->covariance_diagonal_fallbacks;
    }
  }

  weights_.clear();
  biases_.clear();
  means_ = std::move(means);
  inverse_covariance_ = std::move(*inverse);
  weights_.reserve(num_classes);
  biases_.reserve(num_classes);
  for (ClassId c = 0; c < num_classes; ++c) {
    linalg::Vector w = linalg::Multiply(inverse_covariance_, means_[c]);
    const double bias = -0.5 * linalg::Dot(w, means_[c]);
    weights_.push_back(std::move(w));
    biases_.push_back(bias);
  }
  RebuildKernelBlocks();
  return ridge_used;
}

namespace {

// Rows of the SoA weight block start 64-byte aligned when the row width is a
// multiple of 8 doubles.
std::size_t RoundUpToAlignedLanes(std::size_t n) {
  constexpr std::size_t kLanes = linalg::simd::kBlockAlignment / sizeof(double);
  return (n + kLanes - 1) / kLanes * kLanes;
}

}  // namespace

void LinearClassifier::RebuildKernelBlocks() {
  const std::size_t dim = dimension();
  class_stride_ = RoundUpToAlignedLanes(weights_.size());
  soa_weights_.assign(dim * class_stride_, 0.0);
  flat_means_.assign(means_.size() * dim, 0.0);
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    for (std::size_t i = 0; i < dim; ++i) {
      soa_weights_[i * class_stride_ + c] = weights_[c][i];
      flat_means_[c * dim + i] = means_[c][i];
    }
  }
}

void LinearClassifier::EvaluateAllInto(linalg::VecView f, linalg::MutVecView scores) const {
  if (!trained()) {
    throw std::logic_error("LinearClassifier::Evaluate before Train");
  }
  const std::size_t dim = dimension();
  if (f.size() != dim) {
    throw std::invalid_argument("LinearClassifier::Evaluate: dimension mismatch");
  }
  if (scores.size() != num_classes()) {
    throw std::invalid_argument("LinearClassifier::EvaluateInto: bad scores size");
  }
  linalg::simd::EvaluateAll(soa_weights_.data(), class_stride_, biases_.data(), f.data(),
                            dim, scores.data(), num_classes());
}

void LinearClassifier::EvaluateBatchInto(const double* features, std::size_t batch,
                                         std::size_t feature_stride, double* scores,
                                         std::size_t scores_stride) const {
  if (!trained()) {
    throw std::logic_error("LinearClassifier::Evaluate before Train");
  }
  const std::size_t dim = dimension();
  if (feature_stride < dim || scores_stride < num_classes()) {
    throw std::invalid_argument("LinearClassifier::EvaluateBatchInto: bad strides");
  }
  // One dispatched call for the whole batch: the kernel tiles classes so a
  // weight-block sweep serves every row (not one row each), and pairs rows
  // inside a tile. Results are bit-identical to row-at-a-time evaluation,
  // so batched results are still the per-row results, by construction.
  linalg::simd::EvaluateBatch(soa_weights_.data(), class_stride_, biases_.data(), features,
                              batch, feature_stride, scores, scores_stride, dim, num_classes());
}

void LinearClassifier::EvaluateInto(linalg::VecView f, linalg::MutVecView scores) const {
  EvaluateAllInto(f, scores);
}

std::vector<double> LinearClassifier::Evaluate(const linalg::Vector& f) const {
  std::vector<double> scores(num_classes());
  EvaluateInto(f.view(), linalg::MutVecView(scores.data(), scores.size()));
  return scores;
}

ClassId LinearClassifier::BestClassView(linalg::VecView f, linalg::MutVecView scores) const {
  EvaluateInto(f, scores);
  // Dispatched first-max scan: first index wins ties on every tier.
  return static_cast<ClassId>(linalg::simd::ArgMax(scores.data(), scores.size()));
}

bool LinearClassifier::EvaluateWinnerInPrefix(linalg::VecView f, std::size_t split) const {
  assert(trained());
  assert(f.size() == dimension());
  return linalg::simd::EvaluateArgMaxInPrefix(soa_weights_.data(), class_stride_, biases_.data(),
                                              f.data(), dimension(), split, num_classes());
}

Classification LinearClassifier::ClassifyView(linalg::VecView f, linalg::MutVecView scores,
                                              linalg::MutVecView diff) const {
  TRACE_SPAN_FINE("classify.view");
  const ClassId best = BestClassView(f, scores);
  Classification result;
  result.class_id = best;
  result.score = scores[best];
  result.probability = RecognitionProbability(linalg::VecView(scores), best);
  result.mahalanobis_squared = MahalanobisSquaredView(f, best, diff);
  return result;
}

std::size_t LinearClassifier::EvaluateNBest(linalg::VecView f, linalg::MutVecView scores,
                                            std::span<NBestEntry> out) const {
  TRACE_SPAN_FINE("classify.nbest");
  EvaluateAllInto(f, scores);
  const std::size_t n = std::min(out.size(), scores.size());
  if (n == 0) {
    return 0;
  }
  // Repeated first-max scans under the total order (score desc, class id
  // asc): rank k is the maximum among classes strictly after rank k-1 in
  // that order. O(n * C) with n small, no allocation, deterministic — and
  // rank 0 is exactly BestClassView's strict-> argmax.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  double prev_score = 0.0;
  std::size_t prev_id = kNone;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = kNone;
    for (std::size_t c = 0; c < scores.size(); ++c) {
      if (prev_id != kNone &&
          (scores[c] > prev_score || (scores[c] == prev_score && c <= prev_id))) {
        continue;  // already ranked (or would rank earlier than) rank k-1
      }
      if (best == kNone || scores[c] > scores[best]) {
        best = c;
      }
    }
    if (best == kNone) {
      return k;  // fewer distinct candidates than requested (NaN scores)
    }
    out[k].class_id = best;
    out[k].score = scores[best];
    prev_score = scores[best];
    prev_id = best;
  }
  // Calibrate probabilities against ALL classes with the winner as the
  // softmax anchor — the same summation order as RecognitionProbability, so
  // rank 0's share (exp(0) / denom == 1 / denom) is bit-identical to
  // Classification::probability.
  const double v_top = out[0].score;
  double denom = 0.0;
  for (double v_j : scores) {
    denom += std::exp(v_j - v_top);
  }
  for (std::size_t k = 0; k < n; ++k) {
    out[k].probability = std::exp(out[k].score - v_top) / denom;
  }
  return n;
}

Classification LinearClassifier::Classify(const linalg::Vector& f) const {
  std::vector<double> scores(num_classes());
  std::vector<double> diff(dimension());
  return ClassifyView(f.view(), linalg::MutVecView(scores.data(), scores.size()),
                      linalg::MutVecView(diff.data(), diff.size()));
}

double LinearClassifier::MahalanobisSquaredView(linalg::VecView f, ClassId c,
                                                linalg::MutVecView diff) const {
  if (!trained()) {
    throw std::logic_error("LinearClassifier::MahalanobisSquaredBetween before Train");
  }
  const std::size_t dim = dimension();
  if (c >= num_classes()) {
    throw std::out_of_range("LinearClassifier::MahalanobisSquaredView: bad class");
  }
  if (f.size() != dim || diff.size() != dim) {
    throw std::invalid_argument("LinearClassifier::MahalanobisSquaredView: bad sizes");
  }
  linalg::Subtract(f, linalg::VecView(flat_means_.data() + c * dim, dim), diff);
  return linalg::simd::QuadraticForm(linalg::VecView(diff), inverse_covariance_.data(),
                                     linalg::VecView(diff));
}

double LinearClassifier::MahalanobisSquared(const linalg::Vector& f, ClassId c) const {
  // Delegates to the view kernel (not MahalanobisSquaredBetween) so the
  // allocating and view flavors stay bit-identical under SIMD dispatch.
  std::vector<double> diff(dimension());
  return MahalanobisSquaredView(f.view(), c, linalg::MutVecView(diff.data(), diff.size()));
}

double LinearClassifier::MahalanobisSquaredBetween(const linalg::Vector& a,
                                                   const linalg::Vector& b) const {
  if (!trained()) {
    throw std::logic_error("LinearClassifier::MahalanobisSquaredBetween before Train");
  }
  const linalg::Vector d = a - b;
  return linalg::QuadraticForm(d, inverse_covariance_, d);
}

void LinearClassifier::AdjustBias(ClassId c, double delta) { biases_.at(c) += delta; }

LinearClassifier LinearClassifier::FromParameters(std::vector<linalg::Vector> weights,
                                                  std::vector<double> biases,
                                                  std::vector<linalg::Vector> means,
                                                  linalg::Matrix inverse_covariance) {
  if (weights.size() != biases.size() || weights.size() != means.size()) {
    throw std::invalid_argument("LinearClassifier::FromParameters: inconsistent sizes");
  }
  LinearClassifier out;
  out.weights_ = std::move(weights);
  out.biases_ = std::move(biases);
  out.means_ = std::move(means);
  out.inverse_covariance_ = std::move(inverse_covariance);
  out.RebuildKernelBlocks();
  return out;
}

double RecognitionProbability(const std::vector<double>& scores, ClassId winner) {
  if (winner >= scores.size()) {
    throw std::out_of_range("RecognitionProbability: winner out of range");
  }
  return RecognitionProbability(linalg::VecView(scores.data(), scores.size()), winner);
}

double RecognitionProbability(linalg::VecView scores, ClassId winner) {
  assert(winner < scores.size());
  const double v_i = scores[winner];
  double denom = 0.0;
  for (double v_j : scores) {
    denom += std::exp(v_j - v_i);
  }
  return 1.0 / denom;
}

}  // namespace grandma::classify
