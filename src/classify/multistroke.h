// Multi-stroke gestures — the paper's acknowledged limitation ("the major
// drawback is that many common marks (e.g. 'X' and '=>') cannot be used as
// gestures") and listed future work. This adapter extends the single-stroke
// statistical recognizer to stroke sequences, in the spirit of the
// techniques the paper cites [8, 15]:
//   - strokes that begin within an inter-stroke timeout of the previous
//     stroke's end belong to the same gesture (the collector),
//   - the feature vector combines the Rubine features of the individual
//     strokes (pen-up travel excluded from path/turning sums) plus the
//     stroke count,
//   - training/classification reuse the closed-form linear machinery.
#ifndef GRANDMA_SRC_CLASSIFY_MULTISTROKE_H_
#define GRANDMA_SRC_CLASSIFY_MULTISTROKE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "classify/linear_classifier.h"
#include "classify/training_set.h"
#include "geom/gesture.h"
#include "linalg/vector.h"

namespace grandma::classify {

// An ordered sequence of strokes forming one gesture.
using StrokeSequence = std::vector<geom::Gesture>;

// Combined features of a stroke sequence:
//   [0..12]  Rubine features merged across strokes: initial angle from the
//            first stroke; bbox and start-to-end displacement global; path
//            length / turning sums added per stroke (pen-up travel ignored);
//            max speed over strokes; duration from first point to last.
//   [13]     number of strokes.
inline constexpr std::size_t kMultiStrokeFeatureCount = 14;

linalg::Vector ExtractMultiStrokeFeatures(const StrokeSequence& strokes);

// Labeled multi-stroke examples grouped by class.
class MultiStrokeTrainingSet {
 public:
  ClassId Add(std::string_view class_name, StrokeSequence strokes);

  std::size_t num_classes() const { return registry_.size(); }
  std::size_t total_examples() const;
  const std::vector<StrokeSequence>& ExamplesOf(ClassId c) const { return examples_.at(c); }
  const std::string& ClassName(ClassId c) const { return registry_.Name(c); }
  const ClassRegistry& registry() const { return registry_; }

 private:
  ClassRegistry registry_;
  std::vector<std::vector<StrokeSequence>> examples_;
};

class MultiStrokeClassifier {
 public:
  MultiStrokeClassifier() = default;

  double Train(const MultiStrokeTrainingSet& examples);

  bool trained() const { return linear_.trained(); }
  std::size_t num_classes() const { return linear_.num_classes(); }

  Classification Classify(const StrokeSequence& strokes) const;

  const std::string& ClassName(ClassId c) const { return registry_.Name(c); }
  const LinearClassifier& linear() const { return linear_; }

 private:
  ClassRegistry registry_;
  LinearClassifier linear_;
};

// Groups incoming strokes into gestures by time: a stroke starting more than
// `inter_stroke_timeout_ms` after the previous stroke ended starts a new
// gesture. Feed strokes in order; Poll with the current clock to learn when
// the pending gesture is complete.
class MultiStrokeCollector {
 public:
  explicit MultiStrokeCollector(double inter_stroke_timeout_ms = 400.0)
      : timeout_ms_(inter_stroke_timeout_ms) {}

  // Adds a finished stroke. Returns the *previous* gesture when this stroke
  // started too late to join it (the caller classifies the returned
  // sequence); returns an empty sequence otherwise.
  StrokeSequence AddStroke(geom::Gesture stroke);

  // If the pending gesture has been idle past the timeout at `now_ms`,
  // returns and clears it; empty sequence otherwise.
  StrokeSequence Poll(double now_ms);

  // The gesture being collected (e.g. for inking).
  const StrokeSequence& pending() const { return pending_; }
  bool HasPending() const { return !pending_.empty(); }
  double timeout_ms() const { return timeout_ms_; }

 private:
  double timeout_ms_;
  StrokeSequence pending_;
  double last_end_time_ = 0.0;
};

}  // namespace grandma::classify

#endif  // GRANDMA_SRC_CLASSIFY_MULTISTROKE_H_
