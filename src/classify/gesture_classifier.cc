#include "classify/gesture_classifier.h"

#include "features/extractor.h"

namespace grandma::classify {

double GestureClassifier::Train(const GestureTrainingSet& examples,
                                const features::FeatureMask& mask,
                                robust::FaultStats* stats) {
  registry_ = examples.registry();
  mask_ = mask;
  return linear_.Train(ExtractFeatureSet(examples, mask), stats);
}

Classification GestureClassifier::Classify(const geom::Gesture& g) const {
  return ClassifyFeatures(features::ExtractFeatures(g));
}

Classification GestureClassifier::ClassifyFeatures(const linalg::Vector& full_features) const {
  return linear_.Classify(mask_.Project(full_features));
}

GestureClassifier GestureClassifier::FromParameters(ClassRegistry registry,
                                                    features::FeatureMask mask,
                                                    LinearClassifier linear) {
  GestureClassifier out;
  out.registry_ = std::move(registry);
  out.mask_ = mask;
  out.linear_ = std::move(linear);
  return out;
}

}  // namespace grandma::classify
