#include "classify/gesture_classifier.h"

#include "features/extractor.h"

namespace grandma::classify {

double GestureClassifier::Train(const GestureTrainingSet& examples,
                                const features::FeatureMask& mask,
                                robust::FaultStats* stats) {
  registry_ = examples.registry();
  mask_ = mask;
  return linear_.Train(ExtractFeatureSet(examples, mask), stats);
}

Classification GestureClassifier::Classify(const geom::Gesture& g) const {
  return ClassifyFeatures(features::ExtractFeatures(g));
}

Classification GestureClassifier::ClassifyFeatures(const linalg::Vector& full_features) const {
  const linalg::Vector masked = mask_.Project(full_features);
  return linear_.Classify(masked);
}

Classification GestureClassifier::ClassifyFeaturesView(linalg::VecView full_features,
                                                       linalg::MutVecView masked,
                                                       linalg::MutVecView scores,
                                                       linalg::MutVecView diff) const {
  mask_.ProjectInto(full_features, masked);
  return linear_.ClassifyView(masked, scores, diff);
}

GestureClassifier GestureClassifier::FromParameters(ClassRegistry registry,
                                                    features::FeatureMask mask,
                                                    LinearClassifier linear) {
  GestureClassifier out;
  out.registry_ = std::move(registry);
  out.mask_ = mask;
  out.linear_ = std::move(linear);
  return out;
}

}  // namespace grandma::classify
