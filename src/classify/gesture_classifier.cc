#include "classify/gesture_classifier.h"

#include "features/extractor.h"

namespace grandma::classify {

double GestureClassifier::Train(const GestureTrainingSet& examples,
                                const features::FeatureMask& mask,
                                robust::FaultStats* stats) {
  registry_ = examples.registry();
  mask_ = mask;
  return linear_.Train(ExtractFeatureSet(examples, mask), stats);
}

Classification GestureClassifier::Classify(const geom::Gesture& g) const {
  return ClassifyFeatures(features::ExtractFeatures(g));
}

Classification GestureClassifier::ClassifyFeatures(const linalg::Vector& full_features) const {
  const linalg::Vector masked = mask_.Project(full_features);
  return linear_.Classify(masked);
}

Classification GestureClassifier::ClassifyFeaturesView(linalg::VecView full_features,
                                                       linalg::MutVecView masked,
                                                       linalg::MutVecView scores,
                                                       linalg::MutVecView diff) const {
  mask_.ProjectInto(full_features, masked);
  return linear_.ClassifyView(masked, scores, diff);
}

std::size_t GestureClassifier::EvaluateNBestView(linalg::VecView full_features,
                                                 linalg::MutVecView masked,
                                                 linalg::MutVecView scores,
                                                 linalg::MutVecView diff,
                                                 std::span<NBestEntry> out,
                                                 Classification* top) const {
  mask_.ProjectInto(full_features, masked);
  const std::size_t n = linear_.EvaluateNBest(masked, scores, out);
  if (top != nullptr) {
    if (n > 0) {
      // out[0] already carries BestClassView's argmax and the same softmax
      // share ClassifyView would compute; only the Mahalanobis diagnostic
      // needs a fresh kernel call.
      top->class_id = out[0].class_id;
      top->score = out[0].score;
      top->probability = out[0].probability;
      top->mahalanobis_squared = linear_.MahalanobisSquaredView(masked, out[0].class_id, diff);
    } else {
      *top = linear_.ClassifyView(masked, scores, diff);
    }
  }
  return n;
}

GestureClassifier GestureClassifier::FromParameters(ClassRegistry registry,
                                                    features::FeatureMask mask,
                                                    LinearClassifier linear) {
  GestureClassifier out;
  out.registry_ = std::move(registry);
  out.mask_ = mask;
  out.linear_ = std::move(linear);
  return out;
}

}  // namespace grandma::classify
