#include "classify/multistroke.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "features/extractor.h"
#include "features/feature_vector.h"

namespace grandma::classify {

linalg::Vector ExtractMultiStrokeFeatures(const StrokeSequence& strokes) {
  linalg::Vector out(kMultiStrokeFeatureCount);
  if (strokes.empty()) {
    return out;
  }

  // Per-stroke Rubine features; stroke-local sums merge, globals recompute.
  bool have_any = false;
  geom::BoundingBox box{};
  double path_length = 0.0;
  double total_angle = 0.0;
  double total_abs_angle = 0.0;
  double sharpness = 0.0;
  double max_speed_sq = 0.0;
  const geom::Gesture* first_stroke = nullptr;
  const geom::Gesture* last_stroke = nullptr;
  double t_first = 0.0;
  double t_last = 0.0;

  for (const geom::Gesture& stroke : strokes) {
    if (stroke.empty()) {
      continue;
    }
    const linalg::Vector f = features::ExtractFeatures(stroke);
    path_length += f[features::kPathLength];
    total_angle += f[features::kTotalAngle];
    total_abs_angle += f[features::kTotalAbsAngle];
    sharpness += f[features::kSharpness];
    max_speed_sq = std::max(max_speed_sq, f[features::kMaxSpeedSquared]);

    const geom::BoundingBox sb = stroke.Bounds();
    if (!have_any) {
      box = sb;
      first_stroke = &stroke;
      t_first = stroke.front().t;
      have_any = true;
    } else {
      box.min_x = std::min(box.min_x, sb.min_x);
      box.min_y = std::min(box.min_y, sb.min_y);
      box.max_x = std::max(box.max_x, sb.max_x);
      box.max_y = std::max(box.max_y, sb.max_y);
    }
    last_stroke = &stroke;
    t_last = stroke.back().t;
  }
  if (!have_any) {
    return out;
  }

  // Initial angle: from the first stroke (its own third-point anchor).
  const linalg::Vector first_features = features::ExtractFeatures(*first_stroke);
  out[features::kInitialCos] = first_features[features::kInitialCos];
  out[features::kInitialSin] = first_features[features::kInitialSin];

  out[features::kBboxDiagonal] = box.DiagonalLength();
  const double bw = box.max_x - box.min_x;
  const double bh = box.max_y - box.min_y;
  out[features::kBboxAngle] = (bw != 0.0 || bh != 0.0) ? std::atan2(bh, bw) : 0.0;

  const double ex = last_stroke->back().x - first_stroke->front().x;
  const double ey = last_stroke->back().y - first_stroke->front().y;
  const double e = std::sqrt(ex * ex + ey * ey);
  out[features::kStartEndDistance] = e;
  if (e > 0.0) {
    out[features::kStartEndCos] = ex / e;
    out[features::kStartEndSin] = ey / e;
  }

  out[features::kPathLength] = path_length;
  out[features::kTotalAngle] = total_angle;
  out[features::kTotalAbsAngle] = total_abs_angle;
  out[features::kSharpness] = sharpness;
  out[features::kMaxSpeedSquared] = max_speed_sq;
  out[features::kDuration] = t_last - t_first;

  std::size_t stroke_count = 0;
  for (const geom::Gesture& stroke : strokes) {
    stroke_count += stroke.empty() ? 0 : 1;
  }
  out[13] = static_cast<double>(stroke_count);
  return out;
}

ClassId MultiStrokeTrainingSet::Add(std::string_view class_name, StrokeSequence strokes) {
  const ClassId id = registry_.Intern(class_name);
  if (examples_.size() <= id) {
    examples_.resize(id + 1);
  }
  examples_[id].push_back(std::move(strokes));
  return id;
}

std::size_t MultiStrokeTrainingSet::total_examples() const {
  std::size_t total = 0;
  for (const auto& per_class : examples_) {
    total += per_class.size();
  }
  return total;
}

double MultiStrokeClassifier::Train(const MultiStrokeTrainingSet& examples) {
  registry_ = examples.registry();
  FeatureTrainingSet data(examples.num_classes());
  for (ClassId c = 0; c < examples.num_classes(); ++c) {
    for (const StrokeSequence& strokes : examples.ExamplesOf(c)) {
      data.Add(c, ExtractMultiStrokeFeatures(strokes));
    }
  }
  return linear_.Train(data);
}

Classification MultiStrokeClassifier::Classify(const StrokeSequence& strokes) const {
  return linear_.Classify(ExtractMultiStrokeFeatures(strokes));
}

StrokeSequence MultiStrokeCollector::AddStroke(geom::Gesture stroke) {
  if (stroke.empty()) {
    return {};
  }
  StrokeSequence completed;
  if (!pending_.empty() && stroke.front().t - last_end_time_ > timeout_ms_) {
    completed = std::move(pending_);
    pending_.clear();
  }
  last_end_time_ = stroke.back().t;
  pending_.push_back(std::move(stroke));
  return completed;
}

StrokeSequence MultiStrokeCollector::Poll(double now_ms) {
  if (pending_.empty() || now_ms - last_end_time_ <= timeout_ms_) {
    return {};
  }
  StrokeSequence completed = std::move(pending_);
  pending_.clear();
  return completed;
}

}  // namespace grandma::classify
