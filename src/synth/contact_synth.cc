#include "synth/contact_synth.h"

#include <cmath>
#include <numbers>
#include <utility>

#include "geom/transform.h"

namespace grandma::synth {

namespace {

constexpr double kPi = std::numbers::pi;

TouchSpec TwoFinger(std::string name, PathSpec a, PathSpec b) {
  TouchSpec spec;
  spec.class_name = std::move(name);
  spec.fingers = {std::move(a), std::move(b)};
  return spec;
}

PathSpec Line(double x0, double y0, double x1, double y1) {
  PathSpec p;
  p.start_x = x0;
  p.start_y = y0;
  p.LineTo(x1, y1);
  return p;
}

PathSpec Orbit(double radius, double start_angle, double sweep) {
  PathSpec p;
  p.start_x = radius * std::cos(start_angle);
  p.start_y = radius * std::sin(start_angle);
  p.segments.push_back(PathSegment::Arc(0.0, 0.0, radius, start_angle, sweep));
  return p;
}

}  // namespace

std::vector<TouchSpec> MakeTouchSpecs() {
  std::vector<TouchSpec> specs;
  // Pinch / spread: fingers converge toward / diverge from the midpoint.
  specs.push_back(TwoFinger("pinch", Line(-60.0, 0.0, -15.0, 0.0), Line(60.0, 0.0, 15.0, 0.0)));
  specs.push_back(TwoFinger("spread", Line(-15.0, 0.0, -60.0, 0.0), Line(15.0, 0.0, 60.0, 0.0)));
  // Rotations: both fingers orbit the midpoint by ~90 degrees either way.
  specs.push_back(TwoFinger("rotate-cw", Orbit(45.0, 0.0, -kPi / 2.0),
                            Orbit(45.0, kPi, -kPi / 2.0)));
  specs.push_back(TwoFinger("rotate-ccw", Orbit(45.0, 0.0, kPi / 2.0),
                            Orbit(45.0, kPi, kPi / 2.0)));
  // Swipes: parallel translation, the logical-center workload.
  specs.push_back(TwoFinger("swipe-right", Line(-40.0, 18.0, 50.0, 18.0),
                            Line(-40.0, -18.0, 50.0, -18.0)));
  specs.push_back(TwoFinger("swipe-left", Line(40.0, 18.0, -50.0, 18.0),
                            Line(40.0, -18.0, -50.0, -18.0)));
  specs.push_back(TwoFinger("swipe-up", Line(18.0, -40.0, 18.0, 50.0),
                            Line(-18.0, -40.0, -18.0, 50.0)));
  specs.push_back(TwoFinger("swipe-down", Line(18.0, 40.0, 18.0, -50.0),
                            Line(-18.0, 40.0, -18.0, -50.0)));
  // Two-finger tap: both fingers dwell (empty specs emit dwell points).
  {
    PathSpec a;
    a.start_x = -22.0;
    PathSpec b;
    b.start_x = 22.0;
    specs.push_back(TwoFinger("tap-two", std::move(a), std::move(b)));
  }
  return specs;
}

geom::ContactGroup GenerateContactGroup(const TouchSpec& spec, const NoiseModel& noise,
                                        Rng& rng) {
  // One shared whole-gesture pose and tempo keep the fingers geometrically
  // and temporally related (same decomposition as multipath's shared pose);
  // the per-finger generator adds only per-point jitter. Independent
  // per-finger tempo would desynchronize the fingers' progress along their
  // paths, which reads as spurious baseline rotation/scale to the attribute
  // layer — real fingers in one gesture move together.
  NoiseModel per_finger = noise;
  per_finger.rotation_sigma = 0.0;
  per_finger.scale_sigma = 0.0;
  per_finger.translation_sigma = 0.0;
  per_finger.speed = noise.speed * rng.LogNormalFactor(noise.tempo_sigma);
  per_finger.tempo_sigma = 0.0;

  const double rotation = rng.Gaussian(noise.rotation_sigma);
  const double scale = rng.LogNormalFactor(noise.scale_sigma);
  const double dx = rng.Gaussian(noise.translation_sigma);
  const double dy = rng.Gaussian(noise.translation_sigma);
  const geom::AffineTransform pose =
      geom::AffineTransform::Translation(dx, dy)
          .Compose(geom::AffineTransform::Rotation(rotation).Compose(
              geom::AffineTransform::Scale(scale)));

  geom::ContactGroup out;
  for (std::size_t f = 0; f < spec.fingers.size(); ++f) {
    GestureSample sample = Generate(spec.fingers[f], per_finger, rng);
    geom::Contact contact;
    contact.id = static_cast<std::int32_t>(f) + 1;
    contact.area = spec.finger_area * rng.LogNormalFactor(spec.finger_area_sigma);
    // The first finger lands at t = 0; the rest land up to the stagger later.
    const double stagger = f == 0 ? 0.0 : rng.Uniform(0.0, spec.max_start_stagger_ms);
    contact.stroke = geom::RebaseTime(pose.Apply(sample.gesture), stagger);
    out.AddContact(std::move(contact));
  }
  return out;
}

std::vector<LabeledContactGroups> GenerateContactSet(const std::vector<TouchSpec>& specs,
                                                     const NoiseModel& noise,
                                                     std::size_t per_class,
                                                     std::uint64_t seed) {
  std::vector<LabeledContactGroups> out;
  out.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    Rng rng(seed * 2654435761u + s);
    LabeledContactGroups batch;
    batch.class_name = specs[s].class_name;
    batch.groups.reserve(per_class);
    for (std::size_t e = 0; e < per_class; ++e) {
      batch.groups.push_back(GenerateContactGroup(specs[s], noise, rng));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

geom::ContactGroup AsContactGroup(const geom::Gesture& g, std::int32_t id, double area) {
  geom::Contact contact;
  contact.id = id;
  contact.area = area;
  contact.stroke = g;
  geom::ContactGroup group;
  group.AddContact(std::move(contact));
  return group;
}

}  // namespace grandma::synth
