// Canonical gesture sets for every experiment in the paper:
//   - U/D (Figures 5-7 walkthrough), plus a variant with a bare right-stroke
//     class (the threshold pitfall discussed in Section 4.5),
//   - the eight two-segment direction classes of Figure 9,
//   - Buxton's musical-note gestures of Figure 8 (each a prefix of the next),
//   - the eleven GDP gestures of Figure 10, in both group orientations
//     (the paper trained `group` clockwise because the counterclockwise
//     variant prevented `copy` from ever being eagerly recognized).
//
// Coordinates are in a y-up mathematical frame; "u" means +y. Sizes are in
// pixels, roughly matching on-screen gesture sizes (40-120 px strokes).
#ifndef GRANDMA_SRC_SYNTH_SETS_H_
#define GRANDMA_SRC_SYNTH_SETS_H_

#include <vector>

#include "synth/path_spec.h"

namespace grandma::synth {

// U: right then up. D: right then down. Both 60 px segments.
std::vector<PathSpec> MakeUpDownSpecs();

// U, D, plus a bare right stroke — the configuration in which an incomplete
// subgesture (the shared horizontal prefix) looks like a *full* gesture of a
// different class, exercising the lower-threshold guard of Section 4.5.
std::vector<PathSpec> MakeUpDownRightSpecs();

// The eight classes of Figure 9, named for their two segment directions:
// "ur" is up-then-right. Each class is ambiguous along its first segment and
// unambiguous once the corner is turned.
std::vector<PathSpec> MakeEightDirectionSpecs();

// Buxton's note gestures (Figure 8): quarter, eighth, sixteenth,
// thirtysecond, sixtyfourth. A down-stroke followed by 0..4 zigzag flags;
// every gesture is approximately a subgesture of the next, so eager
// recognition should essentially never trigger.
std::vector<PathSpec> MakeNoteSpecs();

enum class GroupOrientation {
  kClockwise,         // the "slightly altered" set actually used in Figure 10
  kCounterClockwise,  // the original set, which blocked `copy`'s eagerness
};

// The eleven GDP gesture classes: line, rectangle, ellipse, group, text,
// delete, edit, move, rotate-scale, copy, dot. Shapes approximate Figure 3's
// strokes; what the experiments depend on is the prefix-ambiguity structure
// (notably group-vs-copy sharing their initial arc when group is drawn
// counterclockwise).
std::vector<PathSpec> MakeGdpSpecs(GroupOrientation orientation = GroupOrientation::kClockwise);

}  // namespace grandma::synth

#endif  // GRANDMA_SRC_SYNTH_SETS_H_
