// Deterministic random number generation for the synthetic gesture workload.
// Every experiment harness seeds explicitly so results are reproducible
// run-to-run and machine-to-machine.
#ifndef GRANDMA_SRC_SYNTH_RNG_H_
#define GRANDMA_SRC_SYNTH_RNG_H_

#include <cstdint>
#include <random>

namespace grandma::synth {

// Thin wrapper over mt19937_64 with the distributions the generator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Standard normal scaled by sigma.
  double Gaussian(double sigma) {
    if (sigma <= 0.0) {
      return 0.0;
    }
    return std::normal_distribution<double>(0.0, sigma)(engine_);
  }

  // exp(N(0, sigma)): multiplicative jitter that can never go negative.
  double LogNormalFactor(double sigma) {
    if (sigma <= 0.0) {
      return 1.0;
    }
    return std::exp(std::normal_distribution<double>(0.0, sigma)(engine_));
  }

  // True with probability p.
  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return std::bernoulli_distribution(p)(engine_);
  }

  // Uniform integer in [0, n).
  std::uint64_t Index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace grandma::synth

#endif  // GRANDMA_SRC_SYNTH_RNG_H_
