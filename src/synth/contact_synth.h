// Synthetic multi-contact device traces: touch gesture specs (pinch, spread,
// rotate, swipe, tap) whose fingers are full contact lifetimes — staggered
// touch-downs, per-contact reported areas, independent lifts — emitted as
// geom::ContactGroup, the raw-device vocabulary robust::ContactTracker
// consumes. The single-stroke generator (generator.h) stands in for the
// mouse; this module stands in for a multi-touch sensor.
#ifndef GRANDMA_SRC_SYNTH_CONTACT_SYNTH_H_
#define GRANDMA_SRC_SYNTH_CONTACT_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/contact.h"
#include "synth/generator.h"
#include "synth/path_spec.h"
#include "synth/rng.h"

namespace grandma::synth {

// A multi-contact gesture class: one canonical PathSpec per finger.
struct TouchSpec {
  std::string class_name;
  std::vector<PathSpec> fingers;
  // Fingers rarely land simultaneously; each finger after the first starts
  // up to this many milliseconds later (uniformly random). Kept well under
  // any finger-count-change heuristic so clean traces are never repaired.
  double max_start_stagger_ms = 50.0;
  // Mean reported contact area (px^2, touch-major-ish). Fingertips ~55;
  // per-contact lognormal jitter applies.
  double finger_area = 55.0;
  double finger_area_sigma = 0.15;
};

// The device-realistic touch set the ROADMAP's libinput taxonomy names:
//   pinch / spread    fingers converge / diverge (absolute-scale workload)
//   rotate-cw / ccw   fingers orbit their midpoint (relative-angle workload)
//   swipe-{left,right,up,down}  two fingers translate in parallel
//                     (logical-center workload)
//   tap-two           both fingers dwell
std::vector<TouchSpec> MakeTouchSpecs();

// Generates one contact group of `spec` under `noise`: a shared whole-
// gesture pose keeps the fingers geometrically related; stagger, area, and
// per-point noise are per contact. Contact ids are 1..N in finger order.
geom::ContactGroup GenerateContactGroup(const TouchSpec& spec, const NoiseModel& noise,
                                        Rng& rng);

// A labeled batch of groups for one class.
struct LabeledContactGroups {
  std::string class_name;
  std::vector<geom::ContactGroup> groups;
};

// Generates `per_class` groups of every spec. Deterministic in `seed`.
std::vector<LabeledContactGroups> GenerateContactSet(const std::vector<TouchSpec>& specs,
                                                     const NoiseModel& noise,
                                                     std::size_t per_class,
                                                     std::uint64_t seed);

// Wraps a single-stroke gesture as a one-contact group — how a mouse/stylus
// stroke enters the multi-contact entry path.
geom::ContactGroup AsContactGroup(const geom::Gesture& g, std::int32_t id = 1,
                                  double area = 55.0);

}  // namespace grandma::synth

#endif  // GRANDMA_SRC_SYNTH_CONTACT_SYNTH_H_
