#include "synth/sets.h"

#include <cmath>
#include <numbers>

namespace grandma::synth {

namespace {

constexpr double kPi = std::numbers::pi;

PathSpec TwoSegment(const char* name, double dx1, double dy1, double dx2, double dy2) {
  PathSpec spec;
  spec.class_name = name;
  spec.LineTo(dx1, dy1);
  spec.LineTo(dx1 + dx2, dy1 + dy2);
  spec.unambiguous_at_segment = 1;
  return spec;
}

// Appends a polyline approximation of an axis-aligned ellipse centered at
// (cx, cy) with semi-axes (a, b), starting at parametric angle `phase` and
// sweeping `sweep` radians in `steps` chords.
void AppendEllipsePolyline(PathSpec& spec, double cx, double cy, double a, double b,
                           double phase, double sweep, int steps) {
  for (int i = 1; i <= steps; ++i) {
    const double u = phase + sweep * static_cast<double>(i) / static_cast<double>(steps);
    spec.LineTo(cx + a * std::cos(u), cy + b * std::sin(u));
  }
}

}  // namespace

std::vector<PathSpec> MakeUpDownSpecs() {
  return {
      TwoSegment("U", 60.0, 0.0, 0.0, 60.0),
      TwoSegment("D", 60.0, 0.0, 0.0, -60.0),
  };
}

std::vector<PathSpec> MakeUpDownRightSpecs() {
  std::vector<PathSpec> specs = MakeUpDownSpecs();
  PathSpec right;
  right.class_name = "R";
  right.LineTo(60.0, 0.0);
  right.unambiguous_at_segment = -1;  // a bare prefix: never early-decidable
  specs.push_back(std::move(right));
  return specs;
}

std::vector<PathSpec> MakeEightDirectionSpecs() {
  struct Dir {
    char c;
    double dx;
    double dy;
  };
  const Dir dirs[] = {
      {'u', 0.0, 1.0}, {'d', 0.0, -1.0}, {'l', -1.0, 0.0}, {'r', 1.0, 0.0}};
  // The eight orderings used in Figure 9: ur, ul, dr, dl, ru, rd, lu, ld.
  const char* names[] = {"ur", "ul", "dr", "dl", "ru", "rd", "lu", "ld"};
  std::vector<PathSpec> specs;
  specs.reserve(8);
  for (const char* name : names) {
    const Dir* first = nullptr;
    const Dir* second = nullptr;
    for (const Dir& d : dirs) {
      if (d.c == name[0]) {
        first = &d;
      }
      if (d.c == name[1]) {
        second = &d;
      }
    }
    constexpr double kLen = 60.0;
    specs.push_back(TwoSegment(name, first->dx * kLen, first->dy * kLen, second->dx * kLen,
                               second->dy * kLen));
  }
  return specs;
}

std::vector<PathSpec> MakeNoteSpecs() {
  const char* names[] = {"quarter", "eighth", "sixteenth", "thirtysecond", "sixtyfourth"};
  std::vector<PathSpec> specs;
  for (int flags = 0; flags < 5; ++flags) {
    PathSpec spec;
    spec.class_name = names[flags];
    // Stem: straight down.
    spec.LineTo(0.0, -80.0);
    // Flags: short alternating zigzag strokes appended to the stem bottom, so
    // each class extends the previous one (prefix structure of Figure 8).
    double x = 0.0;
    double y = -80.0;
    for (int i = 0; i < flags; ++i) {
      x += 22.0;
      y += (i % 2 == 0) ? 16.0 : -16.0;
      spec.LineTo(x, y);
    }
    // Only the longest note ever becomes unambiguous before it ends — and
    // only at its final flag; every other class is a prefix of another class.
    spec.unambiguous_at_segment = (flags == 4) ? 4 : -1;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<PathSpec> MakeGdpSpecs(GroupOrientation orientation) {
  std::vector<PathSpec> specs;

  {
    PathSpec line;
    line.class_name = "line";
    line.LineTo(70.0, -50.0);
    specs.push_back(std::move(line));
  }
  {
    // The paper's rectangle gesture is a short "L" hook — corner 1 at the
    // start, a brief downstroke, then rightward (Figure 10's rect examples
    // consistently become unambiguous 4 points in, right after the corner).
    PathSpec rect;
    rect.class_name = "rectangle";
    rect.LineTo(0.0, -25.0).LineTo(75.0, -25.0);
    rect.unambiguous_at_segment = 1;
    specs.push_back(std::move(rect));
  }
  {
    // An elongated oval starting at the rightmost point, drawn
    // counterclockwise (initial direction: up).
    PathSpec ellipse;
    ellipse.class_name = "ellipse";
    ellipse.start_x = 45.0;
    ellipse.start_y = 0.0;
    AppendEllipsePolyline(ellipse, 0.0, 0.0, 45.0, 28.0, 0.0, 2.0 * kPi, 24);
    specs.push_back(std::move(ellipse));
  }
  {
    // Group: a large lasso circle. Clockwise in the altered set of Figure 10;
    // counterclockwise originally (which made it share its whole prefix with
    // `copy` and blocked copy's eagerness). Starts at the top of the circle.
    PathSpec group;
    group.class_name = "group";
    const double sweep = orientation == GroupOrientation::kClockwise ? -2.0 * kPi : 2.0 * kPi;
    group.ArcFromCurrent(/*center_angle=*/-kPi / 2.0, /*radius=*/45.0, sweep);
    specs.push_back(std::move(group));
  }
  {
    // Text: a small "v" — down-right then up-right.
    PathSpec text;
    text.class_name = "text";
    text.LineTo(28.0, -30.0).LineTo(56.0, 0.0);
    text.unambiguous_at_segment = 1;
    specs.push_back(std::move(text));
  }
  {
    // Delete: a three-segment zigzag slash.
    PathSpec del;
    del.class_name = "delete";
    del.LineTo(45.0, -45.0).LineTo(45.0, 0.0).LineTo(90.0, -45.0);
    specs.push_back(std::move(del));
  }
  {
    // Edit: looks like a "2": a clockwise cap, a diagonal down-left, then a
    // horizontal rightward base.
    PathSpec edit;
    edit.class_name = "edit";
    edit.ArcFromCurrent(/*center_angle=*/-kPi / 2.0, /*radius=*/18.0, /*sweep=*/-kPi);
    edit.LineTo(-28.0, -64.0).LineTo(22.0, -64.0);
    specs.push_back(std::move(edit));
  }
  {
    // Move: a caret "^" — up-right then down-right.
    PathSpec move;
    move.class_name = "move";
    move.LineTo(35.0, 45.0).LineTo(70.0, 0.0);
    move.unambiguous_at_segment = 1;
    specs.push_back(std::move(move));
  }
  {
    // Rotate-scale: a long inward counterclockwise spiral (the paper's
    // examples run 37-46 points, the longest in the set). Starts at the
    // bottom moving right — the combination (rightward start, ccw turning)
    // is unique in the set, so it differs from the clockwise group early.
    PathSpec rot;
    rot.class_name = "rotate-scale";
    rot.ArcFromCurrent(/*center_angle=*/kPi / 2.0, /*radius=*/38.0, /*sweep=*/2.5 * kPi,
                       /*radius_growth=*/0.4);
    specs.push_back(std::move(rot));
  }
  {
    // Copy: a "C" — an open counterclockwise arc starting at the top, initial
    // direction left. Shares its prefix with a counterclockwise group.
    PathSpec copy;
    copy.class_name = "copy";
    copy.ArcFromCurrent(/*center_angle=*/-kPi / 2.0, /*radius=*/30.0, /*sweep=*/1.5 * kPi);
    specs.push_back(std::move(copy));
  }
  {
    // Dot: a press with no movement (the generator emits dwell points).
    PathSpec dot;
    dot.class_name = "dot";
    specs.push_back(std::move(dot));
  }
  return specs;
}

}  // namespace grandma::synth
