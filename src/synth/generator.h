// Turns canonical PathSpecs into noisy timed point sequences — the stand-in
// for human mouse/stylus input (see DESIGN.md "Substitutions"). Every sample
// carries ground-truth segment boundaries, which the Figure 9 harness uses in
// place of the paper's hand-labeled "minimum points needed" counts.
#ifndef GRANDMA_SRC_SYNTH_GENERATOR_H_
#define GRANDMA_SRC_SYNTH_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "classify/training_set.h"
#include "geom/gesture.h"
#include "synth/path_spec.h"
#include "synth/rng.h"

namespace grandma::synth {

// Per-example variation applied to a canonical path. Defaults model a
// competent mouse user: ~1 px sensor jitter, mild rotation/scale variation,
// 5 px sample spacing at ~0.4 px/ms with slow-in/slow-out at corners.
struct NoiseModel {
  double spacing = 5.0;            // px between emitted samples
  double spacing_sigma = 0.0;      // lognormal sigma of per-gesture spacing
                                   // (device event-rate variation)
  double point_jitter = 0.8;       // px sigma of per-point Gaussian noise
  double rotation_sigma = 0.10;    // radians, whole-gesture rotation
  double scale_sigma = 0.25;       // lognormal sigma, whole-gesture scale
  double translation_sigma = 10.0; // px sigma of the start-position offset
  double tempo_sigma = 0.35;       // lognormal sigma of the per-gesture speed
  double point_tempo_sigma = 0.10; // lognormal sigma of per-point speed
  double speed = 0.4;              // px/ms nominal drawing speed
  double corner_slowdown = 0.5;    // speed multiplier at segment boundaries

  // With this probability, a corner between two line segments is drawn as a
  // small ~270-degree loop instead of a sharp turn — the failure mode Rubine
  // reports as the dominant source of eager-recognizer errors in Figure 9.
  double corner_loop_prob = 0.0;
  double corner_loop_radius = 5.0;  // px

  // Points emitted for a zero-length (dot) spec, spaced dwell_dt_ms apart.
  std::size_t dwell_points = 3;
  double dwell_dt_ms = 25.0;
};

// One generated gesture plus its ground truth.
struct GestureSample {
  geom::Gesture gesture;
  // Index of the first emitted point of each spec segment. Entry 0 is always
  // 0 (the start point belongs to the first segment).
  std::vector<std::size_t> segment_first_point;
  // Copied from the spec.
  int unambiguous_at_segment = -1;

  // Ground-truth minimum number of points that must be seen before the
  // gesture is unambiguous: one point into the disambiguating segment. When
  // the spec does not mark a segment, the whole gesture is required.
  std::size_t MinUnambiguousPointCount() const;
};

// Generates one sample of `spec` under `noise`.
GestureSample Generate(const PathSpec& spec, const NoiseModel& noise, Rng& rng);

// A labeled batch for one class.
struct LabeledSamples {
  std::string class_name;
  std::vector<GestureSample> samples;
};

// Generates `per_class` samples of every spec. Deterministic in `seed`.
std::vector<LabeledSamples> GenerateSet(const std::vector<PathSpec>& specs,
                                        const NoiseModel& noise, std::size_t per_class,
                                        std::uint64_t seed);

// Flattens a generated set into a classifier training set (class insertion
// order matches spec order).
classify::GestureTrainingSet ToTrainingSet(const std::vector<LabeledSamples>& batches);

}  // namespace grandma::synth

#endif  // GRANDMA_SRC_SYNTH_GENERATOR_H_
