#include "synth/generator.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/transform.h"

namespace grandma::synth {

namespace {

struct RawPoint {
  double x;
  double y;
  bool at_corner;  // true for points near a segment boundary (slow down here)
};

// Samples the canonical path of `spec` at `spacing`, tracking where each
// segment's points begin and optionally replacing line-line corners with
// ~270-degree loops.
struct CanonicalPath {
  std::vector<RawPoint> points;
  std::vector<std::size_t> segment_first_point;
};

void AppendLinePoints(std::vector<RawPoint>& out, double from_x, double from_y, double to_x,
                      double to_y, double spacing) {
  const double dx = to_x - from_x;
  const double dy = to_y - from_y;
  const double len = std::sqrt(dx * dx + dy * dy);
  const std::size_t steps = std::max<std::size_t>(1, static_cast<std::size_t>(len / spacing));
  for (std::size_t i = 1; i <= steps; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(steps);
    out.push_back(RawPoint{from_x + dx * u, from_y + dy * u, false});
  }
}

void AppendArcPoints(std::vector<RawPoint>& out, const PathSegment& arc, double spacing) {
  const double mean_radius = arc.radius * 0.5 * (1.0 + arc.radius_growth);
  const double len = std::abs(arc.sweep) * std::max(mean_radius, 1e-9);
  const std::size_t steps = std::max<std::size_t>(2, static_cast<std::size_t>(len / spacing));
  for (std::size_t i = 1; i <= steps; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(steps);
    const double angle = arc.start_angle + arc.sweep * u;
    const double r = arc.radius * (1.0 + (arc.radius_growth - 1.0) * u);
    out.push_back(RawPoint{arc.cx + r * std::cos(angle), arc.cy + r * std::sin(angle), false});
  }
}

// Inserts a loop at the current end of `out`: instead of turning sharply from
// direction `in_angle` to `out_angle`, the pen overshoots and circles ~270
// degrees the "wrong" way before continuing. Mirrors the corner-looping
// behaviour Rubine observed in human test gestures.
void AppendCornerLoop(std::vector<RawPoint>& out, double corner_x, double corner_y,
                      double in_angle, double out_angle, double radius, double spacing) {
  // Natural (shorter) turn direction from in_angle to out_angle.
  double turn = out_angle - in_angle;
  while (turn > std::numbers::pi) {
    turn -= 2.0 * std::numbers::pi;
  }
  while (turn < -std::numbers::pi) {
    turn += 2.0 * std::numbers::pi;
  }
  // Loop the opposite way: sweep = -(2*pi - |turn|) * sign(turn).
  const double sweep = -(2.0 * std::numbers::pi - std::abs(turn)) * (turn >= 0.0 ? 1.0 : -1.0);
  // Center perpendicular to the incoming direction, on the loop side.
  const double side = sweep >= 0.0 ? 1.0 : -1.0;
  const double center_angle = in_angle + side * std::numbers::pi / 2.0;
  const double cx = corner_x + radius * std::cos(center_angle);
  const double cy = corner_y + radius * std::sin(center_angle);
  const double start_angle = center_angle + std::numbers::pi;
  const PathSegment loop =
      PathSegment::Arc(cx, cy, radius, start_angle, sweep, /*radius_growth=*/1.0);
  AppendArcPoints(out, loop, spacing);
  // Return to the corner point so the next segment starts where it should.
  out.push_back(RawPoint{corner_x, corner_y, true});
}

double SegmentEntryAngle(const PathSegment& s, double from_x, double from_y) {
  if (s.kind == PathSegment::Kind::kLine) {
    return std::atan2(s.y - from_y, s.x - from_x);
  }
  // Tangent at the arc start.
  const double sign = s.sweep >= 0.0 ? 1.0 : -1.0;
  return s.start_angle + sign * std::numbers::pi / 2.0;
}

double SegmentExitAngle(const PathSegment& s, double from_x, double from_y) {
  if (s.kind == PathSegment::Kind::kLine) {
    return std::atan2(s.y - from_y, s.x - from_x);
  }
  const double sign = s.sweep >= 0.0 ? 1.0 : -1.0;
  return s.start_angle + s.sweep + sign * std::numbers::pi / 2.0;
}

CanonicalPath BuildCanonical(const PathSpec& spec, const NoiseModel& noise, Rng& rng) {
  CanonicalPath path;
  path.points.push_back(RawPoint{spec.start_x, spec.start_y, false});
  path.segment_first_point.push_back(0);

  double px = spec.start_x;
  double py = spec.start_y;
  for (std::size_t k = 0; k < spec.segments.size(); ++k) {
    const PathSegment& seg = spec.segments[k];
    if (k > 0) {
      const PathSegment& prev = spec.segments[k - 1];
      const double prev_from_x = k >= 2 ? spec.segments[k - 2].EndX() : spec.start_x;
      const double prev_from_y = k >= 2 ? spec.segments[k - 2].EndY() : spec.start_y;
      const double in_angle = SegmentExitAngle(prev, prev_from_x, prev_from_y);
      const double out_angle = SegmentEntryAngle(seg, px, py);
      double turn = out_angle - in_angle;
      while (turn > std::numbers::pi) {
        turn -= 2.0 * std::numbers::pi;
      }
      while (turn < -std::numbers::pi) {
        turn += 2.0 * std::numbers::pi;
      }
      // A joint only counts as a corner (slow-down, candidate for looping)
      // when the direction actually changes sharply; tangent-continuous
      // joints inside polyline curves pass through at speed.
      const bool sharp = std::abs(turn) > 0.5;
      if (sharp && rng.Bernoulli(noise.corner_loop_prob)) {
        AppendCornerLoop(path.points, px, py, in_angle, out_angle, noise.corner_loop_radius,
                         noise.spacing);
      }
      if (sharp) {
        path.points.back().at_corner = true;
      }
    }
    // The new segment's points begin with the next emitted point.
    if (k > 0) {
      path.segment_first_point.push_back(path.points.size());
    }
    const std::size_t before = path.points.size();
    if (seg.kind == PathSegment::Kind::kLine) {
      AppendLinePoints(path.points, px, py, seg.x, seg.y, noise.spacing);
    } else {
      AppendArcPoints(path.points, seg, noise.spacing);
    }
    if (path.points.size() == before) {
      // Zero-length segment; keep indices consistent by pointing at the
      // current last point.
      path.segment_first_point.back() = path.points.size() - 1;
    }
    px = seg.EndX();
    py = seg.EndY();
  }
  return path;
}

}  // namespace

std::size_t GestureSample::MinUnambiguousPointCount() const {
  if (unambiguous_at_segment < 0 ||
      static_cast<std::size_t>(unambiguous_at_segment) >= segment_first_point.size()) {
    return gesture.size();
  }
  const std::size_t first = segment_first_point[static_cast<std::size_t>(unambiguous_at_segment)];
  // One point into the disambiguating segment (and never more than the
  // gesture itself).
  return std::min(first + 1, gesture.size());
}

GestureSample Generate(const PathSpec& spec, const NoiseModel& noise, Rng& rng) {
  GestureSample sample;
  sample.unambiguous_at_segment = spec.unambiguous_at_segment;

  // Whole-gesture variation.
  const double rotation = rng.Gaussian(noise.rotation_sigma);
  const double scale = rng.LogNormalFactor(noise.scale_sigma);
  const double offset_x = rng.Gaussian(noise.translation_sigma);
  const double offset_y = rng.Gaussian(noise.translation_sigma);
  const double tempo = rng.LogNormalFactor(noise.tempo_sigma);

  if (spec.segments.empty()) {
    // A dot: dwell points with jitter only.
    double t = 0.0;
    for (std::size_t i = 0; i < std::max<std::size_t>(noise.dwell_points, 1); ++i) {
      sample.gesture.AppendPoint(geom::TimedPoint{
          spec.start_x + offset_x + rng.Gaussian(noise.point_jitter),
          spec.start_y + offset_y + rng.Gaussian(noise.point_jitter), t});
      t += noise.dwell_dt_ms;
    }
    sample.segment_first_point.push_back(0);
    return sample;
  }

  // Device event-rate variation: a faster/slower sampling clock shows up as
  // wider/narrower point spacing for the whole gesture.
  NoiseModel effective = noise;
  effective.spacing = noise.spacing * rng.LogNormalFactor(noise.spacing_sigma);

  CanonicalPath canonical = BuildCanonical(spec, effective, rng);
  sample.segment_first_point = canonical.segment_first_point;

  const geom::AffineTransform transform =
      geom::AffineTransform::Translation(offset_x, offset_y)
          .Compose(geom::AffineTransform::Rotation(rotation, spec.start_x, spec.start_y)
                       .Compose(geom::AffineTransform::Scale(scale, spec.start_x, spec.start_y)));

  double t = 0.0;
  double prev_x = 0.0;
  double prev_y = 0.0;
  sample.gesture.Reserve(canonical.points.size());
  for (std::size_t i = 0; i < canonical.points.size(); ++i) {
    double x = canonical.points[i].x;
    double y = canonical.points[i].y;
    transform.ApplyInPlace(x, y);
    x += rng.Gaussian(noise.point_jitter);
    y += rng.Gaussian(noise.point_jitter);
    if (i > 0) {
      const double dx = x - prev_x;
      const double dy = y - prev_y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      double speed = noise.speed * tempo * rng.LogNormalFactor(noise.point_tempo_sigma);
      if (canonical.points[i].at_corner || canonical.points[i - 1].at_corner) {
        speed *= noise.corner_slowdown;
      }
      t += dist / std::max(speed, 1e-6);
    }
    sample.gesture.AppendPoint(geom::TimedPoint{x, y, t});
    prev_x = x;
    prev_y = y;
  }
  return sample;
}

std::vector<LabeledSamples> GenerateSet(const std::vector<PathSpec>& specs,
                                        const NoiseModel& noise, std::size_t per_class,
                                        std::uint64_t seed) {
  std::vector<LabeledSamples> out;
  out.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    // Independent stream per class so adding classes never perturbs others.
    Rng rng(seed * 1315423911u + s);
    LabeledSamples batch;
    batch.class_name = specs[s].class_name;
    batch.samples.reserve(per_class);
    for (std::size_t e = 0; e < per_class; ++e) {
      batch.samples.push_back(Generate(specs[s], noise, rng));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

classify::GestureTrainingSet ToTrainingSet(const std::vector<LabeledSamples>& batches) {
  classify::GestureTrainingSet set;
  for (const LabeledSamples& batch : batches) {
    for (const GestureSample& sample : batch.samples) {
      set.Add(batch.class_name, sample.gesture);
    }
  }
  return set;
}

}  // namespace grandma::synth
