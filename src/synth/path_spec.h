// Parametric descriptions of gesture shapes. A PathSpec is the *canonical*
// (noise-free) trajectory of a gesture class: a start point followed by line
// and arc segments. The generator samples it into timed points and perturbs
// it per a NoiseModel.
#ifndef GRANDMA_SRC_SYNTH_PATH_SPEC_H_
#define GRANDMA_SRC_SYNTH_PATH_SPEC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace grandma::synth {

// One piece of a canonical path.
struct PathSegment {
  enum class Kind { kLine, kArc };

  Kind kind = Kind::kLine;

  // kLine: absolute end point.
  double x = 0.0;
  double y = 0.0;

  // kArc: circle center, radius and angle range. The segment's points run
  // from angle `start_angle` to `start_angle + sweep` (radians; positive
  // sweep is counterclockwise in a y-up frame). The arc is expected to begin
  // where the previous segment ended; specs are constructed that way.
  double cx = 0.0;
  double cy = 0.0;
  double radius = 0.0;
  double start_angle = 0.0;
  double sweep = 0.0;
  // kArc only: radius multiplier applied linearly across the sweep, for
  // spiral-like strokes (1.0 = circular arc).
  double radius_growth = 1.0;

  static PathSegment Line(double x, double y);
  static PathSegment Arc(double cx, double cy, double radius, double start_angle, double sweep,
                         double radius_growth = 1.0);

  // End point of the segment.
  double EndX() const;
  double EndY() const;
  // Approximate arc length of the segment starting at (from_x, from_y).
  double Length(double from_x, double from_y) const;
};

// A gesture class's canonical shape.
struct PathSpec {
  std::string class_name;
  double start_x = 0.0;
  double start_y = 0.0;
  std::vector<PathSegment> segments;

  // Index (0-based) of the segment whose onset first disambiguates this class
  // within its gesture set, when known. Used as ground truth for the paper's
  // "minimum number of points needed" (Figure 9, determined there by hand).
  // Negative when unknown/not applicable.
  int unambiguous_at_segment = -1;

  // Builder-style helpers.
  PathSpec& LineTo(double x, double y);
  // Appends an arc that starts at the current end point: the center is placed
  // at distance `radius` from the current end in direction `center_angle`
  // (radians), and the arc sweeps `sweep` radians from there.
  PathSpec& ArcFromCurrent(double center_angle, double radius, double sweep,
                           double radius_growth = 1.0);

  // Current end point of the spec (start point when no segments).
  double EndX() const;
  double EndY() const;

  // Total canonical arc length.
  double TotalLength() const;
};

}  // namespace grandma::synth

#endif  // GRANDMA_SRC_SYNTH_PATH_SPEC_H_
