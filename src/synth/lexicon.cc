#include "synth/lexicon.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "synth/rng.h"

namespace grandma::synth {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Direction d is d * 45 degrees in the y-up frame: 0=E, 2=N, 4=W, 6=S.
// Valid polyline sequences never repeat a direction (a zero-length corner)
// or exactly backtrack (a retrace that collapses onto the previous segment).
std::vector<std::vector<int>> PolylineTemplates() {
  std::vector<std::vector<int>> out;
  for (std::size_t len = 2; len <= 4; ++len) {
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < len; ++i) {
      total *= 8;
    }
    std::vector<int> seq(len, 0);
    for (std::uint64_t code = 0; code < total; ++code) {
      std::uint64_t c = code;
      for (std::size_t i = len; i-- > 0;) {
        seq[i] = static_cast<int>(c % 8);
        c /= 8;
      }
      bool ok = true;
      for (std::size_t i = 1; i < len; ++i) {
        if (seq[i] == seq[i - 1] || seq[i] == (seq[i - 1] + 4) % 8) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out.push_back(seq);
      }
    }
  }
  return out;
}

struct ArcTemplate {
  int sweep_quarters = 1;  // 1..4 (quarter turn .. full circle)
  int winding = 1;         // +1 ccw, -1 cw
  double radius = 30.0;
  int start_quarter = 0;  // center direction from the start point, * 90 deg
};

std::vector<ArcTemplate> ArcTemplates() {
  std::vector<ArcTemplate> out;
  for (int sweep = 1; sweep <= 4; ++sweep) {
    for (int winding : {+1, -1}) {
      for (double radius : {30.0, 55.0, 80.0}) {
        for (int start = 0; start < 4; ++start) {
          out.push_back({sweep, winding, radius, start});
        }
      }
    }
  }
  return out;
}

struct HybridTemplate {
  int dir = 0;             // leading line direction (45-degree steps)
  int sweep_quarters = 1;  // 1 (hook) or 2 (U-turn)
  int winding = 1;         // turn side
};

std::vector<HybridTemplate> HybridTemplates() {
  std::vector<HybridTemplate> out;
  for (int dir = 0; dir < 8; ++dir) {
    for (int sweep : {1, 2}) {
      for (int winding : {+1, -1}) {
        out.push_back({dir, sweep, winding});
      }
    }
  }
  return out;
}

PathSpec BuildPolyline(const std::vector<int>& dirs, double seg, double rot,
                       std::size_t index) {
  std::string digits;
  for (int d : dirs) {
    digits.push_back(static_cast<char>('0' + d));
  }
  char name[64];
  std::snprintf(name, sizeof(name), "lex_%03zu_poly_%s", index, digits.c_str());
  PathSpec spec;
  spec.class_name = name;
  double x = 0.0;
  double y = 0.0;
  for (int d : dirs) {
    const double a = rot + static_cast<double>(d) * (kPi / 4.0);
    x += seg * std::cos(a);
    y += seg * std::sin(a);
    spec.LineTo(x, y);
  }
  return spec;
}

PathSpec BuildArc(const ArcTemplate& t, double scale, double rot, std::size_t index) {
  char name[64];
  std::snprintf(name, sizeof(name), "lex_%03zu_arc_q%d_%s_r%d_a%d", index, t.sweep_quarters,
                t.winding > 0 ? "ccw" : "cw", static_cast<int>(t.radius), t.start_quarter);
  PathSpec spec;
  spec.class_name = name;
  const double center_angle = rot + static_cast<double>(t.start_quarter) * (kPi / 2.0);
  spec.ArcFromCurrent(center_angle, t.radius * scale,
                      static_cast<double>(t.winding) * static_cast<double>(t.sweep_quarters) *
                          (kPi / 2.0));
  return spec;
}

PathSpec BuildHybrid(const HybridTemplate& t, double seg, double rot, std::size_t index) {
  char name[64];
  std::snprintf(name, sizeof(name), "lex_%03zu_hyb_d%d_q%d_%s", index, t.dir,
                t.sweep_quarters, t.winding > 0 ? "ccw" : "cw");
  PathSpec spec;
  spec.class_name = name;
  const double a = rot + static_cast<double>(t.dir) * (kPi / 4.0);
  spec.LineTo(seg * std::cos(a), seg * std::sin(a));
  // Center perpendicular to the heading, sweep signed the same way: the arc
  // leaves the corner tangent to the line, so the hybrid reads as one smooth
  // stroke rather than a polyline with a kink.
  spec.ArcFromCurrent(a + static_cast<double>(t.winding) * (kPi / 2.0), 0.6 * seg,
                      static_cast<double>(t.winding) * static_cast<double>(t.sweep_quarters) *
                          (kPi / 2.0));
  return spec;
}

}  // namespace

std::size_t ExtensiveLexiconCapacity() {
  return PolylineTemplates().size() + ArcTemplates().size() + HybridTemplates().size();
}

std::vector<PathSpec> MakeExtensiveLexicon(const LexiconOptions& options) {
  if (options.segment_px <= 0.0 || options.pose_rotation_jitter < 0.0 ||
      options.scale_lo <= 0.0 || options.scale_lo > options.scale_hi) {
    throw std::invalid_argument("MakeExtensiveLexicon: bad options");
  }
  const std::vector<std::vector<int>> polys = PolylineTemplates();
  const std::vector<ArcTemplate> arcs = ArcTemplates();
  const std::vector<HybridTemplate> hybrids = HybridTemplates();
  const std::size_t capacity = polys.size() + arcs.size() + hybrids.size();
  if (options.num_classes > capacity) {
    throw std::invalid_argument("MakeExtensiveLexicon: num_classes exceeds alphabet capacity " +
                                std::to_string(capacity));
  }

  Rng rng(options.seed);
  std::vector<PathSpec> out;
  out.reserve(options.num_classes);
  std::size_t pi = 0;
  std::size_t ai = 0;
  std::size_t hi = 0;
  for (std::size_t k = 0; k < options.num_classes; ++k) {
    // Exactly two pose draws per emitted class, in emission order: a shorter
    // lexicon is a strict prefix of a longer one under the same seed.
    const double rot =
        rng.Uniform(-options.pose_rotation_jitter, options.pose_rotation_jitter);
    const double scale = rng.Uniform(options.scale_lo, options.scale_hi);
    const double seg = options.segment_px * scale;
    const std::size_t slot = k % 4;
    // 2:1:1 interleave (poly, poly, arc, hybrid); exhausted families fall
    // back to whichever alphabet still has templates.
    if (slot == 2 && ai < arcs.size()) {
      out.push_back(BuildArc(arcs[ai++], scale, rot, k));
    } else if (slot == 3 && hi < hybrids.size()) {
      out.push_back(BuildHybrid(hybrids[hi++], seg, rot, k));
    } else if (pi < polys.size()) {
      out.push_back(BuildPolyline(polys[pi++], seg, rot, k));
    } else if (ai < arcs.size()) {
      out.push_back(BuildArc(arcs[ai++], scale, rot, k));
    } else {
      out.push_back(BuildHybrid(hybrids[hi++], seg, rot, k));
    }
  }
  return out;
}

}  // namespace grandma::synth
