// Extensive-lexicon generation (ROADMAP item 3): composes the path-spec
// alphabets — 8-direction polylines, arcs of varying radius/sweep/winding,
// and line+arc hybrids — into hundreds of distinct canonical gesture
// classes with deterministic per-class pose variation. This is the "large
// generated lexicon" of Grosek & Kutz, from which classify::SelectLexicon
// prunes the most separable k-subset.
#ifndef GRANDMA_SRC_SYNTH_LEXICON_H_
#define GRANDMA_SRC_SYNTH_LEXICON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "synth/path_spec.h"

namespace grandma::synth {

struct LexiconOptions {
  // How many classes to emit. The shape alphabets compose into well over
  // 400 distinct templates; asking for more than the alphabet holds throws
  // std::invalid_argument rather than silently duplicating shapes.
  std::size_t num_classes = 200;
  // Seeds the per-class pose draws (rotation / scale). Same seed + same
  // options => byte-identical specs, and a smaller num_classes is always a
  // strict prefix of a larger one (pose draws happen per emitted class, in
  // emission order).
  std::uint64_t seed = 0x1e81c09u;
  // Nominal polyline segment length before the per-class scale draw.
  double segment_px = 60.0;
  // Per-class canonical pose: whole-shape rotation ~ U(-jitter, +jitter)
  // radians and scale ~ U(scale_lo, scale_hi). Zero jitter and a degenerate
  // [1,1] scale range give the bare axis-aligned templates.
  double pose_rotation_jitter = 0.12;
  double scale_lo = 0.85;
  double scale_hi = 1.3;
};

// Deterministically enumerates the lexicon: polyline direction sequences of
// length 2-4 (consecutive repeats and exact backtracks skipped), circular
// arcs (4 sweeps x 2 windings x 3 radii x 4 start angles), and line+arc
// hybrids, interleaved 2:1:1 so every prefix of the lexicon mixes all three
// families. Class names are unique and stable: "lex_<index>_<shape>".
std::vector<PathSpec> MakeExtensiveLexicon(const LexiconOptions& options = {});

// Number of distinct shape templates the alphabets can compose — the upper
// bound on LexiconOptions::num_classes.
std::size_t ExtensiveLexiconCapacity();

}  // namespace grandma::synth

#endif  // GRANDMA_SRC_SYNTH_LEXICON_H_
