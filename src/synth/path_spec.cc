#include "synth/path_spec.h"

#include <cmath>
#include <numbers>

namespace grandma::synth {

PathSegment PathSegment::Line(double x, double y) {
  PathSegment s;
  s.kind = Kind::kLine;
  s.x = x;
  s.y = y;
  return s;
}

PathSegment PathSegment::Arc(double cx, double cy, double radius, double start_angle,
                             double sweep, double radius_growth) {
  PathSegment s;
  s.kind = Kind::kArc;
  s.cx = cx;
  s.cy = cy;
  s.radius = radius;
  s.start_angle = start_angle;
  s.sweep = sweep;
  s.radius_growth = radius_growth;
  return s;
}

double PathSegment::EndX() const {
  if (kind == Kind::kLine) {
    return x;
  }
  return cx + radius * radius_growth * std::cos(start_angle + sweep);
}

double PathSegment::EndY() const {
  if (kind == Kind::kLine) {
    return y;
  }
  return cy + radius * radius_growth * std::sin(start_angle + sweep);
}

double PathSegment::Length(double from_x, double from_y) const {
  if (kind == Kind::kLine) {
    const double dx = x - from_x;
    const double dy = y - from_y;
    return std::sqrt(dx * dx + dy * dy);
  }
  // Mean radius is a good approximation for the gentle spirals used here.
  const double mean_radius = radius * 0.5 * (1.0 + radius_growth);
  return std::abs(sweep) * mean_radius;
}

PathSpec& PathSpec::LineTo(double x, double y) {
  segments.push_back(PathSegment::Line(x, y));
  return *this;
}

PathSpec& PathSpec::ArcFromCurrent(double center_angle, double radius, double sweep,
                                   double radius_growth) {
  const double ex = EndX();
  const double ey = EndY();
  const double cx = ex + radius * std::cos(center_angle);
  const double cy = ey + radius * std::sin(center_angle);
  // The arc starts at the current point, i.e. at angle (center_angle + pi)
  // as seen from the center.
  const double start_angle = center_angle + std::numbers::pi;
  segments.push_back(PathSegment::Arc(cx, cy, radius, start_angle, sweep, radius_growth));
  return *this;
}

double PathSpec::EndX() const { return segments.empty() ? start_x : segments.back().EndX(); }

double PathSpec::EndY() const { return segments.empty() ? start_y : segments.back().EndY(); }

double PathSpec::TotalLength() const {
  double len = 0.0;
  double px = start_x;
  double py = start_y;
  for (const PathSegment& s : segments) {
    len += s.Length(px, py);
    px = s.EndX();
    py = s.EndY();
  }
  return len;
}

}  // namespace grandma::synth
