#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace grandma::serve {

std::size_t LatencyBucketOf(double us) {
  if (!(us > kLatencyMinMicros)) {
    return 0;
  }
  const double idx = std::log(us / kLatencyMinMicros) / std::log(kLatencyGrowth);
  return std::min(static_cast<std::size_t>(idx), kLatencyBuckets - 1);
}

double LatencyBucketUpperMicros(std::size_t bucket) {
  return kLatencyMinMicros * std::pow(kLatencyGrowth, static_cast<double>(bucket) + 1.0);
}

void LatencyHistogram::RecordMicros(double us) {
  buckets_[LatencyBucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += out.buckets[i];
  }
  return out;
}

double HistogramSnapshot::PercentileMicros(double p) const {
  if (count == 0) {
    return 0.0;
  }
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      return LatencyBucketUpperMicros(i);
    }
  }
  return LatencyBucketUpperMicros(kLatencyBuckets - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
}

std::string HistogramSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"count\": " << count << ", \"p50_us\": " << PercentileMicros(0.50)
      << ", \"p95_us\": " << PercentileMicros(0.95)
      << ", \"p99_us\": " << PercentileMicros(0.99) << "}";
  return out.str();
}

void ShardMetrics::Merge(const ShardMetrics& other) {
  events_processed += other.events_processed;
  points_processed += other.points_processed;
  strokes_completed += other.strokes_completed;
  eager_fires += other.eager_fires;
  sessions_created += other.sessions_created;
  sessions_resident += other.sessions_resident;
  events_shed += other.events_shed;
  events_deadline_expired += other.events_deadline_expired;
  callback_errors += other.callback_errors;
  nbest_deferred += other.nbest_deferred;
  nbest_ask_again += other.nbest_ask_again;
  admission_shedding = admission_shedding || other.admission_shedding;
  admission_evaluations += other.admission_evaluations;
  admission_switches_to_shed += other.admission_switches_to_shed;
  admission_switches_to_block += other.admission_switches_to_block;
  queue_capacity += other.queue_capacity;
  queue_max_depth = std::max(queue_max_depth, other.queue_max_depth);
  queue_latency.Merge(other.queue_latency);
}

std::string ShardMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"shard\": " << shard << ", \"events_processed\": " << events_processed
      << ", \"points_processed\": " << points_processed
      << ", \"strokes_completed\": " << strokes_completed
      << ", \"eager_fires\": " << eager_fires
      << ", \"sessions_created\": " << sessions_created
      << ", \"sessions_resident\": " << sessions_resident
      << ", \"events_shed\": " << events_shed
      << ", \"events_deadline_expired\": " << events_deadline_expired
      << ", \"callback_errors\": " << callback_errors
      << ", \"nbest_deferred\": " << nbest_deferred
      << ", \"nbest_ask_again\": " << nbest_ask_again
      << ", \"admission_shedding\": " << (admission_shedding ? "true" : "false")
      << ", \"admission_evaluations\": " << admission_evaluations
      << ", \"admission_switches_to_shed\": " << admission_switches_to_shed
      << ", \"admission_switches_to_block\": " << admission_switches_to_block
      << ", \"queue_capacity\": " << queue_capacity
      << ", \"queue_max_depth\": " << queue_max_depth
      << ", \"queue_latency\": " << queue_latency.ToJson() << "}";
  return out.str();
}

double ModelLifecycleMetrics::UserHitRate() const {
  const std::uint64_t lookups = user_cache_hits + user_cache_misses;
  if (lookups == 0) {
    return 0.0;
  }
  return static_cast<double>(user_cache_hits) / static_cast<double>(lookups);
}

void ModelLifecycleMetrics::Merge(const ModelLifecycleMetrics& other) {
  snapshot_loads_ok += other.snapshot_loads_ok;
  snapshot_loads_failed += other.snapshot_loads_failed;
  model_swaps += other.model_swaps;
  rollbacks += other.rollbacks;
  user_adapts += other.user_adapts;
  user_cache_hits += other.user_cache_hits;
  user_cache_misses += other.user_cache_misses;
  user_materializations += other.user_materializations;
  user_materialize_failed += other.user_materialize_failed;
  user_evictions += other.user_evictions;
  user_spills_ok += other.user_spills_ok;
  user_spills_failed += other.user_spills_failed;
  user_evictions_dropped += other.user_evictions_dropped;
  user_rehydrations += other.user_rehydrations;
  user_rehydrate_failed += other.user_rehydrate_failed;
  user_models_resident += other.user_models_resident;
  user_delta_bytes += other.user_delta_bytes;
}

std::string ModelLifecycleMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"snapshot_loads_ok\": " << snapshot_loads_ok
      << ", \"snapshot_loads_failed\": " << snapshot_loads_failed
      << ", \"model_swaps\": " << model_swaps << ", \"rollbacks\": " << rollbacks
      << ", \"user_adapts\": " << user_adapts << ", \"user_cache_hits\": " << user_cache_hits
      << ", \"user_cache_misses\": " << user_cache_misses
      << ", \"user_hit_rate\": " << UserHitRate()
      << ", \"user_materializations\": " << user_materializations
      << ", \"user_materialize_failed\": " << user_materialize_failed
      << ", \"user_evictions\": " << user_evictions
      << ", \"user_spills_ok\": " << user_spills_ok
      << ", \"user_spills_failed\": " << user_spills_failed
      << ", \"user_evictions_dropped\": " << user_evictions_dropped
      << ", \"user_rehydrations\": " << user_rehydrations
      << ", \"user_rehydrate_failed\": " << user_rehydrate_failed
      << ", \"user_models_resident\": " << user_models_resident
      << ", \"user_delta_bytes\": " << user_delta_bytes << "}";
  return out.str();
}

ShardMetrics ServerMetrics::Totals() const {
  ShardMetrics total;
  for (const ShardMetrics& s : shards) {
    total.Merge(s);
  }
  return total;
}

std::string ServerMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"totals\": " << Totals().ToJson() << ", \"models\": " << models.ToJson()
      << ", \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    out << (i == 0 ? "" : ", ") << shards[i].ToJson();
  }
  out << "], \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out << (i == 0 ? "" : ", ") << stages[i].ToJson();
  }
  out << "]}";
  return out.str();
}

}  // namespace grandma::serve
