#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "obs/export.h"
#include "obs/trace.h"

namespace grandma::serve {

namespace {

// SplitMix64 finalizer: sequential session ids (the common allocation
// pattern) must still spread uniformly across shards.
std::uint64_t MixSessionId(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RecognitionServer::RecognitionServer(std::shared_ptr<const RecognizerBundle> bundle,
                                     ServerOptions options, ResultSink on_result)
    : RecognitionServer(bundle == nullptr
                            ? nullptr
                            : std::make_shared<ModelRegistry>(std::move(bundle)),
                        options, std::move(on_result)) {}

RecognitionServer::RecognitionServer(std::shared_ptr<ModelRegistry> registry,
                                     ServerOptions options, ResultSink on_result)
    : registry_(std::move(registry)), options_(options), on_result_(std::move(on_result)) {
  bundle_ = registry_ == nullptr ? nullptr : registry_->Current();
  if (bundle_ == nullptr || !bundle_->recognizer().trained()) {
    throw std::invalid_argument("RecognitionServer: bundle must hold a trained recognizer");
  }
  if (options_.num_shards == 0) {
    throw std::invalid_argument("RecognitionServer: num_shards must be positive");
  }
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity, options_.admission);
    shard->sessions = std::make_unique<SessionManager>(bundle_, options_.nbest);
    shards_.push_back(std::move(shard));
  }
  if (options_.start_workers) {
    Start();
  }
}

RecognitionServer::~RecognitionServer() { Shutdown(); }

void RecognitionServer::Start() {
  if (started_.exchange(true)) {
    return;
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
  }
}

void RecognitionServer::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  // Close first so blocked producers wake with a refusal, then make sure the
  // workers exist to drain what was accepted.
  for (auto& shard : shards_) {
    shard->queue.Close();
  }
  Start();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

std::size_t RecognitionServer::ShardOf(SessionId session) const {
  return static_cast<std::size_t>(MixSessionId(session) % shards_.size());
}

robust::Status RecognitionServer::Submit(ServeEvent event) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return robust::Status::FailedPrecondition("RecognitionServer: already shut down");
  }
  if (event.type == EventType::kPoints && event.points.empty()) {
    return robust::Status::InvalidArgument("Submit: kPoints event carries no points");
  }
  if (event.type != EventType::kPoints && !event.points.empty()) {
    return robust::Status::InvalidArgument("Submit: only kPoints events carry points");
  }

  Shard& shard = *shards_[ShardOf(event.session)];
  event.enqueue_time = std::chrono::steady_clock::now();

  // kAdaptive resolves to shed or block per shard, per the controller's
  // current mode (one atomic load; the shard worker drives the mode).
  const bool shed = options_.overload == OverloadPolicy::kShed ||
                    (options_.overload == OverloadPolicy::kAdaptive && shard.admission.shedding());
  if (shed) {
    if (!shard.queue.TryPush(std::move(event))) {
      shard.events_shed.fetch_add(1, std::memory_order_relaxed);
      return robust::Status::Overloaded("Submit: shard queue full, event shed");
    }
    return robust::Status::Ok();
  }
  // Blocking path: wait for room; a false return means the queue closed
  // under us.
  if (!shard.queue.Push(std::move(event))) {
    return robust::Status::FailedPrecondition("Submit: server shut down during backpressure");
  }
  return robust::Status::Ok();
}

void RecognitionServer::WorkerLoop(Shard& shard) {
  SessionManager& sessions = *shard.sessions;

  // Wrap the user callback once: count throws instead of tearing down the
  // worker (a misbehaving client sink must not take the shard with it).
  const ResultSink sink = [&shard, this](const RecognitionResult& result) {
    if (!on_result_) {
      return;
    }
    try {
      on_result_(result);
    } catch (...) {
      shard.callback_errors.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Batch dequeue: drain up to batch_dequeue events per queue wakeup. The
  // buffer is reused across wakeups; PopBatch clears it. Events still process
  // strictly in submission order with per-event accounting — batching only
  // amortizes the lock round-trip and wakeup.
  std::vector<ServeEvent> batch;
  const std::size_t batch_max = std::max<std::size_t>(options_.batch_dequeue, 1);
  batch.reserve(batch_max);
  while (shard.queue.PopBatch(batch, batch_max) > 0) {
    // One clock read per batch: every event in it was dequeued at the same
    // instant, so a shared `now` is both cheaper and more honest.
    const auto now = std::chrono::steady_clock::now();
    for (ServeEvent& dequeued : batch) {
      ServeEvent* const event = &dequeued;
      const double wait_us =
          std::chrono::duration<double, std::micro>(now - event->enqueue_time).count();
      // Enqueue→dequeue wait measured on the real clock by the producer's
      // timestamp; recorded from the consumer side so the span lands on the
      // worker's (single-writer) trace buffer.
      TRACE_MANUAL_SPAN("queue.wait", static_cast<std::uint64_t>(wait_us * 1000.0),
                        event->session);
      // The admission controller sees every dequeued wait — including waits
      // that will expire the event below. Feeding only accepted events would
      // blind the controller exactly when overload is worst.
      if (options_.overload == OverloadPolicy::kAdaptive) {
        shard.admission.RecordWait(wait_us);
      }
      // Deadline budget: an event that overstayed its budget in the queue is
      // dropped before classification — by now the gesture moment it belongs
      // to has passed. Dropped events are excluded from queue_latency (which
      // is the accepted-event wait) and from events_processed. kSessionEnd is
      // exempt: it frees session state, and dropping it would turn overload
      // into a resident-memory leak.
      if (event->deadline_us > 0 && event->type != EventType::kSessionEnd &&
          wait_us > static_cast<double>(event->deadline_us)) {
        shard.events_deadline_expired.fetch_add(1, std::memory_order_relaxed);
        if (options_.on_drop) {
          try {
            options_.on_drop(*event,
                             robust::Status::DeadlineExceeded(
                                 "WorkerLoop: event overstayed its deadline budget in queue"));
          } catch (...) {
            shard.callback_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
        continue;
      }
      shard.queue_latency.RecordMicros(wait_us);
      TRACE_SESSION_SCOPE(event->session);
      TRACE_SPAN("serve.event");

      if (event->type == EventType::kSessionEnd) {
        sessions.Erase(event->session);
      } else {
        Session& session = sessions.GetOrCreate(event->session);
        const SessionStats before = session.stats();

        switch (event->type) {
          case EventType::kStrokeBegin:
            // Stroke boundary: pin whatever the registry currently publishes
            // for this event's user — the base bundle, or the user's adapted
            // bundle when personalization is enabled and a delta exists. The
            // per-point path below stays registry-free (no mutex) while a
            // stroke is open, so neither a hot swap nor a concurrent AdaptUser
            // can mix weights inside it.
            session.BeginStroke(event->stroke, sink, registry_->CurrentFor(event->user));
            break;
          case EventType::kPoints:
            session.AddPoints(event->stroke, event->points, sink,
                              session.in_stroke() ? nullptr
                                                  : registry_->CurrentFor(event->user));
            shard.points_processed.fetch_add(event->points.size(), std::memory_order_relaxed);
            break;
          case EventType::kStrokeEnd:
            session.EndStroke(sink);
            break;
          case EventType::kSessionEnd:
            break;  // handled above
        }

        const SessionStats& after = session.stats();
        shard.strokes_completed.fetch_add(after.strokes_completed - before.strokes_completed,
                                          std::memory_order_relaxed);
        shard.eager_fires.fetch_add(after.eager_fires - before.eager_fires,
                                    std::memory_order_relaxed);
        shard.nbest_deferred.fetch_add(after.nbest_deferred - before.nbest_deferred,
                                       std::memory_order_relaxed);
        shard.nbest_ask_again.fetch_add(after.nbest_ask_again - before.nbest_ask_again,
                                        std::memory_order_relaxed);
      }
      shard.events_processed.fetch_add(1, std::memory_order_relaxed);
      shard.sessions_created.store(sessions.created(), std::memory_order_relaxed);
      shard.sessions_resident.store(sessions.size(), std::memory_order_relaxed);
    }
  }
}

ServerMetrics RecognitionServer::Metrics() const {
  ServerMetrics out;
  out.models = registry_->Metrics();
  out.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    ShardMetrics m;
    m.shard = i;
    m.events_processed = s.events_processed.load(std::memory_order_relaxed);
    m.points_processed = s.points_processed.load(std::memory_order_relaxed);
    m.strokes_completed = s.strokes_completed.load(std::memory_order_relaxed);
    m.eager_fires = s.eager_fires.load(std::memory_order_relaxed);
    m.sessions_created = s.sessions_created.load(std::memory_order_relaxed);
    m.sessions_resident = s.sessions_resident.load(std::memory_order_relaxed);
    m.events_shed = s.events_shed.load(std::memory_order_relaxed);
    m.events_deadline_expired = s.events_deadline_expired.load(std::memory_order_relaxed);
    m.callback_errors = s.callback_errors.load(std::memory_order_relaxed);
    m.nbest_deferred = s.nbest_deferred.load(std::memory_order_relaxed);
    m.nbest_ask_again = s.nbest_ask_again.load(std::memory_order_relaxed);
    m.admission_shedding = s.admission.shedding();
    m.admission_evaluations = s.admission.evaluations();
    m.admission_switches_to_shed = s.admission.switches_to_shed();
    m.admission_switches_to_block = s.admission.switches_to_block();
    m.queue_capacity = s.queue.capacity();
    m.queue_max_depth = s.queue.max_depth();
    m.queue_latency = s.queue_latency.Snapshot();
    out.shards.push_back(std::move(m));
  }
  // Per-stage span histograms accumulate process-wide (all shards, plus any
  // in-process training); surfacing them here makes /metrics the one-stop
  // snapshot. Empty unless tracing is compiled in and was enabled.
  out.stages = obs::SnapshotStages();
  return out;
}

}  // namespace grandma::serve
