// Per-session incremental recognition state: one end user's EagerStream plus
// stroke bookkeeping. A Session is owned by exactly one shard worker (pinned
// by session-id hash), so it is deliberately NOT thread-safe — single
// ownership is what lets the per-point hot path run lock-free.
//
// The per-point loop is also allocation-free in steady state: the embedded
// EagerStream carries the eager::Workspace scratch, AddPoints/EmitResult use
// only the stream's view-based API, and result class names fit std::string's
// small-string buffer (enforced by tests/hotpath_alloc_test.cc).
#ifndef GRANDMA_SRC_SERVE_SESSION_H_
#define GRANDMA_SRC_SERVE_SESSION_H_

#include <cstddef>
#include <functional>
#include <span>

#include "eager/eager_recognizer.h"
#include "geom/point.h"
#include "serve/event.h"

namespace grandma::serve {

// Invoked synchronously (on the owning worker thread) for every recognition
// the session produces.
using ResultSink = std::function<void(const RecognitionResult&)>;

// Lifetime counters for one session; all monotonically increasing.
struct SessionStats {
  std::size_t strokes_begun = 0;
  std::size_t strokes_completed = 0;
  std::size_t points_seen = 0;
  std::size_t eager_fires = 0;
  // Protocol slop tolerated rather than rejected: points arriving with no
  // open stroke implicitly begin one; a second begin without an end
  // implicitly completes the open stroke first.
  std::size_t implicit_begins = 0;
  std::size_t implicit_ends = 0;
  // kStrokeEnd with no open stroke and no buffered points: dropped.
  std::size_t empty_stroke_ends = 0;
};

// Thread-safety: none — each instance belongs to a single shard worker.
class Session {
 public:
  Session(SessionId id, const eager::EagerRecognizer& recognizer);

  SessionId id() const { return id_; }
  bool in_stroke() const { return in_stroke_; }
  const SessionStats& stats() const { return stats_; }

  // Opens stroke `stroke`. An already-open stroke is finalized first (its
  // kStrokeEnd result goes to `sink`) and counted as an implicit end.
  void BeginStroke(StrokeId stroke, const ResultSink& sink);

  // Feeds points into the current stroke, emitting a kEagerFire result the
  // moment the AUC first judges it unambiguous. Points with no open stroke
  // implicitly begin stroke `stroke`.
  void AddPoints(StrokeId stroke, std::span<const geom::TimedPoint> points,
                 const ResultSink& sink);

  // Mouse-up: emits the kStrokeEnd classification (the two-phase path when
  // no eager fire happened) and closes the stroke.
  void EndStroke(const ResultSink& sink);

 private:
  void EmitResult(ResultKind kind, const ResultSink& sink);

  SessionId id_;
  const eager::EagerRecognizer* recognizer_;
  eager::EagerStream stream_;
  StrokeId current_stroke_ = 0;
  bool in_stroke_ = false;
  SessionStats stats_;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_SESSION_H_
