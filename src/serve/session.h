// Per-session incremental recognition state: one end user's EagerStream plus
// stroke bookkeeping. A Session is owned by exactly one shard worker (pinned
// by session-id hash), so it is deliberately NOT thread-safe — single
// ownership is what lets the per-point hot path run lock-free.
//
// The per-point loop is also allocation-free in steady state: the embedded
// EagerStream carries the eager::Workspace scratch, AddPoints/EmitResult use
// only the stream's view-based API, and result class names fit std::string's
// small-string buffer (enforced by tests/hotpath_alloc_test.cc).
#ifndef GRANDMA_SRC_SERVE_SESSION_H_
#define GRANDMA_SRC_SERVE_SESSION_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "eager/eager_recognizer.h"
#include "geom/point.h"
#include "serve/event.h"
#include "serve/recognizer_bundle.h"

namespace grandma::serve {

// Invoked synchronously (on the owning worker thread) for every recognition
// the session produces.
using ResultSink = std::function<void(const RecognitionResult&)>;

// Per-session n-best configuration. depth = 0 (the default) keeps the
// legacy single-answer surface and the plain Classify kernel; depth > 0
// (clamped to classify::kMaxNBest) fills RecognitionResult::nbest and runs
// every result through classify::DecideNBest with `policy`, so clients see
// a typed accept / defer / ask-again action instead of a silent near-tie.
struct NBestOptions {
  std::size_t depth = 0;
  classify::RejectionPolicy policy;
};

// Lifetime counters for one session; all monotonically increasing.
struct SessionStats {
  std::size_t strokes_begun = 0;
  std::size_t strokes_completed = 0;
  std::size_t points_seen = 0;
  std::size_t eager_fires = 0;
  // Protocol slop tolerated rather than rejected: points arriving with no
  // open stroke implicitly begin one; a second begin without an end
  // implicitly completes the open stroke first.
  std::size_t implicit_begins = 0;
  std::size_t implicit_ends = 0;
  // kStrokeEnd with no open stroke and no buffered points: dropped.
  std::size_t empty_stroke_ends = 0;
  // N-best decisions (zeros when n-best is disabled): results whose policy
  // action was kDefer (low probability / near-tie) or kAskAgain (outlier).
  std::size_t nbest_deferred = 0;
  std::size_t nbest_ask_again = 0;
};

// Thread-safety: none — each instance belongs to a single shard worker.
//
// Model pinning: a session may hold a shared_ptr to the RecognizerBundle it
// recognizes with. The pin can only change at a stroke boundary (the `pin`
// argument of BeginStroke / the implicit begin in AddPoints), so a hot model
// swap mid-stroke never mixes two models' weights inside one gesture — the
// open stroke finishes under the model it started with.
class Session {
 public:
  // Binds to a bare recognizer the caller keeps alive (no pin; results carry
  // model_version 0). Used by single-model embedders and the hot-path tests.
  Session(SessionId id, const eager::EagerRecognizer& recognizer, NBestOptions nbest = {});

  // Binds to (and pins) a bundle; results carry its version.
  Session(SessionId id, std::shared_ptr<const RecognizerBundle> bundle, NBestOptions nbest = {});

  SessionId id() const { return id_; }
  bool in_stroke() const { return in_stroke_; }
  const SessionStats& stats() const { return stats_; }
  // Version of the currently pinned bundle; 0 when bound to a bare
  // recognizer.
  std::uint64_t model_version() const { return model_version_; }

  // Opens stroke `stroke`. An already-open stroke is finalized first (its
  // kStrokeEnd result goes to `sink`, produced by the OLD model) and counted
  // as an implicit end. A non-null `pin` then rebinds the session to that
  // bundle for the new stroke.
  void BeginStroke(StrokeId stroke, const ResultSink& sink,
                   std::shared_ptr<const RecognizerBundle> pin = nullptr);

  // Feeds points into the current stroke, emitting a kEagerFire result the
  // moment the AUC first judges it unambiguous. Points with no open stroke
  // implicitly begin stroke `stroke` (adopting `pin` if non-null); `pin` is
  // ignored when a stroke is already open.
  void AddPoints(StrokeId stroke, std::span<const geom::TimedPoint> points,
                 const ResultSink& sink,
                 std::shared_ptr<const RecognizerBundle> pin = nullptr);

  // Mouse-up: emits the kStrokeEnd classification (the two-phase path when
  // no eager fire happened) and closes the stroke.
  void EndStroke(const ResultSink& sink);

 private:
  void EmitResult(ResultKind kind, const ResultSink& sink);
  // Runs the policy decision over result.nbest[0..nbest_count) (already
  // ranked by the stream), fills the action/reason/margin fields, and bumps
  // the defer/ask-again counters.
  void ApplyNBestDecision(RecognitionResult& result);

  SessionId id_;
  NBestOptions nbest_;
  // Keeps the pinned model alive while any stroke may still reference it;
  // null when the session was built over a bare recognizer. Declared before
  // stream_ so the recognizer outlives the stream during construction.
  std::shared_ptr<const RecognizerBundle> pinned_;
  const eager::EagerRecognizer* recognizer_;
  eager::EagerStream stream_;
  std::uint64_t model_version_ = 0;
  StrokeId current_stroke_ = 0;
  bool in_stroke_ = false;
  SessionStats stats_;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_SESSION_H_
