#include "serve/touch_frontend.h"

#include <sstream>
#include <utility>

namespace grandma::serve {

std::string TouchFrontEndStats::ToString() const {
  std::ostringstream os;
  os << "groups_in=" << groups_in << " rejected=" << groups_rejected
     << " degraded=" << groups_degraded << " single=" << routed_single_stroke
     << " touch=" << routed_touch << " kinds=[";
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    if (k > 0) {
      os << ' ';
    }
    os << toolkit::TouchGestureKindName(static_cast<toolkit::TouchGestureKind>(k)) << ':'
       << by_kind[k];
  }
  os << ']';
  return os.str();
}

TouchFrontEnd::TouchFrontEnd(RecognitionServer* server, TouchFrontEndOptions options)
    : server_(server), options_(std::move(options)), tracker_(options_.policy) {}

robust::StatusOr<TouchSubmitResult> TouchFrontEnd::Submit(SessionId session, UserId user,
                                                          StrokeId stroke,
                                                          const geom::ContactGroup& raw) {
  TouchSubmitResult result;
  robust::FaultStats faults;
  auto tracked = tracker_.Track(raw, &result.report, &faults);
  if (!tracked.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.groups_in;
    ++stats_.groups_rejected;
    stats_.faults.Merge(faults);
    return tracked.status();
  }
  result.degraded = tracked->degraded;
  result.track = toolkit::ComputeTouchTrack(tracked->group, options_.attributes);

  const bool single = result.track.kind == toolkit::TouchGestureKind::kSingleStroke;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.groups_in;
    if (result.degraded) {
      ++stats_.groups_degraded;
    }
    if (single) {
      ++stats_.routed_single_stroke;
    } else {
      ++stats_.routed_touch;
    }
    ++stats_.by_kind[static_cast<std::size_t>(result.track.kind)];
    stats_.faults.Merge(faults);
  }

  if (single && server_ != nullptr) {
    const geom::Gesture& primary = tracked->group[result.track.primary_index].stroke;
    ServeEvent begin{session, EventType::kStrokeBegin, stroke, {}, options_.deadline_us};
    begin.user = user;
    if (auto s = server_->Submit(std::move(begin)); !s.ok()) {
      return s;
    }
    ServeEvent points{session, EventType::kPoints, stroke, primary.points(),
                      options_.deadline_us};
    points.user = user;
    if (auto s = server_->Submit(std::move(points)); !s.ok()) {
      return s;
    }
    ServeEvent end{session, EventType::kStrokeEnd, stroke, {}, options_.deadline_us};
    end.user = user;
    if (auto s = server_->Submit(std::move(end)); !s.ok()) {
      return s;
    }
    result.routed_to_classifier = true;
  }
  return result;
}

TouchFrontEndStats TouchFrontEnd::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace grandma::serve
