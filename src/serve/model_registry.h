// The hot-reload point of the serving stack: a ModelRegistry owns the
// "current" RecognizerBundle and lets an operator swap in a new one — from a
// checksummed bundle snapshot on disk (io/snapshot.h) or an already-built
// bundle — while shard workers keep recognizing.
//
// The swap protocol is pin-at-stroke-start: workers fetch Current() only at
// stroke boundaries and hand the shared_ptr to the session, which holds it
// until the stroke completes. A swap therefore never mixes two models'
// weights inside one gesture, and the old bundle is destroyed only when the
// last in-flight stroke that pinned it finishes.
//
// Failure containment: a LoadFromFile that hits a corrupt / truncated /
// version-skewed snapshot leaves the current model untouched (rollback to
// last good), returns the precise robust::Status, and counts the failure —
// the server keeps answering with the model it already trusts.
#ifndef GRANDMA_SRC_SERVE_MODEL_REGISTRY_H_
#define GRANDMA_SRC_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "robust/status.h"
#include "serve/metrics.h"
#include "serve/recognizer_bundle.h"

namespace grandma::serve {

// Thread-safety: all methods may be called concurrently from any thread.
class ModelRegistry {
 public:
  // `initial` must be non-null (throws std::invalid_argument otherwise).
  // `source_path`, when known, seeds last_good_path().
  explicit ModelRegistry(std::shared_ptr<const RecognizerBundle> initial,
                         std::string source_path = "");

  // The model new strokes should pin. Never null.
  std::shared_ptr<const RecognizerBundle> Current() const;

  // Publishes `next` as the current model (counted as a swap). Throws
  // std::invalid_argument on null.
  void Swap(std::shared_ptr<const RecognizerBundle> next);

  // Loads a bundle snapshot and publishes it on success; on any failure
  // (unopenable, truncated, corrupt, version mismatch) the current model
  // stays in place and the load is counted as a rollback. Returns the load's
  // precise status.
  robust::Status LoadFromFile(const std::string& path);

  // Path of the most recent snapshot that loaded successfully ("" when the
  // current model never came from disk).
  std::string last_good_path() const;

  std::uint64_t current_version() const { return Current()->version(); }

  ModelLifecycleMetrics Metrics() const;

 private:
  mutable std::mutex mu_;           // guards current_ and last_good_path_
  std::shared_ptr<const RecognizerBundle> current_;
  std::string last_good_path_;

  std::atomic<std::uint64_t> loads_ok_{0};
  std::atomic<std::uint64_t> loads_failed_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> rollbacks_{0};
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_MODEL_REGISTRY_H_
