// The hot-reload point of the serving stack: a ModelRegistry owns the
// "current" RecognizerBundle and lets an operator swap in a new one — from a
// checksummed bundle snapshot on disk (io/snapshot.h) or an already-built
// bundle — while shard workers keep recognizing.
//
// The swap protocol is pin-at-stroke-start: workers fetch Current() only at
// stroke boundaries and hand the shared_ptr to the session, which holds it
// until the stroke completes. A swap therefore never mixes two models'
// weights inside one gesture, and the old bundle is destroyed only when the
// last in-flight stroke that pinned it finishes.
//
// Per-user personalization (src/personalize) extends the same protocol: once
// EnablePersonalization is called, the registry also owns a sharded LRU
// UserModelCache of adapted bundles. CurrentFor(user) is what workers pin at
// stroke boundaries — the user's adapted bundle when a delta exists
// (resident or rehydratable from its spill snapshot), the plain base
// otherwise. AdaptUser folds one example into the user's delta and
// republishes the adapted bundle; because sessions pin at stroke start, a
// mid-stroke adapt never mixes weights inside an open stroke, exactly like a
// hot swap.
//
// Failure containment: a LoadFromFile that hits a corrupt / truncated /
// version-skewed snapshot leaves the current model untouched (rollback to
// last good), returns the precise robust::Status, and counts the failure —
// the server keeps answering with the model it already trusts. Likewise a
// damaged user-delta spill is rejected typed, counted, and the user falls
// back to the base model; personalization failures never fail a session.
#ifndef GRANDMA_SRC_SERVE_MODEL_REGISTRY_H_
#define GRANDMA_SRC_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "classify/training_set.h"
#include "geom/gesture.h"
#include "linalg/vector.h"
#include "personalize/user_delta.h"
#include "personalize/user_model_cache.h"
#include "robust/status.h"
#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/recognizer_bundle.h"

namespace grandma::serve {

struct PersonalizationOptions {
  // Cache geometry (see personalize::UserModelCache::Options).
  std::size_t cache_shards = 4;
  std::size_t cache_max_entries = 1024;
  std::size_t cache_max_bytes = std::size_t{8} << 20;
  // Directory for eviction spill snapshots; "" keeps deltas memory-only (an
  // evicted user's personalization is lost).
  std::string delta_dir;
  // Shrinkage pseudo-count of the base model (personalize::AdaptOptions).
  double base_strength = 8.0;
};

// Thread-safety: all methods may be called concurrently from any thread,
// except EnablePersonalization, which must happen-before any CurrentFor /
// AdaptUser call (in practice: configure the registry before starting the
// server that shares it).
class ModelRegistry {
 public:
  // `initial` must be non-null (throws std::invalid_argument otherwise).
  // `source_path`, when known, seeds last_good_path().
  explicit ModelRegistry(std::shared_ptr<const RecognizerBundle> initial,
                         std::string source_path = "");

  // The model new strokes should pin. Never null.
  std::shared_ptr<const RecognizerBundle> Current() const;

  // Publishes `next` as the current model (counted as a swap). Throws
  // std::invalid_argument on null.
  void Swap(std::shared_ptr<const RecognizerBundle> next);

  // Loads a bundle snapshot and publishes it on success; on any failure
  // (unopenable, truncated, corrupt, version mismatch) the current model
  // stays in place and the load is counted as a rollback. Returns the load's
  // precise status.
  robust::Status LoadFromFile(const std::string& path);

  // Path of the most recent snapshot that loaded successfully ("" when the
  // current model never came from disk).
  std::string last_good_path() const;

  std::uint64_t current_version() const { return Current()->version(); }

  // --- Per-user personalization ---

  // Installs the user-model cache. Call once, before sharing the registry
  // with serving threads; throws std::logic_error on a second call.
  void EnablePersonalization(PersonalizationOptions options);
  bool personalization_enabled() const { return cache_ != nullptr; }

  // The model strokes of `user` should pin: the adapted bundle when the user
  // has a delta, Current() otherwise. Never null. Exactly Current() for
  // user 0 or when personalization is disabled.
  std::shared_ptr<const RecognizerBundle> CurrentFor(UserId user);

  // Folds one training example into `user`'s delta (rank-1 accumulator
  // update, no retrain) and republishes the user's adapted bundle. The
  // gesture needs at least the recognizer's min_prefix_points. Open strokes
  // keep the bundle they pinned; the new model takes effect from the user's
  // next stroke. Errors: kFailedPrecondition (personalization disabled or
  // user 0), kInvalidArgument (bad class, too-short gesture).
  robust::Status AdaptUser(UserId user, classify::ClassId class_id,
                           const geom::Gesture& example);
  // Same, from an already-extracted full (unmasked, 13-entry) feature vector.
  robust::Status AdaptUserFeatures(UserId user, classify::ClassId class_id,
                                   const linalg::Vector& full_features);

  ModelLifecycleMetrics Metrics() const;

 private:
  using Cache = personalize::UserModelCache<std::shared_ptr<const RecognizerBundle>>;

  // Builds the cache's materializer closure for the given base bundle.
  Cache::Materializer MaterializerFor(std::shared_ptr<const RecognizerBundle> base) const;

  mutable std::mutex mu_;           // guards current_ and last_good_path_
  std::shared_ptr<const RecognizerBundle> current_;
  std::string last_good_path_;

  std::atomic<std::uint64_t> loads_ok_{0};
  std::atomic<std::uint64_t> loads_failed_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> rollbacks_{0};

  // Personalization state; immutable pointer after EnablePersonalization.
  PersonalizationOptions popts_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_MODEL_REGISTRY_H_
