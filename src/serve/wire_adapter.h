// Bridges io::WireEvent (the grandma-events v1 on-disk record, defined in
// the io layer without a serve dependency) and serve::ServeEvent (the
// in-process queued unit of work). Header-only; the static_asserts pin the
// two event-type enums to each other so the wire byte stays meaningful.
#ifndef GRANDMA_SRC_SERVE_WIRE_ADAPTER_H_
#define GRANDMA_SRC_SERVE_WIRE_ADAPTER_H_

#include <utility>

#include "io/event_wire.h"
#include "serve/event.h"

namespace grandma::serve {

static_assert(static_cast<std::uint8_t>(io::WireEventType::kStrokeBegin) ==
              static_cast<std::uint8_t>(EventType::kStrokeBegin));
static_assert(static_cast<std::uint8_t>(io::WireEventType::kPoints) ==
              static_cast<std::uint8_t>(EventType::kPoints));
static_assert(static_cast<std::uint8_t>(io::WireEventType::kStrokeEnd) ==
              static_cast<std::uint8_t>(EventType::kStrokeEnd));
static_assert(static_cast<std::uint8_t>(io::WireEventType::kSessionEnd) ==
              static_cast<std::uint8_t>(EventType::kSessionEnd));

// Consumes the wire event (moves its points). enqueue_time is left for
// Submit to stamp.
inline ServeEvent ToServeEvent(io::WireEvent wire) {
  ServeEvent event;
  event.session = wire.session;
  event.type = static_cast<EventType>(wire.type);
  event.stroke = wire.stroke;
  event.deadline_us = wire.deadline_us;
  event.points = std::move(wire.points);
  return event;
}

inline io::WireEvent ToWireEvent(ServeEvent event) {
  io::WireEvent wire;
  wire.session = event.session;
  wire.type = static_cast<io::WireEventType>(event.type);
  wire.stroke = event.stroke;
  wire.deadline_us = event.deadline_us;
  wire.points = std::move(event.points);
  return wire;
}

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_WIRE_ADAPTER_H_
