#include "serve/session.h"

#include <utility>

#include "obs/trace.h"

namespace grandma::serve {

Session::Session(SessionId id, const eager::EagerRecognizer& recognizer, NBestOptions nbest)
    : id_(id), nbest_(nbest), recognizer_(&recognizer), stream_(recognizer) {
  stream_.SetNBest(nbest_.depth);
}

Session::Session(SessionId id, std::shared_ptr<const RecognizerBundle> bundle,
                 NBestOptions nbest)
    : id_(id),
      nbest_(nbest),
      pinned_(std::move(bundle)),
      recognizer_(&pinned_->recognizer()),
      stream_(pinned_->recognizer()),
      model_version_(pinned_->version()) {
  stream_.SetNBest(nbest_.depth);
}

void Session::ApplyNBestDecision(RecognitionResult& result) {
  const std::span<const classify::NBestEntry> entries(result.nbest.data(), result.nbest_count);
  const classify::NBestDecision decision =
      classify::DecideNBest(nbest_.policy, entries, result.classification.mahalanobis_squared,
                            recognizer_->full().mask().count());
  result.nbest_action = decision.action;
  result.reject_reason = decision.reason;
  result.nbest_margin = decision.margin;
  if (decision.action == classify::NBestAction::kDefer) {
    ++stats_.nbest_deferred;
  } else if (decision.action == classify::NBestAction::kAskAgain) {
    ++stats_.nbest_ask_again;
  }
}

void Session::EmitResult(ResultKind kind, const ResultSink& sink) {
  RecognitionResult result;
  result.session = id_;
  result.stroke = current_stroke_;
  result.kind = kind;
  if (stream_.nbest_depth() > 0) {
    result.nbest_count = stream_.ClassifyNowNBest(
        std::span<classify::NBestEntry>(result.nbest.data(), stream_.nbest_depth()),
        &result.classification);
    ApplyNBestDecision(result);
  } else {
    result.classification = stream_.ClassifyNow();
  }
  result.class_name = recognizer_->ClassName(result.classification.class_id);
  result.points_seen = stream_.points_seen();
  result.eager_fired = stream_.fired();
  result.fired_at = stream_.fired_at();
  result.model_version = model_version_;
  if (sink) {
    sink(result);
  }
}

void Session::BeginStroke(StrokeId stroke, const ResultSink& sink,
                          std::shared_ptr<const RecognizerBundle> pin) {
  TRACE_SESSION_SCOPE(id_);
  TRACE_SPAN("session.begin");
  if (in_stroke_) {
    // The open stroke is finalized by the model it started under — the new
    // pin must not take effect until the boundary.
    ++stats_.implicit_ends;
    EndStroke(sink);
  }
  if (pin != nullptr && pin.get() != pinned_.get()) {
    pinned_ = std::move(pin);
    recognizer_ = &pinned_->recognizer();
    model_version_ = pinned_->version();
    stream_.Rebind(*recognizer_);
  }
  current_stroke_ = stroke;
  in_stroke_ = true;
  stream_.Reset();
  ++stats_.strokes_begun;
}

void Session::AddPoints(StrokeId stroke, std::span<const geom::TimedPoint> points,
                        const ResultSink& sink,
                        std::shared_ptr<const RecognizerBundle> pin) {
  TRACE_SESSION_SCOPE(id_);
  TRACE_SPAN("session.points");
  if (!in_stroke_) {
    ++stats_.implicit_begins;
    BeginStroke(stroke, sink, std::move(pin));
  }
  eager::FireEvent fire;
  stream_.AddSpan(points, &fire);
  stats_.points_seen += points.size();
  if (fire.fired) {
    // First moment the AUC judged the stroke unambiguous. The result is
    // built from the fire event rather than EmitResult: the batched stream
    // has already consumed the rest of the span, so points_seen at the fire
    // (== fired_at) and the fire-point classification come from the event —
    // field-identical to the per-point path's mid-span emit.
    ++stats_.eager_fires;
    RecognitionResult result;
    result.session = id_;
    result.stroke = current_stroke_;
    result.kind = ResultKind::kEagerFire;
    result.classification = fire.classification;
    result.class_name = recognizer_->ClassName(fire.classification.class_id);
    result.points_seen = fire.fired_at;
    result.eager_fired = true;
    result.fired_at = fire.fired_at;
    result.model_version = model_version_;
    if (stream_.nbest_depth() > 0) {
      result.nbest = fire.nbest;
      result.nbest_count = fire.nbest_count;
      ApplyNBestDecision(result);
    }
    if (sink) {
      sink(result);
    }
  }
}

void Session::EndStroke(const ResultSink& sink) {
  TRACE_SESSION_SCOPE(id_);
  TRACE_SPAN("session.end");
  if (!in_stroke_ || stream_.points_seen() == 0) {
    if (!in_stroke_) {
      ++stats_.empty_stroke_ends;
    }
    in_stroke_ = false;
    stream_.Reset();
    return;
  }
  EmitResult(ResultKind::kStrokeEnd, sink);
  ++stats_.strokes_completed;
  in_stroke_ = false;
  stream_.Reset();
}

}  // namespace grandma::serve
