#include "serve/recognizer_bundle.h"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace grandma::serve {

namespace {
std::atomic<std::uint64_t> g_next_version{1};
}  // namespace

RecognizerBundle::RecognizerBundle()
    : version_(g_next_version.fetch_add(1, std::memory_order_relaxed)) {}

std::shared_ptr<const RecognizerBundle> RecognizerBundle::Train(
    const classify::GestureTrainingSet& training, const eager::EagerTrainOptions& options) {
  auto bundle = std::shared_ptr<RecognizerBundle>(new RecognizerBundle());
  bundle->train_report_ = bundle->recognizer_.Train(training, options);
  return bundle;
}

std::shared_ptr<const RecognizerBundle> RecognizerBundle::FromRecognizer(
    eager::EagerRecognizer recognizer) {
  if (!recognizer.trained()) {
    throw std::invalid_argument("RecognizerBundle::FromRecognizer: recognizer is untrained");
  }
  auto bundle = std::shared_ptr<RecognizerBundle>(new RecognizerBundle());
  bundle->recognizer_ = std::move(recognizer);
  return bundle;
}

}  // namespace grandma::serve
