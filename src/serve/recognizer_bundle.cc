#include "serve/recognizer_bundle.h"

#include <stdexcept>
#include <utility>

namespace grandma::serve {

std::shared_ptr<const RecognizerBundle> RecognizerBundle::Train(
    const classify::GestureTrainingSet& training, const eager::EagerTrainOptions& options) {
  auto bundle = std::shared_ptr<RecognizerBundle>(new RecognizerBundle());
  bundle->train_report_ = bundle->recognizer_.Train(training, options);
  return bundle;
}

std::shared_ptr<const RecognizerBundle> RecognizerBundle::FromRecognizer(
    eager::EagerRecognizer recognizer) {
  if (!recognizer.trained()) {
    throw std::invalid_argument("RecognizerBundle::FromRecognizer: recognizer is untrained");
  }
  auto bundle = std::shared_ptr<RecognizerBundle>(new RecognizerBundle());
  bundle->recognizer_ = std::move(recognizer);
  return bundle;
}

}  // namespace grandma::serve
