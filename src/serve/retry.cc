#include "serve/retry.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace grandma::serve {

void RetryStats::Merge(const RetryStats& other) {
  submitted += other.submitted;
  attempts += other.attempts;
  retries += other.retries;
  accepted += other.accepted;
  dropped += other.dropped;
  backoff_waits += other.backoff_waits;
  backoff_us += other.backoff_us;
}

robust::Status SubmitWithRetry(RecognitionServer& server, ServeEvent event,
                               const RetryPolicy& policy, RetryStats* stats) {
  RetryStats local;
  local.submitted = 1;
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  std::chrono::microseconds backoff = policy.initial_backoff;
  robust::Status status;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      local.retries += 1;
      if (backoff.count() > 0) {
        local.backoff_waits += 1;
        local.backoff_us += static_cast<std::uint64_t>(backoff.count());
        std::this_thread::sleep_for(backoff);
      }
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
    local.attempts += 1;
    // Submit moves the event in; keep a copy alive while a retry is still
    // possible (the last attempt moves).
    status = attempt + 1 == max_attempts ? server.Submit(std::move(event))
                                         : server.Submit(event);
    if (status.code() != robust::StatusCode::kOverloaded) {
      break;
    }
  }
  if (status.ok()) {
    local.accepted = 1;
  } else if (status.code() == robust::StatusCode::kOverloaded) {
    local.dropped = 1;
  }
  if (stats != nullptr) {
    stats->Merge(local);
  }
  return status;
}

}  // namespace grandma::serve
