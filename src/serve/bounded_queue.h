// A bounded multi-producer multi-consumer queue: the backpressure point of
// the recognition server. Producers either block until space frees up
// (backpressure) or fail fast when full (shed) — the server picks per its
// OverloadPolicy. Closing the queue wakes everyone; consumers drain whatever
// is left before seeing end-of-stream, so shutdown never loses queued events.
//
// Observability: the queue itself stays trace-free (it is templated and its
// waits span two threads, which a per-thread RAII span cannot represent).
// Instead the server stamps ServeEvent::enqueue_time at Push and the worker
// records the enqueue→dequeue wait as the "queue.wait" stage on its own
// buffer right after Pop (see RecognitionServer::WorkerLoop).
#ifndef GRANDMA_SRC_SERVE_BOUNDED_QUEUE_H_
#define GRANDMA_SRC_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace grandma::serve {

// Thread-safety: every method is safe to call from any thread.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("BoundedQueue: capacity must be positive");
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking push; false when the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      max_depth_ = std::max(max_depth_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking push: waits while full; false when the queue is (or becomes)
  // closed, in which case `item` is dropped.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
      max_depth_ = std::max(max_depth_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking pop: waits while empty; nullopt only once the queue is closed
  // AND fully drained (close-then-drain shutdown semantics).
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return std::nullopt;  // closed and drained
      }
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  // Batch pop: waits while empty, then moves up to `max_items` into `out`
  // (cleared first) in one critical section and returns the count. Returns 0
  // only once the queue is closed AND fully drained — the same end-of-stream
  // contract as Pop. Draining N items per wakeup amortizes the lock and the
  // consumer wakeup across a burst instead of paying both per event.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max_items) {
    out.clear();
    if (max_items == 0) {
      return 0;
    }
    bool freed_space = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      while (!items_.empty() && out.size() < max_items) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        freed_space = true;
      }
    }
    if (freed_space) {
      // A batch may free many slots; wake every blocked producer.
      not_full_.notify_all();
    }
    return out.size();
  }

  // No pushes succeed after this; pops drain the remainder. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // High-water mark of size() since construction (queue-depth metric).
  std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_BOUNDED_QUEUE_H_
