// The immutable trained-model package a server shards over: the eager
// recognizer (full LinearClassifier + AUC) frozen at training time. Freezing
// matters because one trained model is shared read-only by every worker
// thread; the bundle can only be obtained as shared_ptr<const>, so no caller
// can reach a mutator (e.g. GestureClassifier::mutable_linear) after
// publication. See docs/SERVING.md for the thread-safety contract.
#ifndef GRANDMA_SRC_SERVE_RECOGNIZER_BUNDLE_H_
#define GRANDMA_SRC_SERVE_RECOGNIZER_BUNDLE_H_

#include <cstdint>
#include <memory>

#include "classify/training_set.h"
#include "eager/eager_recognizer.h"

namespace grandma::serve {

// Thread-safety: immutable after construction; all const methods are safe to
// call concurrently from any number of threads.
class RecognizerBundle {
 public:
  // Trains an eager recognizer on `training` and freezes it. Training
  // happens on the calling thread, before any sharing; throws whatever
  // EagerRecognizer::Train throws for unusable training sets.
  static std::shared_ptr<const RecognizerBundle> Train(
      const classify::GestureTrainingSet& training,
      const eager::EagerTrainOptions& options = {});

  // Freezes an already-trained recognizer (e.g. deserialized via io::).
  // Throws std::invalid_argument when `recognizer` is untrained.
  static std::shared_ptr<const RecognizerBundle> FromRecognizer(
      eager::EagerRecognizer recognizer);

  const eager::EagerRecognizer& recognizer() const { return recognizer_; }
  // The full classifier C inside the recognizer (convenience accessor).
  const classify::GestureClassifier& full_classifier() const { return recognizer_.full(); }
  // Training diagnostics; default-initialized for FromRecognizer bundles.
  const eager::EagerTrainReport& train_report() const { return train_report_; }

  std::size_t num_classes() const { return recognizer_.num_classes(); }

  // Process-unique, monotonically increasing id assigned at construction
  // (never 0). Lets results be traced back to the exact model that produced
  // them across hot swaps (RecognitionResult::model_version).
  std::uint64_t version() const { return version_; }

 private:
  RecognizerBundle();

  eager::EagerRecognizer recognizer_;
  eager::EagerTrainReport train_report_;
  std::uint64_t version_ = 0;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_RECOGNIZER_BUNDLE_H_
