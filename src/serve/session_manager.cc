#include "serve/session_manager.h"

#include <utility>

#include "obs/trace.h"

namespace grandma::serve {

Session& SessionManager::GetOrCreate(SessionId id) {
  TRACE_SPAN("sessions.get_or_create");
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(id, bundle_ != nullptr ? Session(id, bundle_, nbest_)
                                             : Session(id, *recognizer_, nbest_))
             .first;
    ++created_;
  }
  return it->second;
}

bool SessionManager::Erase(SessionId id) { return sessions_.erase(id) > 0; }

const Session* SessionManager::Find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace grandma::serve
