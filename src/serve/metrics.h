// Server observability: per-shard counters and an enqueue->recognize latency
// histogram. Recording runs on worker/producer threads with relaxed atomics
// (each cell has a single logical writer; metrics tolerate being a snapshot,
// not a transaction); ServerMetrics is the plain-value snapshot handed to
// callers, safe to read, merge, and serialize without any synchronization.
#ifndef GRANDMA_SRC_SERVE_METRICS_H_
#define GRANDMA_SRC_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.h"

namespace grandma::serve {

// Log-spaced latency buckets: bucket i covers [kMinMicros * kGrowth^i,
// kMinMicros * kGrowth^(i+1)), from 0.1 us to ~2.6 s. Percentiles use the
// bucket upper bound, so they are conservative (never under-report).
inline constexpr std::size_t kLatencyBuckets = 48;
inline constexpr double kLatencyMinMicros = 0.1;
inline constexpr double kLatencyGrowth = 1.5;

// Bucket index for a latency of `us` microseconds / the conservative upper
// bound of bucket `bucket`. Shared by LatencyHistogram and the admission
// controller's private window histogram (admission.h).
std::size_t LatencyBucketOf(double us);
double LatencyBucketUpperMicros(std::size_t bucket);

// Snapshot histogram: plain counts, single-threaded use.
struct HistogramSnapshot {
  std::array<std::uint64_t, kLatencyBuckets> buckets{};
  std::uint64_t count = 0;

  // p in (0, 1]; 0.0 when the histogram is empty.
  double PercentileMicros(double p) const;
  void Merge(const HistogramSnapshot& other);
  // {"count": N, "p50_us": ..., "p95_us": ..., "p99_us": ...}
  std::string ToJson() const;
};

// Recording histogram: one logical writer (the owning shard worker), any
// number of concurrent snapshot readers.
class LatencyHistogram {
 public:
  void RecordMicros(double us);
  HistogramSnapshot Snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
};

// Plain-value per-shard counters (snapshot form).
struct ShardMetrics {
  std::size_t shard = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t points_processed = 0;
  std::uint64_t strokes_completed = 0;
  std::uint64_t eager_fires = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_resident = 0;
  // Events rejected at Submit because this shard's queue was full (shed
  // policy, or adaptive policy currently in shed mode) — counted on the
  // producer side.
  std::uint64_t events_shed = 0;
  // Events accepted into the queue but dropped by the worker before
  // classification because their deadline budget expired while queued
  // (status kDeadlineExceeded). Accounting invariant:
  //   accepted == events_processed + events_deadline_expired,
  //   submitted == accepted + events_shed.
  std::uint64_t events_deadline_expired = 0;
  // Exceptions thrown by the result callback, swallowed by the worker.
  std::uint64_t callback_errors = 0;
  // N-best policy outcomes (zeros when ServerOptions::nbest.depth == 0):
  // results answered kDefer (low probability / near-tie) or kAskAgain
  // (Mahalanobis outlier) by classify::DecideNBest.
  std::uint64_t nbest_deferred = 0;
  std::uint64_t nbest_ask_again = 0;
  // Adaptive admission (OverloadPolicy::kAdaptive only; zeros otherwise).
  // True when this shard is currently shedding instead of blocking.
  bool admission_shedding = false;
  std::uint64_t admission_evaluations = 0;
  std::uint64_t admission_switches_to_shed = 0;
  std::uint64_t admission_switches_to_block = 0;
  std::size_t queue_capacity = 0;
  std::size_t queue_max_depth = 0;
  HistogramSnapshot queue_latency;

  void Merge(const ShardMetrics& other);
  std::string ToJson() const;
};

// Model-lifecycle accounting for a hot-swapping server (snapshot form,
// recorded by ModelRegistry). Invariants the chaos harness asserts:
// every LoadFromFile attempt lands in exactly one of snapshot_loads_ok /
// snapshot_loads_failed; every ok load produces a swap (model_swaps >=
// snapshot_loads_ok — direct Swap() calls add more); every failed load is a
// rollback to the previous model (rollbacks == snapshot_loads_failed).
struct ModelLifecycleMetrics {
  std::uint64_t snapshot_loads_ok = 0;
  std::uint64_t snapshot_loads_failed = 0;
  std::uint64_t model_swaps = 0;
  std::uint64_t rollbacks = 0;

  // Per-user personalization (all zeros when it is disabled). Invariants the
  // churn bench and unit tests assert:
  //   user_cache_hits + user_cache_misses == cache lookups (one per
  //     CurrentFor of a non-anonymous user)
  //   user_evictions == user_spills_ok + user_spills_failed +
  //     user_evictions_dropped
  //   user_rehydrations <= user_spills_ok (only written spills read back)
  std::uint64_t user_adapts = 0;
  std::uint64_t user_cache_hits = 0;
  std::uint64_t user_cache_misses = 0;
  std::uint64_t user_materializations = 0;
  std::uint64_t user_materialize_failed = 0;
  std::uint64_t user_evictions = 0;
  std::uint64_t user_spills_ok = 0;
  std::uint64_t user_spills_failed = 0;
  std::uint64_t user_evictions_dropped = 0;
  std::uint64_t user_rehydrations = 0;
  std::uint64_t user_rehydrate_failed = 0;
  // Gauges (resident adapted models / approximate bytes held by the cache).
  std::uint64_t user_models_resident = 0;
  std::uint64_t user_delta_bytes = 0;

  // user_cache_hits / (hits + misses); 0.0 before the first lookup.
  double UserHitRate() const;

  void Merge(const ModelLifecycleMetrics& other);
  std::string ToJson() const;
};

// Whole-server snapshot, one entry per shard.
struct ServerMetrics {
  std::vector<ShardMetrics> shards;
  // Lifecycle of the served model; zeros for a server without a registry.
  ModelLifecycleMetrics models;
  // Per-stage span latency summaries from the obs tracing layer (p50/p95/p99
  // nanoseconds per TRACE_SPAN site). Process-wide, not per-server; empty
  // when tracing is compiled out or was never enabled.
  std::vector<obs::StageSummary> stages;

  // All shards merged (shard index -1 semantics: `shard` is left at 0,
  // queue_capacity summed, max depth maximized).
  ShardMetrics Totals() const;
  std::string ToJson() const;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_METRICS_H_
