// Adaptive admission control: a hysteresis controller that flips a shard
// between backpressure (kBlock semantics) and load shedding (kShed
// semantics) from the queue-wait latency the shard is actually observing —
// the same enqueue->dequeue wait the obs "queue.wait" stage and the shard's
// LatencyHistogram measure.
//
// Control loop (one controller per shard, driven by that shard's worker):
//
//   worker pops event ──RecordWait(wait_us)──> window histogram
//                                                   │ every eval_period_events
//                                                   ▼
//                              p(tail) of the window (e.g. p99)
//                                                   │
//             > high_watermark_us  and dwell satisfied ──> SHED
//             < low_watermark_us   and dwell satisfied ──> BLOCK
//
// Producers read shedding() (one relaxed-ish atomic load) in Submit to pick
// TryPush vs Push. Hysteresis (two watermarks + a minimum dwell measured in
// evaluations) keeps the controller from flapping when the load hovers at
// one threshold: each mode must be held for min_dwell_evals evaluation
// periods before the opposite switch is allowed.
//
// The feed is deliberately the serve-layer histogram rather than the obs
// tracing stage: the two measure the same wait, but admission must keep
// working in GRANDMA_TRACING=OFF builds and when tracing is disabled at
// runtime.
#ifndef GRANDMA_SRC_SERVE_ADMISSION_H_
#define GRANDMA_SRC_SERVE_ADMISSION_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "serve/metrics.h"

namespace grandma::serve {

struct AdmissionOptions {
  // Queue-wait percentile (in (0, 1]) the controller watches.
  double percentile = 0.99;
  // Tail wait above this: stop blocking producers, start shedding.
  double high_watermark_us = 20'000.0;  // 20 ms
  // Tail wait below this: overload has passed, resume backpressure.
  double low_watermark_us = 2'000.0;  // 2 ms
  // Events between controller evaluations (the percentile window size).
  std::uint64_t eval_period_events = 256;
  // Evaluations a mode must be held before the opposite switch is allowed.
  std::uint32_t min_dwell_evals = 2;
};

// Thread-safety: RecordWait is single-writer (the owning shard worker);
// shedding() and the counters may be read from any thread.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  // True when producers should shed (TryPush) instead of block (Push).
  bool shedding() const { return shedding_.load(std::memory_order_acquire); }

  // Feeds one dequeued event's queue wait; runs an evaluation every
  // eval_period_events calls. Worker thread only.
  void RecordWait(double wait_us);

  // Forces an evaluation of the current (possibly short) window. Worker
  // thread only; used at drain/shutdown and by tests.
  void EvaluateNow();

  std::uint64_t evaluations() const { return evaluations_.load(std::memory_order_relaxed); }
  std::uint64_t switches_to_shed() const {
    return switches_to_shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t switches_to_block() const {
    return switches_to_block_.load(std::memory_order_relaxed);
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  // Tail latency of the current window, conservative (bucket upper bound);
  // 0.0 for an empty window.
  double WindowPercentileMicros() const;

  AdmissionOptions options_;

  // Producer-visible mode; everything below is worker-private.
  std::atomic<bool> shedding_{false};

  // Window histogram: same bucket layout as LatencyHistogram but plain
  // integers — one writer, reset after each evaluation.
  std::array<std::uint64_t, kLatencyBuckets> window_{};
  std::uint64_t window_count_ = 0;
  std::uint32_t dwell_evals_ = 0;  // evaluations since the last switch

  // Counters surfaced in ShardMetrics (relaxed: single writer, any reader).
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> switches_to_shed_{0};
  std::atomic<std::uint64_t> switches_to_block_{0};
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_ADMISSION_H_
