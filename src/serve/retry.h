// Client-side bounded retry-with-backoff for shed submissions. When a
// server (kShed, or kAdaptive in shed mode) answers kOverloaded, the right
// client behavior is usually to back off briefly and retry a bounded number
// of times, then give up — retrying forever turns shedding back into
// unbounded blocking, and retrying instantly just hammers the full queue.
// The replay drivers (bench/overload_soak, external feeders) use this; it
// lives in the library so the policy is testable and shared.
#ifndef GRANDMA_SRC_SERVE_RETRY_H_
#define GRANDMA_SRC_SERVE_RETRY_H_

#include <chrono>
#include <cstdint>

#include "robust/status.h"
#include "serve/event.h"
#include "serve/server.h"

namespace grandma::serve {

struct RetryPolicy {
  // Total submit attempts, including the first (>= 1). 1 disables retry.
  std::uint32_t max_attempts = 4;
  // Sleep before the first retry; doubles each further retry (capped).
  std::chrono::microseconds initial_backoff{200};
  std::chrono::microseconds max_backoff{10'000};
};

// Accounting a driver aggregates across calls (single-threaded use; drivers
// keep one per producer thread and merge).
struct RetryStats {
  std::uint64_t submitted = 0;      // SubmitWithRetry calls
  std::uint64_t attempts = 0;       // Submit calls issued (>= submitted)
  std::uint64_t retries = 0;        // attempts - submitted
  std::uint64_t accepted = 0;       // eventually kOk
  std::uint64_t dropped = 0;        // still kOverloaded after max_attempts
  std::uint64_t backoff_waits = 0;  // sleeps taken
  std::uint64_t backoff_us = 0;     // total requested backoff

  void Merge(const RetryStats& other);
};

// Submits `event`, retrying on kOverloaded up to policy.max_attempts total
// attempts with exponential backoff between attempts. Any status other than
// kOverloaded (kOk, kInvalidArgument, kFailedPrecondition) returns
// immediately — only shedding is retryable. Returns the final status.
robust::Status SubmitWithRetry(RecognitionServer& server, ServeEvent event,
                               const RetryPolicy& policy, RetryStats* stats = nullptr);

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_RETRY_H_
