#include "serve/model_registry.h"

#include <stdexcept>
#include <utility>

#include "io/snapshot.h"
#include "obs/trace.h"

namespace grandma::serve {

ModelRegistry::ModelRegistry(std::shared_ptr<const RecognizerBundle> initial,
                             std::string source_path)
    : current_(std::move(initial)), last_good_path_(std::move(source_path)) {
  if (current_ == nullptr) {
    throw std::invalid_argument("ModelRegistry: initial bundle must be non-null");
  }
}

std::shared_ptr<const RecognizerBundle> ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void ModelRegistry::Swap(std::shared_ptr<const RecognizerBundle> next) {
  TRACE_SPAN("registry.swap");
  if (next == nullptr) {
    throw std::invalid_argument("ModelRegistry::Swap: bundle must be non-null");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(next);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

robust::Status ModelRegistry::LoadFromFile(const std::string& path) {
  TRACE_SPAN("registry.load");
  auto loaded = io::LoadBundleSnapshotFile(path);
  if (!loaded.ok()) {
    loads_failed_.fetch_add(1, std::memory_order_relaxed);
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return loaded.status();
  }
  // The snapshot's eager section embeds the full classifier, so the bundle
  // is rebuilt from the recognizer alone (the classifier section was the
  // cross-check).
  auto bundle = RecognizerBundle::FromRecognizer(std::move(loaded->recognizer));
  loads_ok_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = bundle;
    last_good_path_ = path;
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return robust::Status::Ok();
}

std::string ModelRegistry::last_good_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_good_path_;
}

ModelLifecycleMetrics ModelRegistry::Metrics() const {
  ModelLifecycleMetrics out;
  out.snapshot_loads_ok = loads_ok_.load(std::memory_order_relaxed);
  out.snapshot_loads_failed = loads_failed_.load(std::memory_order_relaxed);
  out.model_swaps = swaps_.load(std::memory_order_relaxed);
  out.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace grandma::serve
