#include "serve/model_registry.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "features/extractor.h"
#include "features/feature_vector.h"
#include "io/snapshot.h"
#include "obs/trace.h"

namespace grandma::serve {

ModelRegistry::ModelRegistry(std::shared_ptr<const RecognizerBundle> initial,
                             std::string source_path)
    : current_(std::move(initial)), last_good_path_(std::move(source_path)) {
  if (current_ == nullptr) {
    throw std::invalid_argument("ModelRegistry: initial bundle must be non-null");
  }
}

std::shared_ptr<const RecognizerBundle> ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void ModelRegistry::Swap(std::shared_ptr<const RecognizerBundle> next) {
  TRACE_SPAN("registry.swap");
  if (next == nullptr) {
    throw std::invalid_argument("ModelRegistry::Swap: bundle must be non-null");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(next);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

robust::Status ModelRegistry::LoadFromFile(const std::string& path) {
  TRACE_SPAN("registry.load");
  auto loaded = io::LoadBundleSnapshotFile(path);
  if (!loaded.ok()) {
    loads_failed_.fetch_add(1, std::memory_order_relaxed);
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return loaded.status();
  }
  // The snapshot's eager section embeds the full classifier, so the bundle
  // is rebuilt from the recognizer alone (the classifier section was the
  // cross-check).
  auto bundle = RecognizerBundle::FromRecognizer(std::move(loaded->recognizer));
  loads_ok_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = bundle;
    last_good_path_ = path;
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return robust::Status::Ok();
}

std::string ModelRegistry::last_good_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_good_path_;
}

void ModelRegistry::EnablePersonalization(PersonalizationOptions options) {
  if (cache_ != nullptr) {
    throw std::logic_error("ModelRegistry::EnablePersonalization: already enabled");
  }
  popts_ = std::move(options);
  Cache::Options copts;
  copts.shards = popts_.cache_shards;
  copts.max_entries = popts_.cache_max_entries;
  copts.max_bytes = popts_.cache_max_bytes;
  copts.spill_dir = popts_.delta_dir;
  // Byte-budget estimate of one materialized bundle: the adapted classifier's
  // flat weight/mean blocks and per-class vectors, the shared inverse
  // covariance, the copied AUC (another classifier of similar shape), plus
  // registry/object slack. Deliberately coarse — it only has to make the
  // byte budget meaningful, not account allocator pages.
  const auto& lin = Current()->full_classifier().linear();
  const std::size_t c = lin.num_classes();
  const std::size_t d = lin.dimension();
  copts.model_bytes_estimate = 2 * (4 * c * d + d * d) * sizeof(double) + 4096;
  cache_ = std::make_unique<Cache>(std::move(copts));
}

ModelRegistry::Cache::Materializer ModelRegistry::MaterializerFor(
    std::shared_ptr<const RecognizerBundle> base) const {
  personalize::AdaptOptions aopts;
  aopts.base_strength = popts_.base_strength;
  return [base = std::move(base), aopts](const personalize::UserDelta& delta)
             -> std::shared_ptr<const RecognizerBundle> {
    try {
      return RecognizerBundle::FromRecognizer(
          personalize::AdaptRecognizer(base->recognizer(), delta, aopts));
    } catch (const std::exception&) {
      // Typically a delta shaped for a differently-shaped previous base; the
      // session falls back to the base model and the delta is kept.
      return nullptr;
    }
  };
}

std::shared_ptr<const RecognizerBundle> ModelRegistry::CurrentFor(UserId user) {
  std::shared_ptr<const RecognizerBundle> base = Current();
  if (user == 0 || cache_ == nullptr) {
    return base;
  }
  auto adapted = cache_->Resolve(user, base->version(), MaterializerFor(base));
  return adapted != nullptr ? std::move(adapted) : std::move(base);
}

robust::Status ModelRegistry::AdaptUser(UserId user, classify::ClassId class_id,
                                        const geom::Gesture& example) {
  if (cache_ == nullptr) {
    return robust::Status::FailedPrecondition("AdaptUser: personalization is not enabled");
  }
  if (example.size() < Current()->recognizer().min_prefix_points()) {
    return robust::Status::InvalidArgument(
        "AdaptUser: example has too few points to carry gesture features");
  }
  return AdaptUserFeatures(user, class_id, features::ExtractFeatures(example));
}

robust::Status ModelRegistry::AdaptUserFeatures(UserId user, classify::ClassId class_id,
                                                const linalg::Vector& full_features) {
  TRACE_SPAN("personalize.adapt");
  if (cache_ == nullptr) {
    return robust::Status::FailedPrecondition(
        "AdaptUserFeatures: personalization is not enabled");
  }
  if (user == 0) {
    return robust::Status::FailedPrecondition(
        "AdaptUserFeatures: user 0 is the anonymous user and keeps the base model");
  }
  if (full_features.size() != features::kNumFeatures) {
    return robust::Status::InvalidArgument(
        "AdaptUserFeatures: expected a full 13-entry feature vector");
  }
  std::shared_ptr<const RecognizerBundle> base = Current();
  const classify::GestureClassifier& full = base->full_classifier();
  const linalg::Vector masked = full.mask().Project(full_features);
  return cache_->Adapt(user, class_id, masked.view(),
                       {full.num_classes(), full.linear().dimension()}, base->version(),
                       MaterializerFor(base));
}

ModelLifecycleMetrics ModelRegistry::Metrics() const {
  ModelLifecycleMetrics out;
  out.snapshot_loads_ok = loads_ok_.load(std::memory_order_relaxed);
  out.snapshot_loads_failed = loads_failed_.load(std::memory_order_relaxed);
  out.model_swaps = swaps_.load(std::memory_order_relaxed);
  out.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    const personalize::CacheMetrics cm = cache_->Metrics();
    out.user_adapts = cm.adapts;
    out.user_cache_hits = cm.hits;
    out.user_cache_misses = cm.misses;
    out.user_materializations = cm.materializations;
    out.user_materialize_failed = cm.materialize_failed;
    out.user_evictions = cm.evictions;
    out.user_spills_ok = cm.spills_ok;
    out.user_spills_failed = cm.spills_failed;
    out.user_evictions_dropped = cm.evictions_dropped;
    out.user_rehydrations = cm.rehydrations_ok;
    out.user_rehydrate_failed = cm.rehydrations_failed;
    out.user_models_resident = cm.resident_entries;
    out.user_delta_bytes = cm.resident_bytes;
  }
  return out;
}

}  // namespace grandma::serve
