// The multi-contact entry path into the serving layer. A TouchFrontEnd takes
// raw device contact groups, runs them through robust::ContactTracker
// (debounce, palm rejection, id-continuity repair, per-contact stroke
// certification), then routes:
//
//   single surviving contact  -> the existing single-stroke serve path
//                                (kStrokeBegin / kPoints / kStrokeEnd through
//                                RecognitionServer, primary-contact stroke);
//   multi-contact group       -> toolkit::ComputeTouchTrack — the pinch /
//                                rotate / swipe attribute streams ARE the
//                                answer; the Rubine classifier never sees
//                                them.
//
// Graceful degradation is the tracker's contract: a group that loses
// contacts to palms or chatter degrades to its best surviving stroke and
// still gets served; only a group with nothing usable is rejected, with a
// typed Status (never a throw).
//
// Thread-safety: Submit may be called from any thread; stats accumulate
// under a mutex. One Submit is one whole gesture (the group carries complete
// contact lifetimes), so no per-session ordering state lives here.
#ifndef GRANDMA_SRC_SERVE_TOUCH_FRONTEND_H_
#define GRANDMA_SRC_SERVE_TOUCH_FRONTEND_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "geom/contact.h"
#include "robust/contact_tracker.h"
#include "robust/fault_stats.h"
#include "robust/status.h"
#include "serve/event.h"
#include "serve/server.h"
#include "toolkit/touch_attributes.h"

namespace grandma::serve {

struct TouchFrontEndOptions {
  robust::ContactPolicy policy;
  toolkit::TouchAttributeOptions attributes;
  // Deadline stamped on serve events of routed single strokes (0 = none).
  std::uint32_t deadline_us = 0;
};

// What one Submit produced.
struct TouchSubmitResult {
  toolkit::TouchTrack track;
  robust::ContactReport report;
  // True when the tracker dropped >= 1 contact but the group survived.
  bool degraded = false;
  // True when the group resolved to a single stroke and was submitted to the
  // RecognitionServer (its results arrive through the server's ResultSink).
  bool routed_to_classifier = false;
};

// Cumulative front-end accounting. groups_in == groups_rejected +
// routed_single_stroke + routed_touch on every snapshot — the same exact-
// accounting discipline as ContactReport, one level up.
struct TouchFrontEndStats {
  std::uint64_t groups_in = 0;
  std::uint64_t groups_rejected = 0;
  std::uint64_t groups_degraded = 0;
  std::uint64_t routed_single_stroke = 0;
  std::uint64_t routed_touch = 0;
  // Accepted groups by final TouchGestureKind (index = enum value).
  std::array<std::uint64_t, toolkit::kNumTouchGestureKinds> by_kind{};
  // Tracker + validator detail aggregated across Submits.
  robust::FaultStats faults;

  bool Balanced() const {
    return groups_in == groups_rejected + routed_single_stroke + routed_touch;
  }
  std::string ToString() const;
};

class TouchFrontEnd {
 public:
  // `server` must outlive the front end; may be null, in which case single-
  // stroke groups are tracked and classified by kind but not submitted.
  explicit TouchFrontEnd(RecognitionServer* server, TouchFrontEndOptions options = {});

  // Processes one raw contact group end to end. Errors: the tracker's
  // rejections (kPalmRejected, kContactChatter, kDataLoss, kInvalidArgument,
  // kOutOfRange) and, for routed strokes, the server's Submit errors
  // (kOverloaded, kFailedPrecondition) — the group is still accounted as
  // routed; the caller retries at the serve layer, not here.
  robust::StatusOr<TouchSubmitResult> Submit(SessionId session, UserId user, StrokeId stroke,
                                             const geom::ContactGroup& raw);

  TouchFrontEndStats Stats() const;

  const TouchFrontEndOptions& options() const { return options_; }

 private:
  RecognitionServer* server_;
  TouchFrontEndOptions options_;
  robust::ContactTracker tracker_;
  mutable std::mutex mu_;
  TouchFrontEndStats stats_;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_TOUCH_FRONTEND_H_
