#include "serve/admission.h"

#include <stdexcept>

namespace grandma::serve {

AdmissionController::AdmissionController(AdmissionOptions options) : options_(options) {
  if (!(options_.percentile > 0.0) || options_.percentile > 1.0) {
    throw std::invalid_argument("AdmissionController: percentile must be in (0, 1]");
  }
  if (!(options_.high_watermark_us > options_.low_watermark_us) ||
      !(options_.low_watermark_us >= 0.0)) {
    throw std::invalid_argument(
        "AdmissionController: watermarks must satisfy 0 <= low < high");
  }
  if (options_.eval_period_events == 0) {
    throw std::invalid_argument("AdmissionController: eval_period_events must be positive");
  }
}

void AdmissionController::RecordWait(double wait_us) {
  window_[LatencyBucketOf(wait_us)] += 1;
  window_count_ += 1;
  if (window_count_ >= options_.eval_period_events) {
    EvaluateNow();
  }
}

double AdmissionController::WindowPercentileMicros() const {
  if (window_count_ == 0) {
    return 0.0;
  }
  const double target = options_.percentile * static_cast<double>(window_count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += window_[i];
    if (static_cast<double>(seen) >= target) {
      return LatencyBucketUpperMicros(i);
    }
  }
  return LatencyBucketUpperMicros(kLatencyBuckets - 1);
}

void AdmissionController::EvaluateNow() {
  if (window_count_ == 0) {
    return;  // nothing observed; keep the current mode and dwell
  }
  const double tail_us = WindowPercentileMicros();
  window_.fill(0);
  window_count_ = 0;
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (dwell_evals_ < options_.min_dwell_evals) {
    ++dwell_evals_;
    return;
  }
  const bool shedding = shedding_.load(std::memory_order_relaxed);
  if (!shedding && tail_us > options_.high_watermark_us) {
    shedding_.store(true, std::memory_order_release);
    switches_to_shed_.fetch_add(1, std::memory_order_relaxed);
    dwell_evals_ = 0;
  } else if (shedding && tail_us < options_.low_watermark_us) {
    shedding_.store(false, std::memory_order_release);
    switches_to_block_.fetch_add(1, std::memory_order_relaxed);
    dwell_evals_ = 0;
  }
}

}  // namespace grandma::serve
