// The concurrent multi-session recognition server. N shard workers each own
// a bounded event queue and a private session table; a session is pinned to
// one shard by id hash, so all of its events are processed in submission
// order by one thread while different sessions recognize in parallel. The
// only shared mutable state is the queues (mutex-protected) and the metrics
// (relaxed atomics); the trained model is shared immutably via
// RecognizerBundle.
//
//   clients --Submit--> [shard queue]... --worker--> SessionManager
//                                                    -> EagerStream per point
//                                                    -> ResultCallback
//
// Overload: with OverloadPolicy::kShed a full shard queue rejects the event
// with robust::Status kOverloaded (counted per shard); with kBlock the
// submitting thread waits for space — backpressure propagates to producers.
// kAdaptive starts as kBlock and flips per shard to kShed (and back) from a
// hysteresis controller over observed queue-wait tail latency (admission.h).
// Independently, events carrying a deadline_us budget that expires while
// queued are dropped by the worker before classification (typed
// kDeadlineExceeded, ServerOptions::on_drop, events_deadline_expired).
#ifndef GRANDMA_SRC_SERVE_SERVER_H_
#define GRANDMA_SRC_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "robust/status.h"
#include "serve/admission.h"
#include "serve/bounded_queue.h"
#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/recognizer_bundle.h"
#include "serve/session_manager.h"

namespace grandma::serve {

enum class OverloadPolicy : std::uint8_t {
  // Reject events when the target shard queue is full (fail fast, shed load).
  kShed,
  // Block the submitter until the queue has room (backpressure).
  kBlock,
  // Start in kBlock and let a per-shard AdmissionController flip the shard
  // to kShed (and back) from observed queue-wait tail latency — graceful
  // degradation under sustained overload, lossless otherwise. Tuned by
  // ServerOptions::admission.
  kAdaptive,
};

// Invoked on the worker thread for every accepted event the worker drops
// instead of processing (today: deadline expiry, status kDeadlineExceeded).
// Same thread-safety contract as ResultSink; exceptions are swallowed and
// counted as callback_errors.
using DropSink = std::function<void(const ServeEvent&, const robust::Status&)>;

struct ServerOptions {
  std::size_t num_shards = 1;
  // Per-shard event queue capacity.
  std::size_t queue_capacity = 1024;
  OverloadPolicy overload = OverloadPolicy::kShed;
  // Hysteresis tuning for OverloadPolicy::kAdaptive (ignored otherwise).
  AdmissionOptions admission;
  // Optional observer for worker-side drops (deadline-expired events).
  DropSink on_drop;
  // Max events a shard worker drains per queue wakeup (clamped to >= 1).
  // Batch dequeue amortizes the queue lock and the consumer wakeup across
  // bursts (ROADMAP item 2); per-event processing semantics are unchanged —
  // one queue.wait sample, deadline check, and dispatch per event, in
  // submission order.
  std::size_t batch_dequeue = 16;
  // When false, workers are not spawned until Start() — events queue up (and
  // shed) deterministically. Tests use this to exercise the backpressure and
  // drain paths without timing races.
  bool start_workers = true;
  // N-best configuration applied to every session (depth 0 = disabled, the
  // legacy single-answer surface). See serve::NBestOptions / session.h.
  NBestOptions nbest;
};

// Thread-safety: Submit, Metrics, ShardOf, and Shutdown may be called from
// any thread. The ResultCallback runs on shard worker threads — possibly
// several concurrently for different sessions — and must be thread-safe
// across sessions; per session it is totally ordered. Exceptions it throws
// are swallowed and counted (callback_errors).
class RecognitionServer {
 public:
  // Single-model server: wraps `bundle` in a private ModelRegistry (the
  // model can still be hot-swapped through registry()).
  RecognitionServer(std::shared_ptr<const RecognizerBundle> bundle, ServerOptions options,
                    ResultSink on_result);

  // Hot-reload server: serves whatever `registry` currently publishes.
  // Sessions pin the bundle at stroke start, so a swap (or a registry
  // LoadFromFile) takes effect on the next stroke of each session and never
  // mixes models mid-stroke. The registry may be shared with an operator
  // thread that calls LoadFromFile concurrently.
  RecognitionServer(std::shared_ptr<ModelRegistry> registry, ServerOptions options,
                    ResultSink on_result);
  ~RecognitionServer();

  RecognitionServer(const RecognitionServer&) = delete;
  RecognitionServer& operator=(const RecognitionServer&) = delete;

  // Routes `event` to its session's shard. Stamps event.enqueue_time.
  // Errors: kInvalidArgument (malformed event), kOverloaded (kShed policy,
  // queue full), kFailedPrecondition (server shut down; also returned by
  // kBlock submits raced with shutdown).
  robust::Status Submit(ServeEvent event);

  // Spawns the workers when constructed with start_workers = false. No-op
  // when they are already running.
  void Start();

  // Closes every queue, lets the workers drain what was already accepted,
  // and joins them. Idempotent; called by the destructor.
  void Shutdown();

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t ShardOf(SessionId session) const;
  // The bundle the server was constructed with (kept alive for the server's
  // lifetime). Under hot reload the *current* model is registry()->Current().
  const RecognizerBundle& bundle() const { return *bundle_; }
  // The registry serving this server; never null.
  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }

  // Point-in-time snapshot; safe while the server is running.
  ServerMetrics Metrics() const;

 private:
  struct Shard {
    Shard(std::size_t capacity, const AdmissionOptions& admission_options)
        : queue(capacity), admission(admission_options) {}

    BoundedQueue<ServeEvent> queue;
    // Per-shard hysteresis controller (consulted only under kAdaptive).
    AdmissionController admission;
    // Worker-private; constructed before the worker starts, read by it only.
    std::unique_ptr<SessionManager> sessions;
    std::thread worker;
    // Counters: single logical writer each, relaxed reads from Metrics().
    std::atomic<std::uint64_t> events_processed{0};
    std::atomic<std::uint64_t> points_processed{0};
    std::atomic<std::uint64_t> strokes_completed{0};
    std::atomic<std::uint64_t> eager_fires{0};
    std::atomic<std::uint64_t> sessions_resident{0};
    std::atomic<std::uint64_t> sessions_created{0};
    std::atomic<std::uint64_t> events_shed{0};  // producer-side writer
    std::atomic<std::uint64_t> events_deadline_expired{0};
    std::atomic<std::uint64_t> callback_errors{0};
    std::atomic<std::uint64_t> nbest_deferred{0};
    std::atomic<std::uint64_t> nbest_ask_again{0};
    // Queue wait of events the worker actually processed (accepted-event
    // latency; deadline-expired drops are excluded and counted above).
    LatencyHistogram queue_latency;
  };

  void WorkerLoop(Shard& shard);

  std::shared_ptr<ModelRegistry> registry_;
  // The construction-time bundle, retained so bundle() stays valid across
  // swaps.
  std::shared_ptr<const RecognizerBundle> bundle_;
  ServerOptions options_;
  ResultSink on_result_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_{false};
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_SERVER_H_
