// The per-shard session table. Each shard worker owns exactly one
// SessionManager; because sessions are pinned to shards by id hash, no
// session is ever visible to two managers, and the table needs no locking.
#ifndef GRANDMA_SRC_SERVE_SESSION_MANAGER_H_
#define GRANDMA_SRC_SERVE_SESSION_MANAGER_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>

#include "eager/eager_recognizer.h"
#include "serve/recognizer_bundle.h"
#include "serve/session.h"

namespace grandma::serve {

// Thread-safety: none — each instance belongs to a single shard worker. The
// shared `recognizer` is only read (see the RecognizerBundle contract).
class SessionManager {
 public:
  // New sessions bind to this bare recognizer (no pin; model_version 0).
  // `nbest` configures every session this manager creates (see session.h).
  explicit SessionManager(const eager::EagerRecognizer& recognizer, NBestOptions nbest = {})
      : recognizer_(&recognizer), nbest_(nbest) {}

  // New sessions pin this bundle at creation. Under a hot-swapping server
  // the pin is refreshed per stroke anyway (Session::BeginStroke), so this
  // only decides which model a session is born with.
  explicit SessionManager(std::shared_ptr<const RecognizerBundle> bundle, NBestOptions nbest = {})
      : bundle_(std::move(bundle)), recognizer_(&bundle_->recognizer()), nbest_(nbest) {}

  // The session's state, created on first contact.
  Session& GetOrCreate(SessionId id);

  // Discards a session's state; false when the session was unknown.
  bool Erase(SessionId id);

  const Session* Find(SessionId id) const;

  // Sessions currently resident.
  std::size_t size() const { return sessions_.size(); }
  // Sessions ever created (monotonic; includes erased ones).
  std::size_t created() const { return created_; }

 private:
  std::shared_ptr<const RecognizerBundle> bundle_;  // null in bare mode
  const eager::EagerRecognizer* recognizer_;
  NBestOptions nbest_;
  std::unordered_map<SessionId, Session> sessions_;
  std::size_t created_ = 0;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_SESSION_MANAGER_H_
