// The wire-level vocabulary of the recognition server: what clients submit
// (ServeEvent) and what the server hands back (RecognitionResult). A session
// is one end user's input connection; within a session, strokes are numbered
// and each stroke is a begin / points... / end sequence, mirroring the
// mouse-down / mouse-move / mouse-up structure the paper's single-user input
// loop consumes.
#ifndef GRANDMA_SRC_SERVE_EVENT_H_
#define GRANDMA_SRC_SERVE_EVENT_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "classify/linear_classifier.h"
#include "classify/rejection.h"
#include "geom/point.h"

namespace grandma::serve {

using SessionId = std::uint64_t;
using StrokeId = std::uint32_t;
// End-user identity for per-user personalization (src/personalize). Distinct
// from SessionId: one user may hold many concurrent sessions (devices), and
// sessions are transient while a user's adapted model persists across them.
// User 0 is the anonymous user and always gets the shared base model.
using UserId = std::uint64_t;

enum class EventType : std::uint8_t {
  // Start a new stroke for the session (resets its incremental extractor).
  kStrokeBegin,
  // One or more input points of the current stroke, in arrival order.
  // Devices deliver coalesced batches (touch frames); a batch of one is a
  // plain mouse-move.
  kPoints,
  // Mouse-up: classify whatever was seen (two-phase path when the eager
  // predicate never fired mid-stroke).
  kStrokeEnd,
  // The session disconnected; its state is discarded.
  kSessionEnd,
};

inline const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kStrokeBegin:
      return "STROKE_BEGIN";
    case EventType::kPoints:
      return "POINTS";
    case EventType::kStrokeEnd:
      return "STROKE_END";
    case EventType::kSessionEnd:
      return "SESSION_END";
  }
  return "UNKNOWN";
}

// One queued unit of work. `enqueue_time` is stamped by the server at Submit
// so the worker can account the enqueue->recognize latency.
struct ServeEvent {
  SessionId session = 0;
  EventType type = EventType::kPoints;
  StrokeId stroke = 0;
  std::vector<geom::TimedPoint> points;  // kPoints only
  // Deadline budget in microseconds measured from Submit; 0 means no
  // deadline. An event still queued when its budget expires is dropped by
  // the worker before classification (kDeadlineExceeded, counted in
  // events_deadline_expired, reported through ServerOptions::on_drop) — a
  // stale eager-recognition answer is worse than none.
  std::uint32_t deadline_us = 0;
  std::chrono::steady_clock::time_point enqueue_time{};
  // Owner of the stroke, for per-user model resolution at stroke boundaries
  // (0 = anonymous, base model). Deliberately last so existing positional
  // aggregate initializers stay valid.
  UserId user = 0;
};

enum class ResultKind : std::uint8_t {
  // The AUC judged the stroke unambiguous mid-stroke — the paper's eager
  // recognition moment, after which a client enters its manipulation phase.
  kEagerFire,
  // Mouse-up classification of the complete stroke (always emitted, whether
  // or not an eager fire preceded it).
  kStrokeEnd,
};

// One recognition answer, delivered on the owning shard's worker thread.
// Results for a given session are totally ordered; results for different
// sessions on different shards arrive concurrently.
struct RecognitionResult {
  SessionId session = 0;
  StrokeId stroke = 0;
  ResultKind kind = ResultKind::kStrokeEnd;
  classify::Classification classification;
  std::string class_name;
  // Points consumed when this result was produced.
  std::size_t points_seen = 0;
  // True when the eager predicate fired during this stroke (on kStrokeEnd
  // results this reports whether a kEagerFire preceded it).
  bool eager_fired = false;
  // Points seen at the moment of the eager fire; 0 when it never fired.
  std::size_t fired_at = 0;
  // Version of the RecognizerBundle that produced this result (0 for
  // sessions bound directly to a bare recognizer). Because sessions pin
  // their bundle at stroke start, every result of one stroke carries the
  // same version even if the server hot-swapped models mid-stroke.
  std::uint64_t model_version = 0;

  // --- N-best surface (NBestOptions::depth > 0 only; see session.h) -------
  // Ranked alternatives for this result; the leading nbest_count entries are
  // live and nbest[0] mirrors `classification` bit for bit. Zero when the
  // session runs with n-best disabled (the default).
  std::array<classify::NBestEntry, classify::kMaxNBest> nbest{};
  std::size_t nbest_count = 0;
  // What the rejection policy says the client should do with this result,
  // and why ("High Five" defer/ask-again semantics).
  classify::NBestAction nbest_action = classify::NBestAction::kAccept;
  classify::RejectReason reject_reason = classify::RejectReason::kAccepted;
  // Winner-minus-runner-up probability margin (0 with n-best disabled).
  double nbest_margin = 0.0;
};

}  // namespace grandma::serve

#endif  // GRANDMA_SRC_SERVE_EVENT_H_
