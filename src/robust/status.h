// Error propagation for the fault-tolerance layer: a Status/StatusOr<T> pair
// in the style of absl::Status, kept header-only and dependency-free so every
// pipeline stage (geom -> features -> classify -> eager -> toolkit -> gdp)
// can report recoverable failures without throwing across layer boundaries.
#ifndef GRANDMA_SRC_ROBUST_STATUS_H_
#define GRANDMA_SRC_ROBUST_STATUS_H_

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace grandma::robust {

// Coarse failure taxonomy; see docs/ROBUSTNESS.md for which stage emits what.
enum class StatusCode {
  kOk = 0,
  // The caller handed in something structurally unusable (empty stroke,
  // mismatched dimensions). Not repairable by policy.
  kInvalidArgument,
  // Input violated a precondition that repair policy chose not to fix.
  kFailedPrecondition,
  // A size or value exceeded the sanity bounds (absurd point counts,
  // coordinates beyond any plausible device range).
  kOutOfRange,
  // Input was damaged badly enough that repair would fabricate data (every
  // point non-finite, stroke truncated below the minimum).
  kDataLoss,
  // The operation completed but only by degrading (fallback classifier,
  // two-phase recognition instead of eager). Carriers of this code still
  // produced a usable result.
  kDegraded,
  // The system is at capacity and shed this request rather than queueing it
  // (bounded serve queues under load). The input was fine; retrying later can
  // succeed.
  kOverloaded,
  // A persisted snapshot failed its integrity check (bad magic, payload CRC
  // mismatch, wrong section kind). The bytes on disk are not a usable model.
  kCorruptSnapshot,
  // A snapshot carries a format version this binary does not speak. The file
  // may be perfectly intact — just written by a different era of the code.
  kVersionMismatch,
  // A snapshot (or other persisted stream) ended before its declared
  // contents did — the classic torn-write / partial-download shape.
  kTruncated,
  // The event sat in a queue past its deadline budget and was dropped
  // before classification: a stale answer is worse than no answer for an
  // interactive gesture. The input was fine; the system was too slow.
  kDeadlineExceeded,
  // A multi-touch contact group was rejected because every surviving contact
  // was a palm (large-area, short-lived, or offset touches that carry no
  // gesture intent). Individual palms inside an otherwise-healthy group are
  // dropped silently; this code means nothing usable remained.
  kPalmRejected,
  // Contact up/down chatter (a contact releasing and re-landing within the
  // debounce window) under a no-repair policy. With repair enabled chatter
  // is stitched instead and never surfaces as an error.
  kContactChatter,
  // A bug on our side (should not happen on any input).
  kInternal,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDegraded:
      return "DEGRADED";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kCorruptSnapshot:
      return "CORRUPT_SNAPSHOT";
    case StatusCode::kVersionMismatch:
      return "VERSION_MISMATCH";
    case StatusCode::kTruncated:
      return "TRUNCATED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kPalmRejected:
      return "PALM_REJECTED";
    case StatusCode::kContactChatter:
      return "CONTACT_CHATTER";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// A success-or-error value. Default-constructed Status is OK; error statuses
// carry a code and a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Degraded(std::string msg) {
    return Status(StatusCode::kDegraded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status CorruptSnapshot(std::string msg) {
    return Status(StatusCode::kCorruptSnapshot, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }
  static Status Truncated(std::string msg) {
    return Status(StatusCode::kTruncated, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status PalmRejected(std::string msg) {
    return Status(StatusCode::kPalmRejected, std::move(msg));
  }
  static Status ContactChatter(std::string msg) {
    return Status(StatusCode::kContactChatter, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a T or a non-OK Status. value() on an error throws std::logic_error
// — extracting a value that does not exist is a programmer error, unlike the
// error state itself, which is an expected outcome callers must check.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from an OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    Check();
    return *value_;
  }
  const T& value() const {
    Check();
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // The value, or `fallback` when this holds an error.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  void Check() const {
    if (!ok()) {
      throw std::logic_error("StatusOr::value on error status: " + status_.ToString());
    }
  }

  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_STATUS_H_
