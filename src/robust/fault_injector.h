// Deterministic fault injection: a decorator over the synthetic gesture
// generator (src/synth) and the io::EventTrace replay path that damages
// strokes the way misbehaving hardware does — dropped events, timestamp
// jitter and reordering, coordinate spikes, non-finite samples, stuck
// points, truncation. Seeded, so every test and bench can replay the exact
// same fault load and assert on the FaultRecord it produces.
#ifndef GRANDMA_SRC_ROBUST_FAULT_INJECTOR_H_
#define GRANDMA_SRC_ROBUST_FAULT_INJECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "geom/contact.h"
#include "geom/gesture.h"
#include "toolkit/event.h"

namespace grandma::robust {

enum class FaultKind : std::size_t {
  // --- point-level: damage inside one stroke ---
  kDropPoints = 0,      // lose 1-3 interior samples (event-queue overflow)
  kTimestampJitter,     // +-jitter on a run of timestamps; may reorder
  kDuplicateTimestamp,  // a stuck clock: t[i+1] == t[i]
  kCoordinateSpike,     // one sample teleports thousands of px away
  kNonFinite,           // one coordinate becomes NaN or Inf
  kStuckPoint,          // one sample repeats several times, clock frozen
  kTruncate,            // the tail of the stroke never arrives
  // --- contact-level: damage to a multi-touch group's lifecycle ---
  kContactBounce,       // up/down chatter: one contact splits into two within
                        // the debounce window (libinput evdev-debounce)
  kPalmTouch,           // a large-area short-lived spurious contact lands
  kFingerCountChange,   // an extra contact joins mid-gesture
  kContactIdSwap,       // two concurrent contacts swap slot ids mid-stream
};
inline constexpr std::size_t kNumPointFaultKinds = 7;
inline constexpr std::size_t kNumFaultKinds = 11;

const char* FaultKindName(FaultKind kind);

// Whether a fault of this kind is *repairable* — the validator/tracker can
// restore a classifiable stroke or group (spikes dropped, timestamps clamped,
// chatter stitched, palms rejected, crossed ids swapped back) — or only
// *degrading*: the data is gone (dropped/truncated samples) and the stroke
// survives in a lossy form. The fault-sweep accounting depends on this split.
bool FaultKindRepairable(FaultKind kind);

// True for the kinds that only make sense on a ContactGroup (they alter the
// set of contacts rather than the points of one stroke). Corrupt()/
// CorruptTrace() never apply these; CorruptContacts() applies both levels.
bool FaultKindContactLevel(FaultKind kind);

struct FaultInjectorOptions {
  // Per-stroke probability that any faults are injected at all.
  double fault_rate = 0.1;
  // When a stroke is selected, 1..max_faults_per_stroke distinct kinds fire.
  std::size_t max_faults_per_stroke = 2;
  // Per-kind enable switches (indexed by FaultKind).
  std::array<bool, kNumFaultKinds> enabled = {true, true, true, true, true, true,
                                              true, true, true, true, true};

  double timestamp_jitter_ms = 40.0;   // magnitude for kTimestampJitter
  double spike_distance = 5000.0;      // offset for kCoordinateSpike
  std::size_t stuck_repeats = 4;       // copies inserted by kStuckPoint

  // kContactBounce: the released-and-relanded contact reappears after this
  // many milliseconds (uniform in (0, bounce_gap_ms]); kept under the
  // tracker's default debounce window so the chatter is stitchable.
  double bounce_gap_ms = 18.0;
  // kPalmTouch: area of the spurious contact (uniform in [1, 2] times this —
  // well above any fingertip) and the lifetime cap that makes it short-lived.
  double palm_area = 400.0;
  double palm_duration_ms = 120.0;
  // How far from the gesture's bounding box the palm lands.
  double palm_offset_px = 120.0;
  // kFingerCountChange: the joining contact lands this far into the group's
  // lifetime (fraction, uniform in [this, 0.9]); well past any legitimate
  // start stagger.
  double late_join_fraction = 0.5;
  // kContactIdSwap: minimum separation between the two contacts at the swap
  // instant. Two-finger synth gestures run 30-120px apart — under
  // ContactPolicy::id_swap_jump_px (200), so an injected cross between them
  // would produce seam jumps too small for the tracker's un-cross pass to
  // detect and surface as plain degradation instead of exercising the
  // repair. When the pair is closer than this, the injector translates one
  // contact's whole stroke outward until the crossed tails jump at least
  // this far. Keep it above the tracker policy's id_swap_jump_px.
  double id_swap_min_separation_px = 250.0;
};

// What one injector instance has done so far.
struct FaultRecord {
  std::array<std::uint64_t, kNumFaultKinds> counts{};
  std::uint64_t strokes_seen = 0;
  std::uint64_t strokes_faulted = 0;

  std::uint64_t total_faults() const;
  std::string ToJson() const;
};

// Per-stroke outcome of one Corrupt() call.
struct InjectedFaults {
  std::array<std::uint8_t, kNumFaultKinds> applied{};
  bool any() const;
  // True when at least one fault fired and every fired fault is repairable.
  bool only_repairable() const;
};

class FaultInjector {
 public:
  FaultInjector(const FaultInjectorOptions& options, std::uint64_t seed)
      : options_(options), engine_(seed) {}

  // Damages one gesture (the synth decoration point). Returns the corrupted
  // stroke; `injected` (optional) reports which kinds fired on this stroke.
  geom::Gesture Corrupt(const geom::Gesture& g, InjectedFaults* injected = nullptr);

  // Damages the point-carrying events of an input trace (the io::EventTrace
  // decoration point). The mouse-down/up bracketing is rebuilt around the
  // surviving points so replay still forms a gesture; timer events are
  // discarded (replay regenerates ticks from the gaps).
  std::vector<toolkit::InputEvent> CorruptTrace(const std::vector<toolkit::InputEvent>& trace,
                                                InjectedFaults* injected = nullptr);

  // Damages one multi-contact group (the contact-synth decoration point).
  // Both fault levels apply: contact-level kinds alter the set of contacts
  // (chatter splits, palm landings, late joiners, id swaps); point-level
  // kinds damage the points of one randomly chosen contact. A group counts
  // as one "stroke" in the FaultRecord.
  geom::ContactGroup CorruptContacts(const geom::ContactGroup& group,
                                     InjectedFaults* injected = nullptr);

  const FaultRecord& record() const { return record_; }
  void ResetRecord() { record_ = FaultRecord{}; }
  const FaultInjectorOptions& options() const { return options_; }

 private:
  // Applies point-level faults to a raw point vector; shared by the stroke
  // and trace decoration points (contact-level kinds are skipped there).
  void CorruptPoints(std::vector<geom::TimedPoint>& pts, InjectedFaults& injected);
  void ApplyFault(FaultKind kind, std::vector<geom::TimedPoint>& pts);
  // Contact-level damage; returns true when the group actually changed.
  bool ApplyContactFault(FaultKind kind, geom::ContactGroup& group);
  // The enabled kinds, optionally restricted to point-level ones, in a
  // freshly shuffled order.
  std::vector<FaultKind> ShuffledKinds(bool point_level_only);

  double Uniform(double lo, double hi);
  std::size_t Index(std::size_t n);  // uniform in [0, n)

  FaultInjectorOptions options_;
  std::mt19937_64 engine_;
  FaultRecord record_;
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_FAULT_INJECTOR_H_
