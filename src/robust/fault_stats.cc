#include "robust/fault_stats.h"

#include <sstream>
#include <utility>
#include <vector>

namespace grandma::robust {

namespace {

// One place that knows every field, so Merge/ToString/ToJson cannot drift
// out of sync with the struct definition.
std::vector<std::pair<const char*, std::uint64_t FaultStats::*>> Fields() {
  return {
      {"strokes_validated", &FaultStats::strokes_validated},
      {"strokes_clean", &FaultStats::strokes_clean},
      {"strokes_repaired", &FaultStats::strokes_repaired},
      {"strokes_rejected", &FaultStats::strokes_rejected},
      {"points_dropped_nonfinite", &FaultStats::points_dropped_nonfinite},
      {"points_dropped_out_of_range", &FaultStats::points_dropped_out_of_range},
      {"points_dropped_spike", &FaultStats::points_dropped_spike},
      {"timestamps_repaired", &FaultStats::timestamps_repaired},
      {"groups_tracked", &FaultStats::groups_tracked},
      {"groups_clean", &FaultStats::groups_clean},
      {"groups_repaired", &FaultStats::groups_repaired},
      {"groups_rejected", &FaultStats::groups_rejected},
      {"groups_degraded", &FaultStats::groups_degraded},
      {"contacts_tracked", &FaultStats::contacts_tracked},
      {"contacts_passed_clean", &FaultStats::contacts_passed_clean},
      {"contacts_repaired", &FaultStats::contacts_repaired},
      {"contacts_rejected", &FaultStats::contacts_rejected},
      {"contact_bounces_stitched", &FaultStats::contact_bounces_stitched},
      {"palms_rejected", &FaultStats::palms_rejected},
      {"contact_late_joiners_dropped", &FaultStats::contact_late_joiners_dropped},
      {"contact_id_swaps_repaired", &FaultStats::contact_id_swaps_repaired},
      {"training_examples_dropped", &FaultStats::training_examples_dropped},
      {"covariance_ridge_repairs", &FaultStats::covariance_ridge_repairs},
      {"covariance_diagonal_fallbacks", &FaultStats::covariance_diagonal_fallbacks},
      {"eager_twophase_fallbacks", &FaultStats::eager_twophase_fallbacks},
      {"handler_exceptions", &FaultStats::handler_exceptions},
      {"handlers_quarantined", &FaultStats::handlers_quarantined},
      {"events_skipped_quarantined", &FaultStats::events_skipped_quarantined},
  };
}

}  // namespace

void FaultStats::Merge(const FaultStats& other) {
  for (const auto& [name, member] : Fields()) {
    (void)name;
    this->*member += other.*member;
  }
}

std::uint64_t FaultStats::TotalFaultEvents() const {
  std::uint64_t total = 0;
  for (const auto& [name, member] : Fields()) {
    (void)name;
    total += this->*member;
  }
  return total - strokes_validated - strokes_clean - groups_tracked - groups_clean -
         contacts_tracked - contacts_passed_clean;
}

std::string FaultStats::ToString() const {
  std::ostringstream out;
  for (const auto& [name, member] : Fields()) {
    const std::uint64_t value = this->*member;
    if (value != 0) {
      out << name << ": " << value << '\n';
    }
  }
  return out.str();
}

std::string FaultStats::ToJson() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [name, member] : Fields()) {
    if (!first) {
      out << ", ";
    }
    first = false;
    out << '"' << name << "\": " << this->*member;
  }
  out << '}';
  return out.str();
}

}  // namespace grandma::robust
