// Deterministic crash injection for the crash-safety harness: a process
// "dies" at an exact byte offset of a file write, or at a named operation
// site (e.g. just before the atomic rename). Dying is simulated by throwing
// CrashPointTriggered out of the instrumented operation — nothing after the
// throw runs, so whatever was on disk at that instant is exactly what a real
// kill -9 would have left. The chaos harness (bench/chaos_recovery) arms a
// point, attempts a snapshot write, catches the "crash", and then proves the
// loader still recovers the last good model.
//
// Thread-safety: the armed state is plain atomics; arming/disarming while
// other threads are mid-write is not supported (the harness arms from the
// same thread that writes). Disarmed cost is one relaxed load per check.
#ifndef GRANDMA_SRC_ROBUST_CRASH_POINT_H_
#define GRANDMA_SRC_ROBUST_CRASH_POINT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace grandma::robust {

// Thrown by an instrumented operation when the armed crash fires. Callers
// simulating a crash must let it unwind to the harness: cleanup code that
// would not survive a real crash (temp-file removal, renames) must not run.
class CrashPointTriggered : public std::runtime_error {
 public:
  explicit CrashPointTriggered(const std::string& what) : std::runtime_error(what) {}
};

class CrashPoint {
 public:
  // Arms the byte counter: the next instrumented write stream dies once
  // `bytes` bytes have been written (0 = die before the first byte).
  static void ArmAfterBytes(std::uint64_t bytes);

  // Arms a named operation site (e.g. "atomic_write.before_rename"): the
  // next OnSite() with a matching name dies.
  static void ArmAtSite(std::string_view site);

  static void Disarm();
  static bool armed();

  // Bytes written through instrumented streams since the last Arm/Disarm.
  static std::uint64_t bytes_written();
  // Total crashes fired since process start (for harness accounting).
  static std::uint64_t crashes_fired();

  // --- called by instrumented code ---
  // The writer is about to emit `n` bytes; returns how many of them it may
  // put on disk before the armed crash fires (always `n` when no byte budget
  // is armed). The returned count is accounted immediately. The caller must
  // write exactly that prefix, flush it, and then call Die() when the return
  // value was < n — so the bytes that "reached the disk" are byte-exact.
  static std::uint64_t Allow(std::uint64_t n);
  // Records a fired crash and throws CrashPointTriggered.
  [[noreturn]] static void Die(std::string what);
  // Throws CrashPointTriggered when `site` is armed.
  static void OnSite(std::string_view site);
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_CRASH_POINT_H_
