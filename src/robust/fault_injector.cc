#include "robust/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace grandma::robust {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropPoints:
      return "drop_points";
    case FaultKind::kTimestampJitter:
      return "timestamp_jitter";
    case FaultKind::kDuplicateTimestamp:
      return "duplicate_timestamp";
    case FaultKind::kCoordinateSpike:
      return "coordinate_spike";
    case FaultKind::kNonFinite:
      return "non_finite";
    case FaultKind::kStuckPoint:
      return "stuck_point";
    case FaultKind::kTruncate:
      return "truncate";
  }
  return "?";
}

bool FaultKindRepairable(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTimestampJitter:
    case FaultKind::kDuplicateTimestamp:
    case FaultKind::kCoordinateSpike:
    case FaultKind::kNonFinite:
    case FaultKind::kStuckPoint:
      return true;  // the validator restores a fully classifiable stroke
    case FaultKind::kDropPoints:
    case FaultKind::kTruncate:
      return false;  // the samples are gone; the stroke survives degraded
  }
  return false;
}

std::uint64_t FaultRecord::total_faults() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) {
    total += c;
  }
  return total;
}

std::string FaultRecord::ToJson() const {
  std::ostringstream out;
  out << "{\"strokes_seen\": " << strokes_seen
      << ", \"strokes_faulted\": " << strokes_faulted;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    out << ", \"" << FaultKindName(static_cast<FaultKind>(k)) << "\": " << counts[k];
  }
  out << '}';
  return out.str();
}

bool InjectedFaults::any() const {
  for (std::uint8_t a : applied) {
    if (a != 0) {
      return true;
    }
  }
  return false;
}

bool InjectedFaults::only_repairable() const {
  bool fired = false;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (applied[k] == 0) {
      continue;
    }
    fired = true;
    if (!FaultKindRepairable(static_cast<FaultKind>(k))) {
      return false;
    }
  }
  return fired;
}

double FaultInjector::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t FaultInjector::Index(std::size_t n) {
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

void FaultInjector::ApplyFault(FaultKind kind, std::vector<geom::TimedPoint>& pts) {
  switch (kind) {
    case FaultKind::kDropPoints: {
      if (pts.size() < 5) {
        return;
      }
      const std::size_t n = 1 + Index(3);
      for (std::size_t k = 0; k < n && pts.size() > 4; ++k) {
        pts.erase(pts.begin() + static_cast<std::ptrdiff_t>(1 + Index(pts.size() - 2)));
      }
      break;
    }
    case FaultKind::kTimestampJitter: {
      if (pts.size() < 2) {
        return;
      }
      const std::size_t start = Index(pts.size());
      const std::size_t len = std::min(pts.size() - start, std::size_t{1} + Index(4));
      for (std::size_t i = start; i < start + len; ++i) {
        pts[i].t += Uniform(-options_.timestamp_jitter_ms, options_.timestamp_jitter_ms);
      }
      break;
    }
    case FaultKind::kDuplicateTimestamp: {
      if (pts.size() < 2) {
        return;
      }
      const std::size_t i = Index(pts.size() - 1);
      pts[i + 1].t = pts[i].t;
      break;
    }
    case FaultKind::kCoordinateSpike: {
      const std::size_t i = Index(pts.size());
      const double magnitude = options_.spike_distance * Uniform(0.5, 1.5);
      const double angle = Uniform(0.0, 6.283185307179586);
      pts[i].x += magnitude * std::cos(angle);
      pts[i].y += magnitude * std::sin(angle);
      break;
    }
    case FaultKind::kNonFinite: {
      const std::size_t i = Index(pts.size());
      switch (Index(3)) {
        case 0:
          pts[i].x = std::numeric_limits<double>::quiet_NaN();
          break;
        case 1:
          pts[i].y = std::numeric_limits<double>::infinity();
          break;
        default:
          pts[i].t = -std::numeric_limits<double>::infinity();
          break;
      }
      break;
    }
    case FaultKind::kStuckPoint: {
      const std::size_t i = Index(pts.size());
      const geom::TimedPoint stuck = pts[i];
      pts.insert(pts.begin() + static_cast<std::ptrdiff_t>(i + 1), options_.stuck_repeats,
                 stuck);
      break;
    }
    case FaultKind::kTruncate: {
      if (pts.size() < 4) {
        return;
      }
      const std::size_t keep = 1 + Index(pts.size() - 1);
      pts.resize(keep);
      break;
    }
  }
}

void FaultInjector::CorruptPoints(std::vector<geom::TimedPoint>& pts,
                                  InjectedFaults& injected) {
  ++record_.strokes_seen;
  if (pts.empty() || Uniform(0.0, 1.0) >= options_.fault_rate) {
    return;
  }

  std::vector<FaultKind> kinds;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (options_.enabled[k]) {
      kinds.push_back(static_cast<FaultKind>(k));
    }
  }
  if (kinds.empty()) {
    return;
  }
  std::shuffle(kinds.begin(), kinds.end(), engine_);
  const std::size_t num =
      std::min(kinds.size(), std::size_t{1} + Index(std::max<std::size_t>(
                                 options_.max_faults_per_stroke, 1)));

  bool mutated = false;
  for (std::size_t k = 0; k < num; ++k) {
    const std::size_t before = pts.size();
    const std::vector<geom::TimedPoint> snapshot = pts;
    ApplyFault(kinds[k], pts);
    // Count only faults that actually changed the stroke; small strokes make
    // some kinds no-ops and those must not inflate the record.
    if (pts.size() != before || pts != snapshot) {
      injected.applied[static_cast<std::size_t>(kinds[k])] = 1;
      ++record_.counts[static_cast<std::size_t>(kinds[k])];
      mutated = true;
    }
  }
  if (mutated) {
    ++record_.strokes_faulted;
  }
}

geom::Gesture FaultInjector::Corrupt(const geom::Gesture& g, InjectedFaults* injected) {
  InjectedFaults local;
  InjectedFaults& inj = injected != nullptr ? *injected : local;
  inj = InjectedFaults{};
  std::vector<geom::TimedPoint> pts = g.points();
  CorruptPoints(pts, inj);
  return geom::Gesture(std::move(pts));
}

std::vector<toolkit::InputEvent> FaultInjector::CorruptTrace(
    const std::vector<toolkit::InputEvent>& trace, InjectedFaults* injected) {
  InjectedFaults local;
  InjectedFaults& inj = injected != nullptr ? *injected : local;
  inj = InjectedFaults{};

  // Pull the positional payload out of the trace, damage it, and rebuild a
  // well-formed down/move.../up sequence around the surviving points. Timer
  // events are discarded — replay regenerates ticks from the gaps.
  std::vector<geom::TimedPoint> pts;
  int button = 0;
  bool saw_down = false;
  for (const toolkit::InputEvent& e : trace) {
    switch (e.type) {
      case toolkit::EventType::kMouseDown:
        button = e.button;
        saw_down = true;
        [[fallthrough]];
      case toolkit::EventType::kMouseMove:
      case toolkit::EventType::kMouseUp:
        pts.push_back(geom::TimedPoint{e.x, e.y, e.time_ms});
        break;
      case toolkit::EventType::kTimer:
        break;
    }
  }
  CorruptPoints(pts, inj);

  std::vector<toolkit::InputEvent> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == 0 && saw_down) {
      out.push_back(toolkit::InputEvent::MouseDown(pts[i].x, pts[i].y, pts[i].t, button));
    } else if (i + 1 == pts.size()) {
      out.push_back(toolkit::InputEvent::MouseUp(pts[i].x, pts[i].y, pts[i].t, button));
    } else {
      out.push_back(toolkit::InputEvent::MouseMove(pts[i].x, pts[i].y, pts[i].t, button));
    }
  }
  return out;
}

}  // namespace grandma::robust
