#include "robust/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <tuple>

namespace grandma::robust {

// The exhaustiveness guard: adding a FaultKind without growing kNumFaultKinds
// (and therefore FaultInjectorOptions::enabled, FaultRecord::counts, and
// InjectedFaults::applied, which are all sized by it) must not compile. The
// switches below have no default case, so -Werror switch coverage plus these
// asserts keep name/repairability/level classification in sync with the enum.
static_assert(static_cast<std::size_t>(FaultKind::kContactIdSwap) + 1 == kNumFaultKinds,
              "kNumFaultKinds must count every FaultKind enumerator");
static_assert(static_cast<std::size_t>(FaultKind::kTruncate) + 1 == kNumPointFaultKinds,
              "point-level kinds must precede the contact-level block");
static_assert(std::tuple_size_v<decltype(FaultInjectorOptions::enabled)> == kNumFaultKinds,
              "FaultInjectorOptions::enabled must have one switch per kind");

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropPoints:
      return "drop_points";
    case FaultKind::kTimestampJitter:
      return "timestamp_jitter";
    case FaultKind::kDuplicateTimestamp:
      return "duplicate_timestamp";
    case FaultKind::kCoordinateSpike:
      return "coordinate_spike";
    case FaultKind::kNonFinite:
      return "non_finite";
    case FaultKind::kStuckPoint:
      return "stuck_point";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kContactBounce:
      return "contact_bounce";
    case FaultKind::kPalmTouch:
      return "palm_touch";
    case FaultKind::kFingerCountChange:
      return "finger_count_change";
    case FaultKind::kContactIdSwap:
      return "contact_id_swap";
  }
  return "?";
}

bool FaultKindRepairable(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTimestampJitter:
    case FaultKind::kDuplicateTimestamp:
    case FaultKind::kCoordinateSpike:
    case FaultKind::kNonFinite:
    case FaultKind::kStuckPoint:
      return true;  // the validator restores a fully classifiable stroke
    case FaultKind::kContactBounce:
    case FaultKind::kPalmTouch:
    case FaultKind::kFingerCountChange:
    case FaultKind::kContactIdSwap:
      return true;  // the tracker stitches/rejects/swaps back to the original
    case FaultKind::kDropPoints:
    case FaultKind::kTruncate:
      return false;  // the samples are gone; the stroke survives degraded
  }
  return false;
}

bool FaultKindContactLevel(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropPoints:
    case FaultKind::kTimestampJitter:
    case FaultKind::kDuplicateTimestamp:
    case FaultKind::kCoordinateSpike:
    case FaultKind::kNonFinite:
    case FaultKind::kStuckPoint:
    case FaultKind::kTruncate:
      return false;
    case FaultKind::kContactBounce:
    case FaultKind::kPalmTouch:
    case FaultKind::kFingerCountChange:
    case FaultKind::kContactIdSwap:
      return true;
  }
  return false;
}

std::uint64_t FaultRecord::total_faults() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) {
    total += c;
  }
  return total;
}

std::string FaultRecord::ToJson() const {
  std::ostringstream out;
  out << "{\"strokes_seen\": " << strokes_seen
      << ", \"strokes_faulted\": " << strokes_faulted;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    out << ", \"" << FaultKindName(static_cast<FaultKind>(k)) << "\": " << counts[k];
  }
  out << '}';
  return out.str();
}

bool InjectedFaults::any() const {
  for (std::uint8_t a : applied) {
    if (a != 0) {
      return true;
    }
  }
  return false;
}

bool InjectedFaults::only_repairable() const {
  bool fired = false;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (applied[k] == 0) {
      continue;
    }
    fired = true;
    if (!FaultKindRepairable(static_cast<FaultKind>(k))) {
      return false;
    }
  }
  return fired;
}

double FaultInjector::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t FaultInjector::Index(std::size_t n) {
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

void FaultInjector::ApplyFault(FaultKind kind, std::vector<geom::TimedPoint>& pts) {
  switch (kind) {
    case FaultKind::kDropPoints: {
      if (pts.size() < 5) {
        return;
      }
      const std::size_t n = 1 + Index(3);
      for (std::size_t k = 0; k < n && pts.size() > 4; ++k) {
        pts.erase(pts.begin() + static_cast<std::ptrdiff_t>(1 + Index(pts.size() - 2)));
      }
      break;
    }
    case FaultKind::kTimestampJitter: {
      if (pts.size() < 2) {
        return;
      }
      const std::size_t start = Index(pts.size());
      const std::size_t len = std::min(pts.size() - start, std::size_t{1} + Index(4));
      for (std::size_t i = start; i < start + len; ++i) {
        pts[i].t += Uniform(-options_.timestamp_jitter_ms, options_.timestamp_jitter_ms);
      }
      break;
    }
    case FaultKind::kDuplicateTimestamp: {
      if (pts.size() < 2) {
        return;
      }
      const std::size_t i = Index(pts.size() - 1);
      pts[i + 1].t = pts[i].t;
      break;
    }
    case FaultKind::kCoordinateSpike: {
      const std::size_t i = Index(pts.size());
      const double magnitude = options_.spike_distance * Uniform(0.5, 1.5);
      const double angle = Uniform(0.0, 6.283185307179586);
      pts[i].x += magnitude * std::cos(angle);
      pts[i].y += magnitude * std::sin(angle);
      break;
    }
    case FaultKind::kNonFinite: {
      const std::size_t i = Index(pts.size());
      switch (Index(3)) {
        case 0:
          pts[i].x = std::numeric_limits<double>::quiet_NaN();
          break;
        case 1:
          pts[i].y = std::numeric_limits<double>::infinity();
          break;
        default:
          pts[i].t = -std::numeric_limits<double>::infinity();
          break;
      }
      break;
    }
    case FaultKind::kStuckPoint: {
      const std::size_t i = Index(pts.size());
      const geom::TimedPoint stuck = pts[i];
      pts.insert(pts.begin() + static_cast<std::ptrdiff_t>(i + 1), options_.stuck_repeats,
                 stuck);
      break;
    }
    case FaultKind::kTruncate: {
      if (pts.size() < 4) {
        return;
      }
      const std::size_t keep = 1 + Index(pts.size() - 1);
      pts.resize(keep);
      break;
    }
  }
}

std::vector<FaultKind> FaultInjector::ShuffledKinds(bool point_level_only) {
  std::vector<FaultKind> kinds;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (options_.enabled[k] && !(point_level_only && FaultKindContactLevel(kind))) {
      kinds.push_back(kind);
    }
  }
  std::shuffle(kinds.begin(), kinds.end(), engine_);
  return kinds;
}

void FaultInjector::CorruptPoints(std::vector<geom::TimedPoint>& pts,
                                  InjectedFaults& injected) {
  ++record_.strokes_seen;
  if (pts.empty() || Uniform(0.0, 1.0) >= options_.fault_rate) {
    return;
  }

  const std::vector<FaultKind> kinds = ShuffledKinds(/*point_level_only=*/true);
  if (kinds.empty()) {
    return;
  }
  const std::size_t num =
      std::min(kinds.size(), std::size_t{1} + Index(std::max<std::size_t>(
                                 options_.max_faults_per_stroke, 1)));

  bool mutated = false;
  for (std::size_t k = 0; k < num; ++k) {
    const std::size_t before = pts.size();
    const std::vector<geom::TimedPoint> snapshot = pts;
    ApplyFault(kinds[k], pts);
    // Count only faults that actually changed the stroke; small strokes make
    // some kinds no-ops and those must not inflate the record.
    if (pts.size() != before || pts != snapshot) {
      injected.applied[static_cast<std::size_t>(kinds[k])] = 1;
      ++record_.counts[static_cast<std::size_t>(kinds[k])];
      mutated = true;
    }
  }
  if (mutated) {
    ++record_.strokes_faulted;
  }
}

bool FaultInjector::ApplyContactFault(FaultKind kind, geom::ContactGroup& group) {
  std::int32_t max_id = 0;
  for (const geom::Contact& c : group.contacts()) {
    max_id = std::max(max_id, c.id);
  }
  switch (kind) {
    case FaultKind::kContactBounce: {
      // One contact spuriously reports up then down again: its lifetime
      // splits at a cut point, samples inside the release gap are lost, and
      // the re-landing gets a fresh slot id.
      std::vector<std::size_t> eligible;
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (group[i].stroke.size() >= 6) {
          eligible.push_back(i);
        }
      }
      if (eligible.empty()) {
        return false;
      }
      geom::Contact& victim = group[eligible[Index(eligible.size())]];
      const std::vector<geom::TimedPoint>& pts = victim.stroke.points();
      const std::size_t cut = 2 + Index(pts.size() - 4);
      const double gap = Uniform(0.2, 1.0) * options_.bounce_gap_ms;
      const double reland_t = pts[cut].t + gap;
      std::vector<geom::TimedPoint> head(pts.begin(),
                                         pts.begin() + static_cast<std::ptrdiff_t>(cut));
      std::vector<geom::TimedPoint> tail;
      for (std::size_t i = cut; i < pts.size(); ++i) {
        if (pts[i].t >= reland_t) {
          tail.push_back(pts[i]);
        }
      }
      if (tail.size() < 2) {
        return false;  // the bounce would eat the whole tail; leave intact
      }
      geom::Contact reland;
      reland.id = max_id + 1;
      reland.area = victim.area;
      reland.stroke = geom::Gesture(std::move(tail));
      victim.stroke = geom::Gesture(std::move(head));
      group.AddContact(std::move(reland));
      return true;
    }
    case FaultKind::kPalmTouch: {
      // A large-area, short-lived contact lands offset from the gesture —
      // the heel of the hand grazing the sensor.
      if (group.TotalPoints() == 0) {
        return false;
      }
      const geom::BoundingBox box = group.Bounds();
      const double side = Uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0;
      const bool horizontal = Uniform(0.0, 1.0) < 0.5;
      const double offset = options_.palm_offset_px * Uniform(0.8, 1.5);
      double cx = horizontal ? (side < 0 ? box.min_x - offset : box.max_x + offset)
                             : Uniform(box.min_x, box.max_x + 1e-9);
      double cy = horizontal ? Uniform(box.min_y, box.max_y + 1e-9)
                             : (side < 0 ? box.min_y - offset : box.max_y + offset);
      const double t0 = group.StartTime() +
                        Uniform(0.0, std::max(1.0, group.Duration() * 0.5));
      const double duration = Uniform(30.0, std::max(31.0, options_.palm_duration_ms));
      geom::Contact palm;
      palm.id = max_id + 1;
      palm.area = options_.palm_area * Uniform(1.0, 2.0);
      for (double t = 0.0; t <= duration; t += 15.0) {
        palm.stroke.AppendPoint({cx + Uniform(-2.0, 2.0), cy + Uniform(-2.0, 2.0), t0 + t});
      }
      group.AddContact(std::move(palm));
      return true;
    }
    case FaultKind::kFingerCountChange: {
      // A fingertip-sized contact joins mid-gesture — the classic "third
      // finger grazes during a pinch" finger-count transition. Only the
      // late-join heuristic can tell it from a legitimate stagger.
      if (group.empty() || group.Duration() <= 0.0) {
        return false;
      }
      const double span = group.Duration();
      const double join_t = group.StartTime() +
                            span * Uniform(options_.late_join_fraction, 0.9);
      const geom::BoundingBox box = group.Bounds();
      double x = Uniform(box.min_x, box.max_x + 1e-9) + Uniform(-30.0, 30.0);
      double y = Uniform(box.min_y, box.max_y + 1e-9) + Uniform(-30.0, 30.0);
      const double vx = Uniform(-0.3, 0.3);
      const double vy = Uniform(-0.3, 0.3);
      geom::Contact joiner;
      joiner.id = max_id + 1;
      joiner.area = 55.0 * Uniform(0.8, 1.2);
      for (double t = join_t; t <= group.EndTime(); t += 12.0) {
        joiner.stroke.AppendPoint({x, y, t});
        x += vx * 12.0;
        y += vy * 12.0;
      }
      if (joiner.stroke.size() < 2) {
        return false;
      }
      group.AddContact(std::move(joiner));
      return true;
    }
    case FaultKind::kContactIdSwap: {
      // Two temporally overlapping contacts trade slot ids mid-stream: every
      // sample after the swap instant lands in the other contact's stream.
      // Slot attributes (id, area) stay put — only the points cross over.
      std::vector<std::size_t> eligible;
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (group[i].stroke.size() >= 4) {
          eligible.push_back(i);
        }
      }
      if (eligible.size() < 2) {
        return false;
      }
      const std::size_t ia = eligible[Index(eligible.size())];
      std::size_t ib = ia;
      while (ib == ia) {
        ib = eligible[Index(eligible.size())];
      }
      geom::Contact& a = group[ia];
      geom::Contact& b = group[ib];
      const double lo = std::max(a.StartTime(), b.StartTime());
      const double hi = std::min(a.EndTime(), b.EndTime());
      if (hi - lo <= 0.0) {
        return false;  // no temporal overlap: a device cannot cross them
      }
      const double swap_t = Uniform(lo + 0.25 * (hi - lo), lo + 0.75 * (hi - lo));
      auto split = [swap_t](const geom::Gesture& g, std::vector<geom::TimedPoint>& head,
                            std::vector<geom::TimedPoint>& tail) {
        for (const geom::TimedPoint& p : g) {
          (p.t < swap_t ? head : tail).push_back(p);
        }
      };
      std::vector<geom::TimedPoint> a_head, a_tail, b_head, b_tail;
      split(a.stroke, a_head, a_tail);
      split(b.stroke, b_head, b_tail);
      if (a_head.size() < 2 || b_head.size() < 2 || a_tail.size() < 2 || b_tail.size() < 2) {
        return false;
      }
      // A real slot swap only confuses the firmware when the fingers are far
      // enough apart that the crossed tails jump — and the tracker's un-cross
      // pass only detects seam jumps above ContactPolicy::id_swap_jump_px.
      // Close fingers (synth pairs run 30-120px apart) would cross with
      // sub-threshold jumps, so slide ALL of b outward until the seam
      // separation reaches id_swap_min_separation_px. Translating the whole
      // contact keeps b a coherent stroke, so after the tracker un-crosses
      // the tails both repaired streams are individually valid. No RNG draws
      // here: injection sequences stay byte-identical across runs.
      if (options_.id_swap_min_separation_px > 0.0) {
        const double sx = b_tail.front().x - a_tail.front().x;
        const double sy = b_tail.front().y - a_tail.front().y;
        const double sep = std::sqrt(sx * sx + sy * sy);
        if (sep < options_.id_swap_min_separation_px) {
          const double grow = options_.id_swap_min_separation_px - sep;
          // Degenerate overlap: push along +x by convention.
          const double ux = sep > 1e-9 ? sx / sep : 1.0;
          const double uy = sep > 1e-9 ? sy / sep : 0.0;
          const double dx = ux * grow;
          const double dy = uy * grow;
          for (geom::TimedPoint& p : b_head) {
            p.x += dx;
            p.y += dy;
          }
          for (geom::TimedPoint& p : b_tail) {
            p.x += dx;
            p.y += dy;
          }
        }
      }
      a_head.insert(a_head.end(), b_tail.begin(), b_tail.end());
      b_head.insert(b_head.end(), a_tail.begin(), a_tail.end());
      a.stroke = geom::Gesture(std::move(a_head));
      b.stroke = geom::Gesture(std::move(b_head));
      return true;
    }
    case FaultKind::kDropPoints:
    case FaultKind::kTimestampJitter:
    case FaultKind::kDuplicateTimestamp:
    case FaultKind::kCoordinateSpike:
    case FaultKind::kNonFinite:
    case FaultKind::kStuckPoint:
    case FaultKind::kTruncate:
      break;  // point-level kinds are routed through ApplyFault
  }
  return false;
}

geom::ContactGroup FaultInjector::CorruptContacts(const geom::ContactGroup& group,
                                                  InjectedFaults* injected) {
  InjectedFaults local;
  InjectedFaults& inj = injected != nullptr ? *injected : local;
  inj = InjectedFaults{};
  geom::ContactGroup out = group;

  ++record_.strokes_seen;
  if (out.empty() || Uniform(0.0, 1.0) >= options_.fault_rate) {
    return out;
  }
  const std::vector<FaultKind> kinds = ShuffledKinds(/*point_level_only=*/false);
  if (kinds.empty()) {
    return out;
  }
  const std::size_t num =
      std::min(kinds.size(), std::size_t{1} + Index(std::max<std::size_t>(
                                 options_.max_faults_per_stroke, 1)));

  bool mutated = false;
  for (std::size_t k = 0; k < num; ++k) {
    bool changed = false;
    if (FaultKindContactLevel(kinds[k])) {
      changed = ApplyContactFault(kinds[k], out);
    } else {
      // Point-level damage lands on one randomly chosen non-empty contact.
      std::vector<std::size_t> eligible;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (!out[i].stroke.empty()) {
          eligible.push_back(i);
        }
      }
      if (!eligible.empty()) {
        geom::Contact& victim = out[eligible[Index(eligible.size())]];
        std::vector<geom::TimedPoint> pts = victim.stroke.points();
        const std::vector<geom::TimedPoint> snapshot = pts;
        ApplyFault(kinds[k], pts);
        changed = pts != snapshot;
        if (changed) {
          victim.stroke = geom::Gesture(std::move(pts));
        }
      }
    }
    if (changed) {
      inj.applied[static_cast<std::size_t>(kinds[k])] = 1;
      ++record_.counts[static_cast<std::size_t>(kinds[k])];
      mutated = true;
    }
  }
  if (mutated) {
    ++record_.strokes_faulted;
  }
  return out;
}

geom::Gesture FaultInjector::Corrupt(const geom::Gesture& g, InjectedFaults* injected) {
  InjectedFaults local;
  InjectedFaults& inj = injected != nullptr ? *injected : local;
  inj = InjectedFaults{};
  std::vector<geom::TimedPoint> pts = g.points();
  CorruptPoints(pts, inj);
  return geom::Gesture(std::move(pts));
}

std::vector<toolkit::InputEvent> FaultInjector::CorruptTrace(
    const std::vector<toolkit::InputEvent>& trace, InjectedFaults* injected) {
  InjectedFaults local;
  InjectedFaults& inj = injected != nullptr ? *injected : local;
  inj = InjectedFaults{};

  // Pull the positional payload out of the trace, damage it, and rebuild a
  // well-formed down/move.../up sequence around the surviving points. Timer
  // events are discarded — replay regenerates ticks from the gaps.
  std::vector<geom::TimedPoint> pts;
  int button = 0;
  bool saw_down = false;
  for (const toolkit::InputEvent& e : trace) {
    switch (e.type) {
      case toolkit::EventType::kMouseDown:
        button = e.button;
        saw_down = true;
        [[fallthrough]];
      case toolkit::EventType::kMouseMove:
      case toolkit::EventType::kMouseUp:
        pts.push_back(geom::TimedPoint{e.x, e.y, e.time_ms});
        break;
      case toolkit::EventType::kTimer:
        break;
    }
  }
  CorruptPoints(pts, inj);

  std::vector<toolkit::InputEvent> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == 0 && saw_down) {
      out.push_back(toolkit::InputEvent::MouseDown(pts[i].x, pts[i].y, pts[i].t, button));
    } else if (i + 1 == pts.size()) {
      out.push_back(toolkit::InputEvent::MouseUp(pts[i].x, pts[i].y, pts[i].t, button));
    } else {
      out.push_back(toolkit::InputEvent::MouseMove(pts[i].x, pts[i].y, pts[i].t, button));
    }
  }
  return out;
}

}  // namespace grandma::robust
