#include "robust/stroke_validator.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "geom/point.h"

namespace grandma::robust {

namespace {

bool PointFinite(const geom::TimedPoint& p) {
  return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.t);
}

bool PointInRange(const geom::TimedPoint& p, double max_abs) {
  return std::abs(p.x) <= max_abs && std::abs(p.y) <= max_abs;
}

void CountStroke(FaultStats* stats, const ValidationReport& report, bool rejected) {
  if (stats == nullptr) {
    return;
  }
  ++stats->strokes_validated;
  stats->points_dropped_nonfinite += report.nonfinite_dropped;
  stats->points_dropped_out_of_range += report.out_of_range_dropped;
  stats->points_dropped_spike += report.spikes_dropped;
  stats->timestamps_repaired += report.timestamps_repaired;
  if (rejected) {
    ++stats->strokes_rejected;
  } else if (report.repaired()) {
    ++stats->strokes_repaired;
  } else {
    ++stats->strokes_clean;
  }
}

}  // namespace

StatusOr<geom::Gesture> StrokeValidator::Validate(const geom::Gesture& g,
                                                  ValidationReport* report,
                                                  FaultStats* stats) const {
  ValidationReport local;
  ValidationReport& r = report != nullptr ? *report : local;
  r = ValidationReport{};
  r.points_in = g.size();

  auto reject = [&](Status status) -> StatusOr<geom::Gesture> {
    CountStroke(stats, r, /*rejected=*/true);
    return status;
  };

  if (g.empty()) {
    return reject(Status::InvalidArgument("empty stroke"));
  }
  if (g.size() > policy_.max_points) {
    return reject(Status::OutOfRange("stroke has " + std::to_string(g.size()) +
                                     " points, max is " + std::to_string(policy_.max_points)));
  }

  // Pass 1: drop non-finite and out-of-range points. Under the no-repair
  // policy any such point condemns the whole stroke.
  std::vector<geom::TimedPoint> pts;
  pts.reserve(g.size());
  for (const geom::TimedPoint& p : g) {
    if (!PointFinite(p)) {
      ++r.nonfinite_dropped;
      continue;
    }
    if (!PointInRange(p, policy_.max_abs_coordinate)) {
      ++r.out_of_range_dropped;
      continue;
    }
    pts.push_back(p);
  }
  if (!policy_.repair && (r.nonfinite_dropped > 0 || r.out_of_range_dropped > 0)) {
    return reject(Status::DataLoss("stroke contains non-finite or out-of-range points"));
  }
  if (pts.empty()) {
    return reject(Status::DataLoss("every point was non-finite or out of range"));
  }

  // Pass 2: drop teleport spikes — points implausibly far from the last
  // accepted point. The comparison is against the last *kept* point, so a
  // spike-and-return pair loses only the spike. The anchor (first kept
  // point) must itself be plausible: a spike on the very first sample would
  // otherwise condemn every later point as "far from the anchor".
  if (policy_.max_segment_length > 0.0 && pts.size() >= 2) {
    std::size_t anchor = 0;
    while (anchor + 1 < pts.size() &&
           geom::Distance(pts[anchor], pts[anchor + 1]) > policy_.max_segment_length) {
      ++anchor;  // no plausible successor: treat as a leading spike
      ++r.spikes_dropped;
    }
    std::vector<geom::TimedPoint> kept;
    kept.reserve(pts.size() - anchor);
    for (std::size_t i = anchor; i < pts.size(); ++i) {
      if (!kept.empty() &&
          geom::Distance(kept.back(), pts[i]) > policy_.max_segment_length) {
        ++r.spikes_dropped;
        continue;
      }
      kept.push_back(pts[i]);
    }
    if (!policy_.repair && r.spikes_dropped > 0) {
      return reject(Status::DataLoss("stroke contains coordinate spikes"));
    }
    pts = std::move(kept);
  }

  // Pass 3: enforce strictly increasing timestamps with *plausible* implied
  // speeds. Duplicates (stuck hardware clocks), reordered events, and
  // jitter-compressed intervals are re-timed to the previous timestamp plus
  // the stroke's median sample interval; the geometry is untouched. Re-timing
  // by a tiny epsilon instead would leave a physically impossible speed in
  // the segment and poison the max-speed feature downstream.
  double median_dt = policy_.timestamp_epsilon_ms;
  {
    std::vector<double> dts;
    dts.reserve(pts.size());
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double dt = pts[i].t - pts[i - 1].t;
      if (dt > 0.0) {
        dts.push_back(dt);
      }
    }
    if (!dts.empty()) {
      const std::size_t mid = dts.size() / 2;
      std::nth_element(dts.begin(), dts.begin() + static_cast<std::ptrdiff_t>(mid), dts.end());
      median_dt = std::max(dts[mid], policy_.timestamp_epsilon_ms);
    }
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double dt = pts[i].t - pts[i - 1].t;
    bool implausible = dt <= 0.0;
    if (!implausible && policy_.max_speed_px_per_ms > 0.0) {
      implausible = geom::Distance(pts[i - 1], pts[i]) > policy_.max_speed_px_per_ms * dt;
    }
    if (implausible) {
      if (!policy_.repair) {
        return reject(Status::DataLoss("non-monotonic or implausibly fast timestamps"));
      }
      // The repaired interval must itself be plausible, even when the stroke
      // carried no usable timing and median_dt fell back to epsilon.
      double repair_dt = median_dt;
      if (policy_.max_speed_px_per_ms > 0.0) {
        repair_dt = std::max(repair_dt,
                             geom::Distance(pts[i - 1], pts[i]) / policy_.max_speed_px_per_ms);
      }
      pts[i].t = pts[i - 1].t + repair_dt;
      ++r.timestamps_repaired;
    }
  }

  r.points_out = pts.size();
  if (pts.size() < policy_.min_points) {
    return reject(Status::DataLoss("only " + std::to_string(pts.size()) +
                                   " points survived repair, min is " +
                                   std::to_string(policy_.min_points)));
  }

  CountStroke(stats, r, /*rejected=*/false);
  return geom::Gesture(std::move(pts));
}

}  // namespace grandma::robust
