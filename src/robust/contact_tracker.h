// Multi-contact lifecycle tracking: the stage between a raw device's contact
// stream and the clean-geometry pipeline. Real touch hardware chattering a
// contact up/down within milliseconds, resting palms, fingers joining
// mid-gesture, and slot ids crossing between concurrent contacts are the
// dominant production failure modes (libinput's evdev-debounce and palm
// rejection exist for exactly these). The tracker generalizes the
// StrokeValidator's repair-or-reject policy surface to contact groups:
//
//   1. debounce       — a contact releasing and re-landing within the window
//                       (and radius) is stitched back into one lifetime;
//   2. id continuity  — two concurrent contacts whose streams teleport across
//                       each other at the same instant have their tails
//                       swapped back;
//   3. palm rejection — large-area / short-lived / offset contacts are
//                       dropped by heuristic;
//   4. finger-count   — contacts joining long after the group started are
//                       dropped (libinput cancels the gesture; we repair it);
//   5. per-contact    — every surviving stroke runs through StrokeValidator.
//
// Downstream stages keep their clean-geometry contract: every contact of a
// tracked group is a certified stroke. An unrepairable group degrades to the
// best surviving contacts rather than erroring; only a group with nothing
// usable left is rejected, with a typed Status saying why.
#ifndef GRANDMA_SRC_ROBUST_CONTACT_TRACKER_H_
#define GRANDMA_SRC_ROBUST_CONTACT_TRACKER_H_

#include <cstddef>

#include "geom/contact.h"
#include "robust/fault_stats.h"
#include "robust/status.h"
#include "robust/stroke_validator.h"

namespace grandma::robust {

// What the tracker is allowed to do. With `repair` false any lifecycle
// anomaly rejects the group (trusted-replay mode), mirroring
// ValidationPolicy::repair.
struct ContactPolicy {
  bool repair = true;

  // Per-contact stroke validation applied after lifecycle repair.
  ValidationPolicy stroke;

  // A contact re-landing within this many ms and px of another contact's
  // release is chatter and is stitched (libinput's debounce window is 25 ms;
  // ours is wider because touch frames arrive at ~80 Hz, so one lost frame
  // already costs ~12 ms).
  double debounce_window_ms = 40.0;
  double debounce_radius_px = 30.0;

  // Palm heuristics. Area at/above palm_min_area is a palm outright; area
  // at/above palm_suspect_area is a palm when it is also short-lived
  // (<= palm_max_duration_ms) or offset from the rest of the group by
  // >= palm_offset_px. Contacts without area data (area <= 0) are exempt.
  double palm_min_area = 300.0;
  double palm_suspect_area = 150.0;
  double palm_max_duration_ms = 200.0;
  double palm_offset_px = 100.0;

  // A contact joining later than this many ms after the group's first
  // touch-down is a finger-count change, not a stagger, and is dropped.
  // Legitimate multi-finger stagger is tens of ms (synth uses <= 60).
  double late_join_ms = 150.0;

  // Two concurrent contacts both teleporting (> id_swap_jump_px between
  // consecutive samples) within id_swap_sync_ms of each other, where
  // crossing the tails removes both teleports, is an id swap and is
  // un-crossed. <= 0 disables the repair.
  double id_swap_jump_px = 200.0;
  double id_swap_sync_ms = 30.0;

  // Groups with more simultaneous contacts than any supported gesture are a
  // sensor storm, not input.
  std::size_t max_contacts = 16;
};

// Per-group account of what Track found and did. The accounting invariant —
// every input contact lands in exactly one terminal bucket — is what the
// touch soak gates on:
//   contacts_in == contacts_passed_clean + contacts_repaired + contacts_rejected
struct ContactReport {
  std::size_t contacts_in = 0;
  std::size_t contacts_out = 0;
  std::size_t contacts_passed_clean = 0;
  std::size_t contacts_repaired = 0;
  std::size_t contacts_rejected = 0;

  // Repair/reject detail (each contributes to the buckets above).
  std::size_t bounces_stitched = 0;      // absorbed re-landings
  std::size_t id_swaps_repaired = 0;     // crossed pairs un-crossed
  std::size_t palms_rejected = 0;        // palm heuristic drops
  std::size_t late_joiners_dropped = 0;  // finger-count-change drops
  std::size_t validation_rejected = 0;   // per-contact StrokeValidator rejects
  std::size_t validation_repaired = 0;   // contacts whose stroke needed repair

  bool repaired() const { return contacts_repaired > 0; }
  // True when contacts were lost but the group survived.
  bool degraded() const { return contacts_rejected > 0; }
  bool Balanced() const {
    return contacts_in == contacts_passed_clean + contacts_repaired + contacts_rejected;
  }
};

// A repaired, validated group. Every contact's stroke is certified by
// StrokeValidator under the policy's stroke rules.
struct TrackedGroup {
  geom::ContactGroup group;
  // True when >= 1 input contact was rejected — the group survives with the
  // best remaining contacts (possibly a single stroke).
  bool degraded = false;
};

class ContactTracker {
 public:
  explicit ContactTracker(ContactPolicy policy = {}) : policy_(policy) {}

  // Tracks (and under the repair policy, fixes) one contact group. On
  // success every returned contact has a certified stroke and the group's
  // lifecycle anomalies are resolved. `report` (optional) receives the
  // per-group account; `stats` (optional) accumulates across calls.
  // Errors: kInvalidArgument (empty group), kOutOfRange (> max_contacts),
  // kContactChatter / kPalmRejected / kDataLoss under no-repair or when
  // nothing usable survives.
  StatusOr<TrackedGroup> Track(const geom::ContactGroup& in, ContactReport* report = nullptr,
                               FaultStats* stats = nullptr) const;

  const ContactPolicy& policy() const { return policy_; }

 private:
  ContactPolicy policy_;
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_CONTACT_TRACKER_H_
