// Input validation for raw strokes: the first stage of the hardened pipeline.
// Real tablet/mouse streams contain NaN coordinates from driver glitches,
// duplicate or reordered timestamps from event-queue congestion, and
// coordinate spikes from sensor noise (libinput cancels gestures for exactly
// these anomalies). The validator detects them and, by policy, either repairs
// the stroke in place or rejects it with a precise Status — downstream stages
// (feature extraction, classification) may then assume clean geometry.
#ifndef GRANDMA_SRC_ROBUST_STROKE_VALIDATOR_H_
#define GRANDMA_SRC_ROBUST_STROKE_VALIDATOR_H_

#include <cstddef>

#include "geom/gesture.h"
#include "robust/fault_stats.h"
#include "robust/status.h"

namespace grandma::robust {

// What the validator is allowed to do. With `repair` false any anomaly is a
// rejection, which is the right mode for trusted replay files where damage
// means the file is corrupt rather than the sensor noisy.
struct ValidationPolicy {
  bool repair = true;

  // Coordinates beyond this magnitude cannot come from any plausible device;
  // they are treated like non-finite values.
  double max_abs_coordinate = 1.0e7;

  // A point farther than this from its predecessor is a teleport spike and
  // is dropped (repair) or rejects the stroke. Generous: real flicks move a
  // few px/ms with ~5 px sample spacing. <= 0 disables spike detection.
  double max_segment_length = 1500.0;

  // Duplicate or backward timestamps are re-timed to previous + the stroke's
  // median sample interval, so every segment has dt > 0 *and* a plausible
  // implied speed (clamping by a tiny epsilon would make the repaired
  // segment's speed explode, poisoning the max-speed feature). Epsilon is
  // the floor when the stroke has no positive intervals to take a median of.
  double timestamp_epsilon_ms = 1.0e-3;

  // A segment whose implied speed exceeds this is a timestamp fault (a
  // jitter-compressed dt) and is re-timed like a duplicate. 20 px/ms is
  // 20,000 px/s — far beyond any human flick. <= 0 disables the check.
  double max_speed_px_per_ms = 20.0;

  // Strokes with fewer surviving points are rejected. 1 keeps single-point
  // "dot" gestures classifiable, as GDP requires.
  std::size_t min_points = 1;

  // Absurdly long strokes indicate a runaway event source, not a gesture.
  std::size_t max_points = std::size_t{1} << 20;
};

// Per-stroke account of what Validate found and did.
struct ValidationReport {
  std::size_t points_in = 0;
  std::size_t points_out = 0;
  std::size_t nonfinite_dropped = 0;
  std::size_t out_of_range_dropped = 0;
  std::size_t spikes_dropped = 0;
  std::size_t timestamps_repaired = 0;

  bool repaired() const {
    return nonfinite_dropped > 0 || out_of_range_dropped > 0 || spikes_dropped > 0 ||
           timestamps_repaired > 0;
  }
};

class StrokeValidator {
 public:
  explicit StrokeValidator(ValidationPolicy policy = {}) : policy_(policy) {}

  // Validates (and under the repair policy, fixes) one stroke. On success the
  // returned gesture has only finite in-range coordinates, strictly
  // increasing timestamps, no teleport spikes, and at least min_points
  // points. `report` (optional) receives the per-stroke account; `stats`
  // (optional) accumulates across calls.
  StatusOr<geom::Gesture> Validate(const geom::Gesture& g, ValidationReport* report = nullptr,
                                   FaultStats* stats = nullptr) const;

  const ValidationPolicy& policy() const { return policy_; }

 private:
  ValidationPolicy policy_;
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_STROKE_VALIDATOR_H_
