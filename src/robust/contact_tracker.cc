#include "robust/contact_tracker.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "geom/point.h"

namespace grandma::robust {

namespace {

// Working record: one contact plus its lifecycle history. Terminal buckets
// (clean/repaired/rejected) are assigned once per *input* contact, which is
// what keeps the accounting invariant exact.
struct Slot {
  geom::Contact contact;
  bool repaired = false;
};

double MedianSampleInterval(const geom::Gesture& g, double fallback) {
  std::vector<double> dts;
  dts.reserve(g.size());
  for (std::size_t i = 1; i < g.size(); ++i) {
    const double dt = g[i].t - g[i - 1].t;
    if (dt > 0.0) {
      dts.push_back(dt);
    }
  }
  if (dts.empty()) {
    return fallback;
  }
  const std::size_t mid = dts.size() / 2;
  std::nth_element(dts.begin(), dts.begin() + static_cast<std::ptrdiff_t>(mid), dts.end());
  return dts[mid];
}

geom::TimedPoint StrokeCentroid(const geom::Gesture& g) {
  geom::TimedPoint c{};
  if (g.empty()) {
    return c;
  }
  for (const geom::TimedPoint& p : g) {
    c.x += p.x;
    c.y += p.y;
  }
  c.x /= static_cast<double>(g.size());
  c.y /= static_cast<double>(g.size());
  return c;
}

// Centroid of every other slot's points; false when there are none.
bool OthersCentroid(const std::vector<Slot>& slots, std::size_t self, geom::TimedPoint* out) {
  double x = 0.0;
  double y = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i == self) {
      continue;
    }
    for (const geom::TimedPoint& p : slots[i].contact.stroke) {
      x += p.x;
      y += p.y;
      ++n;
    }
  }
  if (n == 0) {
    return false;
  }
  out->x = x / static_cast<double>(n);
  out->y = y / static_cast<double>(n);
  return true;
}

void CountGroup(FaultStats* stats, const ContactReport& r, bool rejected) {
  if (stats == nullptr) {
    return;
  }
  ++stats->groups_tracked;
  stats->contacts_tracked += r.contacts_in;
  stats->contacts_passed_clean += r.contacts_passed_clean;
  stats->contacts_repaired += r.contacts_repaired;
  stats->contacts_rejected += r.contacts_rejected;
  stats->contact_bounces_stitched += r.bounces_stitched;
  stats->palms_rejected += r.palms_rejected;
  stats->contact_late_joiners_dropped += r.late_joiners_dropped;
  stats->contact_id_swaps_repaired += r.id_swaps_repaired;
  // One terminal bucket per group, by severity: rejected beats degraded
  // (contacts were lost) beats repaired (everything survived, some fixed)
  // beats clean. groups_tracked == the four buckets' sum.
  if (rejected) {
    ++stats->groups_rejected;
  } else if (r.degraded()) {
    ++stats->groups_degraded;
  } else if (r.repaired()) {
    ++stats->groups_repaired;
  } else {
    ++stats->groups_clean;
  }
}

}  // namespace

StatusOr<TrackedGroup> ContactTracker::Track(const geom::ContactGroup& in,
                                             ContactReport* report, FaultStats* stats) const {
  ContactReport local;
  ContactReport& r = report != nullptr ? *report : local;
  r = ContactReport{};
  r.contacts_in = in.size();

  // A whole-group rejection consigns every input contact not already in a
  // terminal bucket to `rejected`, so the invariant holds on every path.
  auto reject = [&](Status status) -> StatusOr<TrackedGroup> {
    r.contacts_rejected =
        r.contacts_in - r.contacts_passed_clean - r.contacts_repaired;
    CountGroup(stats, r, /*rejected=*/true);
    return status;
  };

  if (in.empty()) {
    return reject(Status::InvalidArgument("empty contact group"));
  }
  if (in.size() > policy_.max_contacts) {
    return reject(Status::OutOfRange("group has " + std::to_string(in.size()) +
                                     " contacts, max is " +
                                     std::to_string(policy_.max_contacts)));
  }

  const geom::ContactGroup sorted = in.Sorted();
  std::vector<Slot> slots;
  slots.reserve(sorted.size());
  for (const geom::Contact& c : sorted.contacts()) {
    slots.push_back(Slot{c, /*repaired=*/false});
  }

  // Pass 1: debounce. A contact re-landing within the window (widened to a
  // few sample intervals for slow devices) and radius of another contact's
  // release is chatter: its points are stitched back onto the releasing
  // contact and the spurious slot disappears. Chained chatter stitches
  // repeatedly because the merged contact's release moves later each time.
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < slots.size() && !merged; ++i) {
      if (slots[i].contact.stroke.empty()) {
        continue;
      }
      const double window = std::max(
          policy_.debounce_window_ms,
          3.0 * MedianSampleInterval(slots[i].contact.stroke, policy_.debounce_window_ms));
      for (std::size_t j = 0; j < slots.size() && !merged; ++j) {
        if (j == i || slots[j].contact.stroke.empty()) {
          continue;
        }
        const double gap = slots[j].contact.StartTime() - slots[i].contact.EndTime();
        if (gap < 0.0 || gap > window) {
          continue;
        }
        if (geom::Distance(slots[i].contact.stroke.back(), slots[j].contact.stroke.front()) >
            policy_.debounce_radius_px) {
          continue;
        }
        if (!policy_.repair) {
          return reject(Status::ContactChatter(
              "contact " + std::to_string(slots[j].contact.id) + " re-landed " +
              std::to_string(gap) + " ms after contact " +
              std::to_string(slots[i].contact.id) + " released"));
        }
        for (const geom::TimedPoint& p : slots[j].contact.stroke) {
          slots[i].contact.stroke.AppendPoint(p);
        }
        slots[i].repaired = true;
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(j));
        ++r.bounces_stitched;
        ++r.contacts_repaired;  // the absorbed slot's terminal bucket
        merged = true;
      }
    }
  }

  // Pass 2: contact-id continuity. Two concurrent contacts that both
  // teleport at the same instant, where crossing the tails removes both
  // teleports, swapped slot ids mid-stream; un-cross them. The tails keep
  // their timestamps, so the repaired strokes stay time-ordered.
  if (policy_.id_swap_jump_px > 0.0) {
    for (std::size_t a = 0; a < slots.size(); ++a) {
      for (std::size_t b = a + 1; b < slots.size(); ++b) {
        const geom::Gesture& ga = slots[a].contact.stroke;
        const geom::Gesture& gb = slots[b].contact.stroke;
        if (ga.size() < 4 || gb.size() < 4) {
          continue;
        }
        bool swapped = false;
        for (std::size_t ia = 1; ia < ga.size() && !swapped; ++ia) {
          if (geom::Distance(ga[ia - 1], ga[ia]) <= policy_.id_swap_jump_px) {
            continue;
          }
          for (std::size_t ib = 1; ib < gb.size() && !swapped; ++ib) {
            if (geom::Distance(gb[ib - 1], gb[ib]) <= policy_.id_swap_jump_px) {
              continue;
            }
            if (std::abs(ga[ia].t - gb[ib].t) > policy_.id_swap_sync_ms) {
              continue;
            }
            // Would crossing the tails make both seams plausible?
            if (geom::Distance(ga[ia - 1], gb[ib]) > policy_.id_swap_jump_px ||
                geom::Distance(gb[ib - 1], ga[ia]) > policy_.id_swap_jump_px) {
              continue;
            }
            if (!policy_.repair) {
              return reject(Status::DataLoss("contacts " +
                                             std::to_string(slots[a].contact.id) + " and " +
                                             std::to_string(slots[b].contact.id) +
                                             " swapped ids mid-stream"));
            }
            std::vector<geom::TimedPoint> na(ga.points().begin(),
                                             ga.points().begin() + static_cast<std::ptrdiff_t>(ia));
            na.insert(na.end(), gb.points().begin() + static_cast<std::ptrdiff_t>(ib),
                      gb.points().end());
            std::vector<geom::TimedPoint> nb(gb.points().begin(),
                                             gb.points().begin() + static_cast<std::ptrdiff_t>(ib));
            nb.insert(nb.end(), ga.points().begin() + static_cast<std::ptrdiff_t>(ia),
                      ga.points().end());
            slots[a].contact.stroke = geom::Gesture(std::move(na));
            slots[b].contact.stroke = geom::Gesture(std::move(nb));
            slots[a].repaired = true;
            slots[b].repaired = true;
            ++r.id_swaps_repaired;
            swapped = true;
          }
        }
      }
    }
  }

  // Pass 3: palm rejection by area / duration / position. Contacts without
  // area data are exempt (mouse-path groups report area 0).
  for (std::size_t i = 0; i < slots.size();) {
    const geom::Contact& c = slots[i].contact;
    bool palm = false;
    if (c.area >= policy_.palm_min_area) {
      palm = true;
    } else if (c.area >= policy_.palm_suspect_area) {
      if (c.Duration() <= policy_.palm_max_duration_ms) {
        palm = true;
      } else {
        geom::TimedPoint others{};
        if (OthersCentroid(slots, i, &others) &&
            geom::Distance(StrokeCentroid(c.stroke), others) >= policy_.palm_offset_px) {
          palm = true;
        }
      }
    }
    if (!palm) {
      ++i;
      continue;
    }
    if (!policy_.repair) {
      return reject(Status::PalmRejected("contact " + std::to_string(c.id) + " has area " +
                                         std::to_string(c.area)));
    }
    slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
    ++r.palms_rejected;
    ++r.contacts_rejected;
  }
  if (slots.empty()) {
    return reject(Status::PalmRejected("every contact was a palm"));
  }

  // Pass 4: finger-count changes. Contacts joining long after the group's
  // first touch-down are transitions (a third finger grazing mid-pinch),
  // not staggered landings; drop them so the original gesture survives.
  {
    double t0 = slots.front().contact.StartTime();
    for (const Slot& s : slots) {
      t0 = std::min(t0, s.contact.StartTime());
    }
    for (std::size_t i = 0; i < slots.size();) {
      if (slots[i].contact.StartTime() - t0 <= policy_.late_join_ms) {
        ++i;
        continue;
      }
      if (!policy_.repair) {
        return reject(Status::FailedPrecondition(
            "contact " + std::to_string(slots[i].contact.id) + " joined " +
            std::to_string(slots[i].contact.StartTime() - t0) + " ms into the gesture"));
      }
      slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
      ++r.late_joiners_dropped;
      ++r.contacts_rejected;
    }
  }

  // Pass 5: per-contact stroke certification. A contact the validator
  // rejects is dropped (the group degrades to the survivors); under the
  // no-repair stroke policy the validator's own rejection propagates.
  const StrokeValidator validator(policy_.stroke);
  TrackedGroup out;
  for (Slot& s : slots) {
    ValidationReport vreport;
    auto validated = validator.Validate(s.contact.stroke, &vreport, stats);
    if (!validated.ok()) {
      if (!policy_.repair || !policy_.stroke.repair) {
        return reject(validated.status());
      }
      ++r.validation_rejected;
      ++r.contacts_rejected;
      continue;
    }
    if (vreport.repaired()) {
      ++r.validation_repaired;
      s.repaired = true;
    }
    if (s.repaired) {
      ++r.contacts_repaired;
    } else {
      ++r.contacts_passed_clean;
    }
    s.contact.stroke = std::move(*validated);
    out.group.AddContact(std::move(s.contact));
  }
  if (out.group.empty()) {
    return reject(Status::DataLoss("no contact survived lifecycle repair and validation"));
  }

  r.contacts_out = out.group.size();
  out.degraded = r.degraded();
  CountGroup(stats, r, /*rejected=*/false);
  return out;
}

}  // namespace grandma::robust
