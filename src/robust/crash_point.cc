#include "robust/crash_point.h"

#include <atomic>
#include <mutex>

namespace grandma::robust {

namespace {

std::atomic<bool> g_byte_armed{false};
std::atomic<std::uint64_t> g_byte_budget{0};
std::atomic<std::uint64_t> g_bytes_written{0};
std::atomic<std::uint64_t> g_crashes_fired{0};

std::atomic<bool> g_site_armed{false};
std::mutex g_site_mutex;
std::string g_site;  // guarded by g_site_mutex

}  // namespace

void CrashPoint::ArmAfterBytes(std::uint64_t bytes) {
  g_bytes_written.store(0, std::memory_order_relaxed);
  g_byte_budget.store(bytes, std::memory_order_relaxed);
  g_byte_armed.store(true, std::memory_order_release);
}

void CrashPoint::ArmAtSite(std::string_view site) {
  {
    std::lock_guard<std::mutex> lock(g_site_mutex);
    g_site.assign(site);
  }
  g_bytes_written.store(0, std::memory_order_relaxed);
  g_site_armed.store(true, std::memory_order_release);
}

void CrashPoint::Disarm() {
  g_byte_armed.store(false, std::memory_order_release);
  g_site_armed.store(false, std::memory_order_release);
  g_bytes_written.store(0, std::memory_order_relaxed);
}

bool CrashPoint::armed() {
  return g_byte_armed.load(std::memory_order_acquire) ||
         g_site_armed.load(std::memory_order_acquire);
}

std::uint64_t CrashPoint::bytes_written() {
  return g_bytes_written.load(std::memory_order_relaxed);
}

std::uint64_t CrashPoint::crashes_fired() {
  return g_crashes_fired.load(std::memory_order_relaxed);
}

std::uint64_t CrashPoint::Allow(std::uint64_t n) {
  if (!g_byte_armed.load(std::memory_order_acquire)) {
    g_bytes_written.fetch_add(n, std::memory_order_relaxed);
    return n;
  }
  const std::uint64_t budget = g_byte_budget.load(std::memory_order_relaxed);
  const std::uint64_t written = g_bytes_written.load(std::memory_order_relaxed);
  const std::uint64_t remaining = budget > written ? budget - written : 0;
  const std::uint64_t allowed = n < remaining ? n : remaining;
  g_bytes_written.fetch_add(allowed, std::memory_order_relaxed);
  return allowed;
}

void CrashPoint::Die(std::string what) {
  g_crashes_fired.fetch_add(1, std::memory_order_relaxed);
  throw CrashPointTriggered(what);
}

void CrashPoint::OnSite(std::string_view site) {
  if (!g_site_armed.load(std::memory_order_acquire)) {
    return;
  }
  bool match = false;
  {
    std::lock_guard<std::mutex> lock(g_site_mutex);
    match = g_site == site;
  }
  if (match) {
    // One-shot: the next pass through the same site must survive, so the
    // harness's recovery attempt is not re-killed.
    g_site_armed.store(false, std::memory_order_release);
    Die("crash point fired at site " + std::string(site));
  }
}

}  // namespace grandma::robust
