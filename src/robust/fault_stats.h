// Degradation accounting: one counter struct threaded through the validator,
// the classifier trainers, the eager recognizer, and the toolkit dispatcher,
// so tests and benches can assert not just *that* the pipeline survived bad
// input but *how* it degraded. Header-only (plus ToString/ToJson in the .cc)
// so lower layers can include it without linking extra libraries.
#ifndef GRANDMA_SRC_ROBUST_FAULT_STATS_H_
#define GRANDMA_SRC_ROBUST_FAULT_STATS_H_

#include <cstdint>
#include <string>

namespace grandma::robust {

// All counters are cumulative; Reset() zeroes, Merge() adds. Every field is
// incremented by exactly one site (named in the comment) so the numbers can
// be traced back to a decision in the code.
struct FaultStats {
  // --- StrokeValidator ---
  std::uint64_t strokes_validated = 0;  // every Validate() call
  std::uint64_t strokes_clean = 0;      // accepted with no repairs
  std::uint64_t strokes_repaired = 0;   // accepted after >= 1 repair
  std::uint64_t strokes_rejected = 0;   // refused (see Status for why)
  std::uint64_t points_dropped_nonfinite = 0;  // NaN/Inf coordinate or time
  std::uint64_t points_dropped_out_of_range = 0;  // beyond plausible device range
  std::uint64_t points_dropped_spike = 0;  // teleport outlier
  std::uint64_t timestamps_repaired = 0;  // duplicate/non-monotonic t re-timed

  // --- LinearClassifier::Train ---
  std::uint64_t training_examples_dropped = 0;    // non-finite feature vectors
  std::uint64_t covariance_ridge_repairs = 0;     // singular Sigma, ridge fixed it
  std::uint64_t covariance_diagonal_fallbacks = 0;  // ridge failed, diagonal used

  // --- EagerRecognizer::Train ---
  std::uint64_t eager_twophase_fallbacks = 0;  // AUC untrainable/ill-conditioned

  // --- toolkit::Dispatcher ---
  std::uint64_t handler_exceptions = 0;        // a handler threw mid-dispatch
  std::uint64_t handlers_quarantined = 0;      // distinct handlers isolated
  std::uint64_t events_skipped_quarantined = 0;  // offers skipped due to quarantine

  void Reset() { *this = FaultStats(); }
  void Merge(const FaultStats& other);

  // Sum of every degradation event (everything except strokes_validated and
  // strokes_clean, which count normal operation).
  std::uint64_t TotalFaultEvents() const;

  // Multi-line "name: value" rendering of the non-zero counters.
  std::string ToString() const;
  // Flat JSON object with every counter, for bench output files.
  std::string ToJson() const;
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_FAULT_STATS_H_
