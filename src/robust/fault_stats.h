// Degradation accounting: one counter struct threaded through the validator,
// the classifier trainers, the eager recognizer, and the toolkit dispatcher,
// so tests and benches can assert not just *that* the pipeline survived bad
// input but *how* it degraded. Header-only (plus ToString/ToJson in the .cc)
// so lower layers can include it without linking extra libraries.
#ifndef GRANDMA_SRC_ROBUST_FAULT_STATS_H_
#define GRANDMA_SRC_ROBUST_FAULT_STATS_H_

#include <cstdint>
#include <string>

namespace grandma::robust {

// All counters are cumulative; Reset() zeroes, Merge() adds. Every field is
// incremented by exactly one site (named in the comment) so the numbers can
// be traced back to a decision in the code.
struct FaultStats {
  // --- StrokeValidator ---
  std::uint64_t strokes_validated = 0;  // every Validate() call
  std::uint64_t strokes_clean = 0;      // accepted with no repairs
  std::uint64_t strokes_repaired = 0;   // accepted after >= 1 repair
  std::uint64_t strokes_rejected = 0;   // refused (see Status for why)
  std::uint64_t points_dropped_nonfinite = 0;  // NaN/Inf coordinate or time
  std::uint64_t points_dropped_out_of_range = 0;  // beyond plausible device range
  std::uint64_t points_dropped_spike = 0;  // teleport outlier
  std::uint64_t timestamps_repaired = 0;  // duplicate/non-monotonic t re-timed

  // --- ContactTracker ---
  // One terminal bucket per group, by severity (rejected > degraded >
  // repaired > clean); groups_tracked is the four buckets' sum.
  std::uint64_t groups_tracked = 0;    // every Track() call
  std::uint64_t groups_clean = 0;      // accepted untouched
  std::uint64_t groups_repaired = 0;   // accepted, >= 1 repair, nothing lost
  std::uint64_t groups_rejected = 0;   // nothing usable survived
  std::uint64_t groups_degraded = 0;   // accepted, but >= 1 contact was lost
  std::uint64_t contacts_tracked = 0;  // input contacts across all groups
  std::uint64_t contacts_passed_clean = 0;   // untouched through the pipeline
  std::uint64_t contacts_repaired = 0;       // stitched/swapped/validator-repaired
  std::uint64_t contacts_rejected = 0;       // palm/late-joiner/validation drop
  std::uint64_t contact_bounces_stitched = 0;   // chatter pairs merged
  std::uint64_t palms_rejected = 0;             // palm heuristic drops
  std::uint64_t contact_late_joiners_dropped = 0;  // finger-count-change repairs
  std::uint64_t contact_id_swaps_repaired = 0;     // crossed tails swapped back

  // --- LinearClassifier::Train ---
  std::uint64_t training_examples_dropped = 0;    // non-finite feature vectors
  std::uint64_t covariance_ridge_repairs = 0;     // singular Sigma, ridge fixed it
  std::uint64_t covariance_diagonal_fallbacks = 0;  // ridge failed, diagonal used

  // --- EagerRecognizer::Train ---
  std::uint64_t eager_twophase_fallbacks = 0;  // AUC untrainable/ill-conditioned

  // --- toolkit::Dispatcher ---
  std::uint64_t handler_exceptions = 0;        // a handler threw mid-dispatch
  std::uint64_t handlers_quarantined = 0;      // distinct handlers isolated
  std::uint64_t events_skipped_quarantined = 0;  // offers skipped due to quarantine

  void Reset() { *this = FaultStats(); }
  void Merge(const FaultStats& other);

  // Sum of every degradation event (everything except the strokes_validated
  // / strokes_clean / groups_tracked / groups_clean / contacts_tracked /
  // contacts_passed_clean counters, which count normal operation).
  std::uint64_t TotalFaultEvents() const;

  // Multi-line "name: value" rendering of the non-zero counters.
  std::string ToString() const;
  // Flat JSON object with every counter, for bench output files.
  std::string ToJson() const;
};

}  // namespace grandma::robust

#endif  // GRANDMA_SRC_ROBUST_FAULT_STATS_H_
