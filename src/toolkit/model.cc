#include "toolkit/model.h"

#include <algorithm>

namespace grandma::toolkit {

Model::ObserverToken Model::AddObserver(Observer observer) {
  const ObserverToken token = next_token_++;
  observers_.push_back(Entry{token, std::move(observer)});
  return token;
}

bool Model::RemoveObserver(ObserverToken token) {
  const auto it = std::find_if(observers_.begin(), observers_.end(),
                               [token](const Entry& e) { return e.token == token; });
  if (it == observers_.end()) {
    return false;
  }
  observers_.erase(it);
  return true;
}

std::size_t Model::observer_count() const { return observers_.size(); }

void Model::NotifyChanged(const ModelChange& change) const {
  // Copy the list: an observer may add/remove observers while running.
  const std::vector<Entry> snapshot = observers_;
  for (const Entry& entry : snapshot) {
    entry.observer(*this, change);
  }
}

}  // namespace grandma::toolkit
