// Bridges the script interpreter to gesture semantics: compile the paper's
// three expressions (recog / manip / done) from source text into a
// GestureSemantics whose attribute references (<startX>, <currentX>, ...)
// bind lazily to the live SemanticContext, and where `recog` names the value
// the recog expression returned — exactly the contract of Section 3.2.
#ifndef GRANDMA_SRC_TOOLKIT_SCRIPT_SEMANTICS_H_
#define GRANDMA_SRC_TOOLKIT_SCRIPT_SEMANTICS_H_

#include <functional>
#include <optional>
#include <string>

#include "toolkit/script.h"
#include "toolkit/semantics.h"

namespace grandma::toolkit {

// Resolves the application-provided identifiers scripts may mention (e.g.
// "view" bound to a scriptable window/document object).
using ScriptVariableResolver =
    std::function<std::optional<script::Value>(const std::string& name)>;

// Compiles the three expressions. Empty strings and "nil" compile to no-ops.
// Parse errors throw script::ScriptError immediately (at handler-definition
// time, not mid-interaction). The gestural attributes available are:
//   startX startY endX endY currentX currentY currentT
//   length initialAngle diagonalLength
GestureSemantics CompileScriptSemantics(const std::string& recog_source,
                                        const std::string& manip_source,
                                        const std::string& done_source,
                                        ScriptVariableResolver variables);

// The attribute resolver used by compiled semantics; exposed for tests and
// for applications that evaluate ad-hoc scripts against a context.
std::optional<double> ResolveGesturalAttribute(const SemanticContext& ctx,
                                               const std::string& name);

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_SCRIPT_SEMANTICS_H_
