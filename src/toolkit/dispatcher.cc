#include "toolkit/dispatcher.h"

namespace grandma::toolkit {

bool Dispatcher::Dispatch(const InputEvent& event) {
  ++dispatched_count_;
  if (event.time_ms > clock_->now_ms()) {
    clock_->Set(event.time_ms);
  }

  if (swallowing_until_up_) {
    if (event.type == EventType::kMouseUp) {
      swallowing_until_up_ = false;
    }
    return true;
  }

  if (grabbed_handler_ != nullptr) {
    EventHandler* handler = grabbed_handler_;
    View* view = grabbed_view_;
    const HandlerResponse response = handler->OnEvent(event, *view);
    HandleResponse(response, handler, view, event);
    return true;
  }

  // No grab: find the view under the pointer and offer the event to each
  // handler in its chain, then walk up the ancestor chain.
  View* hit = root_ != nullptr ? root_->FindViewAt(event.x, event.y) : nullptr;
  for (View* view = hit; view != nullptr; view = view->parent()) {
    for (EventHandler* handler : view->HandlerChain()) {
      if (!handler->Wants(event, *view)) {
        continue;
      }
      const HandlerResponse response = handler->OnEvent(event, *view);
      if (response == HandlerResponse::kIgnored) {
        continue;  // Propagate to the next handler.
      }
      HandleResponse(response, handler, view, event);
      return true;
    }
  }
  return false;
}

void Dispatcher::Tick() {
  if (grabbed_handler_ == nullptr) {
    return;
  }
  const InputEvent tick = InputEvent::Timer(clock_->now_ms());
  EventHandler* handler = grabbed_handler_;
  View* view = grabbed_view_;
  HandleResponse(handler->OnEvent(tick, *view), handler, view, tick);
}

void Dispatcher::HandleResponse(HandlerResponse response, EventHandler* handler, View* view,
                                const InputEvent& event) {
  switch (response) {
    case HandlerResponse::kIgnored:
    case HandlerResponse::kConsumed:
      if (grabbed_handler_ == handler &&
          (event.type == EventType::kMouseUp || response == HandlerResponse::kIgnored)) {
        grabbed_handler_ = nullptr;
        grabbed_view_ = nullptr;
      }
      break;
    case HandlerResponse::kConsumedAndGrab:
      grabbed_handler_ = handler;
      grabbed_view_ = view;
      break;
    case HandlerResponse::kAbort:
      grabbed_handler_ = nullptr;
      grabbed_view_ = nullptr;
      if (event.type != EventType::kMouseUp) {
        swallowing_until_up_ = true;
      }
      break;
  }
}

}  // namespace grandma::toolkit
