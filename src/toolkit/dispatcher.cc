#include "toolkit/dispatcher.h"

#include <algorithm>

namespace grandma::toolkit {

bool Dispatcher::IsQuarantined(const EventHandler* handler) const {
  return std::find(quarantined_.begin(), quarantined_.end(), handler) != quarantined_.end();
}

void Dispatcher::Quarantine(EventHandler* handler) {
  ++handler_fault_count_;
  if (fault_stats_ != nullptr) {
    ++fault_stats_->handler_exceptions;
  }
  if (IsQuarantined(handler)) {
    return;
  }
  quarantined_.push_back(handler);
  if (fault_stats_ != nullptr) {
    ++fault_stats_->handlers_quarantined;
  }
}

std::optional<HandlerResponse> Dispatcher::GuardedOnEvent(EventHandler* handler,
                                                          const InputEvent& event,
                                                          View& view) {
  try {
    return handler->OnEvent(event, view);
  } catch (...) {
    Quarantine(handler);
  }
  return std::nullopt;
}

bool Dispatcher::Dispatch(const InputEvent& event) {
  ++dispatched_count_;
  if (event.time_ms > clock_->now_ms()) {
    clock_->Set(event.time_ms);
  }

  if (swallowing_until_up_) {
    if (event.type == EventType::kMouseUp) {
      swallowing_until_up_ = false;
    }
    return true;
  }

  if (grabbed_handler_ != nullptr) {
    EventHandler* handler = grabbed_handler_;
    View* view = grabbed_view_;
    const std::optional<HandlerResponse> response = GuardedOnEvent(handler, event, *view);
    if (!response.has_value()) {
      // The grabbed handler died mid-interaction: isolate it exactly like an
      // abort — release the grab and swallow the rest of this interaction —
      // but keep it quarantined so the remaining handlers stay in service.
      grabbed_handler_ = nullptr;
      grabbed_view_ = nullptr;
      if (event.type != EventType::kMouseUp) {
        swallowing_until_up_ = true;
      }
      return true;
    }
    HandleResponse(*response, handler, view, event);
    return true;
  }

  // No grab: find the view under the pointer and offer the event to each
  // handler in its chain, then walk up the ancestor chain.
  View* hit = root_ != nullptr ? root_->FindViewAt(event.x, event.y) : nullptr;
  for (View* view = hit; view != nullptr; view = view->parent()) {
    for (EventHandler* handler : view->HandlerChain()) {
      if (IsQuarantined(handler)) {
        if (fault_stats_ != nullptr) {
          ++fault_stats_->events_skipped_quarantined;
        }
        continue;
      }
      bool wants = false;
      try {
        wants = handler->Wants(event, *view);
      } catch (...) {
        Quarantine(handler);
        continue;
      }
      if (!wants) {
        continue;
      }
      const std::optional<HandlerResponse> response = GuardedOnEvent(handler, event, *view);
      if (!response.has_value()) {
        // Threw while starting an interaction: treat as if it never wanted
        // the event and let the next handler have a look.
        continue;
      }
      if (*response == HandlerResponse::kIgnored) {
        continue;  // Propagate to the next handler.
      }
      HandleResponse(*response, handler, view, event);
      return true;
    }
  }
  return false;
}

void Dispatcher::Tick() {
  if (grabbed_handler_ == nullptr) {
    return;
  }
  const InputEvent tick = InputEvent::Timer(clock_->now_ms());
  EventHandler* handler = grabbed_handler_;
  View* view = grabbed_view_;
  const std::optional<HandlerResponse> response = GuardedOnEvent(handler, tick, *view);
  if (!response.has_value()) {
    grabbed_handler_ = nullptr;
    grabbed_view_ = nullptr;
    swallowing_until_up_ = true;
    return;
  }
  HandleResponse(*response, handler, view, tick);
}

void Dispatcher::HandleResponse(HandlerResponse response, EventHandler* handler, View* view,
                                const InputEvent& event) {
  switch (response) {
    case HandlerResponse::kIgnored:
    case HandlerResponse::kConsumed:
      if (grabbed_handler_ == handler &&
          (event.type == EventType::kMouseUp || response == HandlerResponse::kIgnored)) {
        grabbed_handler_ = nullptr;
        grabbed_view_ = nullptr;
      }
      break;
    case HandlerResponse::kConsumedAndGrab:
      grabbed_handler_ = handler;
      grabbed_view_ = view;
      break;
    case HandlerResponse::kAbort:
      grabbed_handler_ = nullptr;
      grabbed_view_ = nullptr;
      if (event.type != EventType::kMouseUp) {
        swallowing_until_up_ = true;
      }
      break;
  }
}

}  // namespace grandma::toolkit
