// A small message-expression interpreter in the style of the Objective-C
// interpreter built into GRANDMA. The paper's GDP rectangle semantics are
// written exactly like this:
//
//   recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
//   manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
//   done  = nil;
//
// Grammar:
//   expr      := message | attribute | number | 'nil' | identifier
//   message   := '[' expr selector ']'
//   selector  := name                      (unary message)
//              | (name ':' expr)+          (keyword message)
//   attribute := '<' name '>'              (lazily-bound gestural attribute)
//
// Values are nil, doubles, strings, or object handles; objects implement
// Send(selector, args). Evaluation happens against an Environment that
// resolves identifiers (e.g. `view`, `recog`) and attributes (e.g.
// `<startX>`) at call time — the paper's lazy binding.
#ifndef GRANDMA_SRC_TOOLKIT_SCRIPT_H_
#define GRANDMA_SRC_TOOLKIT_SCRIPT_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace grandma::toolkit::script {

class Object;

// nil | number | string | object.
using Value = std::variant<std::monostate, double, std::string, Object*>;

inline bool IsNil(const Value& v) { return std::holds_alternative<std::monostate>(v); }

// Thrown on parse errors and on message-send failures.
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(const std::string& what) : std::runtime_error(what) {}
};

// A scriptable object: receives messages by selector. Selectors use the
// Objective-C convention: "createRect" (unary), "setEndpoint:x:y:" (keyword,
// one argument per ':').
class Object {
 public:
  virtual ~Object() = default;
  // Handles a message; throws ScriptError for unknown selectors.
  virtual Value Send(const std::string& selector, std::span<const Value> args) = 0;
  // Shown in error messages.
  virtual std::string Description() const { return "object"; }
};

// Name resolution at evaluation time.
struct Environment {
  // Identifier lookup ("view", "recog", ...). Return nullopt when unknown.
  std::function<std::optional<Value>(const std::string&)> variables;
  // Attribute lookup ("<startX>", ...). Return nullopt when unknown.
  std::function<std::optional<double>(const std::string&)> attributes;
};

// A parsed expression, reusable across evaluations (semantics are parsed
// once and evaluated per interaction).
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Value Evaluate(const Environment& env) const = 0;
};

using ExpressionPtr = std::shared_ptr<const Expression>;

// Parses one expression. Throws ScriptError with a position on bad syntax.
// Whitespace is insignificant; a trailing ';' is permitted.
ExpressionPtr Parse(const std::string& source);

// Parse + evaluate in one step.
Value Evaluate(const std::string& source, const Environment& env);

// Debug rendering of a value.
std::string ToString(const Value& value);

}  // namespace grandma::toolkit::script

#endif  // GRANDMA_SRC_TOOLKIT_SCRIPT_H_
