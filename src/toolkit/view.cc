#include "toolkit/view.h"

#include <algorithm>

#include "toolkit/event_handler.h"

namespace grandma::toolkit {

void ViewClass::AddHandler(std::shared_ptr<EventHandler> handler) {
  handlers_.insert(handlers_.begin(), std::move(handler));
}

void ViewClass::RemoveHandler(const EventHandler* handler) {
  handlers_.erase(std::remove_if(handlers_.begin(), handlers_.end(),
                                 [handler](const auto& h) { return h.get() == handler; }),
                  handlers_.end());
}

bool ViewClass::IsKindOf(const ViewClass& ancestor) const {
  for (const ViewClass* c = this; c != nullptr; c = c->parent()) {
    if (c == &ancestor) {
      return true;
    }
  }
  return false;
}

View::View(const ViewClass* view_class, std::string name)
    : view_class_(view_class), name_(std::move(name)) {}

View::~View() = default;

bool View::HitTest(double x, double y) const { return bounds_.Contains(x, y); }

View* View::AddChild(std::unique_ptr<View> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

bool View::RemoveChild(View* child) {
  auto it = std::find_if(children_.begin(), children_.end(),
                         [child](const auto& c) { return c.get() == child; });
  if (it == children_.end()) {
    return false;
  }
  children_.erase(it);
  return true;
}

View* View::FindViewAt(double x, double y) {
  if (!HitTest(x, y)) {
    return nullptr;
  }
  // Later children are on top: search them first.
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    if (View* hit = (*it)->FindViewAt(x, y)) {
      return hit;
    }
  }
  return this;
}

void View::AddHandler(std::shared_ptr<EventHandler> handler) {
  handlers_.insert(handlers_.begin(), std::move(handler));
}

void View::RemoveHandler(const EventHandler* handler) {
  handlers_.erase(std::remove_if(handlers_.begin(), handlers_.end(),
                                 [handler](const auto& h) { return h.get() == handler; }),
                  handlers_.end());
}

std::vector<EventHandler*> View::HandlerChain() const {
  std::vector<EventHandler*> chain;
  for (const auto& h : handlers_) {
    chain.push_back(h.get());
  }
  for (const ViewClass* c = view_class_; c != nullptr; c = c->parent()) {
    for (const auto& h : c->handlers()) {
      chain.push_back(h.get());
    }
  }
  return chain;
}

}  // namespace grandma::toolkit
