// The gesture handler (Section 3.2): implements the two-phase interaction.
// Phase one *collects* (and inks) the gesture; the phase transition happens
// on whichever comes first of
//   1. mouse-up (the manipulation phase is then omitted),
//   2. a 200 ms dwell — the mouse held still with the button down,
//   3. eager recognition — D(g[i]) fires (when an eager recognizer is
//      enabled);
// the gesture is then classified and its recog semantics run, and phase two
// feeds every further mouse point to the manip semantics until mouse-up runs
// done. A rejected classification aborts the interaction.
#ifndef GRANDMA_SRC_TOOLKIT_GESTURE_HANDLER_H_
#define GRANDMA_SRC_TOOLKIT_GESTURE_HANDLER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "classify/rejection.h"
#include "eager/eager_recognizer.h"
#include "geom/filter.h"
#include "geom/gesture.h"
#include "toolkit/event_handler.h"
#include "toolkit/semantics.h"

namespace grandma::toolkit {

class GestureHandler : public EventHandler {
 public:
  enum class Phase { kIdle, kCollecting, kManipulating };

  // Why the collection -> manipulation transition happened.
  enum class Transition { kMouseUp, kTimeout, kEager };

  struct Config {
    // Dwell timeout; <= 0 disables the timeout transition.
    double dwell_timeout_ms = 200.0;
    // Consult the eager recognizer's D on every collected point.
    bool enable_eager = false;
    // Input thinning, as in Rubine's collector.
    double min_filter_distance = 3.0;
    // Mouse button this handler responds to.
    int button = 0;
    // Reject dubious classifications (see classify::RejectionPolicy);
    // a rejected gesture aborts the interaction.
    bool use_rejection = false;
    classify::RejectionPolicy rejection;
  };

  struct Stats {
    std::size_t recognized = 0;
    std::size_t rejected = 0;
    std::size_t eager_transitions = 0;
    std::size_t timeout_transitions = 0;
    std::size_t mouseup_transitions = 0;
  };

  // `recognizer` must outlive the handler and be trained; it provides both
  // the full classifier and (when config.enable_eager) the doneness
  // predicate. Each handler instance recognizes its own gesture set and
  // carries its own semantics, as in the paper.
  GestureHandler(std::string name, const eager::EagerRecognizer* recognizer, Config config);

  SemanticsTable& semantics() { return semantics_; }

  bool Wants(const InputEvent& event, View& view) const override;
  HandlerResponse OnEvent(const InputEvent& event, View& view) override;

  Phase phase() const { return phase_; }
  const geom::Gesture& collected() const { return collected_; }
  const Stats& stats() const { return stats_; }
  // Class name of the gesture recognized in the current/most recent
  // interaction; empty when none.
  const std::string& recognized_class() const { return recognized_class_; }
  // How the most recent transition happened.
  std::optional<Transition> last_transition() const { return last_transition_; }
  const Config& config() const { return config_; }

  // Feedback hooks (inking etc.).
  std::function<void(const geom::Gesture&)> on_ink;
  std::function<void(const std::string& class_name, const classify::Classification&, Transition)>
      on_recognized;
  std::function<void(const classify::Classification&)> on_rejected;

 private:
  HandlerResponse BeginCollection(const InputEvent& event, View& view);
  HandlerResponse HandleCollecting(const InputEvent& event, View& view);
  HandlerResponse HandleManipulating(const InputEvent& event, View& view);
  // Classifies the collected gesture and runs recog. Returns false when the
  // classification was rejected (interaction aborts).
  bool DoTransition(Transition how, View& view);
  void RunManip(const geom::TimedPoint& current);
  void FinishInteraction(const geom::TimedPoint& current);
  void ResetInteraction();

  const eager::EagerRecognizer* recognizer_;
  Config config_;
  SemanticsTable semantics_;

  Phase phase_ = Phase::kIdle;
  geom::Gesture collected_;
  geom::MinDistanceFilter filter_;
  eager::EagerStream stream_;
  double last_input_time_ = 0.0;
  View* interaction_view_ = nullptr;
  std::unique_ptr<SemanticContext> context_;
  const GestureSemantics* active_semantics_ = nullptr;
  std::string recognized_class_;
  std::optional<Transition> last_transition_;
  Stats stats_;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_GESTURE_HANDLER_H_
