#include "toolkit/touch_attributes.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

namespace grandma::toolkit {

namespace {

// Position of a contact at time t: linear interpolation between the
// surrounding samples, clamped to the endpoints. Callers only ask for times
// within [StartTime, EndTime].
geom::TimedPoint SampleAt(const geom::Gesture& g, double t) {
  if (g.size() == 1 || t <= g.front().t) {
    return g.front();
  }
  if (t >= g.back().t) {
    return g.back();
  }
  const auto& pts = g.points();
  auto it = std::lower_bound(pts.begin(), pts.end(), t,
                             [](const geom::TimedPoint& p, double v) { return p.t < v; });
  const geom::TimedPoint& hi = *it;
  const geom::TimedPoint& lo = *(it - 1);
  const double dt = hi.t - lo.t;
  if (dt <= 0.0) {
    return hi;
  }
  const double u = (t - lo.t) / dt;
  return geom::TimedPoint{lo.x + u * (hi.x - lo.x), lo.y + u * (hi.y - lo.y), t};
}

// Normalizes an angle delta into (-pi, pi] so unwrapping accumulates the
// short way around.
double WrapDelta(double d) {
  constexpr double kPi = std::numbers::pi;
  while (d > kPi) {
    d -= 2.0 * kPi;
  }
  while (d <= -kPi) {
    d += 2.0 * kPi;
  }
  return d;
}

}  // namespace

const char* TouchGestureKindName(TouchGestureKind kind) {
  switch (kind) {
    case TouchGestureKind::kSingleStroke:
      return "single_stroke";
    case TouchGestureKind::kPinch:
      return "pinch";
    case TouchGestureKind::kRotate:
      return "rotate";
    case TouchGestureKind::kSwipe:
      return "swipe";
    case TouchGestureKind::kTap:
      return "tap";
    case TouchGestureKind::kNone:
      return "none";
  }
  return "unknown";
}

std::size_t PrimaryContactIndex(const geom::ContactGroup& group) {
  std::size_t best = 0;
  double best_length = -1.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const double length = group[i].stroke.PathLength();
    if (length > best_length) {
      best_length = length;
      best = i;
    }
  }
  return best;
}

TouchTrack ComputeTouchTrack(const geom::ContactGroup& group,
                             const TouchAttributeOptions& options) {
  TouchTrack track;
  if (group.empty()) {
    return track;
  }
  track.primary_index = PrimaryContactIndex(group);

  // Frame timeline: every timestamp any contact reported, deduplicated.
  std::vector<double> times;
  times.reserve(group.TotalPoints());
  for (const geom::Contact& c : group.contacts()) {
    for (const geom::TimedPoint& p : c.stroke) {
      times.push_back(p.t);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  // Baseline state, established at the first frame with >= 2 active
  // contacts; angle/scale hold their last value while < 2 are down.
  bool have_baseline = false;
  double baseline_span = 0.0;
  double prev_raw_angle = 0.0;
  double unwrapped = 0.0;
  double last_scale = 1.0;

  track.frames.reserve(times.size());
  std::vector<geom::TimedPoint> active;
  active.reserve(group.size());
  for (double t : times) {
    active.clear();
    for (const geom::Contact& c : group.contacts()) {
      if (c.stroke.empty() || t < c.StartTime() || t > c.EndTime()) {
        continue;
      }
      active.push_back(SampleAt(c.stroke, t));
    }
    if (active.empty()) {
      continue;  // a gap between every contact's lifetime
    }

    TouchFrame frame;
    frame.t = t;
    frame.active = active.size();
    for (const geom::TimedPoint& p : active) {
      frame.cx += p.x;
      frame.cy += p.y;
    }
    frame.cx /= static_cast<double>(active.size());
    frame.cy /= static_cast<double>(active.size());

    if (active.size() >= 2) {
      // Span: mean distance of active contacts from the logical center.
      // Baseline angle: the first-to-second active-contact vector (group
      // order is deterministic, so the pair is stable across frames).
      double span = 0.0;
      const geom::TimedPoint center{frame.cx, frame.cy, t};
      for (const geom::TimedPoint& p : active) {
        span += geom::Distance(p, center);
      }
      span /= static_cast<double>(active.size());
      const double raw_angle =
          std::atan2(active[1].y - active[0].y, active[1].x - active[0].x);
      if (!have_baseline) {
        have_baseline = true;
        baseline_span = span;
        prev_raw_angle = raw_angle;
      } else {
        unwrapped += WrapDelta(raw_angle - prev_raw_angle);
        prev_raw_angle = raw_angle;
      }
      last_scale = baseline_span > 1e-9 ? span / baseline_span : 1.0;
    }
    frame.angle = unwrapped;
    frame.scale = last_scale;
    track.frames.push_back(frame);
  }

  if (!track.frames.empty()) {
    track.total_rotation = track.frames.back().angle;
    track.final_scale = track.frames.back().scale;
    track.duration_ms = track.frames.back().t - track.frames.front().t;
    // Translation is measured over the multi-finger span when one exists:
    // during staggered landings/lifts the center snaps between fingers,
    // which is lifecycle structure, not user motion.
    const TouchFrame* first = nullptr;
    const TouchFrame* last = nullptr;
    for (const TouchFrame& f : track.frames) {
      if (group.size() >= 2 && f.active < 2) {
        continue;
      }
      if (first == nullptr) {
        first = &f;
      }
      last = &f;
    }
    if (first == nullptr) {
      first = &track.frames.front();
      last = &track.frames.back();
    }
    const double dx = last->cx - first->cx;
    const double dy = last->cy - first->cy;
    track.translation_px = std::sqrt(dx * dx + dy * dy);
  }

  // Classification: single-contact groups go down the stroke path; among
  // multi-contact motions the dominant normalized component wins, with a
  // fixed pinch > rotate > swipe priority breaking exact ties.
  if (group.size() <= 1) {
    track.kind = TouchGestureKind::kSingleStroke;
    return track;
  }
  const double s = std::abs(std::log(std::max(track.final_scale, 1e-9))) /
                   options.pinch_log_scale;
  const double rt = std::abs(track.total_rotation) / options.rotate_angle;
  const double tr = track.translation_px / options.swipe_translation;
  if (s >= 1.0 && s >= rt && s >= tr) {
    track.kind = TouchGestureKind::kPinch;
  } else if (rt >= 1.0 && rt >= tr) {
    track.kind = TouchGestureKind::kRotate;
  } else if (tr >= 1.0) {
    track.kind = TouchGestureKind::kSwipe;
  } else if (track.duration_ms <= options.tap_max_duration_ms &&
             track.translation_px <= options.tap_max_translation) {
    track.kind = TouchGestureKind::kTap;
  } else {
    track.kind = TouchGestureKind::kNone;
  }
  return track;
}

std::string TouchTrack::ToString() const {
  std::ostringstream os;
  os << TouchGestureKindName(kind) << " frames=" << frames.size()
     << " rot=" << total_rotation << " scale=" << final_scale
     << " trans=" << translation_px << " dur=" << duration_ms;
  return os.str();
}

bool DispatchTouchSemantics(const TouchTrack& track, const geom::ContactGroup& group,
                            const SemanticsTable& table, View* view) {
  if (group.empty() || track.primary_index >= group.size()) {
    return false;
  }
  const GestureSemantics* sem = table.Find(TouchGestureKindName(track.kind));
  if (sem == nullptr) {
    return false;
  }
  const geom::Gesture& collected = group[track.primary_index].stroke;
  if (collected.empty()) {
    return false;
  }
  SemanticContext context(&collected, view);
  if (sem->recog) {
    context.recog_slot() = sem->recog(context);
  }
  if (sem->manip) {
    for (const TouchFrame& frame : track.frames) {
      context.SetCurrent(geom::TimedPoint{frame.cx, frame.cy, frame.t});
      sem->manip(context);
    }
  }
  if (sem->done) {
    sem->done(context);
  }
  return true;
}

}  // namespace grandma::toolkit
