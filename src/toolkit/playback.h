// The synthetic input source replacing X10/MACH mouse input: plays scripted
// event sequences into a Dispatcher, advancing the virtual clock and pumping
// timer ticks between events so dwell timeouts behave exactly as they would
// against a real event loop.
#ifndef GRANDMA_SRC_TOOLKIT_PLAYBACK_H_
#define GRANDMA_SRC_TOOLKIT_PLAYBACK_H_

#include <vector>

#include "geom/gesture.h"
#include "toolkit/dispatcher.h"
#include "toolkit/event.h"

namespace grandma::toolkit {

class PlaybackDriver {
 public:
  // `tick_interval_ms`: granularity of synthetic timer ticks (X-style timer
  // resolution). 25 ms resolves a 200 ms dwell comfortably.
  explicit PlaybackDriver(Dispatcher* dispatcher, double tick_interval_ms = 25.0)
      : dispatcher_(dispatcher), tick_interval_ms_(tick_interval_ms) {}

  // Dispatches `event`, first advancing the clock from its current time to
  // the event time in tick_interval steps, calling Dispatcher::Tick at each
  // so a grabbed gesture handler can observe dwell.
  void Feed(const InputEvent& event);

  // Plays a full press-draw-release interaction along `stroke` (absolute
  // times from the stroke's points, offset to start at the clock's now).
  // `hold_ms_before_release`: dwell inserted between the last move and the
  // mouse-up — > 200 ms triggers the timeout transition before release.
  void PlayStroke(const geom::Gesture& stroke, double hold_ms_before_release = 0.0,
                  int button = 0);

  // Plays a press at (x, y), a dwell of `hold_ms`, then a drag through
  // `drag_points` (relative times), then release. Used to drive
  // timeout-transition manipulations and plain drags.
  void PressDragRelease(double x, double y, double hold_ms,
                        const std::vector<geom::TimedPoint>& drag_points, int button = 0);

  Dispatcher& dispatcher() { return *dispatcher_; }

 private:
  void AdvanceTo(double t_ms);

  Dispatcher* dispatcher_;
  double tick_interval_ms_;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_PLAYBACK_H_
