#include "toolkit/script.h"

#include <cctype>
#include <sstream>

namespace grandma::toolkit::script {

namespace {

// --- Lexer ---

enum class TokenKind { kLBracket, kRBracket, kColon, kLAngle, kRAngle, kName, kNumber, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : source_(source) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    SkipWhitespace();
    current_.position = pos_;
    if (pos_ >= source_.size()) {
      current_.kind = TokenKind::kEnd;
      current_.text.clear();
      return;
    }
    const char c = source_[pos_];
    switch (c) {
      case '[':
        current_ = Token{TokenKind::kLBracket, "[", 0.0, pos_++};
        return;
      case ']':
        current_ = Token{TokenKind::kRBracket, "]", 0.0, pos_++};
        return;
      case ':':
        current_ = Token{TokenKind::kColon, ":", 0.0, pos_++};
        return;
      case '<':
        current_ = Token{TokenKind::kLAngle, "<", 0.0, pos_++};
        return;
      case '>':
        current_ = Token{TokenKind::kRAngle, ">", 0.0, pos_++};
        return;
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' || c == '.') {
      std::size_t end = 0;
      const double value = std::stod(source_.substr(pos_), &end);
      current_ = Token{TokenKind::kNumber, source_.substr(pos_, end), value, pos_};
      pos_ += end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[end])) || source_[end] == '_')) {
        ++end;
      }
      current_ = Token{TokenKind::kName, source_.substr(pos_, end - pos_), 0.0, pos_};
      pos_ = end;
      return;
    }
    throw ScriptError("unexpected character '" + std::string(1, c) + "' at position " +
                      std::to_string(pos_));
  }

 private:
  void SkipWhitespace() {
    while (pos_ < source_.size() &&
           (std::isspace(static_cast<unsigned char>(source_[pos_])) || source_[pos_] == ';')) {
      ++pos_;
    }
  }

  const std::string& source_;
  Token current_;
  std::size_t pos_ = 0;
};

// --- AST ---

class NumberExpr final : public Expression {
 public:
  explicit NumberExpr(double value) : value_(value) {}
  Value Evaluate(const Environment&) const override { return value_; }

 private:
  double value_;
};

class NilExpr final : public Expression {
 public:
  Value Evaluate(const Environment&) const override { return std::monostate{}; }
};

class VariableExpr final : public Expression {
 public:
  explicit VariableExpr(std::string name) : name_(std::move(name)) {}
  Value Evaluate(const Environment& env) const override {
    if (env.variables) {
      if (auto value = env.variables(name_)) {
        return *value;
      }
    }
    throw ScriptError("unbound identifier '" + name_ + "'");
  }

 private:
  std::string name_;
};

class AttributeExpr final : public Expression {
 public:
  explicit AttributeExpr(std::string name) : name_(std::move(name)) {}
  Value Evaluate(const Environment& env) const override {
    if (env.attributes) {
      if (auto value = env.attributes(name_)) {
        return *value;
      }
    }
    throw ScriptError("unknown gestural attribute <" + name_ + ">");
  }

 private:
  std::string name_;
};

class MessageExpr final : public Expression {
 public:
  MessageExpr(ExpressionPtr receiver, std::string selector, std::vector<ExpressionPtr> args)
      : receiver_(std::move(receiver)), selector_(std::move(selector)), args_(std::move(args)) {}

  Value Evaluate(const Environment& env) const override {
    const Value receiver = receiver_->Evaluate(env);
    if (IsNil(receiver)) {
      // Objective-C semantics: messages to nil answer nil.
      return std::monostate{};
    }
    Object* const* object = std::get_if<Object*>(&receiver);
    if (object == nullptr || *object == nullptr) {
      throw ScriptError("receiver of '" + selector_ + "' is not an object: " +
                        ToString(receiver));
    }
    std::vector<Value> args;
    args.reserve(args_.size());
    for (const ExpressionPtr& arg : args_) {
      args.push_back(arg->Evaluate(env));
    }
    return (*object)->Send(selector_, args);
  }

 private:
  ExpressionPtr receiver_;
  std::string selector_;
  std::vector<ExpressionPtr> args_;
};

// --- Parser ---

class Parser {
 public:
  explicit Parser(const std::string& source) : lexer_(source) {}

  ExpressionPtr ParseExpression() {
    const Token& token = lexer_.current();
    switch (token.kind) {
      case TokenKind::kNumber: {
        const double value = token.number;
        lexer_.Advance();
        return std::make_shared<NumberExpr>(value);
      }
      case TokenKind::kLAngle: {
        lexer_.Advance();
        Expect(TokenKind::kName, "attribute name");
        std::string name = lexer_.current().text;
        lexer_.Advance();
        Expect(TokenKind::kRAngle, "'>'");
        lexer_.Advance();
        return std::make_shared<AttributeExpr>(std::move(name));
      }
      case TokenKind::kName: {
        std::string name = token.text;
        lexer_.Advance();
        if (name == "nil") {
          return std::make_shared<NilExpr>();
        }
        return std::make_shared<VariableExpr>(std::move(name));
      }
      case TokenKind::kLBracket:
        return ParseMessage();
      default:
        throw ScriptError("expected an expression at position " +
                          std::to_string(token.position));
    }
  }

  void ExpectEnd() {
    if (lexer_.current().kind != TokenKind::kEnd) {
      throw ScriptError("unexpected trailing input at position " +
                        std::to_string(lexer_.current().position));
    }
  }

 private:
  ExpressionPtr ParseMessage() {
    Expect(TokenKind::kLBracket, "'['");
    lexer_.Advance();
    ExpressionPtr receiver = ParseExpression();

    Expect(TokenKind::kName, "a selector");
    std::string selector;
    std::vector<ExpressionPtr> args;
    // Unary or keyword message: name (':' expr (name ':')* ...)?
    while (lexer_.current().kind == TokenKind::kName) {
      selector += lexer_.current().text;
      lexer_.Advance();
      if (lexer_.current().kind == TokenKind::kColon) {
        selector += ':';
        lexer_.Advance();
        args.push_back(ParseExpression());
      } else {
        // Unary part: must be the whole selector.
        break;
      }
    }
    Expect(TokenKind::kRBracket, "']'");
    lexer_.Advance();
    return std::make_shared<MessageExpr>(std::move(receiver), std::move(selector),
                                         std::move(args));
  }

  void Expect(TokenKind kind, const char* what) {
    if (lexer_.current().kind != kind) {
      throw ScriptError(std::string("expected ") + what + " at position " +
                        std::to_string(lexer_.current().position));
    }
  }

  Lexer lexer_;
};

}  // namespace

ExpressionPtr Parse(const std::string& source) {
  Parser parser(source);
  ExpressionPtr expr = parser.ParseExpression();
  parser.ExpectEnd();
  return expr;
}

Value Evaluate(const std::string& source, const Environment& env) {
  return Parse(source)->Evaluate(env);
}

std::string ToString(const Value& value) {
  std::ostringstream os;
  if (IsNil(value)) {
    os << "nil";
  } else if (const double* d = std::get_if<double>(&value)) {
    os << *d;
  } else if (const std::string* s = std::get_if<std::string>(&value)) {
    os << '"' << *s << '"';
  } else if (Object* const* o = std::get_if<Object*>(&value)) {
    os << (*o != nullptr ? (*o)->Description() : "null-object");
  }
  return os.str();
}

}  // namespace grandma::toolkit::script
