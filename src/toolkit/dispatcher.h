// Routes input events to views and their handler chains, maintaining the
// grab: after a handler accepts a mouse-down, it receives the rest of the
// interaction (moves, timer ticks, the mouse-up) directly.
//
// Fault isolation: a handler that throws out of Wants/OnEvent is caught and
// *quarantined* — it is skipped for the rest of the session instead of
// unwinding the event loop, so one misbehaving interaction technique cannot
// take down every view (see docs/ROBUSTNESS.md).
#ifndef GRANDMA_SRC_TOOLKIT_DISPATCHER_H_
#define GRANDMA_SRC_TOOLKIT_DISPATCHER_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "robust/fault_stats.h"
#include "toolkit/event.h"
#include "toolkit/event_handler.h"
#include "toolkit/view.h"

namespace grandma::toolkit {

class Dispatcher {
 public:
  Dispatcher(View* root, VirtualClock* clock) : root_(root), clock_(clock) {}

  // Feeds one event. Advances the clock to the event time, routes to the
  // grabbed handler if any, otherwise hit-tests the view tree and offers the
  // event along the handler chain of the hit view and its ancestors.
  // Returns true when some handler consumed the event.
  bool Dispatch(const InputEvent& event);

  // Delivers a timer tick (at the clock's current time) to the grabbed
  // handler, letting dwell timeouts fire. No-op when nothing is grabbed.
  void Tick();

  bool HasGrab() const { return grabbed_handler_ != nullptr; }
  EventHandler* grabbed_handler() const { return grabbed_handler_; }
  View* grabbed_view() const { return grabbed_view_; }

  VirtualClock& clock() { return *clock_; }
  View* root() { return root_; }

  // Quarantine surface. A quarantined handler receives no further events;
  // ClearQuarantine (an operator action: e.g. after reloading handlers)
  // restores it.
  bool IsQuarantined(const EventHandler* handler) const;
  std::size_t quarantined_count() const { return quarantined_.size(); }
  void ClearQuarantine() { quarantined_.clear(); }

  // Optional degradation accounting (not owned; may be null).
  void set_fault_stats(robust::FaultStats* stats) { fault_stats_ = stats; }

  // Diagnostics.
  std::size_t dispatched_count() const { return dispatched_count_; }
  std::size_t handler_fault_count() const { return handler_fault_count_; }

 private:
  void HandleResponse(HandlerResponse response, EventHandler* handler, View* view,
                      const InputEvent& event);
  // OnEvent with isolation: nullopt means the handler threw and is now
  // quarantined.
  std::optional<HandlerResponse> GuardedOnEvent(EventHandler* handler,
                                                const InputEvent& event, View& view);
  void Quarantine(EventHandler* handler);

  View* root_;
  VirtualClock* clock_;
  EventHandler* grabbed_handler_ = nullptr;
  View* grabbed_view_ = nullptr;
  // After an abort, remaining events up to and including the next mouse-up
  // are swallowed.
  bool swallowing_until_up_ = false;
  std::size_t dispatched_count_ = 0;
  std::size_t handler_fault_count_ = 0;
  std::vector<const EventHandler*> quarantined_;
  robust::FaultStats* fault_stats_ = nullptr;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_DISPATCHER_H_
