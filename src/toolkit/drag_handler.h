// The drag handler: the classic direct-manipulation interaction. Attached to
// a view (or view class), it lets the mouse drag the view's model around —
// GDP uses it for the control points the `edit` gesture exposes, and tests
// use it to show gesture views and widget-like views coexisting (Section
// 3.1).
#ifndef GRANDMA_SRC_TOOLKIT_DRAG_HANDLER_H_
#define GRANDMA_SRC_TOOLKIT_DRAG_HANDLER_H_

#include <functional>

#include "toolkit/event_handler.h"

namespace grandma::toolkit {

class DragHandler : public EventHandler {
 public:
  struct Callbacks {
    // May veto starting a drag on this view; default accepts.
    std::function<bool(View&, const InputEvent&)> can_start;
    std::function<void(View&, const InputEvent&)> on_start;
    // Called for every move with the current pointer position.
    std::function<void(View&, const InputEvent&)> on_drag;
    std::function<void(View&, const InputEvent&)> on_drop;
  };

  // `button`: only mouse-downs with this button begin a drag, letting a view
  // respond to gestures on one button and drags on another (Section 3.1).
  DragHandler(std::string name, Callbacks callbacks, int button = 0)
      : EventHandler(std::move(name)), callbacks_(std::move(callbacks)), button_(button) {}

  bool Wants(const InputEvent& event, View& view) const override;
  HandlerResponse OnEvent(const InputEvent& event, View& view) override;

  bool dragging() const { return dragging_; }
  int button() const { return button_; }

 private:
  Callbacks callbacks_;
  int button_;
  bool dragging_ = false;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_DRAG_HANDLER_H_
