// Multi-contact gestural attributes: turns a tracked contact group into the
// attribute streams direct-manipulation semantics consume — logical center
// (mean of active contacts), relative angle (baseline rotation since both
// fingers landed, unwrapped), and absolute scale (span ratio against the
// initial span). This is the libinput pinch-gesture attribute set grafted
// onto the paper's semantics machinery: recog fires once at classification,
// manip fires per frame with the logical center as the "mouse", done fires at
// lift. Single-contact groups route to the existing single-stroke path via
// PrimaryContact extraction.
#ifndef GRANDMA_SRC_TOOLKIT_TOUCH_ATTRIBUTES_H_
#define GRANDMA_SRC_TOOLKIT_TOUCH_ATTRIBUTES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geom/contact.h"
#include "geom/gesture.h"
#include "toolkit/semantics.h"

namespace grandma::toolkit {

// What a multi-contact group resolved to. kSingleStroke means "hand the
// primary contact to the Rubine classifier"; the rest carry their own
// attribute streams and bypass feature extraction entirely.
enum class TouchGestureKind {
  kSingleStroke = 0,  // one contact (or the group degraded to one)
  kPinch,             // dominant span change
  kRotate,            // dominant baseline rotation
  kSwipe,             // dominant parallel translation
  kTap,               // short dwell, no dominant motion
  kNone,              // multi-contact but no dominant motion and too long for a tap
};

const char* TouchGestureKindName(TouchGestureKind kind);
constexpr std::size_t kNumTouchGestureKinds = 6;

// One sample of the attribute streams, at a timestamp where some contact
// reported a point.
struct TouchFrame {
  double t = 0.0;
  double cx = 0.0;          // logical center
  double cy = 0.0;
  double angle = 0.0;       // relative angle (radians, unwrapped) vs baseline
  double scale = 1.0;       // absolute scale: current span / initial span
  std::size_t active = 0;   // contacts touching at t

  friend bool operator==(const TouchFrame&, const TouchFrame&) = default;
};

// Classification thresholds. A motion must clear its threshold AND be the
// dominant component (largest normalized magnitude) to claim the group.
struct TouchAttributeOptions {
  double pinch_log_scale = 0.22;    // |ln scale| for a pinch/spread
  double rotate_angle = 0.35;       // |angle| radians for a rotate
  double swipe_translation = 40.0;  // center displacement px for a swipe
  double tap_max_duration_ms = 300.0;
  double tap_max_translation = 20.0;
};

// The full attribute track for one group, plus the final classification.
struct TouchTrack {
  TouchGestureKind kind = TouchGestureKind::kSingleStroke;
  std::vector<TouchFrame> frames;

  // Final attribute values (last frame's, duplicated for convenience).
  double total_rotation = 0.0;   // unwrapped, radians; sign = CCW positive
  double final_scale = 1.0;
  double translation_px = 0.0;   // |center(end) - center(start)|
  double duration_ms = 0.0;

  // Index of the primary contact in the group — the stroke that goes down
  // the single-stroke path for kSingleStroke groups.
  std::size_t primary_index = 0;

  std::string ToString() const;
};

// Longest-path-length contact: the one that best represents the user's
// intent when the group degrades to a single stroke. Index into
// group.contacts(); 0 for an empty group.
std::size_t PrimaryContactIndex(const geom::ContactGroup& group);

// Computes the attribute streams and classification for a tracked group.
// Deterministic: a pure function of the group's points. Groups must be
// non-empty; contacts must have time-ordered strokes (the tracker's output
// contract).
TouchTrack ComputeTouchTrack(const geom::ContactGroup& group,
                             const TouchAttributeOptions& options = {});

// Runs a touch track through a semantics table: recog once (class name =
// TouchGestureKindName), manip per frame with the logical center as the
// current point, done at the end. The primary contact's stroke is the
// "collected" gesture the context exposes. Returns false when the table has
// no semantics for the kind (a recognized gesture with no semantics is a
// no-op, same as the single-stroke dispatcher).
bool DispatchTouchSemantics(const TouchTrack& track, const geom::ContactGroup& group,
                            const SemanticsTable& table, View* view);

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_TOUCH_ATTRIBUTES_H_
