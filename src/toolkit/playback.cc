#include "toolkit/playback.h"

#include <algorithm>

namespace grandma::toolkit {

void PlaybackDriver::AdvanceTo(double t_ms) {
  VirtualClock& clock = dispatcher_->clock();
  while (clock.now_ms() + tick_interval_ms_ <= t_ms) {
    clock.Advance(tick_interval_ms_);
    dispatcher_->Tick();
  }
  if (t_ms > clock.now_ms()) {
    clock.Set(t_ms);
  }
}

void PlaybackDriver::Feed(const InputEvent& event) {
  AdvanceTo(event.time_ms);
  dispatcher_->Dispatch(event);
}

void PlaybackDriver::PlayStroke(const geom::Gesture& stroke, double hold_ms_before_release,
                                int button) {
  if (stroke.empty()) {
    return;
  }
  const double t0 = dispatcher_->clock().now_ms();
  const double stroke_t0 = stroke.front().t;
  Feed(InputEvent::MouseDown(stroke.front().x, stroke.front().y, t0, button));
  for (std::size_t i = 1; i < stroke.size(); ++i) {
    const double t = t0 + (stroke[i].t - stroke_t0);
    Feed(InputEvent::MouseMove(stroke[i].x, stroke[i].y, t, button));
  }
  const double t_last = t0 + (stroke.back().t - stroke_t0);
  const double t_up = t_last + std::max(hold_ms_before_release, 0.0);
  AdvanceTo(t_up);
  Feed(InputEvent::MouseUp(stroke.back().x, stroke.back().y, t_up, button));
}

void PlaybackDriver::PressDragRelease(double x, double y, double hold_ms,
                                      const std::vector<geom::TimedPoint>& drag_points,
                                      int button) {
  const double t0 = dispatcher_->clock().now_ms();
  Feed(InputEvent::MouseDown(x, y, t0, button));
  AdvanceTo(t0 + std::max(hold_ms, 0.0));
  double t_last = dispatcher_->clock().now_ms();
  double x_last = x;
  double y_last = y;
  for (const geom::TimedPoint& p : drag_points) {
    const double t = t0 + hold_ms + p.t;
    Feed(InputEvent::MouseMove(p.x, p.y, t, button));
    t_last = t;
    x_last = p.x;
    y_last = p.y;
  }
  Feed(InputEvent::MouseUp(x_last, y_last, t_last + 1.0, button));
}

}  // namespace grandma::toolkit
