// Input events. On Rubine's MicroVAX these came from X10; here they are fed
// by a synthetic playback driver, which makes every interaction test
// reproducible (see DESIGN.md "Substitutions").
#ifndef GRANDMA_SRC_TOOLKIT_EVENT_H_
#define GRANDMA_SRC_TOOLKIT_EVENT_H_

#include <string>

namespace grandma::toolkit {

enum class EventType {
  kMouseDown,
  kMouseMove,
  kMouseUp,
  // Synthetic clock tick delivered to the active handler so dwell timeouts
  // (the 200 ms phase-transition rule) can fire while the mouse is still.
  kTimer,
};

struct InputEvent {
  EventType type = EventType::kMouseMove;
  double x = 0.0;
  double y = 0.0;
  double time_ms = 0.0;
  int button = 0;

  static InputEvent MouseDown(double x, double y, double t, int button = 0) {
    return InputEvent{EventType::kMouseDown, x, y, t, button};
  }
  static InputEvent MouseMove(double x, double y, double t, int button = 0) {
    return InputEvent{EventType::kMouseMove, x, y, t, button};
  }
  static InputEvent MouseUp(double x, double y, double t, int button = 0) {
    return InputEvent{EventType::kMouseUp, x, y, t, button};
  }
  static InputEvent Timer(double t) { return InputEvent{EventType::kTimer, 0.0, 0.0, t, 0}; }

  std::string ToString() const;
};

// The session clock. Virtual: tests and the playback driver advance it
// explicitly, so timeout behaviour is deterministic.
class VirtualClock {
 public:
  double now_ms() const { return now_ms_; }
  void Advance(double dt_ms) { now_ms_ += dt_ms; }
  void Set(double t_ms) { now_ms_ = t_ms; }

 private:
  double now_ms_ = 0.0;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_EVENT_H_
