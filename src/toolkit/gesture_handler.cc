#include "toolkit/gesture_handler.h"

namespace grandma::toolkit {

GestureHandler::GestureHandler(std::string name, const eager::EagerRecognizer* recognizer,
                               Config config)
    : EventHandler(std::move(name)),
      recognizer_(recognizer),
      config_(config),
      filter_(config.min_filter_distance),
      stream_(*recognizer) {}

bool GestureHandler::Wants(const InputEvent& event, View& view) const {
  (void)view;
  return phase_ == Phase::kIdle && event.type == EventType::kMouseDown &&
         event.button == config_.button;
}

HandlerResponse GestureHandler::OnEvent(const InputEvent& event, View& view) {
  switch (phase_) {
    case Phase::kIdle:
      if (event.type == EventType::kMouseDown && event.button == config_.button) {
        return BeginCollection(event, view);
      }
      return HandlerResponse::kIgnored;
    case Phase::kCollecting:
      return HandleCollecting(event, view);
    case Phase::kManipulating:
      return HandleManipulating(event, view);
  }
  return HandlerResponse::kIgnored;
}

HandlerResponse GestureHandler::BeginCollection(const InputEvent& event, View& view) {
  ResetInteraction();
  phase_ = Phase::kCollecting;
  interaction_view_ = &view;
  const geom::TimedPoint p{event.x, event.y, event.time_ms};
  filter_.Accept(p);  // first point always accepted
  collected_.AppendPoint(p);
  stream_.AddPoint(p);
  last_input_time_ = event.time_ms;
  if (on_ink) {
    on_ink(collected_);
  }
  return HandlerResponse::kConsumedAndGrab;
}

HandlerResponse GestureHandler::HandleCollecting(const InputEvent& event, View& view) {
  switch (event.type) {
    case EventType::kMouseDown:
      // A nested press mid-interaction (device glitch / chorded button) is
      // swallowed; dropping the grab here would strand the handler in a
      // non-idle phase.
      return HandlerResponse::kConsumedAndGrab;
    case EventType::kMouseMove: {
      const geom::TimedPoint p{event.x, event.y, event.time_ms};
      last_input_time_ = event.time_ms;
      if (filter_.Accept(p)) {
        collected_.AppendPoint(p);
        const bool fired = stream_.AddPoint(p);
        if (on_ink) {
          on_ink(collected_);
        }
        if (config_.enable_eager && fired) {
          if (!DoTransition(Transition::kEager, view)) {
            ResetInteraction();
            return HandlerResponse::kAbort;
          }
        }
      }
      return HandlerResponse::kConsumedAndGrab;
    }
    case EventType::kTimer: {
      if (config_.dwell_timeout_ms > 0.0 &&
          event.time_ms - last_input_time_ >= config_.dwell_timeout_ms) {
        if (!DoTransition(Transition::kTimeout, view)) {
          ResetInteraction();
          return HandlerResponse::kAbort;
        }
      }
      return HandlerResponse::kConsumedAndGrab;
    }
    case EventType::kMouseUp: {
      // Recognize at mouse-up; the manipulation phase is omitted.
      if (!DoTransition(Transition::kMouseUp, view)) {
        ResetInteraction();
        return HandlerResponse::kConsumed;
      }
      FinishInteraction(geom::TimedPoint{event.x, event.y, event.time_ms});
      return HandlerResponse::kConsumed;
    }
  }
  return HandlerResponse::kIgnored;
}

HandlerResponse GestureHandler::HandleManipulating(const InputEvent& event, View& view) {
  (void)view;
  switch (event.type) {
    case EventType::kMouseDown:
      return HandlerResponse::kConsumedAndGrab;  // swallow; see HandleCollecting
    case EventType::kMouseMove:
      RunManip(geom::TimedPoint{event.x, event.y, event.time_ms});
      return HandlerResponse::kConsumedAndGrab;
    case EventType::kTimer:
      // Timeouts are a collection-phase concept only.
      return HandlerResponse::kConsumedAndGrab;
    case EventType::kMouseUp:
      FinishInteraction(geom::TimedPoint{event.x, event.y, event.time_ms});
      return HandlerResponse::kConsumed;
  }
  return HandlerResponse::kIgnored;
}

bool GestureHandler::DoTransition(Transition how, View& view) {
  const classify::Classification result = stream_.ClassifyNow();
  if (config_.use_rejection &&
      classify::ShouldReject(config_.rejection, result,
                             recognizer_->full().linear().dimension())) {
    ++stats_.rejected;
    if (on_rejected) {
      on_rejected(result);
    }
    return false;
  }

  recognized_class_ = recognizer_->ClassName(result.class_id);
  last_transition_ = how;
  ++stats_.recognized;
  switch (how) {
    case Transition::kMouseUp:
      ++stats_.mouseup_transitions;
      break;
    case Transition::kTimeout:
      ++stats_.timeout_transitions;
      break;
    case Transition::kEager:
      ++stats_.eager_transitions;
      break;
  }

  context_ = std::make_unique<SemanticContext>(&collected_, &view);
  context_->SetCurrent(collected_.back());
  active_semantics_ = semantics_.Find(recognized_class_);
  if (active_semantics_ != nullptr && active_semantics_->recog) {
    context_->recog_slot() = active_semantics_->recog(*context_);
  }
  if (on_recognized) {
    on_recognized(recognized_class_, result, how);
  }
  phase_ = Phase::kManipulating;
  return true;
}

void GestureHandler::RunManip(const geom::TimedPoint& current) {
  context_->SetCurrent(current);
  if (active_semantics_ != nullptr && active_semantics_->manip) {
    active_semantics_->manip(*context_);
  }
}

void GestureHandler::FinishInteraction(const geom::TimedPoint& current) {
  if (context_ != nullptr) {
    context_->SetCurrent(current);
    if (phase_ == Phase::kManipulating && active_semantics_ != nullptr &&
        active_semantics_->manip) {
      active_semantics_->manip(*context_);
    }
    if (active_semantics_ != nullptr && active_semantics_->done) {
      active_semantics_->done(*context_);
    }
  }
  phase_ = Phase::kIdle;
  interaction_view_ = nullptr;
  active_semantics_ = nullptr;
  context_.reset();
}

void GestureHandler::ResetInteraction() {
  phase_ = Phase::kIdle;
  collected_.Clear();
  filter_.Reset();
  stream_.Reset();
  interaction_view_ = nullptr;
  active_semantics_ = nullptr;
  context_.reset();
  recognized_class_.clear();
  last_transition_.reset();
}

}  // namespace grandma::toolkit
