#include "toolkit/script_semantics.h"

namespace grandma::toolkit {

namespace {

bool IsNoOpSource(const std::string& source) {
  const std::size_t first = source.find_first_not_of(" \t\r\n;");
  if (first == std::string::npos) {
    return true;  // blank program
  }
  const std::size_t last = source.find_last_not_of(" \t\r\n;");
  return source.substr(first, last - first + 1) == "nil";
}

script::Environment MakeEnvironment(SemanticContext& ctx,
                                    const ScriptVariableResolver& variables) {
  script::Environment env;
  env.attributes = [&ctx](const std::string& name) {
    return ResolveGesturalAttribute(ctx, name);
  };
  env.variables = [&ctx, &variables](const std::string& name) -> std::optional<script::Value> {
    if (name == "recog") {
      if (const script::Value* stored = std::any_cast<script::Value>(&ctx.recog_slot())) {
        return *stored;
      }
      return script::Value{};  // recog not yet bound: nil
    }
    if (variables) {
      return variables(name);
    }
    return std::nullopt;
  };
  return env;
}

}  // namespace

std::optional<double> ResolveGesturalAttribute(const SemanticContext& ctx,
                                               const std::string& name) {
  if (name == "startX") {
    return ctx.startX();
  }
  if (name == "startY") {
    return ctx.startY();
  }
  if (name == "endX") {
    return ctx.endX();
  }
  if (name == "endY") {
    return ctx.endY();
  }
  if (name == "currentX") {
    return ctx.currentX();
  }
  if (name == "currentY") {
    return ctx.currentY();
  }
  if (name == "currentT") {
    return ctx.currentT();
  }
  if (name == "length") {
    return ctx.length();
  }
  if (name == "initialAngle") {
    return ctx.initialAngle();
  }
  if (name == "diagonalLength") {
    return ctx.diagonalLength();
  }
  return std::nullopt;
}

GestureSemantics CompileScriptSemantics(const std::string& recog_source,
                                        const std::string& manip_source,
                                        const std::string& done_source,
                                        ScriptVariableResolver variables) {
  GestureSemantics semantics;

  if (!IsNoOpSource(recog_source)) {
    const script::ExpressionPtr recog = script::Parse(recog_source);
    semantics.recog = [recog, variables](SemanticContext& ctx) -> std::any {
      const script::Value result = recog->Evaluate(MakeEnvironment(ctx, variables));
      return std::any(result);
    };
  }
  if (!IsNoOpSource(manip_source)) {
    const script::ExpressionPtr manip = script::Parse(manip_source);
    semantics.manip = [manip, variables](SemanticContext& ctx) {
      manip->Evaluate(MakeEnvironment(ctx, variables));
    };
  }
  if (!IsNoOpSource(done_source)) {
    const script::ExpressionPtr done = script::Parse(done_source);
    semantics.done = [done, variables](SemanticContext& ctx) {
      done->Evaluate(MakeEnvironment(ctx, variables));
    };
  }
  return semantics;
}

}  // namespace grandma::toolkit
