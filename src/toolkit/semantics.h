// Gesture semantics (Section 3.2): each gesture class has three expressions —
// recog (evaluated at the phase transition), manip (evaluated for each mouse
// point during manipulation) and done (evaluated when the interaction ends).
// Rubine evaluated Objective-C message expressions against lazily-bound
// gestural attributes (<startX>, <currentX>, ...); here the expressions are
// C++ callables over a SemanticContext exposing the same attributes, and the
// paper's `recog` variable is the context's std::any slot.
#ifndef GRANDMA_SRC_TOOLKIT_SEMANTICS_H_
#define GRANDMA_SRC_TOOLKIT_SEMANTICS_H_

#include <any>
#include <functional>
#include <string>
#include <unordered_map>

#include "features/extractor.h"
#include "geom/gesture.h"
#include "toolkit/view.h"

namespace grandma::toolkit {

// The gestural attributes available to semantics expressions. Geometric
// attributes are bound to the *collected* gesture (the prefix seen up to the
// phase transition); current/currentX track the live mouse position during
// manipulation.
class SemanticContext {
 public:
  SemanticContext(const geom::Gesture* collected, View* view)
      : collected_(collected), view_(view) {}

  // The view the gesture was directed at.
  View* view() const { return view_; }

  // The collected gesture (up to recognition).
  const geom::Gesture& gesture() const { return *collected_; }

  // <startX>, <startY>: first point of the gesture.
  double startX() const { return collected_->front().x; }
  double startY() const { return collected_->front().y; }

  // <endX>, <endY>: last collected point — the mouse position when the
  // gesture was recognized.
  double endX() const { return collected_->back().x; }
  double endY() const { return collected_->back().y; }

  // <currentX>, <currentY>: live mouse position; equals end until the
  // manipulation phase starts feeding points.
  double currentX() const { return current_.x; }
  double currentY() const { return current_.y; }
  double currentT() const { return current_.t; }

  // Derived gestural attributes (lazily computed from the collected prefix).
  // <length>: arc length of the collected gesture.
  double length() const { return collected_->PathLength(); }
  // <initialAngle>: direction of the stroke start, radians.
  double initialAngle() const;
  // <diagonalLength>: bounding-box diagonal of the collected gesture.
  double diagonalLength() const { return collected_->Bounds().DiagonalLength(); }
  // <enclosed>: true when the collected stroke encloses (x, y).
  bool Encloses(double x, double y) const { return geom::EnclosesPoint(*collected_, x, y); }

  // The paper's `recog` variable: whatever the recog expression returned,
  // available to manip/done.
  std::any& recog_slot() { return recog_value_; }
  const std::any& recog_slot() const { return recog_value_; }
  template <typename T>
  T RecogAs() const {
    return std::any_cast<T>(recog_value_);
  }

  void SetCurrent(const geom::TimedPoint& p) { current_ = p; }

 private:
  const geom::Gesture* collected_;
  View* view_;
  geom::TimedPoint current_{};
  std::any recog_value_;
};

// The three expressions. recog returns the value bound to the context's
// recog slot (return an empty std::any when there is nothing to remember).
struct GestureSemantics {
  std::function<std::any(SemanticContext&)> recog;
  std::function<void(SemanticContext&)> manip;
  std::function<void(SemanticContext&)> done;
};

// Per-gesture-class semantics table for one gesture handler.
class SemanticsTable {
 public:
  void Set(const std::string& class_name, GestureSemantics semantics) {
    table_[class_name] = std::move(semantics);
  }
  // nullptr when the class has no semantics (a recognized gesture with no
  // semantics is a no-op).
  const GestureSemantics* Find(const std::string& class_name) const {
    auto it = table_.find(class_name);
    return it == table_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return table_.size(); }

 private:
  std::unordered_map<std::string, GestureSemantics> table_;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_SEMANTICS_H_
