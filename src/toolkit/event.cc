#include "toolkit/event.h"

#include <sstream>

namespace grandma::toolkit {

std::string InputEvent::ToString() const {
  std::ostringstream os;
  switch (type) {
    case EventType::kMouseDown:
      os << "down";
      break;
    case EventType::kMouseMove:
      os << "move";
      break;
    case EventType::kMouseUp:
      os << "up";
      break;
    case EventType::kTimer:
      os << "timer";
      break;
  }
  os << "(" << x << "," << y << " t=" << time_ms << " b=" << button << ")";
  return os.str();
}

}  // namespace grandma::toolkit
