#include "toolkit/drag_handler.h"

namespace grandma::toolkit {

bool DragHandler::Wants(const InputEvent& event, View& view) const {
  if (event.type != EventType::kMouseDown || event.button != button_) {
    return false;
  }
  if (callbacks_.can_start && !callbacks_.can_start(view, event)) {
    return false;
  }
  return true;
}

HandlerResponse DragHandler::OnEvent(const InputEvent& event, View& view) {
  switch (event.type) {
    case EventType::kMouseDown:
      if (dragging_) {
        return HandlerResponse::kIgnored;
      }
      dragging_ = true;
      if (callbacks_.on_start) {
        callbacks_.on_start(view, event);
      }
      return HandlerResponse::kConsumedAndGrab;
    case EventType::kMouseMove:
      if (!dragging_) {
        return HandlerResponse::kIgnored;
      }
      if (callbacks_.on_drag) {
        callbacks_.on_drag(view, event);
      }
      return HandlerResponse::kConsumedAndGrab;
    case EventType::kMouseUp:
      if (!dragging_) {
        return HandlerResponse::kIgnored;
      }
      dragging_ = false;
      if (callbacks_.on_drop) {
        callbacks_.on_drop(view, event);
      }
      return HandlerResponse::kConsumed;
    case EventType::kTimer:
      // Drags have no timeout behaviour.
      return HandlerResponse::kConsumedAndGrab;
  }
  return HandlerResponse::kIgnored;
}

}  // namespace grandma::toolkit
