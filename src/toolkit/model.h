// The Model side of GRANDMA's Model/View/Controller-like architecture
// (Section 3): models are application objects; views display them and stay
// current by observing changes. GDP's Document derives from Model so views
// (and tests) can react to shape edits made by gesture semantics.
#ifndef GRANDMA_SRC_TOOLKIT_MODEL_H_
#define GRANDMA_SRC_TOOLKIT_MODEL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace grandma::toolkit {

// A change notification: what happened, and an application-defined detail
// (GDP uses shape kinds/ids).
struct ModelChange {
  enum class Kind { kAdded, kRemoved, kModified };
  Kind kind = Kind::kModified;
  std::string detail;
};

// Observable application object. Observers are callbacks with registration
// tokens; removal by token keeps lifetime management with the caller (no
// owning pointers to observers).
class Model {
 public:
  using Observer = std::function<void(const Model&, const ModelChange&)>;
  using ObserverToken = std::size_t;

  Model() = default;
  virtual ~Model() = default;

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  ObserverToken AddObserver(Observer observer);
  // Removing an unknown token is a no-op; returns whether one was removed.
  bool RemoveObserver(ObserverToken token);
  std::size_t observer_count() const;

 protected:
  // Derived classes call this after mutating their state.
  void NotifyChanged(const ModelChange& change) const;

 private:
  struct Entry {
    ObserverToken token;
    Observer observer;
  };
  std::vector<Entry> observers_;
  ObserverToken next_token_ = 1;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_MODEL_H_
