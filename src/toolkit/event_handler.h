// Event handlers (Section 3.1): each implements one interaction technique.
// A handler has a predicate deciding which events it will handle; the
// handlers associated with a view are queried in order when input is
// initiated there, and input ignored by one handler propagates to the next
// (and then up the view tree).
#ifndef GRANDMA_SRC_TOOLKIT_EVENT_HANDLER_H_
#define GRANDMA_SRC_TOOLKIT_EVENT_HANDLER_H_

#include <string>

#include "toolkit/event.h"
#include "toolkit/view.h"

namespace grandma::toolkit {

// What a handler did with an event it was offered.
enum class HandlerResponse {
  // Not interested; the dispatcher offers the event to the next handler.
  kIgnored,
  // Consumed, interaction over (or no interaction started).
  kConsumed,
  // Consumed, and this handler grabs the input stream: all further events go
  // to it until it returns kConsumed/kIgnored for a mouse-up (or kAbort).
  kConsumedAndGrab,
  // The interaction was cancelled (e.g. rejected gesture); the grab ends and
  // remaining events of the interaction are swallowed by the dispatcher.
  kAbort,
};

class EventHandler {
 public:
  explicit EventHandler(std::string name) : name_(std::move(name)) {}
  virtual ~EventHandler() = default;

  EventHandler(const EventHandler&) = delete;
  EventHandler& operator=(const EventHandler&) = delete;

  const std::string& name() const { return name_; }

  // The predicate: would this handler begin an interaction for `event`
  // directed at `view`? Only called to *start* interactions (typically on
  // mouse-down); once grabbed, events flow to OnEvent unconditionally.
  virtual bool Wants(const InputEvent& event, View& view) const = 0;

  // Delivers an event. `view` is the view the interaction started at.
  virtual HandlerResponse OnEvent(const InputEvent& event, View& view) = 0;

 private:
  std::string name_;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_EVENT_HANDLER_H_
