#include "toolkit/semantics.h"

#include <cmath>

namespace grandma::toolkit {

double SemanticContext::initialAngle() const {
  const geom::Gesture& g = *collected_;
  if (g.size() < 2) {
    return 0.0;
  }
  // Like feature f1/f2: measured at the third point when available.
  const std::size_t anchor = g.size() >= 3 ? 2 : g.size() - 1;
  return std::atan2(g[anchor].y - g[0].y, g[anchor].x - g[0].x);
}

}  // namespace grandma::toolkit
