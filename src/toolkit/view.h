// GRANDMA's view layer (Section 3): views display models; a *list* of event
// handlers — not a single controller — may be attached to each view, and
// handlers may also be attached to view *classes*, where they are shared by
// every instance and inherited by subclasses. That class-level sharing is
// the paper's efficiency point: one gesture handler serves all views of a
// class.
#ifndef GRANDMA_SRC_TOOLKIT_VIEW_H_
#define GRANDMA_SRC_TOOLKIT_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/gesture.h"

namespace grandma::toolkit {

class EventHandler;
class View;

// Runtime descriptor of a view class. Mirrors Objective-C's class objects:
// each carries a handler list and a pointer to its superclass descriptor.
class ViewClass {
 public:
  ViewClass(std::string name, const ViewClass* parent = nullptr)
      : name_(std::move(name)), parent_(parent) {}

  ViewClass(const ViewClass&) = delete;
  ViewClass& operator=(const ViewClass&) = delete;

  const std::string& name() const { return name_; }
  const ViewClass* parent() const { return parent_; }

  // Handlers are queried most-recently-added first (like the paper's
  // "queried in order"); a class's own handlers take precedence over
  // inherited ones.
  void AddHandler(std::shared_ptr<EventHandler> handler);
  void RemoveHandler(const EventHandler* handler);
  const std::vector<std::shared_ptr<EventHandler>>& handlers() const { return handlers_; }

  // True when `ancestor` is this class or a superclass of it.
  bool IsKindOf(const ViewClass& ancestor) const;

 private:
  std::string name_;
  const ViewClass* parent_;
  std::vector<std::shared_ptr<EventHandler>> handlers_;
};

// A view: a screen region that displays a model and receives input. Views
// form a tree; hit-testing walks children topmost-first.
class View {
 public:
  View(const ViewClass* view_class, std::string name);
  virtual ~View();

  View(const View&) = delete;
  View& operator=(const View&) = delete;

  const ViewClass& view_class() const { return *view_class_; }
  const std::string& name() const { return name_; }

  // Geometry. Default hit test: point in bounds.
  void SetBounds(const geom::BoundingBox& bounds) { bounds_ = bounds; }
  const geom::BoundingBox& bounds() const { return bounds_; }
  virtual bool HitTest(double x, double y) const;

  // Tree structure. Children are owned; later children render/hit on top.
  View* AddChild(std::unique_ptr<View> child);
  // Removes and destroys `child`; returns false when not a child.
  bool RemoveChild(View* child);
  void ClearChildren() { children_.clear(); }
  View* parent() const { return parent_; }
  const std::vector<std::unique_ptr<View>>& children() const { return children_; }

  // Deepest, topmost view under (x, y); nullptr when even this view misses.
  View* FindViewAt(double x, double y);

  // Instance-level handlers (queried before class-level ones).
  void AddHandler(std::shared_ptr<EventHandler> handler);
  void RemoveHandler(const EventHandler* handler);
  const std::vector<std::shared_ptr<EventHandler>>& handlers() const { return handlers_; }

  // The full handler query order for this view: instance handlers, then the
  // view class's handlers, then each superclass's, most-derived first.
  std::vector<EventHandler*> HandlerChain() const;

 private:
  const ViewClass* view_class_;
  std::string name_;
  geom::BoundingBox bounds_;
  View* parent_ = nullptr;
  std::vector<std::unique_ptr<View>> children_;
  std::vector<std::shared_ptr<EventHandler>> handlers_;
};

}  // namespace grandma::toolkit

#endif  // GRANDMA_SRC_TOOLKIT_VIEW_H_
