// Section 4.4: enumerate the subgestures of every training example, label
// each complete or incomplete with respect to the trained full classifier,
// and partition them into the 2C sets (C-c complete, I-c incomplete) the
// ambiguous/unambiguous classifier is trained on.
#ifndef GRANDMA_SRC_EAGER_SUBGESTURE_LABELER_H_
#define GRANDMA_SRC_EAGER_SUBGESTURE_LABELER_H_

#include <cstddef>
#include <vector>

#include "classify/gesture_classifier.h"
#include "classify/training_set.h"
#include "linalg/vector.h"

namespace grandma::eager {

// One labeled subgesture g[i].
struct LabeledSubgesture {
  // Masked feature vector of the prefix (same feature space as the full
  // classifier trains in).
  linalg::Vector features;
  // Prefix length i (number of points).
  std::size_t prefix_len = 0;
  // Length of the gesture this prefix came from.
  std::size_t gesture_len = 0;
  // Class of the full example gesture.
  classify::ClassId true_class = 0;
  // The full classifier's verdict on this prefix, C(g[i]).
  classify::ClassId predicted_class = 0;
  // Complete: C(g[j]) == true_class for every j >= i (Section 4.4).
  bool complete = false;
  // When the accidental-complete mover (Section 4.5) reassigns this
  // subgesture, the index of the incomplete set it was moved into; -1 when
  // never moved. A moved subgesture is treated as incomplete from then on.
  int moved_to_incomplete = -1;

  // Set the subgesture currently belongs to.
  bool EffectivelyComplete() const { return complete && moved_to_incomplete < 0; }
  classify::ClassId EffectiveSet() const {
    return moved_to_incomplete >= 0 ? static_cast<classify::ClassId>(moved_to_incomplete)
                                    : predicted_class;
  }
};

// All subgestures of one training example, ordered by prefix length.
struct GestureSubgestures {
  classify::ClassId true_class = 0;
  std::vector<LabeledSubgesture> subgestures;
};

// The 2C-set partition. Set indices equal class ids of the *full* classifier;
// the class in a set's name refers to the full classifier's classification of
// its elements (so incomplete right-strokes of a D gesture land in I-<c>
// where c is whatever class those strokes look like).
struct SubgesturePartition {
  // complete_sets[c] holds subgestures the full classifier labels c that are
  // complete; incomplete_sets[c] holds those labeled c that are incomplete.
  std::vector<std::vector<LabeledSubgesture>> complete_sets;
  std::vector<std::vector<LabeledSubgesture>> incomplete_sets;
  // Per-example enumeration in original order (used by the accidental-
  // complete mover, which walks each gesture's prefixes largest-to-smallest).
  std::vector<GestureSubgestures> per_gesture;

  std::size_t num_classes() const { return complete_sets.size(); }
  std::size_t total_complete() const;
  std::size_t total_incomplete() const;
};

// Options for subgesture enumeration.
struct LabelerOptions {
  // Shortest prefix (in points) considered; below this the feature vector is
  // too degenerate to act on. 3 matches features::FeatureExtractor::kMinPoints.
  std::size_t min_prefix_points = 3;
};

// Runs the full classifier over every prefix of every training gesture and
// builds the partition. `full` must already be trained on `training`.
SubgesturePartition LabelSubgestures(const classify::GestureClassifier& full,
                                     const classify::GestureTrainingSet& training,
                                     const LabelerOptions& options = {});

// Recomputes complete_sets/incomplete_sets from per_gesture (the source of
// truth) after completeness flags or move targets change.
void RebuildSets(SubgesturePartition& partition);

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_SUBGESTURE_LABELER_H_
