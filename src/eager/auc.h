// Section 4.6: the Ambiguous/Unambiguous Classifier (AUC). A linear
// classifier over the 2C subgesture sets; D(s) is true iff the AUC places s
// in any complete set. After closed-form training the AUC is deliberately
// biased toward ambiguity: incomplete-class constants get +ln(5) (ambiguous
// judged five times more likely a priori), then every incomplete training
// subgesture still classified complete forces the offending complete class's
// constant down "by just enough plus a little more".
#ifndef GRANDMA_SRC_EAGER_AUC_H_
#define GRANDMA_SRC_EAGER_AUC_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "classify/linear_classifier.h"
#include "eager/subgesture_labeler.h"
#include "linalg/vector.h"

namespace grandma::eager {

struct AucOptions {
  // Added to every incomplete class's constant term: ln(5) encodes the
  // "five times more likely ambiguous" prior of Section 4.6.
  double ambiguous_bias = std::log(5.0);
  // The "little more" added on top of "just enough" during tweaking,
  // relative to the score gap being corrected.
  double tweak_margin = 0.01;
  std::size_t max_tweak_passes = 100;
};

struct AucTrainReport {
  // Classifier-training diagnostics.
  double ridge_used = 0.0;
  // Tweak-pass diagnostics.
  std::size_t tweak_passes = 0;
  std::size_t tweak_adjustments = 0;
  bool converged = true;
  // Degenerate-mode flags (see Auc::Mode).
  bool degenerate = false;
};

// The trained AUC.
//
// Thread-safety: immutable after Train/FromParameters; Unambiguous and
// Classify are pure reads, safe to call concurrently.
class Auc {
 public:
  // How this AUC answers D(s).
  enum class Mode {
    kUntrained,
    kNormal,             // linear classifier over the non-empty sets
    kAlwaysAmbiguous,    // no complete subgestures existed in training
    kAlwaysUnambiguous,  // no incomplete subgestures existed in training
  };

  // Identity of one AUC class.
  struct SetInfo {
    bool complete = false;
    // The full-classifier class this set is named for (C-c or I-c).
    classify::ClassId full_class = 0;
  };

  Auc() = default;

  // Trains on the (post-move) partition. Empty sets are dropped; when only
  // one side (complete/incomplete) has data the AUC degenerates to a
  // constant answer.
  AucTrainReport Train(const SubgesturePartition& partition, const AucOptions& options = {});

  Mode mode() const { return mode_; }
  bool trained() const { return mode_ != Mode::kUntrained; }

  // D(s): true iff `masked_features` is judged an unambiguous prefix.
  // Allocates internal scratch; the per-point hot path uses UnambiguousView.
  bool Unambiguous(const linalg::Vector& masked_features) const;

  // Zero-allocation D(s): evaluates the per-set scores into caller scratch
  // (`scores` sized num_sets()) and takes the argmax — no probability, no
  // Mahalanobis, which a doneness test never needs. The winning set (and
  // therefore the answer) is bit-identical to Unambiguous.
  bool UnambiguousView(linalg::VecView masked_features, linalg::MutVecView scores) const;

  // "No row fired" result for FirstUnambiguous.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Batched D(s) over `batch` masked feature rows (`stride` doubles apart in
  // `masked_rows`, each linear().dimension() wide): returns the index of the
  // FIRST row judged unambiguous, or kNone. Row decisions are bit-identical
  // to UnambiguousView on that row — the batch evaluator loops the same
  // per-row kernel. `scores_block` is caller scratch of at least
  // batch * num_sets() doubles (rows of num_sets() scores each).
  std::size_t FirstUnambiguous(const double* masked_rows, std::size_t batch,
                               std::size_t stride, linalg::MutVecView scores_block) const;

  // The winning AUC set for diagnostics; meaningful only in kNormal mode.
  classify::Classification Classify(const linalg::Vector& masked_features) const;
  const SetInfo& ClassInfo(classify::ClassId auc_class) const { return sets_.at(auc_class); }
  std::size_t num_sets() const { return sets_.size(); }
  const classify::LinearClassifier& linear() const { return linear_; }

  // Reassembles an AUC from persisted parameters (io::serialize).
  static Auc FromParameters(Mode mode, classify::LinearClassifier linear,
                            std::vector<SetInfo> sets);

 private:
  // Recomputes num_complete_ / complete_prefix_ from sets_.
  void IndexSets();

  Mode mode_ = Mode::kUntrained;
  classify::LinearClassifier linear_;
  std::vector<SetInfo> sets_;
  // Complete-set count, and whether all complete sets occupy the id prefix
  // [0, num_complete_). Train always lays sets out that way; FromParameters
  // accepts any order, so the fused winner-in-prefix fire check is gated on
  // this flag (non-prefix layouts take the evaluate + argmax path).
  std::size_t num_complete_ = 0;
  bool complete_prefix_ = false;
};

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_AUC_H_
