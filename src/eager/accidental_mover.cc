#include "eager/accidental_mover.h"

#include <algorithm>
#include <limits>

#include "linalg/stats.h"

namespace grandma::eager {

namespace {

// Index and distance of the nearest non-empty incomplete set to `features`.
struct Nearest {
  int set = -1;
  double distance = std::numeric_limits<double>::infinity();
};

Nearest NearestIncompleteSet(const classify::GestureClassifier& full,
                             const std::vector<std::optional<linalg::Vector>>& means,
                             const linalg::Vector& features) {
  Nearest best;
  for (std::size_t k = 0; k < means.size(); ++k) {
    if (!means[k].has_value()) {
      continue;
    }
    const double d = full.linear().MahalanobisSquaredBetween(features, *means[k]);
    if (d < best.distance) {
      best.distance = d;
      best.set = static_cast<int>(k);
    }
  }
  return best;
}

}  // namespace

std::vector<std::optional<linalg::Vector>> IncompleteSetMeans(
    const SubgesturePartition& partition) {
  std::vector<std::optional<linalg::Vector>> means(partition.incomplete_sets.size());
  for (std::size_t k = 0; k < partition.incomplete_sets.size(); ++k) {
    const auto& set = partition.incomplete_sets[k];
    if (set.empty()) {
      continue;
    }
    linalg::MeanAccumulator acc(set.front().features.size());
    for (const LabeledSubgesture& sub : set) {
      acc.Add(sub.features);
    }
    means[k] = acc.Mean();
  }
  return means;
}

MoverReport MoveAccidentallyComplete(const classify::GestureClassifier& full,
                                     SubgesturePartition& partition,
                                     const MoverOptions& options) {
  MoverReport report;
  const auto means = IncompleteSetMeans(partition);

  // Compute the threshold: 50% of the minimum distance from any full-class
  // mean to any incomplete-set mean, excluding distances under the floor.
  std::vector<double> distances;
  for (classify::ClassId c = 0; c < full.num_classes(); ++c) {
    for (const auto& mean : means) {
      if (!mean.has_value()) {
        continue;
      }
      distances.push_back(full.linear().MahalanobisSquaredBetween(full.linear().mean(c), *mean));
    }
  }
  if (distances.empty()) {
    return report;  // No incomplete sets at all; nothing can move.
  }
  const double max_distance = *std::max_element(distances.begin(), distances.end());
  const double floor = options.floor_fraction * max_distance;
  double min_distance = std::numeric_limits<double>::infinity();
  for (double d : distances) {
    if (d < floor) {
      ++report.floored_out;
      continue;
    }
    min_distance = std::min(min_distance, d);
  }
  if (!std::isfinite(min_distance)) {
    // Everything was floored out — degenerate; fall back to the raw minimum
    // so the rule still produces some threshold.
    min_distance = *std::min_element(distances.begin(), distances.end());
  }
  report.min_distance = min_distance;
  report.threshold = options.threshold_fraction * min_distance;

  // Walk each gesture's complete subgestures from largest (the full gesture)
  // to smallest; once one is accidentally complete, it and every smaller
  // complete subgesture move to their nearest incomplete sets.
  for (GestureSubgestures& gesture : partition.per_gesture) {
    bool moving = false;
    for (std::size_t k = gesture.subgestures.size(); k-- > 0;) {
      LabeledSubgesture& sub = gesture.subgestures[k];
      if (!sub.EffectivelyComplete()) {
        continue;
      }
      const Nearest nearest = NearestIncompleteSet(full, means, sub.features);
      if (nearest.set < 0) {
        break;  // No incomplete set to move into.
      }
      if (!moving && nearest.distance < report.threshold) {
        moving = true;
      }
      if (moving) {
        sub.moved_to_incomplete = nearest.set;
        ++report.moved;
      }
    }
  }
  RebuildSets(partition);
  return report;
}

}  // namespace grandma::eager
