// Section 4.5: accidentally complete subgestures — prefixes that happen to
// classify correctly even though they are still ambiguous (e.g. the
// horizontal strokes of a D gesture that the full classifier already calls
// D) — are detected by their Mahalanobis similarity to incomplete sets and
// moved into the nearest incomplete set.
#ifndef GRANDMA_SRC_EAGER_ACCIDENTAL_MOVER_H_
#define GRANDMA_SRC_EAGER_ACCIDENTAL_MOVER_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "classify/gesture_classifier.h"
#include "eager/subgesture_labeler.h"
#include "linalg/vector.h"

namespace grandma::eager {

struct MoverOptions {
  // The paper's rule: the move threshold is 50% of the minimum distance from
  // any full-gesture-class mean to any incomplete-set mean.
  double threshold_fraction = 0.5;
  // Full-class-to-incomplete-set distances below this fraction of the
  // *largest* such distance are excluded from the minimum, "to avoid trouble
  // when an incomplete subgesture looks like a full gesture of a different
  // class" (the U/D/right-stroke situation). The paper leaves the floor
  // unspecified; a relative floor keeps the rule unit-free.
  double floor_fraction = 0.05;
};

struct MoverReport {
  // The squared-Mahalanobis move threshold actually used (0 = no moves
  // possible, e.g. no incomplete subgestures existed).
  double threshold = 0.0;
  // The minimum full-to-incomplete distance before halving.
  double min_distance = 0.0;
  // How many distances the floor excluded from the minimum.
  std::size_t floored_out = 0;
  // Number of subgestures moved into incomplete sets.
  std::size_t moved = 0;
};

// Means of the current incomplete sets; entries are nullopt for empty sets.
std::vector<std::optional<linalg::Vector>> IncompleteSetMeans(
    const SubgesturePartition& partition);

// Applies the move rule to `partition` in place (sets are rebuilt before
// returning). `full` supplies the Mahalanobis metric and the full-class
// means. Walks each training gesture's complete subgestures from largest to
// smallest; once one is found accidentally complete, it and all smaller
// complete subgestures move to their nearest incomplete sets.
MoverReport MoveAccidentallyComplete(const classify::GestureClassifier& full,
                                     SubgesturePartition& partition,
                                     const MoverOptions& options = {});

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_ACCIDENTAL_MOVER_H_
