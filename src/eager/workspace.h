// Per-stream scratch for the zero-allocation recognition kernel. One
// Workspace belongs to exactly one EagerStream (or other single-threaded
// caller) and is threaded by reference through EagerRecognizer ->
// GestureClassifier/Auc -> LinearClassifier, so the steady-state per-point
// loop performs no heap allocations: the feature snapshot, the masked
// projection, the Mahalanobis difference, and both score buffers all live
// here.
//
// Ownership rules (see docs/PERFORMANCE.md):
//   - the stream that owns the Workspace is the only writer; recognizers
//     never retain a pointer to it beyond a call;
//   - the fixed arrays never allocate; the two score buffers are sized by
//     Prepare() on first use (warm-up) and only ever re-allocate if the
//     recognizer they serve changes shape — steady state is allocation-free;
//   - contents are scratch: every kernel call overwrites them, so nothing
//     here carries state between points.
//
// Thread-safety: none, by design — same single-ownership contract as
// EagerStream.
#ifndef GRANDMA_SRC_EAGER_WORKSPACE_H_
#define GRANDMA_SRC_EAGER_WORKSPACE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "features/feature_vector.h"
#include "linalg/vec_view.h"

namespace grandma::eager {

struct Workspace {
  // Points per batched-evaluation chunk (EagerStream::AddSpan): enough rows
  // for the SIMD evaluator to amortize dispatch and stay in L1, fixed so the
  // blocks below never allocate.
  static constexpr std::size_t kBatchPoints = 16;

  // Raw 13-entry feature snapshot (FeatureExtractor::FeaturesInto target).
  std::array<double, features::kNumFeatures> features{};
  // Mask-projected features; the leading mask().count() entries are live.
  std::array<double, features::kNumFeatures> masked{};
  // Mahalanobis difference scratch (classifier dimension <= kNumFeatures).
  std::array<double, features::kNumFeatures> diff{};
  // Batched-chunk blocks: row r (kNumFeatures doubles apart) is point r's
  // feature snapshot / mask projection within the current chunk.
  alignas(64) std::array<double, kBatchPoints * features::kNumFeatures> feature_block{};
  alignas(64) std::array<double, kBatchPoints * features::kNumFeatures> masked_block{};
  // Per-class score buffers: full classifier (C classes) and AUC (up to 2C
  // sets), plus the batched AUC block (kBatchPoints rows of num_auc_sets).
  // Sized by Prepare(); steady state never reallocates.
  std::vector<double> full_scores;
  std::vector<double> auc_scores;
  std::vector<double> batch_auc_scores;

  // Ensures the score buffers match the recognizer shape. Cheap when already
  // sized (three integer compares); allocates only on first use or when the
  // shape changed.
  void Prepare(std::size_t num_full_classes, std::size_t num_auc_sets) {
    if (full_scores.size() != num_full_classes) {
      full_scores.resize(num_full_classes);
    }
    if (auc_scores.size() != num_auc_sets) {
      auc_scores.resize(num_auc_sets);
    }
    if (batch_auc_scores.size() != kBatchPoints * num_auc_sets) {
      batch_auc_scores.resize(kBatchPoints * num_auc_sets);
    }
  }

  linalg::MutVecView FeaturesView() { return linalg::ViewOf(features); }
  linalg::MutVecView MaskedView(std::size_t n) { return linalg::ViewOf(masked, n); }
  linalg::MutVecView DiffView(std::size_t n) { return linalg::ViewOf(diff, n); }
  linalg::MutVecView FullScoresView() {
    return linalg::MutVecView(full_scores.data(), full_scores.size());
  }
  linalg::MutVecView AucScoresView() {
    return linalg::MutVecView(auc_scores.data(), auc_scores.size());
  }
  // Feature-snapshot row r of the batched chunk (full kNumFeatures width).
  linalg::MutVecView FeatureRowView(std::size_t r) {
    assert(r < kBatchPoints);
    return linalg::MutVecView(feature_block.data() + r * features::kNumFeatures,
                              features::kNumFeatures);
  }
  // Mask-projection row r (leading n = mask.count() entries are live).
  linalg::MutVecView MaskedRowView(std::size_t r, std::size_t n) {
    assert(r < kBatchPoints && n <= features::kNumFeatures);
    return linalg::MutVecView(masked_block.data() + r * features::kNumFeatures, n);
  }
  linalg::MutVecView BatchAucScoresView() {
    return linalg::MutVecView(batch_auc_scores.data(), batch_auc_scores.size());
  }
};

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_WORKSPACE_H_
