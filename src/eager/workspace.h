// Per-stream scratch for the zero-allocation recognition kernel. One
// Workspace belongs to exactly one EagerStream (or other single-threaded
// caller) and is threaded by reference through EagerRecognizer ->
// GestureClassifier/Auc -> LinearClassifier, so the steady-state per-point
// loop performs no heap allocations: the feature snapshot, the masked
// projection, the Mahalanobis difference, and both score buffers all live
// here.
//
// Ownership rules (see docs/PERFORMANCE.md):
//   - the stream that owns the Workspace is the only writer; recognizers
//     never retain a pointer to it beyond a call;
//   - the fixed arrays never allocate; the two score buffers are sized by
//     Prepare() on first use (warm-up) and only ever re-allocate if the
//     recognizer they serve changes shape — steady state is allocation-free;
//   - contents are scratch: every kernel call overwrites them, so nothing
//     here carries state between points.
//
// Thread-safety: none, by design — same single-ownership contract as
// EagerStream.
#ifndef GRANDMA_SRC_EAGER_WORKSPACE_H_
#define GRANDMA_SRC_EAGER_WORKSPACE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "features/feature_vector.h"
#include "linalg/vec_view.h"

namespace grandma::eager {

struct Workspace {
  // Raw 13-entry feature snapshot (FeatureExtractor::FeaturesInto target).
  std::array<double, features::kNumFeatures> features{};
  // Mask-projected features; the leading mask().count() entries are live.
  std::array<double, features::kNumFeatures> masked{};
  // Mahalanobis difference scratch (classifier dimension <= kNumFeatures).
  std::array<double, features::kNumFeatures> diff{};
  // Per-class score buffers: full classifier (C classes) and AUC (up to 2C
  // sets). Sized by Prepare(); steady state never reallocates.
  std::vector<double> full_scores;
  std::vector<double> auc_scores;

  // Ensures the score buffers match the recognizer shape. Cheap when already
  // sized (two integer compares); allocates only on first use or when the
  // shape changed.
  void Prepare(std::size_t num_full_classes, std::size_t num_auc_sets) {
    if (full_scores.size() != num_full_classes) {
      full_scores.resize(num_full_classes);
    }
    if (auc_scores.size() != num_auc_sets) {
      auc_scores.resize(num_auc_sets);
    }
  }

  linalg::MutVecView FeaturesView() { return linalg::ViewOf(features); }
  linalg::MutVecView MaskedView(std::size_t n) { return linalg::ViewOf(masked, n); }
  linalg::MutVecView DiffView(std::size_t n) { return linalg::ViewOf(diff, n); }
  linalg::MutVecView FullScoresView() {
    return linalg::MutVecView(full_scores.data(), full_scores.size());
  }
  linalg::MutVecView AucScoresView() {
    return linalg::MutVecView(auc_scores.data(), auc_scores.size());
  }
};

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_WORKSPACE_H_
