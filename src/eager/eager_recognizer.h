// The user-facing eager recognizer (Sections 4.3-4.7): trains the full
// classifier and the AUC from example gestures, then answers, point by
// point, "has enough of this gesture been seen to classify it
// unambiguously?". EagerStream runs the per-point loop for one gesture.
#ifndef GRANDMA_SRC_EAGER_EAGER_RECOGNIZER_H_
#define GRANDMA_SRC_EAGER_EAGER_RECOGNIZER_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "classify/gesture_classifier.h"
#include "classify/training_set.h"
#include "eager/accidental_mover.h"
#include "eager/auc.h"
#include "eager/subgesture_labeler.h"
#include "eager/workspace.h"
#include "features/extractor.h"
#include "features/feature_vector.h"
#include "geom/point.h"
#include "linalg/vec_view.h"
#include "robust/fault_stats.h"

namespace grandma::eager {

struct EagerTrainOptions {
  features::FeatureMask mask = features::FeatureMask::All();
  LabelerOptions labeler;
  MoverOptions mover;
  AucOptions auc;
  // Optional degradation accounting, threaded through the full classifier,
  // the AUC trainer, and the two-phase fallback below.
  robust::FaultStats* stats = nullptr;
};

struct EagerTrainReport {
  double full_classifier_ridge = 0.0;
  // Partition sizes after labeling (before the move step).
  std::size_t complete_before_move = 0;
  std::size_t incomplete_before_move = 0;
  MoverReport mover;
  AucTrainReport auc;
  // True when the AUC could not be trained (or trained ill-conditioned) and
  // the recognizer fell back to never firing eagerly: every gesture is then
  // classified at mouse-up, exactly like a two-phase non-eager system. The
  // full classifier is unaffected.
  bool eager_fallback = false;
};

// Trained eager recognizer: the full classifier C plus the doneness
// predicate D built from the same training examples.
//
// Thread-safety: after Train returns, the const surface (UnambiguousFeatures,
// ClassifyFeatures, accessors) is safe for concurrent use from many threads —
// one trained recognizer serves every shard of a RecognitionServer. Train
// itself must be exclusive.
class EagerRecognizer {
 public:
  EagerRecognizer() = default;

  // Runs the whole Section 4.7 pipeline: train C, enumerate and label
  // subgestures, move accidental completes, train/bias/tweak the AUC.
  EagerTrainReport Train(const classify::GestureTrainingSet& training,
                         const EagerTrainOptions& options = {});

  bool trained() const { return full_.trained() && auc_.trained(); }

  // D over a full 13-entry feature vector (the mask is applied internally).
  // Allocates internal scratch; the per-point hot path uses Unambiguous.
  bool UnambiguousFeatures(const linalg::Vector& full_features) const;

  // C over a full 13-entry feature vector. Allocating flavor; the hot path
  // uses Classify below.
  classify::Classification ClassifyFeatures(const linalg::Vector& full_features) const {
    return full_.ClassifyFeatures(full_features);
  }

  // --- Zero-allocation kernel surface -------------------------------------
  // Both take the caller's per-stream Workspace; they size its score buffers
  // on first use and reuse them afterwards. Answers are bit-identical to the
  // allocating flavors above.

  // D over a full 13-entry feature view.
  bool Unambiguous(linalg::VecView full_features, Workspace& ws) const;

  // Batched D over `batch` full-feature rows (`row_stride` doubles apart in
  // `feature_rows`, each kNumFeatures wide; batch <= Workspace::kBatchPoints):
  // mask-projects every row, then runs the AUC's batched evaluator. Returns
  // the index of the FIRST unambiguous row, or Auc::kNone. Row answers are
  // bit-identical to Unambiguous on that row.
  std::size_t FirstUnambiguous(const double* feature_rows, std::size_t batch,
                               std::size_t row_stride, Workspace& ws) const;

  // C over a full 13-entry feature view.
  classify::Classification Classify(linalg::VecView full_features, Workspace& ws) const;

  // Ranked n-best over a full 13-entry feature view. Fills up to out.size()
  // entries (sorted by descending score, calibrated probabilities over all
  // classes) and, when `top` is non-null, the winner's full Classification —
  // bit-identical to Classify on the same features. Allocation-free through
  // the same Workspace scratch. Returns the number of entries written.
  std::size_t ClassifyNBest(linalg::VecView full_features, Workspace& ws,
                            std::span<classify::NBestEntry> out,
                            classify::Classification* top = nullptr) const;

  const classify::GestureClassifier& full() const { return full_; }
  const Auc& auc() const { return auc_; }

  // Reassembles a recognizer from persisted parts (io::serialize).
  static EagerRecognizer FromParameters(classify::GestureClassifier full, Auc auc,
                                        std::size_t min_prefix_points);
  const std::string& ClassName(classify::ClassId c) const { return full_.ClassName(c); }
  std::size_t num_classes() const { return full_.num_classes(); }
  std::size_t min_prefix_points() const { return min_prefix_points_; }

 private:
  classify::GestureClassifier full_;
  Auc auc_;
  std::size_t min_prefix_points_ = features::FeatureExtractor::kMinPoints;
};

// Everything a caller needs from the moment D fired inside a batched
// AddSpan: whether it fired in this span, the point count at the fire, and
// the full classifier's verdict at that exact point (classified from the
// stored feature snapshot of the firing point, so it is bit-identical to
// calling ClassifyNow at the fire in the per-point path).
struct FireEvent {
  bool fired = false;
  std::size_t fired_at = 0;
  classify::Classification classification;
  // Ranked alternatives at the fire point, filled only when the stream's
  // n-best depth (EagerStream::SetNBest) is nonzero. nbest[0] mirrors
  // `classification` bit for bit.
  std::array<classify::NBestEntry, classify::kMaxNBest> nbest{};
  std::size_t nbest_count = 0;
};

// Per-gesture streaming session: feed mouse points as they arrive; the
// stream reports the moment the gesture becomes unambiguous (D fires), after
// which the caller typically classifies and enters the manipulation phase.
//
// The stream owns a Workspace, so its steady-state per-point loop (AddPoint,
// ClassifyNow, FeaturesView) performs zero heap allocations after the first
// call sized the score buffers (enforced by tests/hotpath_alloc_test.cc).
//
// Thread-safety: none — a stream is one user's mutable per-stroke state and
// must be owned by a single thread (serve pins each stream to one shard).
// Many streams may share one recognizer concurrently.
class EagerStream {
 public:
  explicit EagerStream(const EagerRecognizer& recognizer) : recognizer_(&recognizer) {}

  // Appends one point; returns true exactly once — on the point at which the
  // gesture first becomes unambiguous.
  bool AddPoint(const geom::TimedPoint& p);

  // Appends a span of points, evaluating them in chunks of
  // Workspace::kBatchPoints through the batched SoA evaluator. Produces the
  // exact same fired()/fired_at() state (and, via `fire`, the exact same
  // fire-point classification) as calling AddPoint per point — the batch
  // kernel is per-row bit-identical — while amortizing dispatch and walking
  // the weight block once per chunk. Allocation-free in steady state.
  void AddSpan(std::span<const geom::TimedPoint> points, FireEvent* fire = nullptr);

  std::size_t points_seen() const { return extractor_.point_count(); }
  bool fired() const { return fired_; }
  // Number of points seen when D fired; 0 when it has not.
  std::size_t fired_at() const { return fired_at_; }

  // The full classifier's verdict on everything seen so far. Allocation-free
  // (classifies through the stream's Workspace).
  classify::Classification ClassifyNow() const;

  // Sets how many ranked alternatives ClassifyNowNBest and AddSpan's
  // FireEvent carry (clamped to classify::kMaxNBest; 0 disables, the
  // default, and keeps the fire path on the plain Classify kernel).
  void SetNBest(std::size_t n) { nbest_depth_ = std::min(n, classify::kMaxNBest); }
  std::size_t nbest_depth() const { return nbest_depth_; }

  // N-best flavor of ClassifyNow: fills up to nbest_depth() entries into
  // `out` and returns the count; `top` (when non-null) receives the winner's
  // Classification, bit-identical to ClassifyNow. Allocation-free.
  std::size_t ClassifyNowNBest(std::span<classify::NBestEntry> out,
                               classify::Classification* top = nullptr) const;

  // Current feature snapshot, written into the stream's Workspace; the view
  // is valid until the next AddPoint/ClassifyNow/FeaturesView/Reset call.
  // Allocation-free.
  linalg::VecView FeaturesView() const;

  // Compatibility shim: copy-returning snapshot (allocates). Prefer
  // FeaturesView on any per-point path.
  linalg::Vector Features() const { return extractor_.Features(); }

  void Reset();

  // Points the stream at a different trained recognizer (hot model swap).
  // Only legal between strokes: all per-stroke state resets, and the
  // workspace re-sizes lazily if the new model's shape differs.
  void Rebind(const EagerRecognizer& recognizer) {
    recognizer_ = &recognizer;
    Reset();
  }

 private:
  const EagerRecognizer* recognizer_;
  features::FeatureExtractor extractor_;
  // Scratch for the zero-allocation kernel. Mutable: ClassifyNow and
  // FeaturesView are logically const reads but reuse the per-stream buffers;
  // safe under the stream's single-thread ownership contract.
  mutable Workspace workspace_;
  bool fired_ = false;
  std::size_t fired_at_ = 0;
  std::size_t nbest_depth_ = 0;
};

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_EAGER_RECOGNIZER_H_
