#include "eager/auc.h"

#include <stdexcept>

#include "linalg/simd.h"

namespace grandma::eager {

void Auc::IndexSets() {
  num_complete_ = 0;
  for (const SetInfo& s : sets_) {
    if (s.complete) {
      ++num_complete_;
    }
  }
  complete_prefix_ = true;
  for (std::size_t k = 0; k < sets_.size(); ++k) {
    if (sets_[k].complete != (k < num_complete_)) {
      complete_prefix_ = false;
      break;
    }
  }
}

AucTrainReport Auc::Train(const SubgesturePartition& partition, const AucOptions& options) {
  AucTrainReport report;
  sets_.clear();
  num_complete_ = 0;
  complete_prefix_ = false;
  linear_ = classify::LinearClassifier();

  // Gather the non-empty sets into a dense AUC class list; complete sets
  // first, then incomplete, each remembering its full-classifier class.
  classify::FeatureTrainingSet data;
  std::size_t next_id = 0;
  bool any_complete = false;
  bool any_incomplete = false;
  for (classify::ClassId c = 0; c < partition.num_classes(); ++c) {
    if (partition.complete_sets[c].empty()) {
      continue;
    }
    any_complete = true;
    sets_.push_back(SetInfo{/*complete=*/true, c});
    for (const LabeledSubgesture& sub : partition.complete_sets[c]) {
      data.Add(next_id, sub.features);
    }
    ++next_id;
  }
  for (classify::ClassId c = 0; c < partition.num_classes(); ++c) {
    if (partition.incomplete_sets[c].empty()) {
      continue;
    }
    any_incomplete = true;
    sets_.push_back(SetInfo{/*complete=*/false, c});
    for (const LabeledSubgesture& sub : partition.incomplete_sets[c]) {
      data.Add(next_id, sub.features);
    }
    ++next_id;
  }
  IndexSets();  // Complete-first layout: complete_prefix_ comes out true.

  if (!any_complete && !any_incomplete) {
    throw std::invalid_argument("Auc::Train: empty partition");
  }
  if (!any_incomplete) {
    mode_ = Mode::kAlwaysUnambiguous;
    report.degenerate = true;
    return report;
  }
  if (!any_complete) {
    mode_ = Mode::kAlwaysAmbiguous;
    report.degenerate = true;
    return report;
  }

  report.ridge_used = linear_.Train(data);
  mode_ = Mode::kNormal;

  // Conservative bias: ambiguous five times more likely a priori.
  for (classify::ClassId k = 0; k < sets_.size(); ++k) {
    if (!sets_[k].complete) {
      linear_.AdjustBias(k, options.ambiguous_bias);
    }
  }

  // Tweak pass: no incomplete training subgesture may be classified into a
  // complete set (that is the "serious mistake" — it would fire eager
  // recognition on an ambiguous prefix). Lower offending complete-class
  // constants until clean or the pass budget runs out.
  for (std::size_t pass = 0; pass < options.max_tweak_passes; ++pass) {
    ++report.tweak_passes;
    std::size_t adjustments = 0;
    for (classify::ClassId c = 0; c < partition.num_classes(); ++c) {
      for (const LabeledSubgesture& sub : partition.incomplete_sets[c]) {
        const std::vector<double> scores = linear_.Evaluate(sub.features);
        classify::ClassId winner = 0;
        for (classify::ClassId k = 1; k < scores.size(); ++k) {
          if (scores[k] > scores[winner]) {
            winner = k;
          }
        }
        if (!sets_[winner].complete) {
          continue;
        }
        // Best incomplete score: the target the winner must drop below.
        double best_incomplete = 0.0;
        bool first = true;
        for (classify::ClassId k = 0; k < scores.size(); ++k) {
          if (sets_[k].complete) {
            continue;
          }
          if (first || scores[k] > best_incomplete) {
            best_incomplete = scores[k];
            first = false;
          }
        }
        const double gap = scores[winner] - best_incomplete;
        const double delta = gap * (1.0 + options.tweak_margin) + 1e-9;
        linear_.AdjustBias(winner, -delta);
        ++adjustments;
      }
    }
    report.tweak_adjustments += adjustments;
    if (adjustments == 0) {
      return report;
    }
  }
  report.converged = false;
  return report;
}

bool Auc::Unambiguous(const linalg::Vector& masked_features) const {
  std::vector<double> scores(linear_.num_classes());
  return UnambiguousView(masked_features.view(),
                         linalg::MutVecView(scores.data(), scores.size()));
}

bool Auc::UnambiguousView(linalg::VecView masked_features, linalg::MutVecView scores) const {
  switch (mode_) {
    case Mode::kUntrained:
      throw std::logic_error("Auc::Unambiguous before Train");
    case Mode::kAlwaysAmbiguous:
      return false;
    case Mode::kAlwaysUnambiguous:
      return true;
    case Mode::kNormal:
      break;
  }
  if (complete_prefix_) {
    // D(s) needs only which SIDE of the complete/incomplete split the
    // winning set is on, never its index — and Train lays complete sets out
    // as the id prefix. The fused kernel answers that in one sweep of the
    // weight block with no score stores and no argmax pass; `scores` stays
    // untouched scratch. Same answer as the evaluate + argmax path on every
    // tier (see simd::EvaluateArgMaxInPrefix).
    return linear_.EvaluateWinnerInPrefix(masked_features, num_complete_);
  }
  const classify::ClassId winner = linear_.BestClassView(masked_features, scores);
  return sets_[winner].complete;
}

std::size_t Auc::FirstUnambiguous(const double* masked_rows, std::size_t batch,
                                  std::size_t stride,
                                  linalg::MutVecView scores_block) const {
  switch (mode_) {
    case Mode::kUntrained:
      throw std::logic_error("Auc::Unambiguous before Train");
    case Mode::kAlwaysAmbiguous:
      return kNone;
    case Mode::kAlwaysUnambiguous:
      return batch > 0 ? 0 : kNone;
    case Mode::kNormal:
      break;
  }
  const std::size_t sets = linear_.num_classes();
  assert(scores_block.size() >= batch * sets);
  if (complete_prefix_) {
    // Per-row fused fire check (see UnambiguousView): early-out on the first
    // complete winner without ever materializing a score block, so the batch
    // costs one weight-block sweep per row and nothing else. scores_block
    // stays untouched scratch.
    const std::size_t dim = linear_.dimension();
    for (std::size_t r = 0; r < batch; ++r) {
      if (linear_.EvaluateWinnerInPrefix(linalg::VecView(masked_rows + r * stride, dim),
                                         num_complete_)) {
        return r;
      }
    }
    return kNone;
  }
  linear_.EvaluateBatchInto(masked_rows, batch, stride, scores_block.data(), sets);
  for (std::size_t r = 0; r < batch; ++r) {
    const double* scores = scores_block.data() + r * sets;
    // Same argmax semantics as BestClassView: first index wins ties. The
    // dispatched kernel keeps that contract across tiers, so which set wins
    // (and therefore where the recognizer fires) is tier-independent.
    const auto winner = static_cast<classify::ClassId>(linalg::simd::ArgMax(scores, sets));
    if (sets_[winner].complete) {
      return r;
    }
  }
  return kNone;
}

Auc Auc::FromParameters(Mode mode, classify::LinearClassifier linear,
                        std::vector<SetInfo> sets) {
  Auc out;
  out.mode_ = mode;
  out.linear_ = std::move(linear);
  out.sets_ = std::move(sets);
  out.IndexSets();
  return out;
}

classify::Classification Auc::Classify(const linalg::Vector& masked_features) const {
  if (mode_ != Mode::kNormal) {
    throw std::logic_error("Auc::Classify is only meaningful in normal mode");
  }
  return linear_.Classify(masked_features);
}

}  // namespace grandma::eager
