#include "eager/auc.h"

#include <stdexcept>

namespace grandma::eager {

AucTrainReport Auc::Train(const SubgesturePartition& partition, const AucOptions& options) {
  AucTrainReport report;
  sets_.clear();
  linear_ = classify::LinearClassifier();

  // Gather the non-empty sets into a dense AUC class list; complete sets
  // first, then incomplete, each remembering its full-classifier class.
  classify::FeatureTrainingSet data;
  std::size_t next_id = 0;
  bool any_complete = false;
  bool any_incomplete = false;
  for (classify::ClassId c = 0; c < partition.num_classes(); ++c) {
    if (partition.complete_sets[c].empty()) {
      continue;
    }
    any_complete = true;
    sets_.push_back(SetInfo{/*complete=*/true, c});
    for (const LabeledSubgesture& sub : partition.complete_sets[c]) {
      data.Add(next_id, sub.features);
    }
    ++next_id;
  }
  for (classify::ClassId c = 0; c < partition.num_classes(); ++c) {
    if (partition.incomplete_sets[c].empty()) {
      continue;
    }
    any_incomplete = true;
    sets_.push_back(SetInfo{/*complete=*/false, c});
    for (const LabeledSubgesture& sub : partition.incomplete_sets[c]) {
      data.Add(next_id, sub.features);
    }
    ++next_id;
  }

  if (!any_complete && !any_incomplete) {
    throw std::invalid_argument("Auc::Train: empty partition");
  }
  if (!any_incomplete) {
    mode_ = Mode::kAlwaysUnambiguous;
    report.degenerate = true;
    return report;
  }
  if (!any_complete) {
    mode_ = Mode::kAlwaysAmbiguous;
    report.degenerate = true;
    return report;
  }

  report.ridge_used = linear_.Train(data);
  mode_ = Mode::kNormal;

  // Conservative bias: ambiguous five times more likely a priori.
  for (classify::ClassId k = 0; k < sets_.size(); ++k) {
    if (!sets_[k].complete) {
      linear_.AdjustBias(k, options.ambiguous_bias);
    }
  }

  // Tweak pass: no incomplete training subgesture may be classified into a
  // complete set (that is the "serious mistake" — it would fire eager
  // recognition on an ambiguous prefix). Lower offending complete-class
  // constants until clean or the pass budget runs out.
  for (std::size_t pass = 0; pass < options.max_tweak_passes; ++pass) {
    ++report.tweak_passes;
    std::size_t adjustments = 0;
    for (classify::ClassId c = 0; c < partition.num_classes(); ++c) {
      for (const LabeledSubgesture& sub : partition.incomplete_sets[c]) {
        const std::vector<double> scores = linear_.Evaluate(sub.features);
        classify::ClassId winner = 0;
        for (classify::ClassId k = 1; k < scores.size(); ++k) {
          if (scores[k] > scores[winner]) {
            winner = k;
          }
        }
        if (!sets_[winner].complete) {
          continue;
        }
        // Best incomplete score: the target the winner must drop below.
        double best_incomplete = 0.0;
        bool first = true;
        for (classify::ClassId k = 0; k < scores.size(); ++k) {
          if (sets_[k].complete) {
            continue;
          }
          if (first || scores[k] > best_incomplete) {
            best_incomplete = scores[k];
            first = false;
          }
        }
        const double gap = scores[winner] - best_incomplete;
        const double delta = gap * (1.0 + options.tweak_margin) + 1e-9;
        linear_.AdjustBias(winner, -delta);
        ++adjustments;
      }
    }
    report.tweak_adjustments += adjustments;
    if (adjustments == 0) {
      return report;
    }
  }
  report.converged = false;
  return report;
}

bool Auc::Unambiguous(const linalg::Vector& masked_features) const {
  std::vector<double> scores(linear_.num_classes());
  return UnambiguousView(masked_features.view(),
                         linalg::MutVecView(scores.data(), scores.size()));
}

bool Auc::UnambiguousView(linalg::VecView masked_features, linalg::MutVecView scores) const {
  switch (mode_) {
    case Mode::kUntrained:
      throw std::logic_error("Auc::Unambiguous before Train");
    case Mode::kAlwaysAmbiguous:
      return false;
    case Mode::kAlwaysUnambiguous:
      return true;
    case Mode::kNormal:
      break;
  }
  const classify::ClassId winner = linear_.BestClassView(masked_features, scores);
  return sets_[winner].complete;
}

std::size_t Auc::FirstUnambiguous(const double* masked_rows, std::size_t batch,
                                  std::size_t stride,
                                  linalg::MutVecView scores_block) const {
  switch (mode_) {
    case Mode::kUntrained:
      throw std::logic_error("Auc::Unambiguous before Train");
    case Mode::kAlwaysAmbiguous:
      return kNone;
    case Mode::kAlwaysUnambiguous:
      return batch > 0 ? 0 : kNone;
    case Mode::kNormal:
      break;
  }
  const std::size_t sets = linear_.num_classes();
  assert(scores_block.size() >= batch * sets);
  linear_.EvaluateBatchInto(masked_rows, batch, stride, scores_block.data(), sets);
  for (std::size_t r = 0; r < batch; ++r) {
    const double* scores = scores_block.data() + r * sets;
    // Same argmax loop as BestClassView: first index wins ties.
    classify::ClassId winner = 0;
    for (classify::ClassId k = 1; k < sets; ++k) {
      if (scores[k] > scores[winner]) {
        winner = k;
      }
    }
    if (sets_[winner].complete) {
      return r;
    }
  }
  return kNone;
}

Auc Auc::FromParameters(Mode mode, classify::LinearClassifier linear,
                        std::vector<SetInfo> sets) {
  Auc out;
  out.mode_ = mode;
  out.linear_ = std::move(linear);
  out.sets_ = std::move(sets);
  return out;
}

classify::Classification Auc::Classify(const linalg::Vector& masked_features) const {
  if (mode_ != Mode::kNormal) {
    throw std::logic_error("Auc::Classify is only meaningful in normal mode");
  }
  return linear_.Classify(masked_features);
}

}  // namespace grandma::eager
