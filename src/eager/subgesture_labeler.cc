#include "eager/subgesture_labeler.h"

#include "features/extractor.h"

namespace grandma::eager {

std::size_t SubgesturePartition::total_complete() const {
  std::size_t n = 0;
  for (const auto& s : complete_sets) {
    n += s.size();
  }
  return n;
}

std::size_t SubgesturePartition::total_incomplete() const {
  std::size_t n = 0;
  for (const auto& s : incomplete_sets) {
    n += s.size();
  }
  return n;
}

SubgesturePartition LabelSubgestures(const classify::GestureClassifier& full,
                                     const classify::GestureTrainingSet& training,
                                     const LabelerOptions& options) {
  const std::size_t num_classes = full.num_classes();
  SubgesturePartition partition;
  partition.complete_sets.resize(num_classes);
  partition.incomplete_sets.resize(num_classes);

  const std::size_t min_prefix = std::max<std::size_t>(options.min_prefix_points, 1);

  for (classify::ClassId c = 0; c < training.num_classes(); ++c) {
    for (const geom::Gesture& g : training.ExamplesOf(c)) {
      if (g.size() < min_prefix) {
        continue;
      }
      GestureSubgestures per_gesture;
      per_gesture.true_class = c;

      // Incremental pass: one feature snapshot per prefix, O(|g|) total.
      features::FeatureExtractor fx;
      std::vector<LabeledSubgesture> subs;
      for (std::size_t i = 0; i < g.size(); ++i) {
        fx.AddPoint(g[i]);
        const std::size_t len = i + 1;
        if (len < min_prefix) {
          continue;
        }
        LabeledSubgesture sub;
        sub.features = full.mask().Project(fx.Features());
        sub.prefix_len = len;
        sub.gesture_len = g.size();
        sub.true_class = c;
        sub.predicted_class = full.linear().Classify(sub.features).class_id;
        subs.push_back(std::move(sub));
      }

      // Completeness: a suffix scan — complete iff this prefix and every
      // larger one classify to the true class.
      bool all_larger_correct = true;
      for (std::size_t k = subs.size(); k-- > 0;) {
        all_larger_correct = all_larger_correct && subs[k].predicted_class == c;
        subs[k].complete = all_larger_correct;
      }

      per_gesture.subgestures = std::move(subs);
      partition.per_gesture.push_back(std::move(per_gesture));
    }
  }
  RebuildSets(partition);
  return partition;
}

void RebuildSets(SubgesturePartition& partition) {
  for (auto& s : partition.complete_sets) {
    s.clear();
  }
  for (auto& s : partition.incomplete_sets) {
    s.clear();
  }
  for (const GestureSubgestures& gesture : partition.per_gesture) {
    for (const LabeledSubgesture& sub : gesture.subgestures) {
      if (sub.EffectivelyComplete()) {
        partition.complete_sets[sub.EffectiveSet()].push_back(sub);
      } else {
        partition.incomplete_sets[sub.EffectiveSet()].push_back(sub);
      }
    }
  }
}

}  // namespace grandma::eager
