#include "eager/evaluation.h"

namespace grandma::eager {

double EagerEvaluation::EagerAccuracy() const {
  return total == 0 ? 0.0 : static_cast<double>(eager_correct) / static_cast<double>(total);
}

double EagerEvaluation::FullAccuracy() const {
  return total == 0 ? 0.0 : static_cast<double>(full_correct) / static_cast<double>(total);
}

double EagerEvaluation::MeanFractionSeen() const {
  if (outcomes.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const ExampleOutcome& o : outcomes) {
    if (o.points_total > 0) {
      sum += static_cast<double>(o.points_seen) / static_cast<double>(o.points_total);
    }
  }
  return sum / static_cast<double>(outcomes.size());
}

double EagerEvaluation::MeanMinFraction() const {
  if (outcomes.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const ExampleOutcome& o : outcomes) {
    if (o.points_total > 0) {
      sum += static_cast<double>(o.min_points) / static_cast<double>(o.points_total);
    }
  }
  return sum / static_cast<double>(outcomes.size());
}

EagerEvaluation EvaluateEager(const EagerRecognizer& recognizer,
                              const std::vector<synth::LabeledSamples>& batches) {
  EagerEvaluation eval;
  for (const synth::LabeledSamples& batch : batches) {
    const classify::ClassId true_class = recognizer.full().registry().Require(batch.class_name);
    for (std::size_t e = 0; e < batch.samples.size(); ++e) {
      const synth::GestureSample& sample = batch.samples[e];
      ExampleOutcome outcome;
      outcome.true_class = true_class;
      outcome.example_name = batch.class_name + std::to_string(e + 1);
      outcome.points_total = sample.gesture.size();
      outcome.min_points = sample.MinUnambiguousPointCount();

      EagerStream stream(recognizer);
      classify::Classification eager_result{};
      bool have_eager = false;
      for (const geom::TimedPoint& p : sample.gesture) {
        if (stream.AddPoint(p)) {
          eager_result = stream.ClassifyNow();
          have_eager = true;
        }
      }
      outcome.fired = stream.fired();
      outcome.points_seen = stream.fired() ? stream.fired_at() : sample.gesture.size();
      const classify::Classification full_result = stream.ClassifyNow();
      if (!have_eager) {
        // Never fired: the gesture is classified in full at mouse-up.
        eager_result = full_result;
      }
      outcome.eager_class = eager_result.class_id;
      outcome.full_class = full_result.class_id;
      outcome.eager_correct = outcome.eager_class == true_class;
      outcome.full_correct = outcome.full_class == true_class;

      eval.total += 1;
      eval.eager_correct += outcome.eager_correct ? 1 : 0;
      eval.full_correct += outcome.full_correct ? 1 : 0;
      eval.never_fired += outcome.fired ? 0 : 1;
      eval.outcomes.push_back(std::move(outcome));
    }
  }
  return eval;
}

double TrainingPrematureFireRate(const EagerRecognizer& recognizer,
                                 const classify::GestureTrainingSet& training) {
  std::size_t fired_wrong = 0;
  std::size_t fired_total = 0;
  Workspace ws;  // one scratch for the whole sweep; no per-prefix allocation
  for (classify::ClassId c = 0; c < training.num_classes(); ++c) {
    for (const geom::Gesture& g : training.ExamplesOf(c)) {
      features::FeatureExtractor fx;
      for (std::size_t i = 0; i < g.size(); ++i) {
        fx.AddPoint(g[i]);
        if (fx.point_count() < recognizer.min_prefix_points()) {
          continue;
        }
        fx.FeaturesInto(ws.FeaturesView());
        if (recognizer.Unambiguous(ws.FeaturesView(), ws)) {
          ++fired_total;
          if (recognizer.Classify(ws.FeaturesView(), ws).class_id != c) {
            ++fired_wrong;
          }
        }
      }
    }
  }
  return fired_total == 0 ? 0.0
                          : static_cast<double>(fired_wrong) / static_cast<double>(fired_total);
}

}  // namespace grandma::eager
