#include "eager/eager_recognizer.h"

namespace grandma::eager {

EagerTrainReport EagerRecognizer::Train(const classify::GestureTrainingSet& training,
                                        const EagerTrainOptions& options) {
  EagerTrainReport report;
  min_prefix_points_ = std::max<std::size_t>(options.labeler.min_prefix_points, 1);

  report.full_classifier_ridge = full_.Train(training, options.mask);

  SubgesturePartition partition = LabelSubgestures(full_, training, options.labeler);
  report.complete_before_move = partition.total_complete();
  report.incomplete_before_move = partition.total_incomplete();

  report.mover = MoveAccidentallyComplete(full_, partition, options.mover);
  report.auc = auc_.Train(partition, options.auc);
  return report;
}

EagerRecognizer EagerRecognizer::FromParameters(classify::GestureClassifier full, Auc auc,
                                                std::size_t min_prefix_points) {
  EagerRecognizer out;
  out.full_ = std::move(full);
  out.auc_ = std::move(auc);
  out.min_prefix_points_ = min_prefix_points;
  return out;
}

bool EagerRecognizer::UnambiguousFeatures(const linalg::Vector& full_features) const {
  return auc_.Unambiguous(full_.mask().Project(full_features));
}

bool EagerStream::AddPoint(const geom::TimedPoint& p) {
  extractor_.AddPoint(p);
  if (fired_ || extractor_.point_count() < recognizer_->min_prefix_points()) {
    return false;
  }
  if (recognizer_->UnambiguousFeatures(extractor_.Features())) {
    fired_ = true;
    fired_at_ = extractor_.point_count();
    return true;
  }
  return false;
}

void EagerStream::Reset() {
  extractor_.Reset();
  fired_ = false;
  fired_at_ = 0;
}

}  // namespace grandma::eager
