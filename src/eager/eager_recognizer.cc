#include "eager/eager_recognizer.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>

#include "obs/trace.h"

namespace grandma::eager {

namespace {

// An AUC whose discriminant contains NaN/Inf would answer D(s) arbitrarily;
// treat it like a failed training run.
bool AucWellConditioned(const Auc& auc) {
  if (auc.mode() != Auc::Mode::kNormal) {
    return true;
  }
  const classify::LinearClassifier& linear = auc.linear();
  for (classify::ClassId c = 0; c < linear.num_classes(); ++c) {
    if (!std::isfinite(linear.bias(c))) {
      return false;
    }
    for (double w : linear.weights(c)) {
      if (!std::isfinite(w)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

EagerTrainReport EagerRecognizer::Train(const classify::GestureTrainingSet& training,
                                        const EagerTrainOptions& options) {
  TRACE_SPAN("eager.train");
  EagerTrainReport report;
  min_prefix_points_ = std::max<std::size_t>(options.labeler.min_prefix_points, 1);

  // The full classifier is the load-bearing half; if it cannot be trained the
  // recognizer is unusable and the error propagates to the caller.
  report.full_classifier_ridge = full_.Train(training, options.mask, options.stats);

  // The AUC is an optimization: failure to train it must never take down the
  // session. Fall back to mouse-up two-phase recognition (D always answers
  // "ambiguous") and account for the degradation.
  try {
    SubgesturePartition partition = LabelSubgestures(full_, training, options.labeler);
    report.complete_before_move = partition.total_complete();
    report.incomplete_before_move = partition.total_incomplete();

    report.mover = MoveAccidentallyComplete(full_, partition, options.mover);
    report.auc = auc_.Train(partition, options.auc);
    if (!AucWellConditioned(auc_)) {
      throw std::runtime_error("EagerRecognizer::Train: AUC is ill-conditioned");
    }
  } catch (const std::exception&) {
    auc_ = Auc::FromParameters(Auc::Mode::kAlwaysAmbiguous, {}, {});
    report.auc = AucTrainReport{};
    report.auc.degenerate = true;
    report.eager_fallback = true;
    if (options.stats != nullptr) {
      ++options.stats->eager_twophase_fallbacks;
    }
  }
  return report;
}

EagerRecognizer EagerRecognizer::FromParameters(classify::GestureClassifier full, Auc auc,
                                                std::size_t min_prefix_points) {
  EagerRecognizer out;
  out.full_ = std::move(full);
  out.auc_ = std::move(auc);
  out.min_prefix_points_ = min_prefix_points;
  return out;
}

bool EagerRecognizer::UnambiguousFeatures(const linalg::Vector& full_features) const {
  return auc_.Unambiguous(full_.mask().Project(full_features));
}

bool EagerRecognizer::Unambiguous(linalg::VecView full_features, Workspace& ws) const {
  TRACE_SPAN_FINE("eager.unambiguous");
  ws.Prepare(num_classes(), auc_.num_sets());
  const features::FeatureMask& mask = full_.mask();
  const linalg::MutVecView masked = ws.MaskedView(mask.count());
  mask.ProjectInto(full_features, masked);
  return auc_.UnambiguousView(masked, ws.AucScoresView());
}

std::size_t EagerRecognizer::FirstUnambiguous(const double* feature_rows, std::size_t batch,
                                              std::size_t row_stride, Workspace& ws) const {
  assert(batch <= Workspace::kBatchPoints);
  ws.Prepare(num_classes(), auc_.num_sets());
  const features::FeatureMask& mask = full_.mask();
  const std::size_t masked_dim = mask.count();
  for (std::size_t r = 0; r < batch; ++r) {
    mask.ProjectInto(linalg::VecView(feature_rows + r * row_stride, features::kNumFeatures),
                     ws.MaskedRowView(r, masked_dim));
  }
  return auc_.FirstUnambiguous(ws.masked_block.data(), batch, features::kNumFeatures,
                               ws.BatchAucScoresView());
}

classify::Classification EagerRecognizer::Classify(linalg::VecView full_features,
                                                   Workspace& ws) const {
  TRACE_SPAN("eager.classify");
  ws.Prepare(num_classes(), auc_.num_sets());
  const std::size_t masked_dim = full_.mask().count();
  return full_.ClassifyFeaturesView(full_features, ws.MaskedView(masked_dim),
                                    ws.FullScoresView(), ws.DiffView(masked_dim));
}

std::size_t EagerRecognizer::ClassifyNBest(linalg::VecView full_features, Workspace& ws,
                                           std::span<classify::NBestEntry> out,
                                           classify::Classification* top) const {
  TRACE_SPAN("eager.classify_nbest");
  ws.Prepare(num_classes(), auc_.num_sets());
  const std::size_t masked_dim = full_.mask().count();
  return full_.EvaluateNBestView(full_features, ws.MaskedView(masked_dim), ws.FullScoresView(),
                                 ws.DiffView(masked_dim), out, top);
}

bool EagerStream::AddPoint(const geom::TimedPoint& p) {
  // The one per-point coarse span on the hot path: everything the stream does
  // for this point (extract, snapshot, ambiguity test) nests under it.
  TRACE_SPAN("eager.point");
  extractor_.AddPoint(p);
  if (fired_ || extractor_.point_count() < recognizer_->min_prefix_points()) {
    return false;
  }
  extractor_.FeaturesInto(workspace_.FeaturesView());
  if (recognizer_->Unambiguous(workspace_.FeaturesView(), workspace_)) {
    fired_ = true;
    fired_at_ = extractor_.point_count();
    return true;
  }
  return false;
}

void EagerStream::AddSpan(std::span<const geom::TimedPoint> points, FireEvent* fire) {
  if (fire != nullptr) {
    *fire = FireEvent{};
  }
  std::size_t i = 0;
  const std::size_t n = points.size();
  const std::size_t min_prefix = recognizer_->min_prefix_points();
  while (i < n) {
    if (fired_) {
      // Post-fire points only feed the extractor, exactly like AddPoint, but
      // each still gets its per-point span.
      for (; i < n; ++i) {
        TRACE_SPAN("eager.point");
        extractor_.AddPoint(points[i]);
      }
      return;
    }
    // Ingest one chunk: extract per point and snapshot the feature rows that
    // are past the minimum prefix. Row r fires at point count
    // first_row_count + r — rows are consecutive points by construction.
    const std::size_t chunk = std::min(Workspace::kBatchPoints, n - i);
    std::size_t rows = 0;
    std::size_t first_row_count = 0;
    for (std::size_t k = 0; k < chunk; ++k) {
      TRACE_SPAN("eager.point");
      extractor_.AddPoint(points[i + k]);
      if (extractor_.point_count() >= min_prefix) {
        extractor_.FeaturesInto(workspace_.FeatureRowView(rows));
        if (rows == 0) {
          first_row_count = extractor_.point_count();
        }
        ++rows;
      }
    }
    i += chunk;
    if (rows == 0) {
      continue;
    }
    std::size_t fire_row = Auc::kNone;
    {
      TRACE_SPAN_FINE("eager.batch");
      fire_row = recognizer_->FirstUnambiguous(workspace_.feature_block.data(), rows,
                                               features::kNumFeatures, workspace_);
    }
    if (fire_row == Auc::kNone) {
      continue;
    }
    fired_ = true;
    fired_at_ = first_row_count + fire_row;
    if (fire != nullptr) {
      fire->fired = true;
      fire->fired_at = fired_at_;
      // Classify from the stored snapshot of the firing row: bit-identical
      // to calling ClassifyNow at the moment the per-point path fired.
      linalg::Copy(
          linalg::VecView(workspace_.feature_block.data() + fire_row * features::kNumFeatures,
                          features::kNumFeatures),
          workspace_.FeaturesView());
      if (nbest_depth_ > 0) {
        fire->nbest_count = recognizer_->ClassifyNBest(
            workspace_.FeaturesView(), workspace_,
            std::span<classify::NBestEntry>(fire->nbest.data(), nbest_depth_),
            &fire->classification);
      } else {
        fire->classification = recognizer_->Classify(workspace_.FeaturesView(), workspace_);
      }
    }
  }
}

classify::Classification EagerStream::ClassifyNow() const {
  extractor_.FeaturesInto(workspace_.FeaturesView());
  return recognizer_->Classify(workspace_.FeaturesView(), workspace_);
}

std::size_t EagerStream::ClassifyNowNBest(std::span<classify::NBestEntry> out,
                                          classify::Classification* top) const {
  extractor_.FeaturesInto(workspace_.FeaturesView());
  const std::size_t depth = std::min(out.size(), nbest_depth_);
  return recognizer_->ClassifyNBest(workspace_.FeaturesView(), workspace_, out.first(depth),
                                    top);
}

linalg::VecView EagerStream::FeaturesView() const {
  extractor_.FeaturesInto(workspace_.FeaturesView());
  return workspace_.FeaturesView();
}

void EagerStream::Reset() {
  extractor_.Reset();
  fired_ = false;
  fired_at_ = 0;
}

}  // namespace grandma::eager
