// The measurement harness behind Section 5: run a trained eager recognizer
// over labeled test gestures and report the two comparisons the paper makes —
// eager vs full recognition rate, and eagerness (fraction of mouse points
// seen before classification) vs the minimum possible.
#ifndef GRANDMA_SRC_EAGER_EVALUATION_H_
#define GRANDMA_SRC_EAGER_EVALUATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "eager/eager_recognizer.h"
#include "synth/generator.h"

namespace grandma::eager {

// What happened on one test gesture.
struct ExampleOutcome {
  classify::ClassId true_class = 0;
  std::string example_name;  // e.g. "ru4": class name + example number
  std::size_t points_total = 0;
  // Point count at which D fired; equals points_total when it never did (the
  // gesture is then classified at mouse-up, exactly like a non-eager system).
  std::size_t points_seen = 0;
  bool fired = false;
  // Ground-truth minimum points needed (from the generator; the paper
  // determined this by hand). Equals points_total when unknown.
  std::size_t min_points = 0;
  classify::ClassId eager_class = 0;  // classification at the firing point
  classify::ClassId full_class = 0;   // classification of the whole gesture
  bool eager_correct = false;
  bool full_correct = false;
};

// Aggregates over a test set.
struct EagerEvaluation {
  std::vector<ExampleOutcome> outcomes;
  std::size_t total = 0;
  std::size_t eager_correct = 0;
  std::size_t full_correct = 0;
  std::size_t never_fired = 0;

  double EagerAccuracy() const;
  double FullAccuracy() const;
  // Mean over examples of points_seen / points_total — the paper's "67.9% of
  // the mouse points of each gesture" statistic.
  double MeanFractionSeen() const;
  // Mean over examples of min_points / points_total — the paper's "59.4%
  // ... needed to be seen" statistic (ground truth instead of hand labels).
  double MeanMinFraction() const;
};

// Runs every sample through an EagerStream point by point. Class names in
// `batches` must exist in the recognizer's registry.
EagerEvaluation EvaluateEager(const EagerRecognizer& recognizer,
                              const std::vector<synth::LabeledSamples>& batches);

// Conservativeness check used by tests and the U/D walkthrough: the fraction
// of *training* prefixes judged unambiguous by D whose full classifier label
// differs from the true class of their gesture. The training algorithm is
// designed to drive this to zero on its own training data.
double TrainingPrematureFireRate(const EagerRecognizer& recognizer,
                                 const classify::GestureTrainingSet& training);

}  // namespace grandma::eager

#endif  // GRANDMA_SRC_EAGER_EVALUATION_H_
