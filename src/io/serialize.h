// Plain-text persistence for gesture sets and trained recognizers, so
// training sessions (example collection) and deployment (classification) can
// be separate programs — as they were for GRANDMA's applications.
//
// Formats are line-oriented, versioned, and locale-independent (numbers are
// written with max round-trip precision).
//
// The ...Or loaders are the primary API: they return robust::StatusOr with a
// precise failure reason — kTruncated (stream ended mid-parse),
// kVersionMismatch (right file family, unknown format version),
// kCorruptSnapshot (wrong family or malformed contents),
// kFailedPrecondition (file loaders only: the file cannot be opened). The
// std::optional flavors are thin shims kept for existing callers; they drop
// the reason. All file savers write atomically (io/atomic_file.h): temp
// sibling + rename, so a crash mid-save never tears the destination.
#ifndef GRANDMA_SRC_IO_SERIALIZE_H_
#define GRANDMA_SRC_IO_SERIALIZE_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "classify/gesture_classifier.h"
#include "classify/training_set.h"
#include "eager/eager_recognizer.h"
#include "robust/status.h"

namespace grandma::io {

// --- Gesture training sets ---

// Writes `set` as text. Returns false on stream failure.
bool SaveGestureSet(const classify::GestureTrainingSet& set, std::ostream& out);
bool SaveGestureSetFile(const classify::GestureTrainingSet& set, const std::string& path);

robust::StatusOr<classify::GestureTrainingSet> LoadGestureSetOr(std::istream& in);
robust::StatusOr<classify::GestureTrainingSet> LoadGestureSetFileOr(const std::string& path);

// Shims over the Or flavors; std::nullopt on any failure.
std::optional<classify::GestureTrainingSet> LoadGestureSet(std::istream& in);
std::optional<classify::GestureTrainingSet> LoadGestureSetFile(const std::string& path);

// --- Trained full classifiers ---

bool SaveClassifier(const classify::GestureClassifier& classifier, std::ostream& out);
bool SaveClassifierFile(const classify::GestureClassifier& classifier, const std::string& path);

robust::StatusOr<classify::GestureClassifier> LoadClassifierOr(std::istream& in);
robust::StatusOr<classify::GestureClassifier> LoadClassifierFileOr(const std::string& path);

std::optional<classify::GestureClassifier> LoadClassifier(std::istream& in);
std::optional<classify::GestureClassifier> LoadClassifierFile(const std::string& path);

// --- Trained eager recognizers (full classifier + AUC) ---

bool SaveEagerRecognizer(const eager::EagerRecognizer& recognizer, std::ostream& out);
bool SaveEagerRecognizerFile(const eager::EagerRecognizer& recognizer, const std::string& path);

robust::StatusOr<eager::EagerRecognizer> LoadEagerRecognizerOr(std::istream& in);
robust::StatusOr<eager::EagerRecognizer> LoadEagerRecognizerFileOr(const std::string& path);

std::optional<eager::EagerRecognizer> LoadEagerRecognizer(std::istream& in);
std::optional<eager::EagerRecognizer> LoadEagerRecognizerFile(const std::string& path);

}  // namespace grandma::io

#endif  // GRANDMA_SRC_IO_SERIALIZE_H_
