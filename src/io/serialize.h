// Plain-text persistence for gesture sets and trained recognizers, so
// training sessions (example collection) and deployment (classification) can
// be separate programs — as they were for GRANDMA's applications.
//
// Formats are line-oriented, versioned, and locale-independent (numbers are
// written with max round-trip precision).
#ifndef GRANDMA_SRC_IO_SERIALIZE_H_
#define GRANDMA_SRC_IO_SERIALIZE_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "classify/gesture_classifier.h"
#include "classify/training_set.h"
#include "eager/eager_recognizer.h"

namespace grandma::io {

// --- Gesture training sets ---

// Writes `set` as text. Returns false on stream failure.
bool SaveGestureSet(const classify::GestureTrainingSet& set, std::ostream& out);
bool SaveGestureSetFile(const classify::GestureTrainingSet& set, const std::string& path);

// Parses a gesture set; std::nullopt on malformed input.
std::optional<classify::GestureTrainingSet> LoadGestureSet(std::istream& in);
std::optional<classify::GestureTrainingSet> LoadGestureSetFile(const std::string& path);

// --- Trained full classifiers ---

bool SaveClassifier(const classify::GestureClassifier& classifier, std::ostream& out);
bool SaveClassifierFile(const classify::GestureClassifier& classifier, const std::string& path);

std::optional<classify::GestureClassifier> LoadClassifier(std::istream& in);
std::optional<classify::GestureClassifier> LoadClassifierFile(const std::string& path);

// --- Trained eager recognizers (full classifier + AUC) ---

bool SaveEagerRecognizer(const eager::EagerRecognizer& recognizer, std::ostream& out);
bool SaveEagerRecognizerFile(const eager::EagerRecognizer& recognizer, const std::string& path);

std::optional<eager::EagerRecognizer> LoadEagerRecognizer(std::istream& in);
std::optional<eager::EagerRecognizer> LoadEagerRecognizerFile(const std::string& path);

}  // namespace grandma::io

#endif  // GRANDMA_SRC_IO_SERIALIZE_H_
