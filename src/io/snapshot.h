// Versioned, checksummed model snapshots — the crash-safe on-disk form of a
// trained model. A snapshot is a small header followed by the payload (the
// plain-text serialization from io/serialize.h):
//
//   grandma-snapshot v1 <kind>\n
//   bytes <N> crc32 <8-hex>\n
//   <exactly N payload bytes>
//
// The header carries a magic, a format version, the payload kind
// (classifier | eager | bundle), the payload length, and a CRC32 (IEEE
// 802.3) over the payload bytes. Loaders verify all of it and return
// robust::StatusOr with a precise reason on failure:
//
//   kTruncated        — the stream ended before the declared content did
//   kVersionMismatch  — intact header, but a format version we do not speak
//   kCorruptSnapshot  — bad magic, wrong kind, CRC mismatch, or a payload
//                       that fails to parse
//
// File savers go through io::AtomicWriteFile (temp + rename), so a crash at
// any byte leaves the previous snapshot intact; bench/chaos_recovery proves
// this at every byte boundary.
#ifndef GRANDMA_SRC_IO_SNAPSHOT_H_
#define GRANDMA_SRC_IO_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "classify/gesture_classifier.h"
#include "eager/eager_recognizer.h"
#include "robust/status.h"

namespace grandma::io {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) of `bytes`.
std::uint32_t Crc32(std::string_view bytes);

// --- Generic container framing ---
// The checksummed `grandma-snapshot v1` envelope around an arbitrary payload,
// exposed so higher layers can define new snapshot kinds (e.g. personalize's
// `user-delta`) with the same header/CRC/truncation guarantees as the model
// kinds below. `kind` must be a single non-empty whitespace-free token; the
// writer returns false on a malformed kind or a failed stream, the reader
// returns the verified payload bytes or the same typed statuses the model
// loaders use (kTruncated / kVersionMismatch / kCorruptSnapshot).
bool WriteSnapshotContainer(std::ostream& out, std::string_view kind,
                            const std::string& payload);
robust::StatusOr<std::string> ReadSnapshotContainer(std::istream& in,
                                                    std::string_view kind);

// --- Trained full classifiers ---

// Returns false when `classifier` is untrained or the stream failed.
bool SaveClassifierSnapshot(const classify::GestureClassifier& classifier, std::ostream& out);
robust::StatusOr<classify::GestureClassifier> LoadClassifierSnapshot(std::istream& in);

robust::Status SaveClassifierSnapshotFile(const classify::GestureClassifier& classifier,
                                          const std::string& path);
robust::StatusOr<classify::GestureClassifier> LoadClassifierSnapshotFile(
    const std::string& path);

// --- Trained eager recognizers ---

bool SaveEagerSnapshot(const eager::EagerRecognizer& recognizer, std::ostream& out);
robust::StatusOr<eager::EagerRecognizer> LoadEagerSnapshot(std::istream& in);

robust::Status SaveEagerSnapshotFile(const eager::EagerRecognizer& recognizer,
                                     const std::string& path);
robust::StatusOr<eager::EagerRecognizer> LoadEagerSnapshotFile(const std::string& path);

// --- Combined bundle snapshots ---
// One file carrying everything a recognition server hot-loads: the full
// classifier section and the eager recognizer section, checked together.
// Loading cross-validates the two (same class count) so a spliced file from
// two different trainings is rejected as corrupt.

struct BundleSnapshot {
  classify::GestureClassifier classifier;
  eager::EagerRecognizer recognizer;
};

bool SaveBundleSnapshot(const eager::EagerRecognizer& recognizer, std::ostream& out);
robust::StatusOr<BundleSnapshot> LoadBundleSnapshot(std::istream& in);

robust::Status SaveBundleSnapshotFile(const eager::EagerRecognizer& recognizer,
                                      const std::string& path);
robust::StatusOr<BundleSnapshot> LoadBundleSnapshotFile(const std::string& path);

}  // namespace grandma::io

#endif  // GRANDMA_SRC_IO_SNAPSHOT_H_
