// The versioned binary wire format for serve-layer input-event streams:
// `grandma-events v1`. This is how load files are generated, persisted, and
// replayed from OUTSIDE the serving process — a million-event soak file is
// written once and fed through any server build that speaks v1.
//
// Container (reusing the checksummed-header idiom of io/snapshot.h, framed
// so a reader can stream a huge file and survive damage mid-file):
//
//   grandma-events v1\n
//   frames <F> events <N> points <P>\n
//   F x [ frame events <n> bytes <m> crc32 <8-hex>\n  <m raw bytes> ]
//
// Each frame's payload is a fixed little-endian encoding of n events
// (session u64, stroke u32, deadline_us u32, type u8, npoints u32, then
// npoints x three f64: x, y, t) and carries its own CRC32 (IEEE 802.3).
// The encoding is canonical — the same events always produce the same
// bytes — so save -> load -> save is byte-identical (the soak harness
// gates on it).
//
// Reader contract (EventWireReader): every failure is a typed
// robust::Status —
//   kTruncated        — the stream ended before declared content did
//   kVersionMismatch  — intact header, unknown format version
//   kCorruptSnapshot  — bad magic, malformed framing, CRC mismatch, or a
//                       payload that decodes to nonsense
// A frame whose bytes all arrived but fail the CRC (or decode) is a
// RECOVERABLE error: the reader stays positioned at the next frame, so one
// flipped sector costs one frame, not the file. Structural damage (magic,
// framing, short read) is sticky. File savers go through io::AtomicWriteFile.
#ifndef GRANDMA_SRC_IO_EVENT_WIRE_H_
#define GRANDMA_SRC_IO_EVENT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/point.h"
#include "robust/status.h"

namespace grandma::io {

inline constexpr std::uint32_t kEventWireFormatVersion = 1;
// Canonical chunking: events per frame unless the caller overrides.
inline constexpr std::size_t kEventWireDefaultFrameEvents = 4096;

// Sanity caps a corrupt header must not be able to exceed (they bound
// allocation, not capability: 128M events is ~2 orders past the soak load).
inline constexpr std::size_t kEventWireMaxFrames = std::size_t{1} << 20;
inline constexpr std::size_t kEventWireMaxEvents = std::size_t{1} << 27;
inline constexpr std::size_t kEventWireMaxFrameBytes = std::size_t{1} << 28;
inline constexpr std::size_t kEventWireMaxPointsPerEvent = std::size_t{1} << 16;

// Mirrors serve::EventType byte-for-byte without making io depend on the
// serve layer (serve links io; serve/wire_adapter.h static_asserts the two
// enums agree and converts).
enum class WireEventType : std::uint8_t {
  kStrokeBegin = 0,
  kPoints = 1,
  kStrokeEnd = 2,
  kSessionEnd = 3,
};

struct WireEvent {
  std::uint64_t session = 0;
  std::uint32_t stroke = 0;
  // Deadline budget in microseconds from submission; 0 = none.
  std::uint32_t deadline_us = 0;
  WireEventType type = WireEventType::kPoints;
  std::vector<geom::TimedPoint> points;  // kPoints only (reader-enforced)

  friend bool operator==(const WireEvent&, const WireEvent&) = default;
};

// --- Writing ---

// False when the stream failed or an event is malformed (kPoints with no
// points / points on a non-kPoints event / too many points per event).
bool SaveEventWire(const std::vector<WireEvent>& events, std::ostream& out,
                   std::size_t events_per_frame = kEventWireDefaultFrameEvents);
// Atomic (temp + rename) file flavor; see AtomicWriteFile for error codes.
robust::Status SaveEventWireFile(const std::vector<WireEvent>& events,
                                 const std::string& path,
                                 std::size_t events_per_frame = kEventWireDefaultFrameEvents);

// --- Streaming reads ---

// Frame-at-a-time reader for load files too large to care to hold twice.
// Thread-safety: none (wraps one istream).
class EventWireReader {
 public:
  explicit EventWireReader(std::istream& in) : in_(in) {}

  // Parses and validates the header. Must be called (once) before
  // NextFrame; returns the typed failure otherwise.
  robust::Status Open();

  // Appends the next frame's events to `out` (cleared first). kOk on
  // success; after the last declared frame, done() is true and further
  // calls return kFailedPrecondition. CRC/decode failures are recoverable
  // (the next call reads the following frame); structural failures are
  // sticky and done() never becomes true.
  robust::Status NextFrame(std::vector<WireEvent>& out);

  // True once every declared frame was consumed (successfully or not).
  bool done() const { return opened_ && frames_read_ == declared_frames_; }

  std::size_t declared_frames() const { return declared_frames_; }
  std::size_t declared_events() const { return declared_events_; }
  std::size_t declared_points() const { return declared_points_; }
  std::size_t frames_read() const { return frames_read_; }

 private:
  std::istream& in_;
  bool opened_ = false;
  bool sticky_error_ = false;
  std::size_t declared_frames_ = 0;
  std::size_t declared_events_ = 0;
  std::size_t declared_points_ = 0;
  std::size_t frames_read_ = 0;
};

// Whole-stream convenience: Open + every frame, first failure wins. Also
// verifies the declared event/point totals against what was read.
robust::StatusOr<std::vector<WireEvent>> LoadEventWire(std::istream& in);
robust::StatusOr<std::vector<WireEvent>> LoadEventWireFile(const std::string& path);

}  // namespace grandma::io

#endif  // GRANDMA_SRC_IO_EVENT_WIRE_H_
