#include "io/snapshot.h"

#include <array>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/atomic_file.h"
#include "io/serialize.h"

namespace grandma::io {

namespace {

constexpr const char* kMagic = "grandma-snapshot";
// Far above any model the system trains (a GDP-scale eager snapshot is tens
// of kilobytes); a corrupt length field must fail fast, not allocate.
constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 26;

const char* KindName(char kind) {
  switch (kind) {
    case 'c':
      return "classifier";
    case 'e':
      return "eager";
    case 'b':
      return "bundle";
  }
  return "?";
}

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Serializes the snapshot container around an already-produced payload.
bool WriteContainer(std::ostream& out, std::string_view kind, const std::string& payload) {
  out << kMagic << " v" << kSnapshotFormatVersion << ' ' << kind << '\n';
  out << "bytes " << payload.size() << " crc32 " << std::hex << std::setw(8)
      << std::setfill('0') << Crc32(payload) << std::dec << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return static_cast<bool>(out);
}

// Parses the container and hands back the verified payload bytes.
robust::StatusOr<std::string> ReadContainer(std::istream& in, std::string_view expected_kind) {
  std::string magic;
  std::string version;
  std::string kind;
  if (!(in >> magic)) {
    return robust::Status::Truncated("snapshot: empty stream");
  }
  if (magic != kMagic) {
    return robust::Status::CorruptSnapshot("snapshot: bad magic '" + magic + "'");
  }
  if (!(in >> version)) {
    return robust::Status::Truncated("snapshot: stream ends inside the header");
  }
  const std::string expected_version = "v" + std::to_string(kSnapshotFormatVersion);
  if (version != expected_version) {
    // A stream that ends inside the version token ("v" of "v1") is a
    // truncation, not a model from the future.
    if (in.eof() && expected_version.compare(0, version.size(), version) == 0) {
      return robust::Status::Truncated("snapshot: stream ends inside the version token");
    }
    return robust::Status::VersionMismatch("snapshot: format version '" + version +
                                           "', this binary speaks " + expected_version);
  }
  if (!(in >> kind)) {
    return robust::Status::Truncated("snapshot: stream ends inside the header");
  }
  if (kind != expected_kind) {
    return robust::Status::CorruptSnapshot("snapshot: holds a '" + kind + "', expected '" +
                                           std::string(expected_kind) + "'");
  }
  std::string tag;
  std::size_t bytes = 0;
  std::string crc_hex;
  if (!(in >> tag)) {
    return robust::Status::Truncated("snapshot: stream ends before the length line");
  }
  if (tag != "bytes" || !(in >> bytes)) {
    return robust::Status::CorruptSnapshot("snapshot: malformed length field");
  }
  if (bytes > kMaxPayloadBytes) {
    return robust::Status::CorruptSnapshot("snapshot: absurd payload length " +
                                           std::to_string(bytes));
  }
  if (!(in >> tag >> crc_hex)) {
    return in.eof() ? robust::Status::Truncated("snapshot: stream ends before the checksum")
                    : robust::Status::CorruptSnapshot("snapshot: malformed checksum field");
  }
  if (tag != "crc32" || crc_hex.size() != 8) {
    return robust::Status::CorruptSnapshot("snapshot: malformed checksum field");
  }
  std::uint32_t declared_crc = 0;
  for (char c : crc_hex) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      return robust::Status::CorruptSnapshot("snapshot: non-hex checksum digit");
    }
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    declared_crc = declared_crc * 16 +
                   static_cast<std::uint32_t>(lower <= '9' ? lower - '0' : lower - 'a' + 10);
  }
  // The single separator newline before the payload bytes.
  const int sep = in.get();
  if (sep == std::char_traits<char>::eof()) {
    return bytes == 0 && declared_crc == Crc32("")
               ? robust::StatusOr<std::string>(std::string())
               : robust::Status::Truncated("snapshot: stream ends before the payload");
  }
  if (sep != '\n') {
    return robust::Status::CorruptSnapshot("snapshot: malformed header terminator");
  }
  std::string payload(bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    return robust::Status::Truncated("snapshot: payload has " + std::to_string(in.gcount()) +
                                     " of " + std::to_string(bytes) + " declared bytes");
  }
  const std::uint32_t actual_crc = Crc32(payload);
  if (actual_crc != declared_crc) {
    return robust::Status::CorruptSnapshot("snapshot: payload CRC mismatch");
  }
  return payload;
}

template <typename Saver, typename T>
bool SaveSnapshot(const char* kind, Saver saver, const T& value, std::ostream& out) {
  std::ostringstream payload;
  if (!saver(value, payload)) {
    return false;
  }
  return WriteContainer(out, kind, payload.str());
}

template <typename T, typename Loader>
robust::StatusOr<T> LoadSnapshot(const char* kind, Loader loader, std::istream& in) {
  auto payload = ReadContainer(in, kind);
  if (!payload.ok()) {
    return payload.status();
  }
  std::istringstream body(*payload);
  auto value = loader(body);
  if (!value.has_value()) {
    // The CRC matched, so the payload is what the writer produced — a parse
    // failure here means the writer itself emitted something unreadable.
    return robust::Status::CorruptSnapshot(std::string("snapshot: CRC-valid ") + kind +
                                           " payload failed to parse");
  }
  return std::move(*value);
}

template <typename SaveFileFn, typename V>
robust::Status SaveSnapshotFile(SaveFileFn save, const V& value, const std::string& path) {
  return AtomicWriteFile(path, [&](std::ostream& out) { return save(value, out); });
}

template <typename LoadFn>
auto LoadSnapshotFile(const char* what, LoadFn load, const std::string& path)
    -> decltype(load(std::declval<std::istream&>())) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return robust::Status::FailedPrecondition(std::string("cannot open ") + what +
                                              " snapshot " + path);
  }
  return load(in);
}

}  // namespace

std::uint32_t Crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- Generic container framing ---

bool WriteSnapshotContainer(std::ostream& out, std::string_view kind,
                            const std::string& payload) {
  if (kind.empty()) {
    return false;
  }
  for (char c : kind) {
    // The header is whitespace-tokenized, so a kind containing whitespace
    // would write a container no reader can parse back.
    if (std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return WriteContainer(out, kind, payload);
}

robust::StatusOr<std::string> ReadSnapshotContainer(std::istream& in, std::string_view kind) {
  return ReadContainer(in, kind);
}

// --- Classifier snapshots ---

bool SaveClassifierSnapshot(const classify::GestureClassifier& classifier, std::ostream& out) {
  return SaveSnapshot(KindName('c'), [](const auto& v, std::ostream& o) {
    return SaveClassifier(v, o);
  }, classifier, out);
}

robust::StatusOr<classify::GestureClassifier> LoadClassifierSnapshot(std::istream& in) {
  return LoadSnapshot<classify::GestureClassifier>(
      KindName('c'), [](std::istream& body) { return LoadClassifier(body); }, in);
}

robust::Status SaveClassifierSnapshotFile(const classify::GestureClassifier& classifier,
                                          const std::string& path) {
  return SaveSnapshotFile(SaveClassifierSnapshot, classifier, path);
}

robust::StatusOr<classify::GestureClassifier> LoadClassifierSnapshotFile(
    const std::string& path) {
  return LoadSnapshotFile("classifier", LoadClassifierSnapshot, path);
}

// --- Eager snapshots ---

bool SaveEagerSnapshot(const eager::EagerRecognizer& recognizer, std::ostream& out) {
  return SaveSnapshot(KindName('e'), [](const auto& v, std::ostream& o) {
    return SaveEagerRecognizer(v, o);
  }, recognizer, out);
}

robust::StatusOr<eager::EagerRecognizer> LoadEagerSnapshot(std::istream& in) {
  return LoadSnapshot<eager::EagerRecognizer>(
      KindName('e'), [](std::istream& body) { return LoadEagerRecognizer(body); }, in);
}

robust::Status SaveEagerSnapshotFile(const eager::EagerRecognizer& recognizer,
                                     const std::string& path) {
  return SaveSnapshotFile(SaveEagerSnapshot, recognizer, path);
}

robust::StatusOr<eager::EagerRecognizer> LoadEagerSnapshotFile(const std::string& path) {
  return LoadSnapshotFile("eager", LoadEagerSnapshot, path);
}

// --- Bundle snapshots ---

bool SaveBundleSnapshot(const eager::EagerRecognizer& recognizer, std::ostream& out) {
  return SaveSnapshot(KindName('b'), [](const auto& v, std::ostream& o) {
    return SaveClassifier(v.full(), o) && SaveEagerRecognizer(v, o);
  }, recognizer, out);
}

robust::StatusOr<BundleSnapshot> LoadBundleSnapshot(std::istream& in) {
  auto payload = ReadContainer(in, KindName('b'));
  if (!payload.ok()) {
    return payload.status();
  }
  std::istringstream body(*payload);
  auto classifier = LoadClassifier(body);
  if (!classifier.has_value()) {
    return robust::Status::CorruptSnapshot(
        "snapshot: CRC-valid bundle classifier section failed to parse");
  }
  auto recognizer = LoadEagerRecognizer(body);
  if (!recognizer.has_value()) {
    return robust::Status::CorruptSnapshot(
        "snapshot: CRC-valid bundle eager section failed to parse");
  }
  if (classifier->num_classes() != recognizer->num_classes()) {
    return robust::Status::CorruptSnapshot(
        "snapshot: bundle sections disagree on class count (" +
        std::to_string(classifier->num_classes()) + " vs " +
        std::to_string(recognizer->num_classes()) + ")");
  }
  return BundleSnapshot{std::move(*classifier), std::move(*recognizer)};
}

robust::Status SaveBundleSnapshotFile(const eager::EagerRecognizer& recognizer,
                                      const std::string& path) {
  return SaveSnapshotFile(SaveBundleSnapshot, recognizer, path);
}

robust::StatusOr<BundleSnapshot> LoadBundleSnapshotFile(const std::string& path) {
  return LoadSnapshotFile("bundle", LoadBundleSnapshot, path);
}

}  // namespace grandma::io
