// Input-event (data) traces — distinct from the execution-span tracing in
// src/obs/; see the naming note in event_trace.h.
#include "io/event_trace.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "io/atomic_file.h"

namespace grandma::io {

namespace {

constexpr const char* kHeader = "grandma-eventtrace v1";

// Sanity cap on the declared event count: a corrupt or malicious header must
// not drive a multi-gigabyte reserve. 4M events is hours of input at device
// rates. Reservation is additionally bounded below so a huge-but-capped
// count backed by a short stream still fails by parse error, not bad_alloc.
constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 22;
constexpr std::size_t kMaxUpfrontReserve = 4096;

const char* KindName(toolkit::EventType type) {
  switch (type) {
    case toolkit::EventType::kMouseDown:
      return "down";
    case toolkit::EventType::kMouseMove:
      return "move";
    case toolkit::EventType::kMouseUp:
      return "up";
    case toolkit::EventType::kTimer:
      return "timer";
  }
  return "?";
}

std::optional<toolkit::EventType> KindFromName(const std::string& name) {
  if (name == "down") {
    return toolkit::EventType::kMouseDown;
  }
  if (name == "move") {
    return toolkit::EventType::kMouseMove;
  }
  if (name == "up") {
    return toolkit::EventType::kMouseUp;
  }
  if (name == "timer") {
    return toolkit::EventType::kTimer;
  }
  return std::nullopt;
}

}  // namespace

bool SaveEventTrace(const EventTrace& trace, std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kHeader << '\n' << "events " << trace.size() << '\n';
  for (const toolkit::InputEvent& e : trace) {
    out << KindName(e.type) << ' ' << e.x << ' ' << e.y << ' ' << e.time_ms << ' ' << e.button
        << '\n';
  }
  return static_cast<bool>(out);
}

robust::StatusOr<EventTrace> LoadEventTraceOr(std::istream& in) {
  std::string word1;
  if (!(in >> word1)) {
    return robust::Status::Truncated("event trace: empty stream");
  }
  if (word1 != "grandma-eventtrace") {
    return robust::Status::CorruptSnapshot("event trace: not a grandma-eventtrace stream");
  }
  std::string word2;
  if (!(in >> word2)) {
    return robust::Status::Truncated("event trace: stream ends inside the header");
  }
  if (word2 != "v1") {
    return robust::Status::VersionMismatch("event trace: unknown format version '" + word2 +
                                           "' (this binary speaks v1)");
  }
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "events") {
    return in.eof() ? robust::Status::Truncated("event trace: stream ends before the count")
                    : robust::Status::CorruptSnapshot("event trace: malformed event count");
  }
  if (count > kMaxTraceEvents) {
    return robust::Status::CorruptSnapshot("event trace: absurd declared event count " +
                                           std::to_string(count));
  }
  EventTrace trace;
  trace.reserve(std::min(count, kMaxUpfrontReserve));
  for (std::size_t i = 0; i < count; ++i) {
    std::string kind_name;
    toolkit::InputEvent e;
    if (!(in >> kind_name >> e.x >> e.y >> e.time_ms >> e.button)) {
      return in.eof() ? robust::Status::Truncated(
                            "event trace: stream ends at event " + std::to_string(i) + " of " +
                            std::to_string(count))
                      : robust::Status::CorruptSnapshot("event trace: malformed event " +
                                                        std::to_string(i));
    }
    const auto kind = KindFromName(kind_name);
    if (!kind.has_value()) {
      return robust::Status::CorruptSnapshot("event trace: unknown event kind '" + kind_name +
                                             "'");
    }
    e.type = *kind;
    trace.push_back(e);
  }
  return trace;
}

std::optional<EventTrace> LoadEventTrace(std::istream& in) {
  auto loaded = LoadEventTraceOr(in);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return std::move(*loaded);
}

bool SaveEventTraceFile(const EventTrace& trace, const std::string& path) {
  return AtomicWriteFile(path, [&](std::ostream& out) { return SaveEventTrace(trace, out); })
      .ok();
}

robust::StatusOr<EventTrace> LoadEventTraceFileOr(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return robust::Status::FailedPrecondition("cannot open event trace " + path);
  }
  return LoadEventTraceOr(in);
}

std::optional<EventTrace> LoadEventTraceFile(const std::string& path) {
  auto loaded = LoadEventTraceFileOr(path);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return std::move(*loaded);
}

bool EventRecorder::Dispatch(const toolkit::InputEvent& event) {
  trace_.push_back(event);
  return dispatcher_->Dispatch(event);
}

void ReplayTrace(const EventTrace& trace, toolkit::PlaybackDriver& driver) {
  if (trace.empty()) {
    return;
  }
  const double offset = driver.dispatcher().clock().now_ms() - trace.front().time_ms;
  for (toolkit::InputEvent e : trace) {
    if (e.type == toolkit::EventType::kTimer) {
      continue;  // the driver regenerates ticks from the gaps
    }
    e.time_ms += offset;
    driver.Feed(e);
  }
}

}  // namespace grandma::io
