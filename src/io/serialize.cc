#include "io/serialize.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/atomic_file.h"

namespace grandma::io {

namespace {

constexpr const char* kGestureSetFamily = "grandma-gestureset";
constexpr const char* kClassifierFamily = "grandma-classifier";
constexpr const char* kEagerFamily = "grandma-eager";
constexpr const char* kFormatVersion = "v1";
constexpr const char* kGestureSetHeader = "grandma-gestureset v1";
constexpr const char* kClassifierHeader = "grandma-classifier v1";
constexpr const char* kEagerHeader = "grandma-eager v1";

// Sanity caps for declared sizes in loaded files. A corrupt or hostile size
// field must produce a parse error (std::nullopt), never a multi-gigabyte
// allocation or bad_alloc unwinding through the loader. The caps are far
// above anything the system writes (13 features, dozens of classes).
constexpr std::size_t kMaxVectorSize = std::size_t{1} << 16;
constexpr std::size_t kMaxMatrixSide = std::size_t{1} << 13;
constexpr std::size_t kMaxClasses = std::size_t{1} << 16;
constexpr std::size_t kMaxExamplesPerClass = std::size_t{1} << 20;
constexpr std::size_t kMaxPointsPerGesture = std::size_t{1} << 22;
constexpr std::size_t kMaxUpfrontReserve = 4096;

void WriteVector(std::ostream& out, const linalg::Vector& v) {
  out << v.size();
  for (double x : v) {
    out << ' ' << x;
  }
  out << '\n';
}

std::optional<linalg::Vector> ReadVector(std::istream& in) {
  std::size_t n = 0;
  if (!(in >> n) || n > kMaxVectorSize) {
    return std::nullopt;
  }
  linalg::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(in >> v[i])) {
      return std::nullopt;
    }
  }
  return v;
}

void WriteMatrix(std::ostream& out, const linalg::Matrix& m) {
  out << m.rows() << ' ' << m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out << ' ' << m(r, c);
    }
  }
  out << '\n';
}

std::optional<linalg::Matrix> ReadMatrix(std::istream& in) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(in >> rows >> cols) || rows > kMaxMatrixSide || cols > kMaxMatrixSide) {
    return std::nullopt;
  }
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(in >> m(r, c))) {
        return std::nullopt;
      }
    }
  }
  return m;
}

// Class names may contain spaces in principle; we forbid them on save and
// read single tokens.
bool WriteName(std::ostream& out, const std::string& name) {
  if (name.find_first_of(" \t\n") != std::string::npos || name.empty()) {
    return false;
  }
  out << name;
  return true;
}

// Distinguishes the ways a header can be wrong, so the Or-loaders can report
// a precise reason instead of a bare parse failure.
enum class HeaderCheck { kOk, kTruncated, kWrongFamily, kWrongVersion };

HeaderCheck ReadHeader(std::istream& in, const char* family) {
  std::string word1;
  if (!(in >> word1)) {
    return HeaderCheck::kTruncated;
  }
  if (word1 != family) {
    return HeaderCheck::kWrongFamily;
  }
  std::string word2;
  if (!(in >> word2)) {
    return HeaderCheck::kTruncated;
  }
  if (word2 != kFormatVersion) {
    return HeaderCheck::kWrongVersion;
  }
  return HeaderCheck::kOk;
}

void WriteLinear(std::ostream& out, const classify::LinearClassifier& linear) {
  out << "classes " << linear.num_classes() << " dimension " << linear.dimension() << '\n';
  for (classify::ClassId c = 0; c < linear.num_classes(); ++c) {
    out << "bias " << linear.bias(c) << '\n';
    out << "weights ";
    WriteVector(out, linear.weights(c));
    out << "mean ";
    WriteVector(out, linear.mean(c));
  }
  out << "invcov ";
  WriteMatrix(out, linear.inverse_covariance());
}

std::optional<classify::LinearClassifier> ReadLinear(std::istream& in) {
  std::string tag;
  std::size_t num_classes = 0;
  std::size_t dimension = 0;
  if (!(in >> tag >> num_classes) || tag != "classes" || num_classes > kMaxClasses) {
    return std::nullopt;
  }
  if (!(in >> tag >> dimension) || tag != "dimension" || dimension > kMaxVectorSize) {
    return std::nullopt;
  }
  std::vector<linalg::Vector> weights;
  std::vector<double> biases;
  std::vector<linalg::Vector> means;
  for (std::size_t c = 0; c < num_classes; ++c) {
    double bias = 0.0;
    if (!(in >> tag >> bias) || tag != "bias") {
      return std::nullopt;
    }
    if (!(in >> tag) || tag != "weights") {
      return std::nullopt;
    }
    auto w = ReadVector(in);
    if (!w || w->size() != dimension) {
      return std::nullopt;
    }
    if (!(in >> tag) || tag != "mean") {
      return std::nullopt;
    }
    auto m = ReadVector(in);
    if (!m || m->size() != dimension) {
      return std::nullopt;
    }
    biases.push_back(bias);
    weights.push_back(std::move(*w));
    means.push_back(std::move(*m));
  }
  if (!(in >> tag) || tag != "invcov") {
    return std::nullopt;
  }
  auto invcov = ReadMatrix(in);
  if (!invcov || invcov->rows() != dimension || invcov->cols() != dimension) {
    return std::nullopt;
  }
  return classify::LinearClassifier::FromParameters(std::move(weights), std::move(biases),
                                                    std::move(means), std::move(*invcov));
}

void WriteMask(std::ostream& out, const features::FeatureMask& mask) {
  out << "mask";
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    out << ' ' << (mask.test(static_cast<features::Feature>(i)) ? 1 : 0);
  }
  out << '\n';
}

std::optional<features::FeatureMask> ReadMask(std::istream& in) {
  std::string tag;
  if (!(in >> tag) || tag != "mask") {
    return std::nullopt;
  }
  features::FeatureMask mask;
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    int bit = 0;
    if (!(in >> bit)) {
      return std::nullopt;
    }
    mask.set(static_cast<features::Feature>(i), bit != 0);
  }
  return mask;
}

bool WriteGestureClassifierBody(std::ostream& out,
                                const classify::GestureClassifier& classifier) {
  out << "names";
  for (classify::ClassId c = 0; c < classifier.num_classes(); ++c) {
    out << ' ';
    if (!WriteName(out, classifier.ClassName(c))) {
      return false;
    }
  }
  out << '\n';
  WriteMask(out, classifier.mask());
  WriteLinear(out, classifier.linear());
  return true;
}

std::optional<classify::GestureClassifier> ReadGestureClassifierBody(std::istream& in) {
  std::string tag;
  if (!(in >> tag) || tag != "names") {
    return std::nullopt;
  }
  // Names run to end of line.
  std::string rest;
  std::getline(in, rest);
  classify::ClassRegistry registry;
  {
    std::istringstream names(rest);
    std::string name;
    while (names >> name) {
      registry.Intern(name);
    }
  }
  auto mask = ReadMask(in);
  if (!mask) {
    return std::nullopt;
  }
  auto linear = ReadLinear(in);
  if (!linear) {
    return std::nullopt;
  }
  if (linear->num_classes() != registry.size() || linear->dimension() != mask->count()) {
    return std::nullopt;
  }
  return classify::GestureClassifier::FromParameters(std::move(registry), *mask,
                                                     std::move(*linear));
}

std::optional<classify::GestureTrainingSet> ReadGestureSetBody(std::istream& in) {
  std::string tag;
  std::size_t num_classes = 0;
  if (!(in >> tag >> num_classes) || tag != "classes" || num_classes > kMaxClasses) {
    return std::nullopt;
  }
  classify::GestureTrainingSet set;
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::string name;
    std::size_t num_examples = 0;
    if (!(in >> tag >> name >> num_examples) || tag != "class" ||
        num_examples > kMaxExamplesPerClass) {
      return std::nullopt;
    }
    for (std::size_t e = 0; e < num_examples; ++e) {
      std::size_t num_points = 0;
      if (!(in >> tag >> num_points) || tag != "example" ||
          num_points > kMaxPointsPerGesture) {
        return std::nullopt;
      }
      geom::Gesture g;
      g.Reserve(std::min(num_points, kMaxUpfrontReserve));
      for (std::size_t p = 0; p < num_points; ++p) {
        geom::TimedPoint pt;
        if (!(in >> pt.x >> pt.y >> pt.t)) {
          return std::nullopt;
        }
        g.AppendPoint(pt);
      }
      set.Add(name, std::move(g));
    }
  }
  return set;
}

std::optional<eager::EagerRecognizer> ReadEagerBody(std::istream& in) {
  std::string tag;
  std::size_t min_prefix = 0;
  if (!(in >> tag >> min_prefix) || tag != "min_prefix" ||
      min_prefix > kMaxPointsPerGesture) {
    return std::nullopt;
  }
  auto full = ReadGestureClassifierBody(in);
  if (!full) {
    return std::nullopt;
  }
  std::string mode_name;
  if (!(in >> tag >> mode_name) || tag != "auc_mode") {
    return std::nullopt;
  }
  eager::Auc auc;
  if (mode_name == "always_ambiguous") {
    auc = eager::Auc::FromParameters(eager::Auc::Mode::kAlwaysAmbiguous, {}, {});
  } else if (mode_name == "always_unambiguous") {
    auc = eager::Auc::FromParameters(eager::Auc::Mode::kAlwaysUnambiguous, {}, {});
  } else if (mode_name == "normal") {
    std::size_t num_sets = 0;
    if (!(in >> tag >> num_sets) || tag != "sets" || num_sets > kMaxClasses) {
      return std::nullopt;
    }
    std::vector<eager::Auc::SetInfo> sets;
    for (std::size_t k = 0; k < num_sets; ++k) {
      std::string kind;
      classify::ClassId full_class = 0;
      if (!(in >> kind >> full_class) || (kind != "C" && kind != "I")) {
        return std::nullopt;
      }
      sets.push_back(eager::Auc::SetInfo{kind == "C", full_class});
    }
    auto linear = ReadLinear(in);
    if (!linear || linear->num_classes() != sets.size()) {
      return std::nullopt;
    }
    auc = eager::Auc::FromParameters(eager::Auc::Mode::kNormal, std::move(*linear),
                                     std::move(sets));
  } else {
    return std::nullopt;
  }
  return eager::EagerRecognizer::FromParameters(std::move(*full), std::move(auc), min_prefix);
}

// Header check + body parse, mapping each failure to a precise Status.
template <typename T, typename BodyFn>
robust::StatusOr<T> LoadOr(std::istream& in, const char* family, const char* what,
                           BodyFn read_body) {
  switch (ReadHeader(in, family)) {
    case HeaderCheck::kTruncated:
      return robust::Status::Truncated(std::string(what) + ": stream ends inside the header");
    case HeaderCheck::kWrongFamily:
      return robust::Status::CorruptSnapshot(std::string(what) + ": not a " + family +
                                             " stream");
    case HeaderCheck::kWrongVersion:
      return robust::Status::VersionMismatch(std::string(what) +
                                             ": unknown format version (this binary speaks " +
                                             kFormatVersion + ")");
    case HeaderCheck::kOk:
      break;
  }
  auto value = read_body(in);
  if (!value.has_value()) {
    return in.eof()
               ? robust::Status::Truncated(std::string(what) + ": stream ends mid-parse")
               : robust::Status::CorruptSnapshot(std::string(what) + ": malformed contents");
  }
  return std::move(*value);
}

}  // namespace

// --- Gesture sets ---

bool SaveGestureSet(const classify::GestureTrainingSet& set, std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kGestureSetHeader << '\n';
  out << "classes " << set.num_classes() << '\n';
  for (classify::ClassId c = 0; c < set.num_classes(); ++c) {
    out << "class ";
    if (!WriteName(out, set.ClassName(c))) {
      return false;
    }
    out << ' ' << set.ExamplesOf(c).size() << '\n';
    for (const geom::Gesture& g : set.ExamplesOf(c)) {
      out << "example " << g.size() << '\n';
      for (const geom::TimedPoint& p : g) {
        out << p.x << ' ' << p.y << ' ' << p.t << '\n';
      }
    }
  }
  return static_cast<bool>(out);
}

robust::StatusOr<classify::GestureTrainingSet> LoadGestureSetOr(std::istream& in) {
  return LoadOr<classify::GestureTrainingSet>(in, kGestureSetFamily, "gesture set",
                                              ReadGestureSetBody);
}

std::optional<classify::GestureTrainingSet> LoadGestureSet(std::istream& in) {
  auto loaded = LoadGestureSetOr(in);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return std::move(*loaded);
}

// --- Classifiers ---

bool SaveClassifier(const classify::GestureClassifier& classifier, std::ostream& out) {
  if (!classifier.trained()) {
    return false;
  }
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kClassifierHeader << '\n';
  return WriteGestureClassifierBody(out, classifier) && static_cast<bool>(out);
}

robust::StatusOr<classify::GestureClassifier> LoadClassifierOr(std::istream& in) {
  return LoadOr<classify::GestureClassifier>(in, kClassifierFamily, "classifier",
                                             ReadGestureClassifierBody);
}

std::optional<classify::GestureClassifier> LoadClassifier(std::istream& in) {
  auto loaded = LoadClassifierOr(in);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return std::move(*loaded);
}

// --- Eager recognizers ---

bool SaveEagerRecognizer(const eager::EagerRecognizer& recognizer, std::ostream& out) {
  if (!recognizer.trained()) {
    return false;
  }
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kEagerHeader << '\n';
  out << "min_prefix " << recognizer.min_prefix_points() << '\n';
  if (!WriteGestureClassifierBody(out, recognizer.full())) {
    return false;
  }
  const eager::Auc& auc = recognizer.auc();
  out << "auc_mode ";
  switch (auc.mode()) {
    case eager::Auc::Mode::kNormal:
      out << "normal\n";
      break;
    case eager::Auc::Mode::kAlwaysAmbiguous:
      out << "always_ambiguous\n";
      break;
    case eager::Auc::Mode::kAlwaysUnambiguous:
      out << "always_unambiguous\n";
      break;
    case eager::Auc::Mode::kUntrained:
      return false;
  }
  if (auc.mode() == eager::Auc::Mode::kNormal) {
    out << "sets " << auc.num_sets() << '\n';
    for (classify::ClassId k = 0; k < auc.num_sets(); ++k) {
      const eager::Auc::SetInfo& info = auc.ClassInfo(k);
      out << (info.complete ? "C" : "I") << ' ' << info.full_class << '\n';
    }
    WriteLinear(out, auc.linear());
  }
  return static_cast<bool>(out);
}

robust::StatusOr<eager::EagerRecognizer> LoadEagerRecognizerOr(std::istream& in) {
  return LoadOr<eager::EagerRecognizer>(in, kEagerFamily, "eager recognizer", ReadEagerBody);
}

std::optional<eager::EagerRecognizer> LoadEagerRecognizer(std::istream& in) {
  auto loaded = LoadEagerRecognizerOr(in);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return std::move(*loaded);
}

// --- File wrappers ---

namespace {
// All savers go through the atomic temp+rename path: a crash or full disk
// mid-save never leaves a torn file at `path`.
template <typename SaveFn, typename T>
bool SaveFile(SaveFn fn, const T& value, const std::string& path) {
  return AtomicWriteFile(path, [&](std::ostream& out) { return fn(value, out); }).ok();
}
template <typename LoadFn>
auto LoadFileOr(LoadFn fn, const std::string& path)
    -> decltype(fn(std::declval<std::istream&>())) {
  std::ifstream in(path);
  if (!in) {
    return robust::Status::FailedPrecondition("cannot open " + path);
  }
  return fn(in);
}
template <typename LoadFn>
auto ShimFile(LoadFn fn, const std::string& path)
    -> std::optional<std::decay_t<decltype(fn(path).value())>> {
  auto loaded = fn(path);
  if (!loaded.ok()) {
    return std::nullopt;
  }
  return std::move(*loaded);
}
}  // namespace

bool SaveGestureSetFile(const classify::GestureTrainingSet& set, const std::string& path) {
  return SaveFile(SaveGestureSet, set, path);
}
robust::StatusOr<classify::GestureTrainingSet> LoadGestureSetFileOr(const std::string& path) {
  return LoadFileOr(LoadGestureSetOr, path);
}
std::optional<classify::GestureTrainingSet> LoadGestureSetFile(const std::string& path) {
  return ShimFile(LoadGestureSetFileOr, path);
}
bool SaveClassifierFile(const classify::GestureClassifier& classifier, const std::string& path) {
  return SaveFile(SaveClassifier, classifier, path);
}
robust::StatusOr<classify::GestureClassifier> LoadClassifierFileOr(const std::string& path) {
  return LoadFileOr(LoadClassifierOr, path);
}
std::optional<classify::GestureClassifier> LoadClassifierFile(const std::string& path) {
  return ShimFile(LoadClassifierFileOr, path);
}
bool SaveEagerRecognizerFile(const eager::EagerRecognizer& recognizer, const std::string& path) {
  return SaveFile(SaveEagerRecognizer, recognizer, path);
}
robust::StatusOr<eager::EagerRecognizer> LoadEagerRecognizerFileOr(const std::string& path) {
  return LoadFileOr(LoadEagerRecognizerOr, path);
}
std::optional<eager::EagerRecognizer> LoadEagerRecognizerFile(const std::string& path) {
  return ShimFile(LoadEagerRecognizerFileOr, path);
}

}  // namespace grandma::io
