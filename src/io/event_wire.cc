// grandma-events v1 — binary framed input-event streams; see event_wire.h.
#include "io/event_wire.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "io/atomic_file.h"
#include "io/snapshot.h"  // Crc32

namespace grandma::io {

namespace {

constexpr const char* kMagic = "grandma-events";

// Fixed per-event prefix: session(8) stroke(4) deadline(4) type(1) npoints(4).
constexpr std::size_t kEventHeaderBytes = 8 + 4 + 4 + 1 + 4;
constexpr std::size_t kPointBytes = 3 * 8;

void AppendLe(std::string& buf, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string& buf, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  AppendLe(buf, bits, 8);
}

std::uint64_t ReadLe(const std::string& buf, std::size_t offset, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[offset + i])) << (8 * i);
  }
  return v;
}

double ReadF64(const std::string& buf, std::size_t offset) {
  const std::uint64_t bits = ReadLe(buf, offset, 8);
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

bool ValidEvent(const WireEvent& e) {
  const bool is_points = e.type == WireEventType::kPoints;
  if (is_points && (e.points.empty() || e.points.size() > kEventWireMaxPointsPerEvent)) {
    return false;
  }
  if (!is_points && !e.points.empty()) {
    return false;
  }
  return static_cast<std::uint8_t>(e.type) <=
         static_cast<std::uint8_t>(WireEventType::kSessionEnd);
}

std::string EncodeFrame(const std::vector<WireEvent>& events, std::size_t begin,
                        std::size_t end) {
  std::string payload;
  std::size_t bytes = 0;
  for (std::size_t i = begin; i < end; ++i) {
    bytes += kEventHeaderBytes + events[i].points.size() * kPointBytes;
  }
  payload.reserve(bytes);
  for (std::size_t i = begin; i < end; ++i) {
    const WireEvent& e = events[i];
    AppendLe(payload, e.session, 8);
    AppendLe(payload, e.stroke, 4);
    AppendLe(payload, e.deadline_us, 4);
    AppendLe(payload, static_cast<std::uint8_t>(e.type), 1);
    AppendLe(payload, e.points.size(), 4);
    for (const geom::TimedPoint& p : e.points) {
      AppendF64(payload, p.x);
      AppendF64(payload, p.y);
      AppendF64(payload, p.t);
    }
  }
  return payload;
}

// Decodes a CRC-verified frame payload; false on any inconsistency (the
// bytes are intact per the checksum, so failure means a writer bug or a
// forged frame — reported as kCorruptSnapshot by the caller).
bool DecodeFrame(const std::string& payload, std::size_t declared_events,
                 std::vector<WireEvent>& out) {
  out.clear();
  out.reserve(declared_events);
  std::size_t off = 0;
  for (std::size_t i = 0; i < declared_events; ++i) {
    if (payload.size() - off < kEventHeaderBytes) {
      return false;
    }
    WireEvent e;
    e.session = ReadLe(payload, off, 8);
    e.stroke = static_cast<std::uint32_t>(ReadLe(payload, off + 8, 4));
    e.deadline_us = static_cast<std::uint32_t>(ReadLe(payload, off + 12, 4));
    const std::uint64_t type = ReadLe(payload, off + 16, 1);
    const std::uint64_t npoints = ReadLe(payload, off + 17, 4);
    off += kEventHeaderBytes;
    if (type > static_cast<std::uint64_t>(WireEventType::kSessionEnd) ||
        npoints > kEventWireMaxPointsPerEvent) {
      return false;
    }
    e.type = static_cast<WireEventType>(type);
    if ((payload.size() - off) / kPointBytes < npoints) {
      return false;
    }
    e.points.reserve(npoints);
    for (std::uint64_t p = 0; p < npoints; ++p) {
      geom::TimedPoint pt;
      pt.x = ReadF64(payload, off);
      pt.y = ReadF64(payload, off + 8);
      pt.t = ReadF64(payload, off + 16);
      e.points.push_back(pt);
      off += kPointBytes;
    }
    if (!ValidEvent(e)) {
      return false;
    }
    out.push_back(std::move(e));
  }
  return off == payload.size();  // no trailing garbage inside the frame
}

}  // namespace

bool SaveEventWire(const std::vector<WireEvent>& events, std::ostream& out,
                   std::size_t events_per_frame) {
  if (events_per_frame == 0) {
    return false;
  }
  std::size_t total_points = 0;
  for (const WireEvent& e : events) {
    if (!ValidEvent(e)) {
      return false;
    }
    total_points += e.points.size();
  }
  const std::size_t frames =
      (events.size() + events_per_frame - 1) / events_per_frame;
  if (frames > kEventWireMaxFrames || events.size() > kEventWireMaxEvents) {
    return false;
  }
  out << kMagic << " v" << kEventWireFormatVersion << '\n';
  out << "frames " << frames << " events " << events.size() << " points " << total_points
      << '\n';
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t begin = f * events_per_frame;
    const std::size_t end = std::min(events.size(), begin + events_per_frame);
    const std::string payload = EncodeFrame(events, begin, end);
    out << "frame events " << (end - begin) << " bytes " << payload.size() << " crc32 "
        << std::hex << std::setw(8) << std::setfill('0') << Crc32(payload) << std::dec
        << '\n';
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  return static_cast<bool>(out);
}

robust::Status SaveEventWireFile(const std::vector<WireEvent>& events,
                                 const std::string& path, std::size_t events_per_frame) {
  return AtomicWriteFile(path, [&](std::ostream& out) {
    return SaveEventWire(events, out, events_per_frame);
  });
}

robust::Status EventWireReader::Open() {
  if (opened_) {
    return robust::Status::FailedPrecondition("event wire: Open called twice");
  }
  std::string magic;
  if (!(in_ >> magic)) {
    sticky_error_ = true;
    return robust::Status::Truncated("event wire: empty stream");
  }
  if (magic != kMagic) {
    sticky_error_ = true;
    return robust::Status::CorruptSnapshot("event wire: bad magic '" + magic + "'");
  }
  std::string version;
  if (!(in_ >> version)) {
    sticky_error_ = true;
    return robust::Status::Truncated("event wire: stream ends inside the header");
  }
  const std::string expected_version = "v" + std::to_string(kEventWireFormatVersion);
  if (version != expected_version) {
    sticky_error_ = true;
    if (in_.eof() && expected_version.compare(0, version.size(), version) == 0) {
      return robust::Status::Truncated("event wire: stream ends inside the version token");
    }
    return robust::Status::VersionMismatch("event wire: format version '" + version +
                                           "', this binary speaks " + expected_version);
  }
  std::string tag_frames;
  std::string tag_events;
  std::string tag_points;
  std::size_t frames = 0;
  std::size_t events = 0;
  std::size_t points = 0;
  if (!(in_ >> tag_frames >> frames >> tag_events >> events >> tag_points >> points)) {
    sticky_error_ = true;
    return in_.eof()
               ? robust::Status::Truncated("event wire: stream ends inside the count line")
               : robust::Status::CorruptSnapshot("event wire: malformed count line");
  }
  if (tag_frames != "frames" || tag_events != "events" || tag_points != "points") {
    sticky_error_ = true;
    return robust::Status::CorruptSnapshot("event wire: malformed count line");
  }
  if (frames > kEventWireMaxFrames || events > kEventWireMaxEvents) {
    sticky_error_ = true;
    return robust::Status::CorruptSnapshot("event wire: absurd declared totals (frames " +
                                           std::to_string(frames) + ", events " +
                                           std::to_string(events) + ")");
  }
  declared_frames_ = frames;
  declared_events_ = events;
  declared_points_ = points;
  opened_ = true;
  return robust::Status::Ok();
}

robust::Status EventWireReader::NextFrame(std::vector<WireEvent>& out) {
  out.clear();
  if (!opened_ || sticky_error_) {
    return robust::Status::FailedPrecondition(
        "event wire: reader not open (or a structural error already occurred)");
  }
  if (done()) {
    return robust::Status::FailedPrecondition("event wire: all declared frames were read");
  }
  std::string tag_frame;
  std::string tag_events;
  std::string tag_bytes;
  std::string tag_crc;
  std::string crc_hex;
  std::size_t n_events = 0;
  std::size_t n_bytes = 0;
  if (!(in_ >> tag_frame >> tag_events >> n_events >> tag_bytes >> n_bytes >> tag_crc >>
        crc_hex)) {
    sticky_error_ = true;
    return in_.eof() ? robust::Status::Truncated(
                           "event wire: stream ends at frame " + std::to_string(frames_read_) +
                           " of " + std::to_string(declared_frames_))
                     : robust::Status::CorruptSnapshot("event wire: malformed frame header");
  }
  if (tag_frame != "frame" || tag_events != "events" || tag_bytes != "bytes" ||
      tag_crc != "crc32" || crc_hex.size() != 8) {
    sticky_error_ = true;
    return robust::Status::CorruptSnapshot("event wire: malformed frame header");
  }
  if (n_events > declared_events_ || n_bytes > kEventWireMaxFrameBytes) {
    sticky_error_ = true;
    return robust::Status::CorruptSnapshot("event wire: absurd frame header (events " +
                                           std::to_string(n_events) + ", bytes " +
                                           std::to_string(n_bytes) + ")");
  }
  std::uint32_t declared_crc = 0;
  for (char c : crc_hex) {
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const bool digit = lower >= '0' && lower <= '9';
    const bool hex = lower >= 'a' && lower <= 'f';
    if (!digit && !hex) {
      sticky_error_ = true;
      return robust::Status::CorruptSnapshot("event wire: non-hex frame checksum digit");
    }
    declared_crc = declared_crc * 16 +
                   static_cast<std::uint32_t>(digit ? lower - '0' : lower - 'a' + 10);
  }
  const int sep = in_.get();
  if (sep == std::char_traits<char>::eof()) {
    sticky_error_ = true;
    return robust::Status::Truncated("event wire: stream ends before the frame payload");
  }
  if (sep != '\n') {
    sticky_error_ = true;
    return robust::Status::CorruptSnapshot("event wire: malformed frame header terminator");
  }
  std::string payload(n_bytes, '\0');
  in_.read(payload.data(), static_cast<std::streamsize>(n_bytes));
  if (static_cast<std::size_t>(in_.gcount()) != n_bytes) {
    sticky_error_ = true;
    return robust::Status::Truncated("event wire: frame payload has " +
                                     std::to_string(in_.gcount()) + " of " +
                                     std::to_string(n_bytes) + " declared bytes");
  }
  // The payload arrived in full: from here on, failures are recoverable —
  // the stream is positioned at the next frame either way.
  frames_read_ += 1;
  if (Crc32(payload) != declared_crc) {
    return robust::Status::CorruptSnapshot("event wire: frame " +
                                           std::to_string(frames_read_ - 1) +
                                           " payload CRC mismatch");
  }
  if (!DecodeFrame(payload, n_events, out)) {
    out.clear();
    return robust::Status::CorruptSnapshot("event wire: frame " +
                                           std::to_string(frames_read_ - 1) +
                                           " payload decodes to nonsense");
  }
  return robust::Status::Ok();
}

robust::StatusOr<std::vector<WireEvent>> LoadEventWire(std::istream& in) {
  EventWireReader reader(in);
  if (robust::Status open = reader.Open(); !open.ok()) {
    return open;
  }
  std::vector<WireEvent> all;
  all.reserve(std::min(reader.declared_events(), std::size_t{1} << 16));
  std::vector<WireEvent> frame;
  std::size_t points = 0;
  while (!reader.done()) {
    if (robust::Status status = reader.NextFrame(frame); !status.ok()) {
      return status;
    }
    for (WireEvent& e : frame) {
      points += e.points.size();
      all.push_back(std::move(e));
    }
  }
  if (all.size() != reader.declared_events() || points != reader.declared_points()) {
    return robust::Status::CorruptSnapshot(
        "event wire: frame contents disagree with declared totals");
  }
  return all;
}

robust::StatusOr<std::vector<WireEvent>> LoadEventWireFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return robust::Status::FailedPrecondition("cannot open event wire file " + path);
  }
  return LoadEventWire(in);
}

}  // namespace grandma::io
