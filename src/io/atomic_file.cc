#include "io/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <streambuf>

#include "robust/crash_point.h"

namespace grandma::io {

namespace {

// Unbuffered pass-through streambuf that meters every byte through
// robust::CrashPoint. When an armed byte budget runs out mid-chunk, the
// allowed prefix is pushed to the destination and synced first, so the bytes
// "on disk" at the moment of death are exactly the budget.
class CrashMeteredBuf : public std::streambuf {
 public:
  explicit CrashMeteredBuf(std::streambuf* dest) : dest_(dest) {}

 protected:
  int overflow(int ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return sync() == 0 ? traits_type::not_eof(ch) : traits_type::eof();
    }
    const char c = traits_type::to_char_type(ch);
    return Write(&c, 1) == 1 ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override { return Write(s, n); }

  int sync() override { return dest_->pubsync(); }

 private:
  std::streamsize Write(const char* s, std::streamsize n) {
    const auto allowed = static_cast<std::streamsize>(
        robust::CrashPoint::Allow(static_cast<std::uint64_t>(n)));
    const std::streamsize put = dest_->sputn(s, allowed);
    if (allowed < n) {
      dest_->pubsync();
      robust::CrashPoint::Die("crash point fired after " +
                              std::to_string(robust::CrashPoint::bytes_written()) +
                              " bytes written");
    }
    return put;
  }

  std::streambuf* dest_;
};

}  // namespace

std::string AtomicTempPath(const std::string& path) { return path + ".tmp"; }

robust::Status AtomicWriteFile(const std::string& path,
                               const std::function<bool(std::ostream&)>& producer) {
  const std::string temp = AtomicTempPath(path);
  bool writer_ok = false;
  bool stream_ok = false;
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return robust::Status::FailedPrecondition("AtomicWriteFile: cannot open " + temp);
    }
    CrashMeteredBuf metered(file.rdbuf());
    std::ostream out(&metered);
    // ostream inserters swallow streambuf exceptions into badbit by default;
    // the badbit mask makes them rethrow the ORIGINAL exception, so an armed
    // CrashPointTriggered unwinds out of `producer` as a real crash would.
    // Genuine short writes surface as ios_base::failure, mapped to a status.
    out.exceptions(std::ios::badbit);
    try {
      writer_ok = producer(out);
      out.flush();
      stream_ok = static_cast<bool>(out) && static_cast<bool>(file);
    } catch (const std::ios_base::failure&) {
      stream_ok = false;
    }
  }  // closed (and flushed) before the rename
  if (!writer_ok || !stream_ok) {
    std::remove(temp.c_str());
    return !writer_ok
               ? robust::Status::FailedPrecondition("AtomicWriteFile: writer declined " + path)
               : robust::Status::DataLoss("AtomicWriteFile: short write to " + temp);
  }
  robust::CrashPoint::OnSite(kCrashBeforeRename);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return robust::Status::DataLoss("AtomicWriteFile: rename to " + path + " failed");
  }
  robust::CrashPoint::OnSite(kCrashAfterRename);
  return robust::Status::Ok();
}

}  // namespace grandma::io
