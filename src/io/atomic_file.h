// Crash-safe file writing: every persisted artifact is produced in a
// temporary sibling file and atomically rename(2)d onto its destination, so
// a crash or full disk at ANY byte of the write leaves the destination
// either untouched (old content intact) or fully replaced — never torn.
// The write stream is instrumented with robust::CrashPoint so the chaos
// harness can kill the write at an exact byte boundary and prove that
// property.
#ifndef GRANDMA_SRC_IO_ATOMIC_FILE_H_
#define GRANDMA_SRC_IO_ATOMIC_FILE_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "robust/status.h"

namespace grandma::io {

// The temp sibling `path` is written through before the rename; a crash
// mid-write strands it (harmless — the next successful write overwrites it).
std::string AtomicTempPath(const std::string& path);

// Crash-injection site names consulted around the rename (robust::CrashPoint).
inline constexpr const char* kCrashBeforeRename = "atomic_write.before_rename";
inline constexpr const char* kCrashAfterRename = "atomic_write.after_rename";

// Runs `producer` against a stream backed by AtomicTempPath(path), then
// renames the temp onto `path`. The destination is never opened for writing.
//
// Errors: kFailedPrecondition — the temp could not be opened, or `producer`
// returned false (it declined to write, e.g. an untrained model);
// kDataLoss — the stream went bad during/after the write (disk full, I/O
// error) or the rename failed; the temp file is removed in these cases.
// robust::CrashPointTriggered thrown by an armed crash point propagates
// untouched, leaving the temp exactly as a killed process would.
robust::Status AtomicWriteFile(const std::string& path,
                               const std::function<bool(std::ostream&)>& producer);

}  // namespace grandma::io

#endif  // GRANDMA_SRC_IO_ATOMIC_FILE_H_
