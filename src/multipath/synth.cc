#include "multipath/synth.h"

#include <numbers>

#include "geom/transform.h"

namespace grandma::multipath {

namespace {
constexpr double kPi = std::numbers::pi;
}  // namespace

std::vector<MultiPathSpec> MakeTwoFingerSpecs() {
  std::vector<MultiPathSpec> specs;

  {
    // Pinch: fingers at (-50, 0) and (50, 0) converge toward the middle.
    MultiPathSpec pinch;
    pinch.class_name = "pinch";
    synth::PathSpec left;
    left.start_x = -50.0;
    left.LineTo(-12.0, 0.0);
    synth::PathSpec right;
    right.start_x = 50.0;
    right.LineTo(12.0, 0.0);
    pinch.fingers = {left, right};
    specs.push_back(std::move(pinch));
  }
  {
    // Spread: the reverse.
    MultiPathSpec spread;
    spread.class_name = "spread";
    synth::PathSpec left;
    left.start_x = -12.0;
    left.LineTo(-50.0, 0.0);
    synth::PathSpec right;
    right.start_x = 12.0;
    right.LineTo(50.0, 0.0);
    spread.fingers = {left, right};
    specs.push_back(std::move(spread));
  }
  {
    // Two-finger rotation: both fingers orbit the midpoint by ~90 degrees.
    MultiPathSpec rotate;
    rotate.class_name = "rotate-two";
    synth::PathSpec a;
    a.start_x = 40.0;
    a.start_y = 0.0;
    a.segments.push_back(synth::PathSegment::Arc(0.0, 0.0, 40.0, 0.0, kPi / 2.0));
    synth::PathSpec b;
    b.start_x = -40.0;
    b.start_y = 0.0;
    b.segments.push_back(synth::PathSegment::Arc(0.0, 0.0, 40.0, kPi, kPi / 2.0));
    rotate.fingers = {a, b};
    specs.push_back(std::move(rotate));
  }
  {
    // Parallel two-finger drag.
    MultiPathSpec drag;
    drag.class_name = "drag-two";
    synth::PathSpec a;
    a.start_y = 15.0;
    a.LineTo(70.0, 15.0);
    synth::PathSpec b;
    b.start_y = -15.0;
    b.LineTo(70.0, -15.0);
    drag.fingers = {a, b};
    specs.push_back(std::move(drag));
  }
  {
    // Two-finger tap: both fingers dwell (empty specs emit dwell points).
    MultiPathSpec tap;
    tap.class_name = "tap-two";
    synth::PathSpec a;
    a.start_x = -20.0;
    synth::PathSpec b;
    b.start_x = 20.0;
    tap.fingers = {a, b};
    specs.push_back(std::move(tap));
  }
  return specs;
}

MultiPathGesture GenerateMultiPath(const MultiPathSpec& spec, const synth::NoiseModel& noise,
                                   synth::Rng& rng) {
  MultiPathGesture out;
  // One shared whole-gesture pose so the fingers stay geometrically related:
  // the per-finger generator only adds per-point jitter and tempo noise.
  synth::NoiseModel per_finger = noise;
  per_finger.rotation_sigma = 0.0;
  per_finger.scale_sigma = 0.0;
  per_finger.translation_sigma = 0.0;

  const double rotation = rng.Gaussian(noise.rotation_sigma);
  const double scale = rng.LogNormalFactor(noise.scale_sigma);
  const double dx = rng.Gaussian(noise.translation_sigma);
  const double dy = rng.Gaussian(noise.translation_sigma);
  const geom::AffineTransform pose =
      geom::AffineTransform::Translation(dx, dy)
          .Compose(geom::AffineTransform::Rotation(rotation).Compose(
              geom::AffineTransform::Scale(scale)));

  for (const synth::PathSpec& finger : spec.fingers) {
    synth::GestureSample sample = synth::Generate(finger, per_finger, rng);
    geom::Gesture path = pose.Apply(sample.gesture);
    const double stagger = rng.Uniform(0.0, spec.max_start_stagger_ms);
    out.AddPath(geom::RebaseTime(path, stagger));
  }
  return out;
}

MultiPathTrainingSet GenerateMultiPathSet(const std::vector<MultiPathSpec>& specs,
                                          const synth::NoiseModel& noise,
                                          std::size_t per_class, std::uint64_t seed) {
  MultiPathTrainingSet set;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    synth::Rng rng(seed * 2654435761u + s);
    for (std::size_t e = 0; e < per_class; ++e) {
      set.Add(specs[s].class_name, GenerateMultiPath(specs[s], noise, rng));
    }
  }
  return set;
}

}  // namespace grandma::multipath
