// The manipulation-phase math for two-finger interactions: the unique
// similarity transform (translate + rotate + uniform scale) taking one pair
// of finger positions to another. This is what lets the paper's Sensor
// Frame program do "simultaneous rotation, translation, and scaling of
// graphic objects" during the manipulation phase.
#ifndef GRANDMA_SRC_MULTIPATH_TWO_FINGER_TRANSFORM_H_
#define GRANDMA_SRC_MULTIPATH_TWO_FINGER_TRANSFORM_H_

#include <optional>

#include "geom/point.h"
#include "geom/transform.h"

namespace grandma::multipath {

// Returns the similarity transform mapping (a0 -> a1, b0 -> b1) exactly.
// std::nullopt when a0 == b0 (no defined scale/rotation).
std::optional<geom::AffineTransform> SimilarityFromFingerPairs(const geom::TimedPoint& a0,
                                                               const geom::TimedPoint& b0,
                                                               const geom::TimedPoint& a1,
                                                               const geom::TimedPoint& b1);

// Decomposed view of the same transform, for clients that want the raw
// parameters (GDP-style semantics often do).
struct TwoFingerDelta {
  double translate_x = 0.0;  // motion of the finger midpoint
  double translate_y = 0.0;
  double rotate_radians = 0.0;  // rotation of the inter-finger vector
  double scale = 1.0;           // ratio of inter-finger distances
};

std::optional<TwoFingerDelta> DeltaFromFingerPairs(const geom::TimedPoint& a0,
                                                   const geom::TimedPoint& b0,
                                                   const geom::TimedPoint& a1,
                                                   const geom::TimedPoint& b1);

}  // namespace grandma::multipath

#endif  // GRANDMA_SRC_MULTIPATH_TWO_FINGER_TRANSFORM_H_
