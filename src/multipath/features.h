// Feature extraction for multi-path gestures: per-path Rubine features for
// the first `max_paths` paths (zero-padded when fewer), plus global features
// capturing inter-path structure (the relationships single-path features
// cannot see: pinching, spreading, relative orbiting).
#ifndef GRANDMA_SRC_MULTIPATH_FEATURES_H_
#define GRANDMA_SRC_MULTIPATH_FEATURES_H_

#include <cstddef>

#include "linalg/vector.h"
#include "multipath/multipath_gesture.h"

namespace grandma::multipath {

// Global (inter-path) features, in order:
//   g0  number of paths
//   g1  bounding-box diagonal over all paths
//   g2  total duration
//   g3  mean pairwise distance between path start points
//   g4  mean pairwise distance between path end points
//   g5  log ratio g4/g3 (pinch < 0 < spread); 0 when degenerate
//   g6  mean signed rotation of the inter-path vectors start->end (radians);
//       captures two-finger rotation
//   g7  distance the centroid of start points moved to the centroid of end
//       points (two-finger translation)
inline constexpr std::size_t kNumGlobalFeatures = 8;

// Full dimension: kNumGlobalFeatures + max_paths * features::kNumFeatures.
std::size_t MultiPathFeatureDimension(std::size_t max_paths);

// Extracts the feature vector of `gesture` (internally sorted to the
// normalized path order). Paths beyond `max_paths` are ignored; missing
// paths contribute zero blocks.
linalg::Vector ExtractMultiPathFeatures(const MultiPathGesture& gesture,
                                        std::size_t max_paths);

}  // namespace grandma::multipath

#endif  // GRANDMA_SRC_MULTIPATH_FEATURES_H_
