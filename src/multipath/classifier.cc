#include "multipath/classifier.h"

namespace grandma::multipath {

classify::ClassId MultiPathTrainingSet::Add(std::string_view class_name,
                                            MultiPathGesture gesture) {
  const classify::ClassId id = registry_.Intern(class_name);
  if (examples_.size() <= id) {
    examples_.resize(id + 1);
  }
  examples_[id].push_back(std::move(gesture));
  return id;
}

std::size_t MultiPathTrainingSet::total_examples() const {
  std::size_t total = 0;
  for (const auto& per_class : examples_) {
    total += per_class.size();
  }
  return total;
}

double MultiPathClassifier::Train(const MultiPathTrainingSet& examples, std::size_t max_paths) {
  registry_ = examples.registry();
  max_paths_ = max_paths;
  classify::FeatureTrainingSet data(examples.num_classes());
  for (classify::ClassId c = 0; c < examples.num_classes(); ++c) {
    for (const MultiPathGesture& g : examples.ExamplesOf(c)) {
      data.Add(c, ExtractMultiPathFeatures(g, max_paths));
    }
  }
  return linear_.Train(data);
}

classify::Classification MultiPathClassifier::Classify(const MultiPathGesture& gesture) const {
  return linear_.Classify(ExtractMultiPathFeatures(gesture, max_paths_));
}

}  // namespace grandma::multipath
