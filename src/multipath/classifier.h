// Multi-path gesture classification: the same closed-form linear machinery
// as the single-stroke recognizer, over the concatenated multi-path feature
// vector. With this, the two-phase technique carries over to multi-finger
// input exactly as Section 6 describes.
#ifndef GRANDMA_SRC_MULTIPATH_CLASSIFIER_H_
#define GRANDMA_SRC_MULTIPATH_CLASSIFIER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "classify/linear_classifier.h"
#include "classify/training_set.h"
#include "multipath/features.h"
#include "multipath/multipath_gesture.h"

namespace grandma::multipath {

// Labeled multi-path examples grouped by class.
class MultiPathTrainingSet {
 public:
  classify::ClassId Add(std::string_view class_name, MultiPathGesture gesture);

  std::size_t num_classes() const { return registry_.size(); }
  std::size_t total_examples() const;
  const std::vector<MultiPathGesture>& ExamplesOf(classify::ClassId c) const {
    return examples_.at(c);
  }
  const std::string& ClassName(classify::ClassId c) const { return registry_.Name(c); }
  const classify::ClassRegistry& registry() const { return registry_; }

 private:
  classify::ClassRegistry registry_;
  std::vector<std::vector<MultiPathGesture>> examples_;
};

class MultiPathClassifier {
 public:
  MultiPathClassifier() = default;

  // Trains on `examples`; `max_paths` fixes the feature layout (gestures
  // with more paths use only the first max_paths in normalized order).
  // Returns the covariance-repair ridge (concatenated per-path blocks are
  // often rank-deficient with small training sets, so a ridge is expected).
  double Train(const MultiPathTrainingSet& examples, std::size_t max_paths = 2);

  bool trained() const { return linear_.trained(); }
  std::size_t num_classes() const { return linear_.num_classes(); }
  std::size_t max_paths() const { return max_paths_; }

  classify::Classification Classify(const MultiPathGesture& gesture) const;

  const std::string& ClassName(classify::ClassId c) const { return registry_.Name(c); }
  const classify::LinearClassifier& linear() const { return linear_; }

 private:
  classify::ClassRegistry registry_;
  classify::LinearClassifier linear_;
  std::size_t max_paths_ = 2;
};

}  // namespace grandma::multipath

#endif  // GRANDMA_SRC_MULTIPATH_CLASSIFIER_H_
