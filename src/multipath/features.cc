#include "multipath/features.h"

#include <cmath>

#include "features/extractor.h"
#include "features/feature_vector.h"

namespace grandma::multipath {

std::size_t MultiPathFeatureDimension(std::size_t max_paths) {
  return kNumGlobalFeatures + max_paths * features::kNumFeatures;
}

linalg::Vector ExtractMultiPathFeatures(const MultiPathGesture& gesture,
                                        std::size_t max_paths) {
  const MultiPathGesture sorted = gesture.Sorted();
  linalg::Vector out(MultiPathFeatureDimension(max_paths));

  // --- global features ---
  out[0] = static_cast<double>(sorted.num_paths());
  out[1] = sorted.Bounds().DiagonalLength();
  out[2] = sorted.Duration();

  const std::size_t used = std::min(sorted.num_paths(), max_paths);
  double start_dist_sum = 0.0;
  double end_dist_sum = 0.0;
  double rotation_sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < used; ++i) {
    for (std::size_t j = i + 1; j < used; ++j) {
      const geom::Gesture& a = sorted.path(i);
      const geom::Gesture& b = sorted.path(j);
      if (a.empty() || b.empty()) {
        continue;
      }
      ++pairs;
      start_dist_sum += geom::Distance(a.front(), b.front());
      end_dist_sum += geom::Distance(a.back(), b.back());
      // Rotation of the inter-path vector from start to end.
      const double a0 = std::atan2(b.front().y - a.front().y, b.front().x - a.front().x);
      const double a1 = std::atan2(b.back().y - a.back().y, b.back().x - a.back().x);
      double turn = a1 - a0;
      while (turn > M_PI) {
        turn -= 2.0 * M_PI;
      }
      while (turn < -M_PI) {
        turn += 2.0 * M_PI;
      }
      rotation_sum += turn;
    }
  }
  if (pairs > 0) {
    const double n = static_cast<double>(pairs);
    out[3] = start_dist_sum / n;
    out[4] = end_dist_sum / n;
    if (out[3] > 1e-9 && out[4] > 1e-9) {
      out[5] = std::log(out[4] / out[3]);
    }
    out[6] = rotation_sum / n;
  }
  // Centroid translation.
  if (used > 0) {
    double sx0 = 0.0, sy0 = 0.0, sx1 = 0.0, sy1 = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < used; ++i) {
      const geom::Gesture& p = sorted.path(i);
      if (p.empty()) {
        continue;
      }
      ++counted;
      sx0 += p.front().x;
      sy0 += p.front().y;
      sx1 += p.back().x;
      sy1 += p.back().y;
    }
    if (counted > 0) {
      const double n = static_cast<double>(counted);
      const double dx = sx1 / n - sx0 / n;
      const double dy = sy1 / n - sy0 / n;
      out[7] = std::sqrt(dx * dx + dy * dy);
    }
  }

  // --- per-path Rubine features ---
  for (std::size_t i = 0; i < used; ++i) {
    const linalg::Vector f = features::ExtractFeatures(sorted.path(i));
    for (std::size_t k = 0; k < features::kNumFeatures; ++k) {
      out[kNumGlobalFeatures + i * features::kNumFeatures + k] = f[k];
    }
  }
  return out;
}

}  // namespace grandma::multipath
