#include "multipath/multipath_gesture.h"

#include <algorithm>
#include <sstream>

namespace grandma::multipath {

double MultiPathGesture::StartTime() const {
  double t = 0.0;
  bool first = true;
  for (const geom::Gesture& p : paths_) {
    if (p.empty()) {
      continue;
    }
    if (first || p.front().t < t) {
      t = p.front().t;
      first = false;
    }
  }
  return t;
}

double MultiPathGesture::EndTime() const {
  double t = 0.0;
  bool first = true;
  for (const geom::Gesture& p : paths_) {
    if (p.empty()) {
      continue;
    }
    if (first || p.back().t > t) {
      t = p.back().t;
      first = false;
    }
  }
  return t;
}

geom::BoundingBox MultiPathGesture::Bounds() const {
  geom::BoundingBox box;
  bool first = true;
  for (const geom::Gesture& p : paths_) {
    if (p.empty()) {
      continue;
    }
    const geom::BoundingBox pb = p.Bounds();
    if (first) {
      box = pb;
      first = false;
    } else {
      box.min_x = std::min(box.min_x, pb.min_x);
      box.min_y = std::min(box.min_y, pb.min_y);
      box.max_x = std::max(box.max_x, pb.max_x);
      box.max_y = std::max(box.max_y, pb.max_y);
    }
  }
  return box;
}

MultiPathGesture MultiPathGesture::Sorted() const {
  std::vector<geom::Gesture> sorted = paths_;
  std::sort(sorted.begin(), sorted.end(), [](const geom::Gesture& a, const geom::Gesture& b) {
    if (a.empty() || b.empty()) {
      return b.empty() && !a.empty();
    }
    if (a.front().t != b.front().t) {
      return a.front().t < b.front().t;
    }
    if (a.front().x != b.front().x) {
      return a.front().x < b.front().x;
    }
    return a.front().y < b.front().y;
  });
  return MultiPathGesture(std::move(sorted));
}

std::string MultiPathGesture::ToString() const {
  std::ostringstream os;
  os << "MultiPathGesture{" << paths_.size() << " paths";
  for (const geom::Gesture& p : paths_) {
    os << ", " << p.size() << "pts";
  }
  os << "}";
  return os.str();
}

}  // namespace grandma::multipath
