#include "multipath/two_finger_transform.h"

#include <cmath>

namespace grandma::multipath {

std::optional<TwoFingerDelta> DeltaFromFingerPairs(const geom::TimedPoint& a0,
                                                   const geom::TimedPoint& b0,
                                                   const geom::TimedPoint& a1,
                                                   const geom::TimedPoint& b1) {
  const double v0x = b0.x - a0.x;
  const double v0y = b0.y - a0.y;
  const double v1x = b1.x - a1.x;
  const double v1y = b1.y - a1.y;
  const double len0 = std::hypot(v0x, v0y);
  const double len1 = std::hypot(v1x, v1y);
  if (len0 < 1e-9) {
    return std::nullopt;
  }
  TwoFingerDelta delta;
  delta.scale = len1 / len0;
  delta.rotate_radians = std::atan2(v0x * v1y - v0y * v1x, v0x * v1x + v0y * v1y);
  delta.translate_x = 0.5 * (a1.x + b1.x) - 0.5 * (a0.x + b0.x);
  delta.translate_y = 0.5 * (a1.y + b1.y) - 0.5 * (a0.y + b0.y);
  return delta;
}

std::optional<geom::AffineTransform> SimilarityFromFingerPairs(const geom::TimedPoint& a0,
                                                               const geom::TimedPoint& b0,
                                                               const geom::TimedPoint& a1,
                                                               const geom::TimedPoint& b1) {
  const auto delta = DeltaFromFingerPairs(a0, b0, a1, b1);
  if (!delta.has_value()) {
    return std::nullopt;
  }
  // Rotate and scale about the old midpoint, then translate the midpoint.
  const double mx = 0.5 * (a0.x + b0.x);
  const double my = 0.5 * (a0.y + b0.y);
  const geom::AffineTransform rotate_scale =
      geom::AffineTransform::Rotation(delta->rotate_radians, mx, my)
          .Compose(geom::AffineTransform::Scale(delta->scale, mx, my));
  return geom::AffineTransform::Translation(delta->translate_x, delta->translate_y)
      .Compose(rotate_scale);
}

}  // namespace grandma::multipath
