// Multi-path gestures (Section 6): gestures made of several concurrent
// strokes — multiple fingers on a Sensor Frame in the paper's follow-on
// drawing program. A MultiPathGesture is an ordered set of single-stroke
// paths; ordering is normalized (earliest start first, ties broken by start
// x) so that per-path features line up consistently across examples.
#ifndef GRANDMA_SRC_MULTIPATH_MULTIPATH_GESTURE_H_
#define GRANDMA_SRC_MULTIPATH_MULTIPATH_GESTURE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geom/gesture.h"

namespace grandma::multipath {

class MultiPathGesture {
 public:
  MultiPathGesture() = default;
  explicit MultiPathGesture(std::vector<geom::Gesture> paths) : paths_(std::move(paths)) {}

  std::size_t num_paths() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }

  const geom::Gesture& path(std::size_t i) const { return paths_.at(i); }
  const std::vector<geom::Gesture>& paths() const { return paths_; }

  void AddPath(geom::Gesture path) { paths_.push_back(std::move(path)); }

  // Earliest first-point time across paths; 0 when empty.
  double StartTime() const;
  // Latest last-point time across paths; 0 when empty.
  double EndTime() const;
  double Duration() const { return EndTime() - StartTime(); }

  // Bounding box over all paths.
  geom::BoundingBox Bounds() const;

  // A copy with paths ordered by (start time, start x, start y). Feature
  // extraction and classification require this normalized order.
  MultiPathGesture Sorted() const;

  std::string ToString() const;

 private:
  std::vector<geom::Gesture> paths_;
};

}  // namespace grandma::multipath

#endif  // GRANDMA_SRC_MULTIPATH_MULTIPATH_GESTURE_H_
