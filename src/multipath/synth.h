// Synthetic multi-finger input: two-finger gesture specs (pinch, spread,
// rotate, drag, tap) and a generator that plays each finger through the
// single-path generator with realistic start staggering.
#ifndef GRANDMA_SRC_MULTIPATH_SYNTH_H_
#define GRANDMA_SRC_MULTIPATH_SYNTH_H_

#include <string>
#include <vector>

#include "multipath/classifier.h"
#include "multipath/multipath_gesture.h"
#include "synth/generator.h"
#include "synth/path_spec.h"
#include "synth/rng.h"

namespace grandma::multipath {

// A multi-finger gesture class: one PathSpec per finger.
struct MultiPathSpec {
  std::string class_name;
  std::vector<synth::PathSpec> fingers;
  // Fingers rarely land simultaneously; each finger after the first starts
  // up to this many milliseconds later (uniformly random).
  double max_start_stagger_ms = 60.0;
};

// Two-finger gesture set for the Sensor Frame-style drawing program:
//   pinch          fingers converge
//   spread         fingers diverge
//   rotate-two     fingers orbit their midpoint (the paper's
//                  translate-rotate-scale workhorse)
//   drag-two       both fingers translate in parallel
//   tap-two        both fingers dwell
std::vector<MultiPathSpec> MakeTwoFingerSpecs();

// Generates one multi-path sample of `spec` under `noise`.
MultiPathGesture GenerateMultiPath(const MultiPathSpec& spec, const synth::NoiseModel& noise,
                                   synth::Rng& rng);

// Generates `per_class` examples of every spec into a training set.
MultiPathTrainingSet GenerateMultiPathSet(const std::vector<MultiPathSpec>& specs,
                                          const synth::NoiseModel& noise,
                                          std::size_t per_class, std::uint64_t seed);

}  // namespace grandma::multipath

#endif  // GRANDMA_SRC_MULTIPATH_SYNTH_H_
