#include "personalize/delta_snapshot.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "io/atomic_file.h"
#include "io/snapshot.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"
#include "linalg/vector.h"

namespace grandma::personalize {

namespace {

// Caps against allocation bombs from corrupt (but CRC-valid) payloads; far
// above anything the system trains (13 masked features, dozens of classes).
constexpr std::size_t kMaxClasses = std::size_t{1} << 14;
constexpr std::size_t kMaxDimension = std::size_t{1} << 10;
constexpr std::size_t kMaxExamplesPerClass = std::size_t{1} << 24;

bool WritePayload(const UserDelta& delta, std::ostream& out) {
  // max_digits10 makes the double round trip bit-exact (same idiom as
  // io/serialize.cc) — rehydrated accumulators must continue the Welford
  // recursion identically to the evicted ones.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "user " << delta.user() << '\n';
  out << "shape " << delta.num_classes() << ' ' << delta.dimension() << '\n';
  out << "adapted " << delta.adapted_classes() << '\n';
  for (classify::ClassId c = 0; c < delta.num_classes(); ++c) {
    const linalg::ScatterAccumulator* stats = delta.ClassStats(c);
    if (stats == nullptr || stats->count() == 0) {
      continue;
    }
    out << "class " << c << " count " << stats->count() << '\n';
    const linalg::Vector mean = stats->Mean();
    out << "mean";
    for (std::size_t i = 0; i < mean.size(); ++i) {
      out << ' ' << mean[i];
    }
    out << '\n';
    const linalg::Matrix& scatter = stats->Scatter();
    out << "scatter";
    for (std::size_t i = 0; i < scatter.rows(); ++i) {
      for (std::size_t j = 0; j < scatter.cols(); ++j) {
        out << ' ' << scatter(i, j);
      }
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<UserDelta> ParsePayload(std::istream& in) {
  std::string tag;
  UserId user = 0;
  std::size_t classes = 0;
  std::size_t dimension = 0;
  std::size_t adapted = 0;
  if (!(in >> tag >> user) || tag != "user") {
    return std::nullopt;
  }
  if (!(in >> tag >> classes >> dimension) || tag != "shape") {
    return std::nullopt;
  }
  if (classes == 0 || classes > kMaxClasses || dimension == 0 ||
      dimension > kMaxDimension) {
    return std::nullopt;
  }
  if (!(in >> tag >> adapted) || tag != "adapted" || adapted > classes) {
    return std::nullopt;
  }
  UserDelta delta(user, classes, dimension);
  std::size_t last_class = 0;
  for (std::size_t k = 0; k < adapted; ++k) {
    std::size_t c = 0;
    std::size_t count = 0;
    if (!(in >> tag >> c) || tag != "class" || c >= classes) {
      return std::nullopt;
    }
    // Classes are written in strictly increasing order; anything else is not
    // a writer-produced payload.
    if (k > 0 && c <= last_class) {
      return std::nullopt;
    }
    last_class = c;
    if (!(in >> tag >> count) || tag != "count" || count == 0 ||
        count > kMaxExamplesPerClass) {
      return std::nullopt;
    }
    if (!(in >> tag) || tag != "mean") {
      return std::nullopt;
    }
    linalg::Vector mean(dimension);
    for (std::size_t i = 0; i < dimension; ++i) {
      if (!(in >> mean[i])) {
        return std::nullopt;
      }
    }
    if (!(in >> tag) || tag != "scatter") {
      return std::nullopt;
    }
    linalg::Matrix scatter(dimension, dimension);
    for (std::size_t i = 0; i < dimension; ++i) {
      for (std::size_t j = 0; j < dimension; ++j) {
        if (!(in >> scatter(i, j))) {
          return std::nullopt;
        }
      }
    }
    delta.RestoreClassStats(
        c, linalg::ScatterAccumulator::FromMoments(std::move(mean), std::move(scatter), count));
  }
  // Trailing garbage after the declared sections is not writer output.
  if (in >> tag) {
    return std::nullopt;
  }
  return delta;
}

}  // namespace

bool SaveUserDeltaSnapshot(const UserDelta& delta, std::ostream& out) {
  if (delta.dimension() == 0 || delta.num_classes() == 0) {
    return false;
  }
  std::ostringstream payload;
  if (!WritePayload(delta, payload)) {
    return false;
  }
  return io::WriteSnapshotContainer(out, kUserDeltaKind, payload.str());
}

robust::StatusOr<UserDelta> LoadUserDeltaSnapshot(std::istream& in) {
  auto payload = io::ReadSnapshotContainer(in, kUserDeltaKind);
  if (!payload.ok()) {
    return payload.status();
  }
  std::istringstream body(*payload);
  auto delta = ParsePayload(body);
  if (!delta.has_value()) {
    return robust::Status::CorruptSnapshot(
        "snapshot: CRC-valid user-delta payload failed to parse");
  }
  return std::move(*delta);
}

robust::Status SaveUserDeltaSnapshotFile(const UserDelta& delta, const std::string& path) {
  return io::AtomicWriteFile(path,
                             [&](std::ostream& out) { return SaveUserDeltaSnapshot(delta, out); });
}

robust::StatusOr<UserDelta> LoadUserDeltaSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return robust::Status::FailedPrecondition("cannot open user-delta snapshot " + path);
  }
  return LoadUserDeltaSnapshot(in);
}

std::string UserDeltaFileName(UserId user) {
  return "user-" + std::to_string(user) + ".udelta";
}

}  // namespace grandma::personalize
