// Sharded LRU cache of per-user adapted models, bounded by entry and byte
// budgets, with eviction -> delta-snapshot spill -> rehydration round trips.
// This is what lets "millions of users" ride a fixed memory budget: only the
// hot users' adapted models stay materialized; everyone else's delta lives as
// a crash-safe `user-delta` snapshot (delta_snapshot.h) until they return.
//
// The cache is generic over the materialized model handle (`ModelPtr`,
// typically shared_ptr<const serve::RecognizerBundle>) so it can live below
// the serve layer; the owner supplies a Materializer that turns a UserDelta
// into a model against the current base. A monotonically increasing `epoch`
// (the base bundle's version) invalidates materialized models across base
// hot-swaps: an entry materialized against an older base is transparently
// re-materialized on its next touch, and its delta survives the swap.
//
// Thread-safety: every public method is safe from any thread. Each shard is
// one mutex over its map + LRU list. Spills and rehydrations run WHILE
// HOLDING the shard lock — deliberately: if an eviction released the lock
// before its spill completed, a concurrent Resolve of the same user could
// miss, read a stale (or absent) snapshot, and silently drop examples.
// Deltas are kilobytes, evictions are the rare path, and other shards stay
// unaffected, so the lock-held file write is the correct trade
// (docs/SERVING.md covers sizing).
#ifndef GRANDMA_SRC_PERSONALIZE_USER_MODEL_CACHE_H_
#define GRANDMA_SRC_PERSONALIZE_USER_MODEL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "personalize/delta_snapshot.h"
#include "personalize/user_delta.h"
#include "robust/status.h"

namespace grandma::personalize {

// Plain-value counters; the accounting invariants the churn bench gates on:
//   lookups == hits + misses
//   evictions == spills_ok + spills_failed + evictions_dropped
//   rehydrations_ok <= spills_ok (can only read back what was written)
//   resident_entries <= max_entries, resident_bytes stays near max_bytes
//   (one oversized entry per shard may exceed it; see Options::max_bytes)
struct CacheMetrics {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t adapts = 0;
  std::uint64_t materializations = 0;
  std::uint64_t materialize_failed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spills_ok = 0;
  std::uint64_t spills_failed = 0;
  // Evictions with no spill directory configured: the delta is dropped.
  std::uint64_t evictions_dropped = 0;
  std::uint64_t rehydrations_ok = 0;
  std::uint64_t rehydrations_failed = 0;
  // Deltas discarded because their shape no longer matches the base model.
  std::uint64_t shape_resets = 0;
  // Gauges.
  std::uint64_t resident_entries = 0;
  std::uint64_t resident_bytes = 0;
};

template <typename ModelPtr>
class UserModelCache {
 public:
  struct Options {
    std::size_t shards = 4;
    // Total budgets across all shards (split evenly, minimum one entry per
    // shard). Eviction never removes the entry being touched, so a shard
    // holds at least one entry regardless of byte pressure — max_bytes is a
    // high-water target, exceedable by at most one entry per shard.
    std::size_t max_entries = 1024;
    std::size_t max_bytes = std::size_t{8} << 20;
    // Added to every entry's delta footprint to account for the materialized
    // model (the owner estimates it once from the base model's shape).
    std::size_t model_bytes_estimate = 0;
    // Directory for eviction spills; "" disables spill/rehydrate (an evicted
    // user's personalization is simply lost).
    std::string spill_dir;
  };

  // Builds a model for `delta` against the owner's current base. Returning a
  // null ModelPtr means "cannot materialize" (e.g. shape mismatch mid-swap):
  // the caller falls back to the base model and the delta is kept.
  using Materializer = std::function<ModelPtr(const UserDelta&)>;

  explicit UserModelCache(Options options) : options_(std::move(options)) {
    if (options_.shards == 0) {
      throw std::invalid_argument("UserModelCache: shards must be > 0");
    }
    entries_per_shard_ =
        std::max<std::size_t>(1, options_.max_entries / options_.shards);
    bytes_per_shard_ = std::max<std::size_t>(1, options_.max_bytes / options_.shards);
    shards_ = std::vector<Shard>(options_.shards);
  }

  // The model strokes of `user` should pin, or null when the user has no
  // delta (resident or spilled) — the caller then uses the base model. A
  // damaged spill file is counted and treated as "no delta": broken
  // personalization must never fail the session.
  ModelPtr Resolve(UserId user, std::uint64_t epoch, const Materializer& materialize) {
    Shard& shard = ShardOf(user);
    std::lock_guard<std::mutex> lock(shard.mu);
    lookups_.fetch_add(1, std::memory_order_relaxed);
    auto it = shard.entries.find(user);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      Touch(shard, it->second);
      if (it->second.epoch != epoch) {
        Rematerialize(it->second, epoch, materialize);
      }
      return it->second.model;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    UserDelta delta;
    if (!TryRehydrate(user, delta)) {
      return ModelPtr{};
    }
    Entry& entry = Insert(shard, user, std::move(delta));
    Rematerialize(entry, epoch, materialize);
    ModelPtr model = entry.model;
    EvictOverBudget(shard, user);
    return model;
  }

  // Folds one example into the user's delta (creating it — or rehydrating it
  // from a spill — if needed) and re-materializes the user's model. `shape`
  // is the base model's (num_classes, dimension); a resident delta whose
  // shape no longer matches is discarded and restarted (counted as a
  // shape_reset).
  robust::Status Adapt(UserId user, classify::ClassId class_id, linalg::VecView masked,
                       std::pair<std::size_t, std::size_t> shape, std::uint64_t epoch,
                       const Materializer& materialize) {
    const auto [num_classes, dimension] = shape;
    if (class_id >= num_classes) {
      return robust::Status::InvalidArgument("UserModelCache::Adapt: class out of range");
    }
    if (masked.size() != dimension) {
      return robust::Status::InvalidArgument("UserModelCache::Adapt: dimension mismatch");
    }
    Shard& shard = ShardOf(user);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(user);
    if (it == shard.entries.end()) {
      UserDelta delta;
      if (!TryRehydrate(user, delta)) {
        delta = UserDelta(user, num_classes, dimension);
      }
      Insert(shard, user, std::move(delta));
      it = shard.entries.find(user);
    } else {
      Touch(shard, it->second);
    }
    Entry& entry = it->second;
    if (entry.delta.num_classes() != num_classes || entry.delta.dimension() != dimension) {
      shape_resets_.fetch_add(1, std::memory_order_relaxed);
      shard.bytes -= entry.bytes;
      entry.delta = UserDelta(user, num_classes, dimension);
      entry.bytes = EntryBytes(entry.delta);
      shard.bytes += entry.bytes;
    }
    shard.bytes -= entry.bytes;
    entry.delta.AddExample(class_id, masked);
    entry.bytes = EntryBytes(entry.delta);
    shard.bytes += entry.bytes;
    adapts_.fetch_add(1, std::memory_order_relaxed);
    Rematerialize(entry, epoch, materialize);
    EvictOverBudget(shard, user);
    return robust::Status::Ok();
  }

  CacheMetrics Metrics() const {
    CacheMetrics out;
    out.lookups = lookups_.load(std::memory_order_relaxed);
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.adapts = adapts_.load(std::memory_order_relaxed);
    out.materializations = materializations_.load(std::memory_order_relaxed);
    out.materialize_failed = materialize_failed_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.spills_ok = spills_ok_.load(std::memory_order_relaxed);
    out.spills_failed = spills_failed_.load(std::memory_order_relaxed);
    out.evictions_dropped = evictions_dropped_.load(std::memory_order_relaxed);
    out.rehydrations_ok = rehydrations_ok_.load(std::memory_order_relaxed);
    out.rehydrations_failed = rehydrations_failed_.load(std::memory_order_relaxed);
    out.shape_resets = shape_resets_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      out.resident_entries += shard.entries.size();
      out.resident_bytes += shard.bytes;
    }
    return out;
  }

  const Options& options() const { return options_; }
  std::size_t entries_per_shard() const { return entries_per_shard_; }
  std::size_t bytes_per_shard() const { return bytes_per_shard_; }

 private:
  struct Entry {
    UserDelta delta;
    ModelPtr model{};
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    std::list<UserId>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<UserId, Entry> entries;
    std::list<UserId> lru;  // front = most recent
    std::size_t bytes = 0;
  };

  // SplitMix64 — decorrelates sequential user ids across shards (same hash
  // family the serve layer uses for session sharding).
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  Shard& ShardOf(UserId user) { return shards_[Mix(user) % shards_.size()]; }

  std::size_t EntryBytes(const UserDelta& delta) const {
    return delta.ApproxBytes() + options_.model_bytes_estimate;
  }

  std::string SpillPath(UserId user) const {
    return options_.spill_dir + "/" + UserDeltaFileName(user);
  }

  // All four helpers below run under the owning shard's lock.

  void Touch(Shard& shard, Entry& entry) {
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
  }

  Entry& Insert(Shard& shard, UserId user, UserDelta delta) {
    shard.lru.push_front(user);
    Entry& entry = shard.entries[user];
    entry.delta = std::move(delta);
    entry.bytes = EntryBytes(entry.delta);
    entry.lru_pos = shard.lru.begin();
    shard.bytes += entry.bytes;
    return entry;
  }

  void Rematerialize(Entry& entry, std::uint64_t epoch, const Materializer& materialize) {
    entry.model = materialize(entry.delta);
    entry.epoch = epoch;
    if (!entry.model) {
      materialize_failed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      materializations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Loads `user`'s spilled delta into `out`; false when there is no spill
  // (or spilling is disabled). A present-but-damaged snapshot is a typed
  // rejection: counted, treated as absent, session falls back to the base.
  bool TryRehydrate(UserId user, UserDelta& out) {
    if (options_.spill_dir.empty()) {
      return false;
    }
    TRACE_SPAN("personalize.rehydrate");
    auto loaded = LoadUserDeltaSnapshotFile(SpillPath(user));
    if (loaded.ok()) {
      rehydrations_ok_.fetch_add(1, std::memory_order_relaxed);
      out = std::move(*loaded);
      return true;
    }
    if (loaded.status().code() != robust::StatusCode::kFailedPrecondition) {
      // The file exists but is truncated/corrupt/version-skewed.
      rehydrations_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  void EvictOverBudget(Shard& shard, UserId keep) {
    while ((shard.entries.size() > entries_per_shard_ || shard.bytes > bytes_per_shard_) &&
           shard.lru.size() > 1) {
      UserId victim = shard.lru.back();
      if (victim == keep) {
        // The just-touched user sits at the front by construction; this is
        // pure defensiveness.
        break;
      }
      auto it = shard.entries.find(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (options_.spill_dir.empty()) {
        evictions_dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        TRACE_SPAN("personalize.spill");
        if (SaveUserDeltaSnapshotFile(it->second.delta, SpillPath(victim)).ok()) {
          spills_ok_.fetch_add(1, std::memory_order_relaxed);
        } else {
          spills_failed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      shard.bytes -= it->second.bytes;
      shard.lru.pop_back();
      shard.entries.erase(it);
    }
  }

  Options options_;
  std::size_t entries_per_shard_ = 1;
  std::size_t bytes_per_shard_ = 1;
  std::vector<Shard> shards_;

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> adapts_{0};
  std::atomic<std::uint64_t> materializations_{0};
  std::atomic<std::uint64_t> materialize_failed_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> spills_ok_{0};
  std::atomic<std::uint64_t> spills_failed_{0};
  std::atomic<std::uint64_t> evictions_dropped_{0};
  std::atomic<std::uint64_t> rehydrations_ok_{0};
  std::atomic<std::uint64_t> rehydrations_failed_{0};
  std::atomic<std::uint64_t> shape_resets_{0};
};

}  // namespace grandma::personalize

#endif  // GRANDMA_SRC_PERSONALIZE_USER_MODEL_CACHE_H_
