#include "personalize/user_delta.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "classify/gesture_classifier.h"
#include "classify/linear_classifier.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/trace.h"

namespace grandma::personalize {

UserDelta::UserDelta(UserId user, std::size_t num_classes, std::size_t dimension)
    : user_(user), dimension_(dimension), per_class_(num_classes) {
  if (dimension == 0) {
    throw std::invalid_argument("UserDelta: dimension must be > 0");
  }
}

void UserDelta::AddExample(classify::ClassId c, linalg::VecView masked_features) {
  if (c >= per_class_.size()) {
    throw std::out_of_range("UserDelta::AddExample: class " + std::to_string(c) +
                            " out of range");
  }
  if (masked_features.size() != dimension_) {
    throw std::invalid_argument("UserDelta::AddExample: dimension mismatch");
  }
  if (per_class_[c] == nullptr) {
    per_class_[c] = std::make_unique<linalg::ScatterAccumulator>(dimension_);
  }
  // ScatterAccumulator speaks Vector; the copy is per-adapt (slow path), not
  // per-point, so it does not violate the hot-path allocation contract.
  linalg::Vector sample(std::vector<double>(masked_features.begin(), masked_features.end()));
  per_class_[c]->Add(sample);
  ++examples_;
}

std::size_t UserDelta::adapted_classes() const {
  std::size_t n = 0;
  for (const auto& slot : per_class_) {
    if (slot != nullptr && slot->count() > 0) {
      ++n;
    }
  }
  return n;
}

std::size_t UserDelta::ExampleCount(classify::ClassId c) const {
  if (c >= per_class_.size() || per_class_[c] == nullptr) {
    return 0;
  }
  return per_class_[c]->count();
}

const linalg::ScatterAccumulator* UserDelta::ClassStats(classify::ClassId c) const {
  if (c >= per_class_.size()) {
    return nullptr;
  }
  return per_class_[c].get();
}

void UserDelta::RestoreClassStats(classify::ClassId c, linalg::ScatterAccumulator stats) {
  if (c >= per_class_.size()) {
    throw std::out_of_range("UserDelta::RestoreClassStats: class out of range");
  }
  if (stats.dimension() != dimension_) {
    throw std::invalid_argument("UserDelta::RestoreClassStats: dimension mismatch");
  }
  per_class_[c] = std::make_unique<linalg::ScatterAccumulator>(std::move(stats));
  examples_ = 0;
  for (const auto& slot : per_class_) {
    if (slot != nullptr) {
      examples_ += slot->count();
    }
  }
}

std::size_t UserDelta::ApproxBytes() const {
  const std::size_t d = dimension_;
  // Per adapted class: mean (d doubles) + scatter (d*d doubles) + accumulator
  // and unique_ptr bookkeeping; plus the slot table and the object itself.
  std::size_t bytes = 96 + per_class_.size() * sizeof(void*);
  for (const auto& slot : per_class_) {
    if (slot != nullptr) {
      bytes += 96 + (d + d * d) * sizeof(double);
    }
  }
  return bytes;
}

eager::EagerRecognizer AdaptRecognizer(const eager::EagerRecognizer& base,
                                       const UserDelta& delta, const AdaptOptions& options) {
  TRACE_SPAN("personalize.materialize");
  if (!base.trained()) {
    throw std::invalid_argument("AdaptRecognizer: base recognizer is untrained");
  }
  if (!(options.base_strength > 0.0)) {
    throw std::invalid_argument("AdaptRecognizer: base_strength must be > 0");
  }
  const classify::LinearClassifier& lin = base.full().linear();
  if (delta.num_classes() != lin.num_classes() || delta.dimension() != lin.dimension()) {
    throw std::invalid_argument("AdaptRecognizer: delta shape does not match the base model");
  }

  std::vector<linalg::Vector> weights;
  std::vector<double> biases;
  std::vector<linalg::Vector> means;
  weights.reserve(lin.num_classes());
  biases.reserve(lin.num_classes());
  means.reserve(lin.num_classes());
  for (classify::ClassId c = 0; c < lin.num_classes(); ++c) {
    const linalg::ScatterAccumulator* stats = delta.ClassStats(c);
    if (stats == nullptr || stats->count() == 0) {
      // Untouched class: base parameters, bit-identical.
      weights.push_back(lin.weights(c));
      biases.push_back(lin.bias(c));
      means.push_back(lin.mean(c));
      continue;
    }
    const double k0 = options.base_strength;
    const double n = static_cast<double>(stats->count());
    linalg::Vector mu = (lin.mean(c) * k0 + stats->Mean() * n) / (k0 + n);
    linalg::Vector w = linalg::Multiply(lin.inverse_covariance(), mu);
    biases.push_back(-0.5 * linalg::Dot(w, mu));
    weights.push_back(std::move(w));
    means.push_back(std::move(mu));
  }
  auto linear = classify::LinearClassifier::FromParameters(
      std::move(weights), std::move(biases), std::move(means), lin.inverse_covariance());
  auto full = classify::GestureClassifier::FromParameters(base.full().registry(),
                                                          base.full().mask(), std::move(linear));
  return eager::EagerRecognizer::FromParameters(std::move(full), base.auc(),
                                                base.min_prefix_points());
}

}  // namespace grandma::personalize
