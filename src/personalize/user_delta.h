// Per-user personalization deltas (the paper's core promise at production
// scale): GRANDMA trains a per-user classifier from 10-15 examples per class;
// serving millions of users means millions of live adapted models layered
// over one shared base. A UserDelta is the copy-on-write layer for one user —
// per-class running mean/scatter statistics accumulated incrementally
// (Welford rank-1 updates via linalg::ScatterAccumulator, no full retrain)
// from that user's own examples.
//
// Adaptation model: the base LinearClassifier's per-class means are pulled
// toward the user's observed means under a MAP/shrinkage rule,
//
//   mu'_c = (k0 * mu_base_c + n_c * mean_user_c) / (k0 + n_c)
//
// where k0 (AdaptOptions::base_strength) is the pseudo-count of base
// examples and n_c the user's example count for class c. Weights are then
// recomputed in closed form under the SHARED base covariance
// (w'_c = Sigma^-1 mu'_c, w'_c0 = -1/2 mu'_c . w'_c): with 10-15 examples in
// a 13-dimensional feature space a per-user covariance is singular, so the
// per-user scatter is accumulated and persisted (diagnostics, future
// covariance shrinkage) but does not feed the adapted weights. Classes the
// user never demonstrated keep the base parameters bit-identically, so a
// fresh user classifies exactly like the base model.
//
// Thread-safety: none — a delta is one user's mutable state; UserModelCache
// serializes access per shard.
#ifndef GRANDMA_SRC_PERSONALIZE_USER_DELTA_H_
#define GRANDMA_SRC_PERSONALIZE_USER_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "classify/training_set.h"
#include "eager/eager_recognizer.h"
#include "linalg/stats.h"
#include "linalg/vec_view.h"

namespace grandma::personalize {

using UserId = std::uint64_t;

struct AdaptOptions {
  // Pseudo-count of base-model examples in the shrinkage mean. Larger values
  // trust the base longer; smaller values let few user examples dominate.
  // Must be > 0 (a zero would discard the base entirely on one example).
  double base_strength = 8.0;
};

// The accumulated corrections of one user. Move-only (per-class accumulators
// are allocated lazily — most users adapt a few classes, not all).
class UserDelta {
 public:
  UserDelta() = default;
  // Shape must match the base model: `num_classes` classes over `dimension`
  // masked features (the base classifier's dimension(), not kNumFeatures).
  UserDelta(UserId user, std::size_t num_classes, std::size_t dimension);

  UserDelta(UserDelta&&) = default;
  UserDelta& operator=(UserDelta&&) = default;
  UserDelta(const UserDelta&) = delete;
  UserDelta& operator=(const UserDelta&) = delete;

  UserId user() const { return user_; }
  std::size_t num_classes() const { return per_class_.size(); }
  std::size_t dimension() const { return dimension_; }

  // Folds one masked feature vector into class c's running statistics
  // (O(dimension^2) Welford update). Throws std::out_of_range on a bad class
  // and std::invalid_argument on a dimension mismatch.
  void AddExample(classify::ClassId c, linalg::VecView masked_features);

  // Total examples across classes / classes with at least one example.
  std::size_t examples() const { return examples_; }
  std::size_t adapted_classes() const;

  std::size_t ExampleCount(classify::ClassId c) const;
  // Class c's running statistics; nullptr when the user never demonstrated c.
  const linalg::ScatterAccumulator* ClassStats(classify::ClassId c) const;

  // Installs reconstructed statistics for class c (snapshot rehydration);
  // replaces any existing slot and recounts examples(). Shape-checked like
  // AddExample.
  void RestoreClassStats(classify::ClassId c, linalg::ScatterAccumulator stats);

  // Deterministic approximation of the resident footprint (mean + scatter +
  // bookkeeping per adapted class), used for the cache's byte budget.
  std::size_t ApproxBytes() const;

 private:
  UserId user_ = 0;
  std::size_t dimension_ = 0;
  std::size_t examples_ = 0;
  std::vector<std::unique_ptr<linalg::ScatterAccumulator>> per_class_;
};

// Materializes the user's adapted recognizer from the base: adapted classes
// get shrunk means and recomputed weights/biases under the base covariance;
// everything else (mask, registry, AUC, unadapted classes) is copied
// bit-identically, so the result rides the same zero-allocation classify
// kernels as the base. Throws std::invalid_argument when the delta's shape
// does not match the base or base_strength <= 0.
eager::EagerRecognizer AdaptRecognizer(const eager::EagerRecognizer& base,
                                       const UserDelta& delta,
                                       const AdaptOptions& options = {});

}  // namespace grandma::personalize

#endif  // GRANDMA_SRC_PERSONALIZE_USER_DELTA_H_
