// Crash-safe persistence of UserDelta — the `user-delta` kind of the
// `grandma-snapshot v1` container (io/snapshot.h): same magic/version
// header, CRC32 over the payload, typed rejection (kTruncated /
// kVersionMismatch / kCorruptSnapshot), and atomic file writes through
// io::AtomicWriteFile, so the crash-point harness's guarantees (a kill at
// any byte leaves the previous snapshot intact) extend to user deltas.
//
// The payload is the plain-text moment dump of every adapted class — user
// id, shape, then per class its example count, mean vector, and scatter
// matrix — written at max_digits10 so rehydration reconstructs the
// accumulators bit-exactly and further Welford updates continue as if the
// delta had never left memory.
#ifndef GRANDMA_SRC_PERSONALIZE_DELTA_SNAPSHOT_H_
#define GRANDMA_SRC_PERSONALIZE_DELTA_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "personalize/user_delta.h"
#include "robust/status.h"

namespace grandma::personalize {

inline constexpr const char* kUserDeltaKind = "user-delta";

// Returns false when the delta is empty-shaped (dimension 0) or the stream
// failed.
bool SaveUserDeltaSnapshot(const UserDelta& delta, std::ostream& out);
robust::StatusOr<UserDelta> LoadUserDeltaSnapshot(std::istream& in);

robust::Status SaveUserDeltaSnapshotFile(const UserDelta& delta, const std::string& path);
robust::StatusOr<UserDelta> LoadUserDeltaSnapshotFile(const std::string& path);

// Canonical spill file name for a user inside a delta directory:
// "user-<id>.udelta".
std::string UserDeltaFileName(UserId user);

}  // namespace grandma::personalize

#endif  // GRANDMA_SRC_PERSONALIZE_DELTA_SNAPSHOT_H_
