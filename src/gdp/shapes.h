// GDP's drawing models: lines, rectangles, ellipses, text, dots, and
// composite groups (Section 2). Shapes are the Model side of GRANDMA's MVC;
// GDP's gesture semantics create and manipulate them.
#ifndef GRANDMA_SRC_GDP_SHAPES_H_
#define GRANDMA_SRC_GDP_SHAPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "geom/gesture.h"

namespace grandma::gdp {

class Canvas;

using ShapeId = std::uint64_t;

// Base drawing object. Shapes support the manipulations GDP's gestures need:
// translation (move/copy), rotate-scale about a point, and corner dragging.
class Shape {
 public:
  virtual ~Shape() = default;

  ShapeId id() const { return id_; }
  void set_id(ShapeId id) { id_ = id; }

  virtual std::string_view Kind() const = 0;
  virtual geom::BoundingBox Bounds() const = 0;
  // True when (x, y) is within `tolerance` of the shape's ink.
  virtual bool HitTest(double x, double y, double tolerance) const = 0;
  virtual void Render(Canvas& canvas) const = 0;
  virtual std::unique_ptr<Shape> Clone() const = 0;
  virtual void Translate(double dx, double dy) = 0;
  // Rotates by `radians` and scales by `factor` about (cx, cy).
  virtual void RotateScaleAbout(double cx, double cy, double radians, double factor) = 0;

  // Grab points for the `edit` gesture's control points.
  virtual std::vector<geom::TimedPoint> ControlPoints() const;

  std::string Describe() const;

 protected:
  Shape() = default;
  Shape(const Shape&) = default;

 private:
  ShapeId id_ = 0;
};

class LineShape final : public Shape {
 public:
  LineShape(double x0, double y0, double x1, double y1, double thickness = 1.0)
      : x0_(x0), y0_(y0), x1_(x1), y1_(y1), thickness_(thickness) {}

  std::string_view Kind() const override { return "line"; }
  geom::BoundingBox Bounds() const override;
  bool HitTest(double x, double y, double tolerance) const override;
  void Render(Canvas& canvas) const override;
  std::unique_ptr<Shape> Clone() const override { return std::make_unique<LineShape>(*this); }
  void Translate(double dx, double dy) override;
  void RotateScaleAbout(double cx, double cy, double radians, double factor) override;
  std::vector<geom::TimedPoint> ControlPoints() const override;

  void SetEndpoint(int which, double x, double y);
  double x0() const { return x0_; }
  double y0() const { return y0_; }
  double x1() const { return x1_; }
  double y1() const { return y1_; }
  double thickness() const { return thickness_; }
  void set_thickness(double t) { thickness_ = t; }

 private:
  double x0_, y0_, x1_, y1_;
  double thickness_;
};

// Rectangle stored as center/size/angle so rotate-scale is exact; created
// and manipulated through its two defining corners, matching GDP's
// rubberbanding semantics (corner 1 at gesture start, corner 2 dragged).
class RectShape final : public Shape {
 public:
  RectShape(double x0, double y0, double x1, double y1, double angle = 0.0);

  std::string_view Kind() const override { return "rectangle"; }
  geom::BoundingBox Bounds() const override;
  bool HitTest(double x, double y, double tolerance) const override;
  void Render(Canvas& canvas) const override;
  std::unique_ptr<Shape> Clone() const override { return std::make_unique<RectShape>(*this); }
  void Translate(double dx, double dy) override;
  void RotateScaleAbout(double cx, double cy, double radians, double factor) override;
  std::vector<geom::TimedPoint> ControlPoints() const override;

  // Re-anchors the rectangle by its two defining corners (axis-aligned in
  // the rectangle's own rotated frame).
  void SetCorners(double x0, double y0, double x1, double y1);
  // The four corners in world space, in order.
  std::vector<geom::TimedPoint> Corners() const;

  double cx() const { return cx_; }
  double cy() const { return cy_; }
  double width() const { return w_; }
  double height() const { return h_; }
  double angle() const { return angle_; }

 private:
  double cx_, cy_, w_, h_, angle_;
};

class EllipseShape final : public Shape {
 public:
  EllipseShape(double cx, double cy, double rx, double ry, double angle = 0.0)
      : cx_(cx), cy_(cy), rx_(rx), ry_(ry), angle_(angle) {}

  std::string_view Kind() const override { return "ellipse"; }
  geom::BoundingBox Bounds() const override;
  bool HitTest(double x, double y, double tolerance) const override;
  void Render(Canvas& canvas) const override;
  std::unique_ptr<Shape> Clone() const override { return std::make_unique<EllipseShape>(*this); }
  void Translate(double dx, double dy) override;
  void RotateScaleAbout(double cx, double cy, double radians, double factor) override;
  std::vector<geom::TimedPoint> ControlPoints() const override;

  void SetRadii(double rx, double ry) {
    rx_ = rx;
    ry_ = ry;
  }
  double cx() const { return cx_; }
  double cy() const { return cy_; }
  double rx() const { return rx_; }
  double ry() const { return ry_; }
  double angle() const { return angle_; }

 private:
  double cx_, cy_, rx_, ry_, angle_;
};

class TextShape final : public Shape {
 public:
  TextShape(double x, double y, std::string text) : x_(x), y_(y), text_(std::move(text)) {}

  std::string_view Kind() const override { return "text"; }
  geom::BoundingBox Bounds() const override;
  bool HitTest(double x, double y, double tolerance) const override;
  void Render(Canvas& canvas) const override;
  std::unique_ptr<Shape> Clone() const override { return std::make_unique<TextShape>(*this); }
  void Translate(double dx, double dy) override;
  void RotateScaleAbout(double cx, double cy, double radians, double factor) override;

  void MoveTo(double x, double y) {
    x_ = x;
    y_ = y;
  }
  double x() const { return x_; }
  double y() const { return y_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

 private:
  double x_, y_;
  std::string text_;
};

class DotShape final : public Shape {
 public:
  DotShape(double x, double y) : x_(x), y_(y) {}

  std::string_view Kind() const override { return "dot"; }
  geom::BoundingBox Bounds() const override;
  bool HitTest(double x, double y, double tolerance) const override;
  void Render(Canvas& canvas) const override;
  std::unique_ptr<Shape> Clone() const override { return std::make_unique<DotShape>(*this); }
  void Translate(double dx, double dy) override;
  void RotateScaleAbout(double cx, double cy, double radians, double factor) override;

  double x() const { return x_; }
  double y() const { return y_; }

 private:
  double x_, y_;
};

// A composite of owned member shapes (GDP's `group` gesture).
class GroupShape final : public Shape {
 public:
  GroupShape() = default;
  GroupShape(const GroupShape& other);

  std::string_view Kind() const override { return "group"; }
  geom::BoundingBox Bounds() const override;
  bool HitTest(double x, double y, double tolerance) const override;
  void Render(Canvas& canvas) const override;
  std::unique_ptr<Shape> Clone() const override { return std::make_unique<GroupShape>(*this); }
  void Translate(double dx, double dy) override;
  void RotateScaleAbout(double cx, double cy, double radians, double factor) override;

  void AddMember(std::unique_ptr<Shape> shape) { members_.push_back(std::move(shape)); }
  const std::vector<std::unique_ptr<Shape>>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<Shape>> members_;
};

}  // namespace grandma::gdp

#endif  // GRANDMA_SRC_GDP_SHAPES_H_
