#include "gdp/document.h"

#include <algorithm>

namespace grandma::gdp {

Shape* Document::Add(std::unique_ptr<Shape> shape) {
  shape->set_id(next_id_++);
  shapes_.push_back(std::move(shape));
  Shape* added = shapes_.back().get();
  NotifyChanged({toolkit::ModelChange::Kind::kAdded, added->Describe()});
  return added;
}

std::unique_ptr<Shape> Document::Remove(Shape* shape) {
  auto it = std::find_if(shapes_.begin(), shapes_.end(),
                         [shape](const auto& s) { return s.get() == shape; });
  if (it == shapes_.end()) {
    return nullptr;
  }
  std::unique_ptr<Shape> out = std::move(*it);
  shapes_.erase(it);
  NotifyChanged({toolkit::ModelChange::Kind::kRemoved, out->Describe()});
  return out;
}

Shape* Document::TopmostAt(double x, double y, double tolerance) const {
  for (auto it = shapes_.rbegin(); it != shapes_.rend(); ++it) {
    if ((*it)->HitTest(x, y, tolerance)) {
      return it->get();
    }
  }
  return nullptr;
}

std::vector<Shape*> Document::EnclosedBy(const geom::Gesture& stroke) const {
  std::vector<Shape*> out;
  for (const auto& s : shapes_) {
    const geom::BoundingBox b = s->Bounds();
    const double cx = 0.5 * (b.min_x + b.max_x);
    const double cy = 0.5 * (b.min_y + b.max_y);
    if (geom::EnclosesPoint(stroke, cx, cy)) {
      out.push_back(s.get());
    }
  }
  return out;
}

std::vector<Shape*> Document::AllShapes() const {
  std::vector<Shape*> out;
  out.reserve(shapes_.size());
  for (const auto& s : shapes_) {
    out.push_back(s.get());
  }
  return out;
}

bool Document::Contains(const Shape* shape) const {
  return std::any_of(shapes_.begin(), shapes_.end(),
                     [shape](const auto& s) { return s.get() == shape; });
}

Shape* Document::FindById(ShapeId id) const {
  for (const auto& s : shapes_) {
    if (s->id() == id) {
      return s.get();
    }
  }
  return nullptr;
}

void Document::Render(Canvas& canvas) const {
  for (const auto& s : shapes_) {
    s->Render(canvas);
  }
}

}  // namespace grandma::gdp
