#include "gdp/app.h"

#include <cmath>
#include <numbers>

#include "geom/transform.h"
#include "synth/generator.h"
#include "toolkit/drag_handler.h"

namespace grandma::gdp {

namespace {

using toolkit::GestureSemantics;
using toolkit::SemanticContext;

// Manipulation state passed from recog to manip through the context's recog
// slot (the paper's `recog` variable).
struct TrackState {
  Shape* shape = nullptr;
  double last_x = 0.0;
  double last_y = 0.0;
};

struct RotateScaleState {
  Shape* shape = nullptr;
  double cx = 0.0;
  double cy = 0.0;
  double last_angle = 0.0;
  double last_dist = 0.0;
};

struct GroupState {
  GroupShape* group = nullptr;
};

}  // namespace

// Collects raw strokes as training examples while the app is in training
// mode. Added at the *instance* level of the window view, so it is queried
// before the class-level gesture handler and can take the stroke first.
class GdpApp::TrainingStrokeHandler final : public toolkit::EventHandler {
 public:
  explicit TrainingStrokeHandler(GdpApp* app)
      : toolkit::EventHandler("gdp-training"), app_(app) {}

  bool Wants(const toolkit::InputEvent& event, toolkit::View&) const override {
    return app_->training() && event.type == toolkit::EventType::kMouseDown;
  }

  toolkit::HandlerResponse OnEvent(const toolkit::InputEvent& event,
                                   toolkit::View&) override {
    switch (event.type) {
      case toolkit::EventType::kMouseDown:
        stroke_.Clear();
        filter_.Reset();
        filter_.Accept({event.x, event.y, event.time_ms});
        stroke_.AppendPoint({event.x, event.y, event.time_ms});
        return toolkit::HandlerResponse::kConsumedAndGrab;
      case toolkit::EventType::kMouseMove:
        if (filter_.Accept({event.x, event.y, event.time_ms})) {
          stroke_.AppendPoint({event.x, event.y, event.time_ms});
        }
        return toolkit::HandlerResponse::kConsumedAndGrab;
      case toolkit::EventType::kTimer:
        return toolkit::HandlerResponse::kConsumedAndGrab;
      case toolkit::EventType::kMouseUp:
        app_->RecordTrainingStroke(stroke_);
        stroke_.Clear();
        return toolkit::HandlerResponse::kConsumed;
    }
    return toolkit::HandlerResponse::kIgnored;
  }

 private:
  GdpApp* app_;
  geom::Gesture stroke_;
  geom::MinDistanceFilter filter_{3.0};
};

GdpApp::GdpApp() : GdpApp(Options{}) {}

GdpApp::GdpApp(Options options) : options_(options) {
  // Train the recognizer from the synthetic GDP gesture set — the stand-in
  // for the author's example-collection sessions.
  const auto specs = synth::MakeGdpSpecs(options_.group_orientation);
  synth::NoiseModel noise;
  const auto batches =
      synth::GenerateSet(specs, noise, options_.train_per_class, options_.training_seed);
  training_set_ = synth::ToTrainingSet(batches);
  classify::GestureTrainingSet& training = training_set_;
  if (options_.map_gestural_attributes) {
    // "For this to work, the rectangle gesture was trained in multiple
    // orientations" (Section 2): add rotated copies of every rectangle
    // training example so orientation stops being a class cue.
    for (const auto& batch : batches) {
      if (batch.class_name != "rectangle") {
        continue;
      }
      for (const synth::GestureSample& sample : batch.samples) {
        for (double degrees : {-60.0, -30.0, 30.0, 60.0, 90.0}) {
          const auto& g = sample.gesture;
          const geom::AffineTransform rotate = geom::AffineTransform::Rotation(
              degrees * std::numbers::pi / 180.0, g.front().x, g.front().y);
          training.Add("rectangle", rotate.Apply(g));
        }
      }
    }
  }
  recognizer_.Train(training);

  // One window view spanning the world; the gesture handler hangs off its
  // *class*, shared by every GdpWindow instance.
  root_ = std::make_unique<toolkit::View>(&window_class_, "gdp-root");
  root_->SetBounds(geom::BoundingBox{0.0, 0.0, options_.world_width, options_.world_height});
  window_ = root_.get();

  dispatcher_ = std::make_unique<toolkit::Dispatcher>(root_.get(), &clock_);
  driver_ = std::make_unique<toolkit::PlaybackDriver>(dispatcher_.get());

  toolkit::GestureHandler::Config config;
  config.dwell_timeout_ms = options_.dwell_timeout_ms;
  config.enable_eager = options_.eager;
  config.use_rejection = options_.use_rejection;
  gesture_handler_ =
      std::make_shared<toolkit::GestureHandler>("gdp-gestures", &recognizer_, config);
  window_class_.AddHandler(gesture_handler_);

  gesture_handler_->on_recognized = [this](const std::string& class_name,
                                           const classify::Classification& result,
                                           toolkit::GestureHandler::Transition how) {
    const char* how_name = how == toolkit::GestureHandler::Transition::kEager ? "eager"
                           : how == toolkit::GestureHandler::Transition::kTimeout
                               ? "timeout"
                               : "mouse-up";
    log_.push_back("recognized " + class_name + " (" + how_name +
                   ", p=" + std::to_string(result.probability) + ")");
  };
  gesture_handler_->on_rejected = [this](const classify::Classification&) {
    log_.push_back("rejected gesture");
  };

  // Instance-level handler: takes strokes while in training mode.
  window_->AddHandler(std::make_shared<TrainingStrokeHandler>(this));

  InstallSemantics();
}

void GdpApp::BeginTraining(const std::string& class_name) {
  training_ = true;
  training_class_ = class_name;
  recorded_ = 0;
  log_.push_back("training '" + class_name + "'");
}

void GdpApp::RecordTrainingStroke(geom::Gesture stroke) {
  if (!training_ || stroke.size() < 3) {
    return;
  }
  training_set_.Add(training_class_, std::move(stroke));
  ++recorded_;
  log_.push_back("recorded example " + std::to_string(recorded_) + " of '" +
                 training_class_ + "'");
}

bool GdpApp::EndTraining() {
  if (!training_) {
    return false;
  }
  if (!training_set_.registry().Contains(training_class_) ||
      training_set_.ExamplesOf(training_set_.registry().Require(training_class_)).size() < 3) {
    log_.push_back("not enough examples of '" + training_class_ + "' to retrain");
    return false;
  }
  recognizer_.Train(training_set_);
  training_ = false;
  log_.push_back("retrained: " + std::to_string(recognizer_.num_classes()) + " classes");
  return true;
}

void GdpApp::CancelTraining() {
  training_ = false;
  log_.push_back("training cancelled");
}

void GdpApp::InstallSemantics() {
  toolkit::SemanticsTable& table = gesture_handler_->semantics();

  // rectangle: recog = [[view createRect] setEndpoint:0 ...]; manip drags the
  // opposite corner (interactive rubberbanding). In the modified GDP, the
  // gesture's initial angle sets the rectangle's orientation (the canonical
  // rectangle gesture starts straight down, so orientation = initial angle
  // relative to that).
  table.Set("rectangle", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        const double angle = options_.map_gestural_attributes
                                 ? ctx.initialAngle() + std::numbers::pi / 2.0
                                 : 0.0;
        auto rect = std::make_unique<RectShape>(ctx.startX(), ctx.startY(), ctx.currentX(),
                                                ctx.currentY(), angle);
        return std::any(static_cast<Shape*>(document_.Add(std::move(rect))));
      },
      .manip = [](SemanticContext& ctx) {
        auto* rect = static_cast<RectShape*>(ctx.RecogAs<Shape*>());
        rect->SetCorners(ctx.startX(), ctx.startY(), ctx.currentX(), ctx.currentY());
      },
      .done = nullptr});

  // line: endpoint 1 at the start, endpoint 2 rubberbands. In the modified
  // GDP, the length of the gesture determines the line's thickness.
  table.Set("line", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        const double thickness =
            options_.map_gestural_attributes ? std::max(1.0, ctx.length() / 25.0) : 1.0;
        auto line = std::make_unique<LineShape>(ctx.startX(), ctx.startY(), ctx.currentX(),
                                                ctx.currentY(), thickness);
        return std::any(static_cast<Shape*>(document_.Add(std::move(line))));
      },
      .manip = [](SemanticContext& ctx) {
        auto* line = static_cast<LineShape*>(ctx.RecogAs<Shape*>());
        line->SetEndpoint(1, ctx.currentX(), ctx.currentY());
      },
      .done = nullptr});

  // ellipse: center at the start; manipulation sets size and eccentricity.
  table.Set("ellipse", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        const double rx = std::max(std::abs(ctx.currentX() - ctx.startX()), 1.0);
        const double ry = std::max(std::abs(ctx.currentY() - ctx.startY()), 1.0);
        auto ellipse = std::make_unique<EllipseShape>(ctx.startX(), ctx.startY(), rx, ry);
        return std::any(static_cast<Shape*>(document_.Add(std::move(ellipse))));
      },
      .manip = [](SemanticContext& ctx) {
        auto* ellipse = static_cast<EllipseShape*>(ctx.RecogAs<Shape*>());
        ellipse->SetRadii(std::max(std::abs(ctx.currentX() - ellipse->cx()), 1.0),
                          std::max(std::abs(ctx.currentY() - ellipse->cy()), 1.0));
      },
      .done = nullptr});

  // group: encloses objects at recognition; touching objects during
  // manipulation adds them to the group.
  table.Set("group", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        auto group = std::make_unique<GroupShape>();
        GroupShape* group_raw = group.get();
        const std::vector<Shape*> enclosed = document_.EnclosedBy(ctx.gesture());
        for (Shape* s : enclosed) {
          if (auto owned = document_.Remove(s)) {
            group_raw->AddMember(std::move(owned));
          }
        }
        document_.Add(std::move(group));
        return std::any(GroupState{group_raw});
      },
      .manip = [this](SemanticContext& ctx) {
        auto& state = std::any_cast<GroupState&>(ctx.recog_slot());
        Shape* touched = document_.TopmostAt(ctx.currentX(), ctx.currentY());
        if (touched != nullptr && touched != state.group) {
          if (auto owned = document_.Remove(touched)) {
            state.group->AddMember(std::move(owned));
          }
        }
      },
      .done = nullptr});

  // copy: replicates the object at the gesture start; the copy's location is
  // determined by manipulation (Figure 3) — it is positioned at the mouse.
  table.Set("copy", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        Shape* original = document_.TopmostAt(ctx.startX(), ctx.startY());
        if (original == nullptr) {
          return std::any(TrackState{});
        }
        Shape* copy = document_.Add(original->Clone());
        return std::any(TrackState{copy});
      },
      .manip = [](SemanticContext& ctx) {
        auto& state = std::any_cast<TrackState&>(ctx.recog_slot());
        if (state.shape == nullptr) {
          return;
        }
        const geom::BoundingBox b = state.shape->Bounds();
        state.shape->Translate(ctx.currentX() - 0.5 * (b.min_x + b.max_x),
                               ctx.currentY() - 0.5 * (b.min_y + b.max_y));
      },
      .done = nullptr});

  // move: like copy but repositions the original.
  table.Set("move", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        return std::any(TrackState{document_.TopmostAt(ctx.startX(), ctx.startY())});
      },
      .manip = [](SemanticContext& ctx) {
        auto& state = std::any_cast<TrackState&>(ctx.recog_slot());
        if (state.shape == nullptr) {
          return;
        }
        const geom::BoundingBox b = state.shape->Bounds();
        state.shape->Translate(ctx.currentX() - 0.5 * (b.min_x + b.max_x),
                               ctx.currentY() - 0.5 * (b.min_y + b.max_y));
      },
      .done = nullptr});

  // rotate-scale: the initial point is the center of rotation; the point at
  // recognition time becomes the drag point that interactively rotates and
  // scales the object.
  table.Set("rotate-scale", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        RotateScaleState state;
        state.shape = document_.TopmostAt(ctx.startX(), ctx.startY());
        state.cx = ctx.startX();
        state.cy = ctx.startY();
        state.last_angle = std::atan2(ctx.currentY() - state.cy, ctx.currentX() - state.cx);
        state.last_dist = std::hypot(ctx.currentX() - state.cx, ctx.currentY() - state.cy);
        return std::any(state);
      },
      .manip = [](SemanticContext& ctx) {
        auto& state = std::any_cast<RotateScaleState&>(ctx.recog_slot());
        if (state.shape == nullptr) {
          return;
        }
        const double angle = std::atan2(ctx.currentY() - state.cy, ctx.currentX() - state.cx);
        const double dist = std::hypot(ctx.currentX() - state.cx, ctx.currentY() - state.cy);
        if (state.last_dist > 1e-6 && dist > 1e-6) {
          state.shape->RotateScaleAbout(state.cx, state.cy, angle - state.last_angle,
                                        dist / state.last_dist);
        }
        state.last_angle = angle;
        state.last_dist = dist;
      },
      .done = nullptr});

  // delete: deletes the object at the gesture start; any additional object
  // touched during manipulation is deleted too.
  table.Set("delete", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        if (Shape* s = document_.TopmostAt(ctx.startX(), ctx.startY())) {
          if (edited_shape_ == s) {
            ClearControlPoints();
          }
          document_.Remove(s);
        }
        return std::any();
      },
      .manip = [this](SemanticContext& ctx) {
        if (Shape* s = document_.TopmostAt(ctx.currentX(), ctx.currentY())) {
          if (edited_shape_ == s) {
            ClearControlPoints();
          }
          document_.Remove(s);
        }
      },
      .done = nullptr});

  // edit ("27"-shaped): brings up control points on the object; the points
  // themselves respond to dragging, not gestures.
  table.Set("edit", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        ShowControlPoints(document_.TopmostAt(ctx.startX(), ctx.startY()));
        return std::any();
      },
      .manip = nullptr,
      .done = nullptr});

  // text: places a text cursor that snaps to a 10-unit grid while dragged —
  // the snapping feedback the paper argues for.
  table.Set("text", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        auto text =
            std::make_unique<TextShape>(Snap(ctx.currentX()), Snap(ctx.currentY()), "text");
        return std::any(static_cast<Shape*>(document_.Add(std::move(text))));
      },
      .manip = [](SemanticContext& ctx) {
        auto* text = static_cast<TextShape*>(ctx.RecogAs<Shape*>());
        text->MoveTo(Snap(ctx.currentX()), Snap(ctx.currentY()));
      },
      .done = nullptr});

  // dot: a point marker at the gesture start.
  table.Set("dot", GestureSemantics{
      .recog = [this](SemanticContext& ctx) -> std::any {
        document_.Add(std::make_unique<DotShape>(ctx.startX(), ctx.startY()));
        return std::any();
      },
      .manip = nullptr,
      .done = nullptr});
}

void GdpApp::ShowControlPoints(Shape* shape) {
  ClearControlPoints();
  edited_shape_ = shape;
  if (shape == nullptr) {
    return;
  }
  const auto points = shape->ControlPoints();
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto view = std::make_unique<toolkit::View>(&control_point_class_,
                                                "cp" + std::to_string(i));
    constexpr double kHalf = 4.0;
    view->SetBounds(geom::BoundingBox{points[i].x - kHalf, points[i].y - kHalf,
                                      points[i].x + kHalf, points[i].y + kHalf});

    // Dragging a control point scales the shape about its bbox center.
    toolkit::DragHandler::Callbacks callbacks;
    callbacks.on_drag = [this](toolkit::View& v, const toolkit::InputEvent& e) {
      if (edited_shape_ == nullptr) {
        return;
      }
      const geom::BoundingBox b = edited_shape_->Bounds();
      const double cx = 0.5 * (b.min_x + b.max_x);
      const double cy = 0.5 * (b.min_y + b.max_y);
      const geom::BoundingBox vb = v.bounds();
      const double old_x = 0.5 * (vb.min_x + vb.max_x);
      const double old_y = 0.5 * (vb.min_y + vb.max_y);
      const double old_dist = std::hypot(old_x - cx, old_y - cy);
      const double new_dist = std::hypot(e.x - cx, e.y - cy);
      if (old_dist > 1e-6 && new_dist > 1e-6) {
        edited_shape_->RotateScaleAbout(cx, cy, 0.0, new_dist / old_dist);
      }
      constexpr double kHalfBox = 4.0;
      v.SetBounds(geom::BoundingBox{e.x - kHalfBox, e.y - kHalfBox, e.x + kHalfBox,
                                    e.y + kHalfBox});
    };
    view->AddHandler(std::make_shared<toolkit::DragHandler>("cp-drag", std::move(callbacks)));
    control_point_views_.push_back(window_->AddChild(std::move(view)));
  }
}

void GdpApp::ClearControlPoints() {
  for (toolkit::View* v : control_point_views_) {
    window_->RemoveChild(v);
  }
  control_point_views_.clear();
  edited_shape_ = nullptr;
}

Canvas GdpApp::Render(std::size_t cols, std::size_t rows) const {
  Canvas canvas(options_.world_width, options_.world_height, cols, rows);
  document_.Render(canvas);
  if (gesture_handler_->phase() == toolkit::GestureHandler::Phase::kCollecting) {
    canvas.DrawGestureInk(gesture_handler_->collected());
  }
  for (const toolkit::View* v : control_point_views_) {
    const geom::BoundingBox b = v->bounds();
    canvas.Plot(0.5 * (b.min_x + b.max_x), 0.5 * (b.min_y + b.max_y), '+');
  }
  return canvas;
}

std::string GdpApp::RenderAscii(std::size_t cols, std::size_t rows) const {
  return Render(cols, rows).ToString();
}

}  // namespace grandma::gdp
