// The off-screen raster standing in for GDP's X10 display: shapes and
// gesture ink render into a character grid (and optionally a PGM image),
// so application feedback — rubberbanding, dragging, snapping — is
// observable in tests and terminal examples.
#ifndef GRANDMA_SRC_GDP_CANVAS_H_
#define GRANDMA_SRC_GDP_CANVAS_H_

#include <string>
#include <vector>

#include "geom/gesture.h"

namespace grandma::gdp {

// A world-coordinate (y-up) character raster. World rectangle
// [0, width_world) x [0, height_world) maps onto cols x rows cells, row 0 at
// the top of the output (largest y).
class Canvas {
 public:
  Canvas(double width_world, double height_world, std::size_t cols, std::size_t rows);

  void Clear(char fill = ' ');

  double width_world() const { return width_world_; }
  double height_world() const { return height_world_; }
  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }

  // Plots a world point; out-of-range points are clipped silently.
  void Plot(double x, double y, char ch);
  // Reads the cell under a world point; '\0' when out of range.
  char At(double x, double y) const;

  void DrawSegment(double x0, double y0, double x1, double y1, char ch);
  void DrawEllipse(double cx, double cy, double rx, double ry, double angle, char ch);
  void DrawString(double x, double y, const std::string& text);
  // Gesture ink: dotted, as in the paper's figures.
  void DrawGestureInk(const geom::Gesture& g, char ch = '.');

  // Number of non-blank cells — a cheap "did anything render" probe.
  std::size_t InkedCellCount() const;

  // Renders the grid with a border.
  std::string ToString() const;
  // Writes a binary PGM (P5) image, one pixel per cell, ink black.
  bool WritePgm(const std::string& path) const;

 private:
  bool ToCell(double x, double y, std::size_t& col, std::size_t& row) const;

  double width_world_;
  double height_world_;
  std::size_t cols_;
  std::size_t rows_;
  std::vector<char> cells_;
};

}  // namespace grandma::gdp

#endif  // GRANDMA_SRC_GDP_CANVAS_H_
