#include "gdp/session.h"

#include <stdexcept>

#include "geom/transform.h"
#include "synth/generator.h"
#include "synth/rng.h"
#include "toolkit/event.h"

namespace grandma::gdp {

namespace {

const synth::PathSpec& RequireSpec(const std::vector<synth::PathSpec>& specs,
                                   const std::string& class_name) {
  for (const synth::PathSpec& spec : specs) {
    if (spec.class_name == class_name) {
      return spec;
    }
  }
  throw std::invalid_argument("Unknown GDP gesture class: " + class_name);
}

}  // namespace

geom::Gesture MakeStrokeAt(const synth::PathSpec& spec, double x, double y,
                           std::uint64_t seed) {
  synth::NoiseModel noise;
  noise.translation_sigma = 0.0;  // exact placement
  noise.rotation_sigma = 0.03;
  noise.scale_sigma = 0.05;
  synth::Rng rng(seed);
  synth::GestureSample sample = synth::Generate(spec, noise, rng);
  geom::Gesture g = sample.gesture;
  if (g.empty()) {
    return g;
  }
  const geom::AffineTransform shift =
      geom::AffineTransform::Translation(x - g.front().x, y - g.front().y);
  return geom::RebaseTime(shift.Apply(g), 0.0);
}

std::string PlayGesture(GdpApp& app, const std::string& class_name, double x, double y,
                        double hold_ms, std::uint64_t seed) {
  const auto specs = synth::MakeGdpSpecs(app.options().group_orientation);
  const geom::Gesture stroke = MakeStrokeAt(RequireSpec(specs, class_name), x, y, seed);
  app.driver().PlayStroke(stroke, hold_ms);
  return app.gesture_handler().recognized_class();
}

std::string PlayGestureWithDrag(GdpApp& app, const std::string& class_name, double x, double y,
                                double to_x, double to_y, double hold_ms, std::uint64_t seed) {
  const auto specs = synth::MakeGdpSpecs(app.options().group_orientation);
  const geom::Gesture stroke = MakeStrokeAt(RequireSpec(specs, class_name), x, y, seed);
  if (stroke.empty()) {
    return {};
  }

  toolkit::PlaybackDriver& driver = app.driver();
  const double t0 = app.dispatcher().clock().now_ms();
  driver.Feed(toolkit::InputEvent::MouseDown(stroke.front().x, stroke.front().y, t0));
  for (std::size_t i = 1; i < stroke.size(); ++i) {
    driver.Feed(toolkit::InputEvent::MouseMove(stroke[i].x, stroke[i].y,
                                               t0 + stroke[i].t - stroke.front().t));
  }
  // Dwell to force the phase transition when eager recognition is off (or
  // has not fired yet).
  double t = app.dispatcher().clock().now_ms() + hold_ms;
  for (double tick = app.dispatcher().clock().now_ms() + 25.0; tick <= t; tick += 25.0) {
    app.dispatcher().clock().Set(tick);
    app.dispatcher().Tick();
  }
  // Manipulation: drag in a straight line to (to_x, to_y) in 8 steps.
  const double from_x = stroke.back().x;
  const double from_y = stroke.back().y;
  for (int i = 1; i <= 8; ++i) {
    const double u = static_cast<double>(i) / 8.0;
    t += 15.0;
    driver.Feed(toolkit::InputEvent::MouseMove(from_x + (to_x - from_x) * u,
                                               from_y + (to_y - from_y) * u, t));
  }
  driver.Feed(toolkit::InputEvent::MouseUp(to_x, to_y, t + 10.0));
  return app.gesture_handler().recognized_class();
}

}  // namespace grandma::gdp
