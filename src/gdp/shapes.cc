#include "gdp/shapes.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "gdp/canvas.h"

namespace grandma::gdp {

namespace {

double SegmentDistance(double px, double py, double x0, double y0, double x1, double y1) {
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double len2 = dx * dx + dy * dy;
  double u = 0.0;
  if (len2 > 0.0) {
    u = std::clamp(((px - x0) * dx + (py - y0) * dy) / len2, 0.0, 1.0);
  }
  const double qx = x0 + u * dx;
  const double qy = y0 + u * dy;
  return std::hypot(px - qx, py - qy);
}

void RotateScalePoint(double& x, double& y, double cx, double cy, double radians,
                      double factor) {
  const double cos_r = std::cos(radians) * factor;
  const double sin_r = std::sin(radians) * factor;
  const double dx = x - cx;
  const double dy = y - cy;
  x = cx + dx * cos_r - dy * sin_r;
  y = cy + dx * sin_r + dy * cos_r;
}

}  // namespace

std::vector<geom::TimedPoint> Shape::ControlPoints() const {
  const geom::BoundingBox b = Bounds();
  return {
      {b.min_x, b.min_y, 0.0},
      {b.max_x, b.min_y, 0.0},
      {b.max_x, b.max_y, 0.0},
      {b.min_x, b.max_y, 0.0},
  };
}

std::string Shape::Describe() const {
  const geom::BoundingBox b = Bounds();
  std::ostringstream os;
  os << Kind() << "#" << id() << " [" << b.min_x << "," << b.min_y << " .. " << b.max_x << ","
     << b.max_y << "]";
  return os.str();
}

// --- LineShape ---

geom::BoundingBox LineShape::Bounds() const {
  return geom::BoundingBox{std::min(x0_, x1_), std::min(y0_, y1_), std::max(x0_, x1_),
                           std::max(y0_, y1_)};
}

bool LineShape::HitTest(double x, double y, double tolerance) const {
  return SegmentDistance(x, y, x0_, y0_, x1_, y1_) <= tolerance + 0.5 * thickness_;
}

void LineShape::Render(Canvas& canvas) const { canvas.DrawSegment(x0_, y0_, x1_, y1_, '#'); }

void LineShape::Translate(double dx, double dy) {
  x0_ += dx;
  y0_ += dy;
  x1_ += dx;
  y1_ += dy;
}

void LineShape::RotateScaleAbout(double cx, double cy, double radians, double factor) {
  RotateScalePoint(x0_, y0_, cx, cy, radians, factor);
  RotateScalePoint(x1_, y1_, cx, cy, radians, factor);
  thickness_ *= factor;
}

std::vector<geom::TimedPoint> LineShape::ControlPoints() const {
  return {{x0_, y0_, 0.0}, {x1_, y1_, 0.0}};
}

void LineShape::SetEndpoint(int which, double x, double y) {
  if (which == 0) {
    x0_ = x;
    y0_ = y;
  } else {
    x1_ = x;
    y1_ = y;
  }
}

// --- RectShape ---

RectShape::RectShape(double x0, double y0, double x1, double y1, double angle)
    : cx_(0), cy_(0), w_(0), h_(0), angle_(angle) {
  SetCorners(x0, y0, x1, y1);
}

void RectShape::SetCorners(double x0, double y0, double x1, double y1) {
  cx_ = 0.5 * (x0 + x1);
  cy_ = 0.5 * (y0 + y1);
  // The defining corners are opposite corners in the rectangle's own frame.
  const double cos_a = std::cos(angle_);
  const double sin_a = std::sin(angle_);
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  w_ = std::abs(dx * cos_a + dy * sin_a);
  h_ = std::abs(-dx * sin_a + dy * cos_a);
}

std::vector<geom::TimedPoint> RectShape::Corners() const {
  const double cos_a = std::cos(angle_);
  const double sin_a = std::sin(angle_);
  const double hw = 0.5 * w_;
  const double hh = 0.5 * h_;
  const double local[4][2] = {{-hw, -hh}, {hw, -hh}, {hw, hh}, {-hw, hh}};
  std::vector<geom::TimedPoint> out;
  out.reserve(4);
  for (const auto& p : local) {
    out.push_back({cx_ + p[0] * cos_a - p[1] * sin_a, cy_ + p[0] * sin_a + p[1] * cos_a, 0.0});
  }
  return out;
}

geom::BoundingBox RectShape::Bounds() const {
  const auto corners = Corners();
  geom::BoundingBox b{corners[0].x, corners[0].y, corners[0].x, corners[0].y};
  for (const auto& c : corners) {
    b.min_x = std::min(b.min_x, c.x);
    b.min_y = std::min(b.min_y, c.y);
    b.max_x = std::max(b.max_x, c.x);
    b.max_y = std::max(b.max_y, c.y);
  }
  return b;
}

bool RectShape::HitTest(double x, double y, double tolerance) const {
  const auto c = Corners();
  for (int i = 0; i < 4; ++i) {
    const auto& a = c[i];
    const auto& b = c[(i + 1) % 4];
    if (SegmentDistance(x, y, a.x, a.y, b.x, b.y) <= tolerance) {
      return true;
    }
  }
  return false;
}

void RectShape::Render(Canvas& canvas) const {
  const auto c = Corners();
  for (int i = 0; i < 4; ++i) {
    const auto& a = c[i];
    const auto& b = c[(i + 1) % 4];
    canvas.DrawSegment(a.x, a.y, b.x, b.y, '#');
  }
}

void RectShape::Translate(double dx, double dy) {
  cx_ += dx;
  cy_ += dy;
}

void RectShape::RotateScaleAbout(double cx, double cy, double radians, double factor) {
  RotateScalePoint(cx_, cy_, cx, cy, radians, factor);
  w_ *= factor;
  h_ *= factor;
  angle_ += radians;
}

std::vector<geom::TimedPoint> RectShape::ControlPoints() const { return Corners(); }

// --- EllipseShape ---

geom::BoundingBox EllipseShape::Bounds() const {
  // Conservative: the rotated ellipse's exact extents.
  const double cos_a = std::cos(angle_);
  const double sin_a = std::sin(angle_);
  const double ex = std::sqrt(rx_ * rx_ * cos_a * cos_a + ry_ * ry_ * sin_a * sin_a);
  const double ey = std::sqrt(rx_ * rx_ * sin_a * sin_a + ry_ * ry_ * cos_a * cos_a);
  return geom::BoundingBox{cx_ - ex, cy_ - ey, cx_ + ex, cy_ + ey};
}

bool EllipseShape::HitTest(double x, double y, double tolerance) const {
  if (rx_ <= 0.0 || ry_ <= 0.0) {
    return std::hypot(x - cx_, y - cy_) <= tolerance;
  }
  // Transform into the ellipse's frame and compare the normalized radius to
  // 1; tolerance is scaled by the smaller radius for an outline-ish test.
  const double cos_a = std::cos(-angle_);
  const double sin_a = std::sin(-angle_);
  const double dx = x - cx_;
  const double dy = y - cy_;
  const double lx = dx * cos_a - dy * sin_a;
  const double ly = dx * sin_a + dy * cos_a;
  const double norm = std::sqrt((lx / rx_) * (lx / rx_) + (ly / ry_) * (ly / ry_));
  const double tol_norm = tolerance / std::min(rx_, ry_);
  return std::abs(norm - 1.0) <= tol_norm;
}

void EllipseShape::Render(Canvas& canvas) const {
  canvas.DrawEllipse(cx_, cy_, rx_, ry_, angle_, '#');
}

void EllipseShape::Translate(double dx, double dy) {
  cx_ += dx;
  cy_ += dy;
}

void EllipseShape::RotateScaleAbout(double cx, double cy, double radians, double factor) {
  RotateScalePoint(cx_, cy_, cx, cy, radians, factor);
  rx_ *= factor;
  ry_ *= factor;
  angle_ += radians;
}

std::vector<geom::TimedPoint> EllipseShape::ControlPoints() const {
  const double cos_a = std::cos(angle_);
  const double sin_a = std::sin(angle_);
  return {
      {cx_ + rx_ * cos_a, cy_ + rx_ * sin_a, 0.0},
      {cx_ - ry_ * sin_a, cy_ + ry_ * cos_a, 0.0},
  };
}

// --- TextShape ---

geom::BoundingBox TextShape::Bounds() const {
  // Nominal glyph cell of 6x10 world units.
  return geom::BoundingBox{x_, y_ - 10.0, x_ + 6.0 * static_cast<double>(text_.size()), y_};
}

bool TextShape::HitTest(double x, double y, double tolerance) const {
  const geom::BoundingBox b = Bounds();
  return x >= b.min_x - tolerance && x <= b.max_x + tolerance && y >= b.min_y - tolerance &&
         y <= b.max_y + tolerance;
}

void TextShape::Render(Canvas& canvas) const { canvas.DrawString(x_, y_, text_); }

void TextShape::Translate(double dx, double dy) {
  x_ += dx;
  y_ += dy;
}

void TextShape::RotateScaleAbout(double cx, double cy, double radians, double factor) {
  RotateScalePoint(x_, y_, cx, cy, radians, factor);
}

// --- DotShape ---

geom::BoundingBox DotShape::Bounds() const {
  return geom::BoundingBox{x_ - 1.0, y_ - 1.0, x_ + 1.0, y_ + 1.0};
}

bool DotShape::HitTest(double x, double y, double tolerance) const {
  return std::hypot(x - x_, y - y_) <= tolerance + 1.0;
}

void DotShape::Render(Canvas& canvas) const { canvas.Plot(x_, y_, '*'); }

void DotShape::Translate(double dx, double dy) {
  x_ += dx;
  y_ += dy;
}

void DotShape::RotateScaleAbout(double cx, double cy, double radians, double factor) {
  RotateScalePoint(x_, y_, cx, cy, radians, factor);
}

// --- GroupShape ---

GroupShape::GroupShape(const GroupShape& other) : Shape(other) {
  members_.reserve(other.members_.size());
  for (const auto& m : other.members_) {
    members_.push_back(m->Clone());
  }
}

geom::BoundingBox GroupShape::Bounds() const {
  if (members_.empty()) {
    return geom::BoundingBox{};
  }
  geom::BoundingBox b = members_.front()->Bounds();
  for (const auto& m : members_) {
    const geom::BoundingBox mb = m->Bounds();
    b.min_x = std::min(b.min_x, mb.min_x);
    b.min_y = std::min(b.min_y, mb.min_y);
    b.max_x = std::max(b.max_x, mb.max_x);
    b.max_y = std::max(b.max_y, mb.max_y);
  }
  return b;
}

bool GroupShape::HitTest(double x, double y, double tolerance) const {
  for (const auto& m : members_) {
    if (m->HitTest(x, y, tolerance)) {
      return true;
    }
  }
  return false;
}

void GroupShape::Render(Canvas& canvas) const {
  for (const auto& m : members_) {
    m->Render(canvas);
  }
}

void GroupShape::Translate(double dx, double dy) {
  for (const auto& m : members_) {
    m->Translate(dx, dy);
  }
}

void GroupShape::RotateScaleAbout(double cx, double cy, double radians, double factor) {
  for (const auto& m : members_) {
    m->RotateScaleAbout(cx, cy, radians, factor);
  }
}

}  // namespace grandma::gdp
