#include "gdp/scripting.h"

#include <cmath>

namespace grandma::gdp {

namespace {

using toolkit::script::ScriptError;
using toolkit::script::Value;

double RequireNumber(std::span<const Value> args, std::size_t index, const char* selector) {
  if (index >= args.size()) {
    throw ScriptError(std::string(selector) + ": missing argument " + std::to_string(index));
  }
  const double* number = std::get_if<double>(&args[index]);
  if (number == nullptr) {
    throw ScriptError(std::string(selector) + ": argument " + std::to_string(index) +
                      " is not a number");
  }
  return *number;
}

}  // namespace

// Wraps one document shape. setEndpoint:0 anchors the shape; setEndpoint:1
// rubberbands it — matching GDP's two-point creation semantics for lines,
// rectangles and ellipses.
class DocumentScriptHost::ShapeObject final : public toolkit::script::Object {
 public:
  explicit ShapeObject(Shape* shape) : shape_(shape) {}

  Value Send(const std::string& selector, std::span<const Value> args) override {
    if (selector == "setEndpoint:x:y:") {
      const int which = static_cast<int>(RequireNumber(args, 0, "setEndpoint:x:y:"));
      const double x = RequireNumber(args, 1, "setEndpoint:x:y:");
      const double y = RequireNumber(args, 2, "setEndpoint:x:y:");
      SetEndpoint(which, x, y);
      return this;
    }
    if (selector == "moveTo:y:") {
      const double x = RequireNumber(args, 0, "moveTo:y:");
      const double y = RequireNumber(args, 1, "moveTo:y:");
      const geom::BoundingBox b = shape_->Bounds();
      shape_->Translate(x - 0.5 * (b.min_x + b.max_x), y - 0.5 * (b.min_y + b.max_y));
      return this;
    }
    throw ScriptError("shape does not understand '" + selector + "'");
  }

  std::string Description() const override { return std::string(shape_->Kind()) + "-object"; }

  Shape* shape() const { return shape_; }

 private:
  void SetEndpoint(int which, double x, double y) {
    if (auto* line = dynamic_cast<LineShape*>(shape_)) {
      line->SetEndpoint(which == 0 ? 0 : 1, x, y);
      return;
    }
    if (auto* rect = dynamic_cast<RectShape*>(shape_)) {
      if (which == 0) {
        anchor_x_ = x;
        anchor_y_ = y;
        rect->SetCorners(x, y, x, y);
      } else {
        rect->SetCorners(anchor_x_, anchor_y_, x, y);
      }
      return;
    }
    if (auto* ellipse = dynamic_cast<EllipseShape*>(shape_)) {
      if (which == 0) {
        anchor_x_ = x;
        anchor_y_ = y;
        ellipse->Translate(x - ellipse->cx(), y - ellipse->cy());
      } else {
        ellipse->SetRadii(std::max(std::abs(x - anchor_x_), 1.0),
                          std::max(std::abs(y - anchor_y_), 1.0));
      }
      return;
    }
    throw ScriptError("setEndpoint:x:y: not supported for this shape");
  }

  Shape* shape_;
  double anchor_x_ = 0.0;
  double anchor_y_ = 0.0;
};

// The "view": GDP's window, which creates shapes in the document.
class DocumentScriptHost::ViewObject final : public toolkit::script::Object {
 public:
  explicit ViewObject(DocumentScriptHost* host) : host_(host) {}

  Value Send(const std::string& selector, std::span<const Value> args) override {
    if (selector == "createRect") {
      return host_->Wrap(host_->document_->Add(std::make_unique<RectShape>(0, 0, 0, 0)));
    }
    if (selector == "createLine") {
      return host_->Wrap(host_->document_->Add(std::make_unique<LineShape>(0, 0, 0, 0)));
    }
    if (selector == "createEllipse") {
      return host_->Wrap(host_->document_->Add(std::make_unique<EllipseShape>(0, 0, 1, 1)));
    }
    if (selector == "createDot:y:") {
      const double x = RequireNumber(args, 0, "createDot:y:");
      const double y = RequireNumber(args, 1, "createDot:y:");
      return host_->Wrap(host_->document_->Add(std::make_unique<DotShape>(x, y)));
    }
    throw ScriptError("view does not understand '" + selector + "'");
  }

  std::string Description() const override { return "gdp-view"; }

 private:
  DocumentScriptHost* host_;
};

DocumentScriptHost::DocumentScriptHost(Document* document)
    : document_(document), view_(std::make_unique<ViewObject>(this)) {}

DocumentScriptHost::~DocumentScriptHost() = default;

Value DocumentScriptHost::Wrap(Shape* shape) {
  wrappers_.push_back(std::make_unique<ShapeObject>(shape));
  return Value(static_cast<toolkit::script::Object*>(wrappers_.back().get()));
}

toolkit::script::Object* DocumentScriptHost::view() { return view_.get(); }

toolkit::ScriptVariableResolver DocumentScriptHost::Resolver() {
  return [this](const std::string& name) -> std::optional<Value> {
    if (name == "view") {
      return Value(view_.get());
    }
    return std::nullopt;
  };
}

}  // namespace grandma::gdp
