#include "gdp/canvas.h"

#include <cmath>
#include <cstdio>
#include <numbers>

namespace grandma::gdp {

Canvas::Canvas(double width_world, double height_world, std::size_t cols, std::size_t rows)
    : width_world_(width_world),
      height_world_(height_world),
      cols_(cols),
      rows_(rows),
      cells_(cols * rows, ' ') {}

void Canvas::Clear(char fill) { cells_.assign(cols_ * rows_, fill); }

bool Canvas::ToCell(double x, double y, std::size_t& col, std::size_t& row) const {
  if (x < 0.0 || y < 0.0 || x >= width_world_ || y >= height_world_) {
    return false;
  }
  col = static_cast<std::size_t>(x / width_world_ * static_cast<double>(cols_));
  // y-up world, row 0 at top.
  row = rows_ - 1 - static_cast<std::size_t>(y / height_world_ * static_cast<double>(rows_));
  return col < cols_ && row < rows_;
}

void Canvas::Plot(double x, double y, char ch) {
  std::size_t col = 0;
  std::size_t row = 0;
  if (ToCell(x, y, col, row)) {
    cells_[row * cols_ + col] = ch;
  }
}

char Canvas::At(double x, double y) const {
  std::size_t col = 0;
  std::size_t row = 0;
  if (!ToCell(x, y, col, row)) {
    return '\0';
  }
  return cells_[row * cols_ + col];
}

void Canvas::DrawSegment(double x0, double y0, double x1, double y1, char ch) {
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double len = std::sqrt(dx * dx + dy * dy);
  // Step at half a cell in world units for solid coverage.
  const double step = 0.5 * std::min(width_world_ / static_cast<double>(cols_),
                                     height_world_ / static_cast<double>(rows_));
  const int steps = std::max(1, static_cast<int>(len / step));
  for (int i = 0; i <= steps; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(steps);
    Plot(x0 + dx * u, y0 + dy * u, ch);
  }
}

void Canvas::DrawEllipse(double cx, double cy, double rx, double ry, double angle, char ch) {
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);
  const double circumference =
      std::numbers::pi * (3.0 * (rx + ry) - std::sqrt((3.0 * rx + ry) * (rx + 3.0 * ry)));
  const double step = 0.5 * std::min(width_world_ / static_cast<double>(cols_),
                                     height_world_ / static_cast<double>(rows_));
  const int steps = std::max(8, static_cast<int>(circumference / step));
  for (int i = 0; i <= steps; ++i) {
    const double u = 2.0 * std::numbers::pi * static_cast<double>(i) / steps;
    const double ex = rx * std::cos(u);
    const double ey = ry * std::sin(u);
    Plot(cx + ex * cos_a - ey * sin_a, cy + ex * sin_a + ey * cos_a, ch);
  }
}

void Canvas::DrawString(double x, double y, const std::string& text) {
  const double cell_w = width_world_ / static_cast<double>(cols_);
  for (std::size_t i = 0; i < text.size(); ++i) {
    Plot(x + static_cast<double>(i) * cell_w, y, text[i]);
  }
}

void Canvas::DrawGestureInk(const geom::Gesture& g, char ch) {
  for (const geom::TimedPoint& p : g) {
    Plot(p.x, p.y, ch);
  }
}

std::size_t Canvas::InkedCellCount() const {
  std::size_t n = 0;
  for (char c : cells_) {
    if (c != ' ') {
      ++n;
    }
  }
  return n;
}

std::string Canvas::ToString() const {
  std::string out;
  out.reserve((cols_ + 3) * (rows_ + 2));
  out.append("+").append(std::string(cols_, '-')).append("+\n");
  for (std::size_t r = 0; r < rows_; ++r) {
    out.push_back('|');
    out.append(&cells_[r * cols_], cols_);
    out.append("|\n");
  }
  out.append("+").append(std::string(cols_, '-')).append("+\n");
  return out;
}

bool Canvas::WritePgm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "P5\n%zu %zu\n255\n", cols_, rows_);
  for (char c : cells_) {
    const unsigned char pixel = c == ' ' ? 255 : 0;
    std::fwrite(&pixel, 1, 1, f);
  }
  std::fclose(f);
  return true;
}

}  // namespace grandma::gdp
