// GDP's drawing document: an ordered (z-order) list of owned shapes with the
// queries the gesture semantics need — topmost shape under a point, shapes
// enclosed by a stroke.
#ifndef GRANDMA_SRC_GDP_DOCUMENT_H_
#define GRANDMA_SRC_GDP_DOCUMENT_H_

#include <memory>
#include <vector>

#include "gdp/canvas.h"
#include "gdp/shapes.h"
#include "geom/gesture.h"
#include "toolkit/model.h"

namespace grandma::gdp {

// The document is a GRANDMA Model: observers (views, tests) are notified of
// shape additions and removals made by gesture semantics.
class Document : public toolkit::Model {
 public:
  Document() = default;

  // Takes ownership; assigns an id; the new shape is topmost.
  Shape* Add(std::unique_ptr<Shape> shape);

  // Extracts `shape` from the document (for deletion or grouping).
  // Returns nullptr when the shape is not a top-level member.
  std::unique_ptr<Shape> Remove(Shape* shape);

  // Topmost shape whose ink is within `tolerance` of (x, y); nullptr if none.
  Shape* TopmostAt(double x, double y, double tolerance = 4.0) const;

  // Top-level shapes whose bounding-box center the stroke encloses — the
  // `group` gesture's operand query.
  std::vector<Shape*> EnclosedBy(const geom::Gesture& stroke) const;

  std::vector<Shape*> AllShapes() const;
  std::size_t size() const { return shapes_.size(); }
  bool Contains(const Shape* shape) const;
  Shape* FindById(ShapeId id) const;

  void Render(Canvas& canvas) const;

 private:
  std::vector<std::unique_ptr<Shape>> shapes_;
  ShapeId next_id_ = 1;
};

}  // namespace grandma::gdp

#endif  // GRANDMA_SRC_GDP_DOCUMENT_H_
