// GDP (Section 2): a gesture-based drawing program built on GRANDMA. One
// window view carries a gesture handler (attached at the *class* level, as
// the paper advocates) recognizing the eleven GDP gestures; its semantics
// create and manipulate shapes in a Document. The `edit` gesture exposes
// control-point views that respond to *drag* handlers — gesture and direct
// manipulation coexisting in one interface (Section 3.1).
#ifndef GRANDMA_SRC_GDP_APP_H_
#define GRANDMA_SRC_GDP_APP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eager/eager_recognizer.h"
#include "gdp/canvas.h"
#include "gdp/document.h"
#include "synth/sets.h"
#include "toolkit/dispatcher.h"
#include "toolkit/gesture_handler.h"
#include "toolkit/playback.h"
#include "toolkit/view.h"

namespace grandma::gdp {

class GdpApp {
 public:
  struct Options {
    // Eager phase transitions (otherwise: 200 ms dwell or mouse-up only).
    bool eager = false;
    double dwell_timeout_ms = 200.0;
    // Recognizer training workload (the stand-in for the author's training
    // sessions; see DESIGN.md).
    std::size_t train_per_class = 10;
    std::uint64_t training_seed = 7;
    synth::GroupOrientation group_orientation = synth::GroupOrientation::kClockwise;
    // World (document) size.
    double world_width = 320.0;
    double world_height = 240.0;
    // Reject dubious gestures instead of acting on them.
    bool use_rejection = false;
    // The paper's "modified version of GDP": the initial angle of the
    // rectangle gesture determines the rectangle's orientation, and the
    // length of the line gesture determines the line's thickness —
    // gestural attributes mapped to application parameters (Section 2).
    bool map_gestural_attributes = false;
  };

  GdpApp();  // default Options
  explicit GdpApp(Options options);

  Document& document() { return document_; }
  const Document& document() const { return document_; }
  toolkit::Dispatcher& dispatcher() { return *dispatcher_; }
  toolkit::PlaybackDriver& driver() { return *driver_; }
  toolkit::GestureHandler& gesture_handler() { return *gesture_handler_; }
  const eager::EagerRecognizer& recognizer() const { return recognizer_; }
  toolkit::View& window() { return *window_; }
  const Options& options() const { return options_; }

  // Control points (the `edit` gesture). Each control point is a child view
  // with an instance-level drag handler; dragging scales the shape about its
  // bounding-box center.
  void ShowControlPoints(Shape* shape);
  void ClearControlPoints();
  Shape* edited_shape() const { return edited_shape_; }
  std::size_t control_point_count() const { return control_point_views_.size(); }

  // Renders document + live gesture ink + control points.
  Canvas Render(std::size_t cols = 80, std::size_t rows = 30) const;
  std::string RenderAscii(std::size_t cols = 80, std::size_t rows = 30) const;

  // Interaction log, for examples/tests: one line per recognized/rejected
  // gesture.
  const std::vector<std::string>& log() const { return log_; }

  // --- Runtime training (GRANDMA's defining capability: applications learn
  // new gestures from examples without restarting) ---
  //
  // In training mode, incoming strokes are *recorded* as examples of
  // `class_name` instead of being recognized. EndTraining retrains the
  // recognizer in place — the gesture handler picks the new classifier up
  // immediately. The class may be new or existing (more examples).
  void BeginTraining(const std::string& class_name);
  bool training() const { return training_; }
  const std::string& training_class() const { return training_class_; }
  std::size_t recorded_examples() const { return recorded_; }
  // Retrains and leaves training mode. Returns false (and stays in training
  // mode) when the recorded class has fewer than 3 examples — too few for
  // the covariance estimate to mean anything.
  bool EndTraining();
  // Leaves training mode discarding nothing already recorded (the examples
  // stay in the training set for the next retrain).
  void CancelTraining();

 private:
  class TrainingStrokeHandler;

  void InstallSemantics();
  // Grid snapping for the text cursor (the paper's suggested feedback).
  static double Snap(double v) { return 10.0 * std::round(v / 10.0); }
  void RecordTrainingStroke(geom::Gesture stroke);

  Options options_;
  classify::GestureTrainingSet training_set_;
  eager::EagerRecognizer recognizer_;
  Document document_;

  bool training_ = false;
  std::string training_class_;
  std::size_t recorded_ = 0;

  toolkit::VirtualClock clock_;
  toolkit::ViewClass window_class_{"GdpWindow"};
  toolkit::ViewClass control_point_class_{"ControlPoint"};
  std::unique_ptr<toolkit::View> root_;
  toolkit::View* window_ = nullptr;
  std::unique_ptr<toolkit::Dispatcher> dispatcher_;
  std::unique_ptr<toolkit::PlaybackDriver> driver_;
  std::shared_ptr<toolkit::GestureHandler> gesture_handler_;

  Shape* edited_shape_ = nullptr;
  std::vector<toolkit::View*> control_point_views_;
  std::vector<std::string> log_;
};

}  // namespace grandma::gdp

#endif  // GRANDMA_SRC_GDP_APP_H_
