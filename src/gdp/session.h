// Scripted GDP sessions: helpers that place canonical gesture strokes at
// chosen document positions and play them through the app's event pipeline.
// These drive the examples, the Figure 3 harness, and the integration tests.
#ifndef GRANDMA_SRC_GDP_SESSION_H_
#define GRANDMA_SRC_GDP_SESSION_H_

#include <cstdint>
#include <string>

#include "gdp/app.h"
#include "geom/gesture.h"
#include "synth/path_spec.h"

namespace grandma::gdp {

// Generates one low-noise sample of `spec` whose first point lands exactly
// at (x, y). Deterministic in `seed`.
geom::Gesture MakeStrokeAt(const synth::PathSpec& spec, double x, double y,
                           std::uint64_t seed = 1);

// Looks up the spec named `class_name` in the app's gesture set (same
// orientation option) and plays it at (x, y):
//   - hold_ms >= the handler's dwell timeout exercises the timeout
//     transition, leaving the interaction in the manipulation phase when the
//     drag list is empty;
//   - with eager enabled, the transition usually happens mid-stroke.
// The stroke ends with a mouse-up. Returns the class the app recognized.
std::string PlayGesture(GdpApp& app, const std::string& class_name, double x, double y,
                        double hold_ms = 0.0, std::uint64_t seed = 1);

// Plays the stroke, then continues with a manipulation drag to (to_x, to_y)
// before releasing. `hold_ms` is the dwell inserted after the stroke to force
// the phase transition when eager recognition is off.
std::string PlayGestureWithDrag(GdpApp& app, const std::string& class_name, double x, double y,
                                double to_x, double to_y, double hold_ms = 250.0,
                                std::uint64_t seed = 1);

}  // namespace grandma::gdp

#endif  // GRANDMA_SRC_GDP_SESSION_H_
