// A scriptable facade over a GDP document, so gesture semantics can be
// written exactly as in the paper's listing:
//
//   recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
//   manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
//   done  = nil;
//
// `view` answers createRect / createLine / createEllipse / createDot (each
// adds a shape to the document and returns a shape object); shape objects
// answer setEndpoint:x:y: (endpoint 0/1 — corners for rectangles, center and
// radius point for ellipses), moveTo:y:, and return themselves so sends
// chain.
#ifndef GRANDMA_SRC_GDP_SCRIPTING_H_
#define GRANDMA_SRC_GDP_SCRIPTING_H_

#include <memory>
#include <vector>

#include "gdp/document.h"
#include "toolkit/script.h"
#include "toolkit/script_semantics.h"

namespace grandma::gdp {

// Owns the script-object wrappers for one document. Keep it alive as long as
// compiled semantics referencing its objects may run.
class DocumentScriptHost {
 public:
  explicit DocumentScriptHost(Document* document);
  ~DocumentScriptHost();

  DocumentScriptHost(const DocumentScriptHost&) = delete;
  DocumentScriptHost& operator=(const DocumentScriptHost&) = delete;

  // The variable resolver binding "view" to this document's facade; pass to
  // toolkit::CompileScriptSemantics.
  toolkit::ScriptVariableResolver Resolver();

  // The "view" object itself (for direct script evaluation in tests).
  toolkit::script::Object* view();

 private:
  class ViewObject;
  class ShapeObject;

  // Wraps a shape in a script object owned by this host.
  toolkit::script::Value Wrap(Shape* shape);

  Document* document_;
  std::unique_ptr<ViewObject> view_;
  std::vector<std::unique_ptr<ShapeObject>> wrappers_;
};

}  // namespace grandma::gdp

#endif  // GRANDMA_SRC_GDP_SCRIPTING_H_
