// Input preprocessing applied by the gesture collector before feature
// extraction. Rubine's implementation discards a new mouse point when it is
// within a small radius of the previous accepted point; this thins the bursts
// of nearly identical samples a dwelling mouse produces and stabilizes the
// initial-angle features.
#ifndef GRANDMA_SRC_GEOM_FILTER_H_
#define GRANDMA_SRC_GEOM_FILTER_H_

#include <cstddef>

#include "geom/gesture.h"
#include "geom/point.h"

namespace grandma::geom {

// Streaming minimum-distance filter. Feed raw device points; Accept() tells
// the caller whether the point should be appended to the gesture.
class MinDistanceFilter {
 public:
  // `min_distance` in pixels; Rubine used 3.
  explicit MinDistanceFilter(double min_distance = 3.0) : min_distance_(min_distance) {}

  // Returns true when `p` is far enough from the last accepted point (the
  // first point is always accepted) and records it as the new last point.
  bool Accept(const TimedPoint& p);

  // Forget the stream state (start of a new gesture).
  void Reset();

  double min_distance() const { return min_distance_; }
  std::size_t accepted_count() const { return accepted_count_; }
  std::size_t rejected_count() const { return rejected_count_; }

 private:
  double min_distance_;
  // Last accepted point; valid only when accepted_count_ > 0. (A plain
  // member instead of std::optional: GCC 12's -Wmaybe-uninitialized false
  // positive on optional payloads in inlined loops.)
  TimedPoint last_accepted_{};
  std::size_t accepted_count_ = 0;
  std::size_t rejected_count_ = 0;
};

// Batch form: returns `g` with too-close points removed.
Gesture FilterMinDistance(const Gesture& g, double min_distance = 3.0);

// Removes points with non-increasing time stamps (device glitches); keeps the
// first of any tie.
Gesture FilterMonotonicTime(const Gesture& g);

}  // namespace grandma::geom

#endif  // GRANDMA_SRC_GEOM_FILTER_H_
