#include "geom/resample.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace grandma::geom {

namespace {

TimedPoint Lerp(const TimedPoint& a, const TimedPoint& b, double u) {
  return TimedPoint{a.x + (b.x - a.x) * u, a.y + (b.y - a.y) * u, a.t + (b.t - a.t) * u};
}

}  // namespace

Gesture ResampleByCount(const Gesture& g, std::size_t n) {
  if (n < 2 || g.size() < 2) {
    throw std::invalid_argument("ResampleByCount requires n >= 2 and |g| >= 2");
  }
  const double total = g.PathLength();
  if (total == 0.0) {
    // Degenerate: all points coincide; replicate endpoints with interpolated
    // time so the output still has n samples.
    std::vector<TimedPoint> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(n - 1);
      out.push_back(Lerp(g.front(), g.back(), u));
    }
    return Gesture(std::move(out));
  }
  const double step = total / static_cast<double>(n - 1);
  std::vector<TimedPoint> out;
  out.reserve(n);
  out.push_back(g.front());
  double carried = 0.0;  // distance from out.back() along current segment start
  std::size_t seg = 1;
  TimedPoint prev = g.front();
  while (out.size() < n - 1 && seg < g.size()) {
    const TimedPoint& next = g[seg];
    const double seg_len = Distance(prev, next);
    if (carried + seg_len >= step && seg_len > 0.0) {
      const double u = (step - carried) / seg_len;
      const TimedPoint sample = Lerp(prev, next, u);
      out.push_back(sample);
      prev = sample;
      carried = 0.0;
    } else {
      carried += seg_len;
      prev = next;
      ++seg;
    }
  }
  while (out.size() < n) {
    out.push_back(g.back());
  }
  return Gesture(std::move(out));
}

Gesture ResampleBySpacing(const Gesture& g, double spacing) {
  if (spacing <= 0.0 || g.size() < 2) {
    throw std::invalid_argument("ResampleBySpacing requires spacing > 0 and |g| >= 2");
  }
  const double total = g.PathLength();
  const std::size_t n = std::max<std::size_t>(2, static_cast<std::size_t>(total / spacing) + 1);
  return ResampleByCount(g, n);
}

Gesture ResampleByTime(const Gesture& g, double dt) {
  if (dt <= 0.0 || g.size() < 2) {
    throw std::invalid_argument("ResampleByTime requires dt > 0 and |g| >= 2");
  }
  std::vector<TimedPoint> out;
  out.push_back(g.front());
  std::size_t seg = 1;
  double t = g.front().t + dt;
  while (t < g.back().t) {
    while (seg < g.size() && g[seg].t < t) {
      ++seg;
    }
    if (seg >= g.size()) {
      break;
    }
    const TimedPoint& a = g[seg - 1];
    const TimedPoint& b = g[seg];
    if (b.t <= a.t) {
      throw std::invalid_argument("ResampleByTime requires strictly increasing time");
    }
    const double u = (t - a.t) / (b.t - a.t);
    out.push_back(Lerp(a, b, u));
    t += dt;
  }
  out.push_back(g.back());
  return Gesture(std::move(out));
}

}  // namespace grandma::geom
