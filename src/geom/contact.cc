#include "geom/contact.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace grandma::geom {

double ContactGroup::StartTime() const {
  double t = std::numeric_limits<double>::infinity();
  for (const Contact& c : contacts_) {
    if (!c.stroke.empty()) {
      t = std::min(t, c.StartTime());
    }
  }
  return std::isfinite(t) ? t : 0.0;
}

double ContactGroup::EndTime() const {
  double t = -std::numeric_limits<double>::infinity();
  for (const Contact& c : contacts_) {
    if (!c.stroke.empty()) {
      t = std::max(t, c.EndTime());
    }
  }
  return std::isfinite(t) ? t : 0.0;
}

std::size_t ContactGroup::TotalPoints() const {
  std::size_t n = 0;
  for (const Contact& c : contacts_) {
    n += c.stroke.size();
  }
  return n;
}

BoundingBox ContactGroup::Bounds() const {
  BoundingBox box;
  bool first = true;
  for (const Contact& c : contacts_) {
    if (c.stroke.empty()) {
      continue;
    }
    const BoundingBox b = c.stroke.Bounds();
    if (first) {
      box = b;
      first = false;
    } else {
      box.min_x = std::min(box.min_x, b.min_x);
      box.min_y = std::min(box.min_y, b.min_y);
      box.max_x = std::max(box.max_x, b.max_x);
      box.max_y = std::max(box.max_y, b.max_y);
    }
  }
  return box;
}

ContactGroup ContactGroup::Sorted() const {
  ContactGroup out = *this;
  std::stable_sort(out.contacts_.begin(), out.contacts_.end(),
                   [](const Contact& a, const Contact& b) {
                     if (a.StartTime() != b.StartTime()) {
                       return a.StartTime() < b.StartTime();
                     }
                     return a.id < b.id;
                   });
  return out;
}

std::string ContactGroup::ToString() const {
  std::ostringstream out;
  out << "ContactGroup(" << contacts_.size() << " contacts";
  for (const Contact& c : contacts_) {
    out << ", id=" << c.id << " area=" << c.area << " pts=" << c.stroke.size() << " ["
        << c.StartTime() << ", " << c.EndTime() << "]";
  }
  out << ")";
  return out.str();
}

}  // namespace grandma::geom
