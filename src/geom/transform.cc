#include "geom/transform.h"

#include <cmath>

namespace grandma::geom {

AffineTransform AffineTransform::Translation(double dx, double dy) {
  return AffineTransform(1.0, 0.0, 0.0, 1.0, dx, dy);
}

AffineTransform AffineTransform::Rotation(double radians, double cx, double cy) {
  const double cos_r = std::cos(radians);
  const double sin_r = std::sin(radians);
  // Translate center to origin, rotate, translate back.
  const double tx = cx - cos_r * cx + sin_r * cy;
  const double ty = cy - sin_r * cx - cos_r * cy;
  return AffineTransform(cos_r, -sin_r, sin_r, cos_r, tx, ty);
}

AffineTransform AffineTransform::Scale(double s, double cx, double cy) {
  return Scale(s, s, cx, cy);
}

AffineTransform AffineTransform::Scale(double sx, double sy, double cx, double cy) {
  return AffineTransform(sx, 0.0, 0.0, sy, cx - sx * cx, cy - sy * cy);
}

AffineTransform AffineTransform::Compose(const AffineTransform& first) const {
  return AffineTransform(a_ * first.a_ + b_ * first.c_, a_ * first.b_ + b_ * first.d_,
                         c_ * first.a_ + d_ * first.c_, c_ * first.b_ + d_ * first.d_,
                         a_ * first.tx_ + b_ * first.ty_ + tx_,
                         c_ * first.tx_ + d_ * first.ty_ + ty_);
}

TimedPoint AffineTransform::Apply(const TimedPoint& p) const {
  return TimedPoint{a_ * p.x + b_ * p.y + tx_, c_ * p.x + d_ * p.y + ty_, p.t};
}

void AffineTransform::ApplyInPlace(double& x, double& y) const {
  const double nx = a_ * x + b_ * y + tx_;
  const double ny = c_ * x + d_ * y + ty_;
  x = nx;
  y = ny;
}

Gesture AffineTransform::Apply(const Gesture& g) const {
  std::vector<TimedPoint> out;
  out.reserve(g.size());
  for (const TimedPoint& p : g) {
    out.push_back(Apply(p));
  }
  return Gesture(std::move(out));
}

Gesture RebaseTime(const Gesture& g, double t0) {
  if (g.empty()) {
    return g;
  }
  const double shift = t0 - g.front().t;
  std::vector<TimedPoint> out;
  out.reserve(g.size());
  for (const TimedPoint& p : g) {
    out.push_back(TimedPoint{p.x, p.y, p.t + shift});
  }
  return Gesture(std::move(out));
}

Gesture ScaleTempo(const Gesture& g, double factor) {
  if (g.empty()) {
    return g;
  }
  const double t0 = g.front().t;
  std::vector<TimedPoint> out;
  out.reserve(g.size());
  for (const TimedPoint& p : g) {
    out.push_back(TimedPoint{p.x, p.y, t0 + (p.t - t0) * factor});
  }
  return Gesture(std::move(out));
}

}  // namespace grandma::geom
