// The (x, y, t) input sample that every layer of the system consumes.
#ifndef GRANDMA_SRC_GEOM_POINT_H_
#define GRANDMA_SRC_GEOM_POINT_H_

#include <cmath>

namespace grandma::geom {

// A two-dimensional mouse/stylus point (x, y) that arrived at time t.
// Coordinates are in device-independent pixels; t is in milliseconds. The
// paper defines a gesture as a sequence of exactly these triples.
struct TimedPoint {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;  // milliseconds

  friend bool operator==(const TimedPoint&, const TimedPoint&) = default;
};

// Euclidean distance between the spatial parts of two points.
inline double Distance(const TimedPoint& a, const TimedPoint& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline double SquaredDistance(const TimedPoint& a, const TimedPoint& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  return dx * dx + dy * dy;
}

}  // namespace grandma::geom

#endif  // GRANDMA_SRC_GEOM_POINT_H_
