// Multi-contact input: one Contact is a single touch lifetime (finger or
// palm) — an id assigned at touch-down, a reported contact area, and the
// timed point sequence between down and up. A ContactGroup is everything a
// device reported during one multi-touch interaction (pinch, rotate, swipe,
// or a single finger plus a stray palm). This is the raw-device vocabulary:
// ids may chatter, areas may be palms, lifetimes may overlap arbitrarily.
// robust::ContactTracker turns a raw group into a repaired one; clean-geometry
// consumers (toolkit attribute computation, serve) run behind it.
#ifndef GRANDMA_SRC_GEOM_CONTACT_H_
#define GRANDMA_SRC_GEOM_CONTACT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/gesture.h"

namespace grandma::geom {

// One contact lifetime: down at stroke.front().t, up at stroke.back().t.
struct Contact {
  // Slot id assigned at touch-down. Unique within a group on a well-behaved
  // device; chattering hardware reuses or swaps ids, which is exactly what
  // the tracker repairs.
  std::int32_t id = 0;
  // Reported contact area in px^2 (touch-major ellipse, roughly). Fingertips
  // are ~40-90; palms are hundreds. 0 when the device does not report area.
  double area = 0.0;
  Gesture stroke;

  double StartTime() const { return stroke.empty() ? 0.0 : stroke.front().t; }
  double EndTime() const { return stroke.empty() ? 0.0 : stroke.back().t; }
  double Duration() const { return EndTime() - StartTime(); }

  friend bool operator==(const Contact&, const Contact&) = default;
};

// An unordered set of contact lifetimes from one interaction.
class ContactGroup {
 public:
  ContactGroup() = default;
  explicit ContactGroup(std::vector<Contact> contacts) : contacts_(std::move(contacts)) {}

  std::size_t size() const { return contacts_.size(); }
  bool empty() const { return contacts_.empty(); }

  const Contact& operator[](std::size_t i) const { return contacts_[i]; }
  Contact& operator[](std::size_t i) { return contacts_[i]; }
  const std::vector<Contact>& contacts() const { return contacts_; }
  std::vector<Contact>& contacts() { return contacts_; }

  void AddContact(Contact c) { contacts_.push_back(std::move(c)); }

  // Earliest touch-down across contacts; 0 when empty.
  double StartTime() const;
  // Latest touch-up across contacts; 0 when empty.
  double EndTime() const;
  double Duration() const { return EndTime() - StartTime(); }

  // Total points across all contacts.
  std::size_t TotalPoints() const;

  // Bounding box over every contact's points.
  BoundingBox Bounds() const;

  // A copy ordered by (start time, id). Attribute computation and the
  // tracker's pairwise passes require this deterministic order.
  ContactGroup Sorted() const;

  friend bool operator==(const ContactGroup&, const ContactGroup&) = default;

  std::string ToString() const;

 private:
  std::vector<Contact> contacts_;
};

}  // namespace grandma::geom

#endif  // GRANDMA_SRC_GEOM_CONTACT_H_
