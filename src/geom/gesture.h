// The Gesture type: an ordered sequence of timed points, plus the subgesture
// (prefix) operation that eager recognition is built on.
#ifndef GRANDMA_SRC_GEOM_GESTURE_H_
#define GRANDMA_SRC_GEOM_GESTURE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geom/point.h"

namespace grandma::geom {

// Axis-aligned bounding box.
struct BoundingBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double DiagonalLength() const;
  bool Contains(double x, double y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }

  friend bool operator==(const BoundingBox&, const BoundingBox&) = default;
};

// A single-stroke gesture g: points g_p = (x_p, y_p, t_p) for 0 <= p < |g|.
// Immutable-friendly value type; AppendPoint supports incremental collection.
class Gesture {
 public:
  Gesture() = default;
  explicit Gesture(std::vector<TimedPoint> points) : points_(std::move(points)) {}

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const TimedPoint& operator[](std::size_t i) const { return points_[i]; }
  const TimedPoint& front() const { return points_.front(); }
  const TimedPoint& back() const { return points_.back(); }

  const std::vector<TimedPoint>& points() const { return points_; }
  std::span<const TimedPoint> span() const { return points_; }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

  void AppendPoint(const TimedPoint& p) { points_.push_back(p); }
  void Clear() { points_.clear(); }
  void Reserve(std::size_t n) { points_.reserve(n); }

  // The i-th subgesture g[i]: the first i points of g. Throws
  // std::out_of_range when i > size(), matching the paper's "undefined when
  // i > |g|".
  Gesture Subgesture(std::size_t i) const;

  // Total path length: sum of segment lengths.
  double PathLength() const;

  // Duration t_{P-1} - t_0 in milliseconds; 0 for gestures of < 2 points.
  double Duration() const;

  // Bounding box of the points; all-zero for an empty gesture.
  BoundingBox Bounds() const;

  // True when any point lies within `radius` of (x, y). Used by GDP's
  // touch-to-add/delete manipulation semantics and by enclosure tests.
  bool PassesNear(double x, double y, double radius) const;

  friend bool operator==(const Gesture&, const Gesture&) = default;

  std::string ToString() const;

 private:
  std::vector<TimedPoint> points_;
};

// Ray-casting point-in-polygon test over the gesture's points interpreted as
// a closed polygon. GDP's `group` gesture uses this to find enclosed objects.
bool EnclosesPoint(const Gesture& g, double x, double y);

// The centroid of the gesture's points; (0,0) for an empty gesture.
TimedPoint Centroid(const Gesture& g);

}  // namespace grandma::geom

#endif  // GRANDMA_SRC_GEOM_GESTURE_H_
