#include "geom/filter.h"

namespace grandma::geom {

bool MinDistanceFilter::Accept(const TimedPoint& p) {
  if (accepted_count_ > 0 && Distance(last_accepted_, p) < min_distance_) {
    ++rejected_count_;
    return false;
  }
  last_accepted_ = p;
  ++accepted_count_;
  return true;
}

void MinDistanceFilter::Reset() {
  last_accepted_ = TimedPoint{};
  accepted_count_ = 0;
  rejected_count_ = 0;
}

Gesture FilterMinDistance(const Gesture& g, double min_distance) {
  MinDistanceFilter filter(min_distance);
  Gesture out;
  out.Reserve(g.size());
  for (const TimedPoint& p : g) {
    if (filter.Accept(p)) {
      out.AppendPoint(p);
    }
  }
  return out;
}

Gesture FilterMonotonicTime(const Gesture& g) {
  Gesture out;
  out.Reserve(g.size());
  for (const TimedPoint& p : g) {
    if (out.empty() || p.t > out.back().t) {
      out.AppendPoint(p);
    }
  }
  return out;
}

}  // namespace grandma::geom
