// Resampling utilities. The recognizer itself never requires resampling (the
// features are sampling-robust by design), but the synthetic generator uses
// arc-length resampling to emit realistic, evenly spaced device points, and
// tests use it to verify the features' sampling robustness.
#ifndef GRANDMA_SRC_GEOM_RESAMPLE_H_
#define GRANDMA_SRC_GEOM_RESAMPLE_H_

#include <cstddef>

#include "geom/gesture.h"

namespace grandma::geom {

// Resamples `g` to exactly `n` points spaced evenly along the path, linearly
// interpolating positions and time stamps. Requires n >= 2 and g.size() >= 2.
Gesture ResampleByCount(const Gesture& g, std::size_t n);

// Resamples `g` to points spaced `spacing` apart along the path (the final
// point is always kept). Requires spacing > 0 and g.size() >= 2.
Gesture ResampleBySpacing(const Gesture& g, double spacing);

// Resamples `g` to one point every `dt` milliseconds (plus the final point),
// interpolating along the original trajectory. Requires dt > 0, g.size() >= 2
// and strictly increasing time stamps.
Gesture ResampleByTime(const Gesture& g, double dt);

}  // namespace grandma::geom

#endif  // GRANDMA_SRC_GEOM_RESAMPLE_H_
