// Affine transforms over gestures. The synthetic generator uses these to add
// per-example rotation/scale/translation variation, and GDP's rotate-scale
// manipulation uses them to reposition shapes.
#ifndef GRANDMA_SRC_GEOM_TRANSFORM_H_
#define GRANDMA_SRC_GEOM_TRANSFORM_H_

#include "geom/gesture.h"
#include "geom/point.h"

namespace grandma::geom {

// 2D affine transform: p' = [a b; c d] p + (tx, ty). Time is untouched.
class AffineTransform {
 public:
  // Identity.
  AffineTransform() = default;
  AffineTransform(double a, double b, double c, double d, double tx, double ty)
      : a_(a), b_(b), c_(c), d_(d), tx_(tx), ty_(ty) {}

  static AffineTransform Translation(double dx, double dy);
  // Counterclockwise rotation by `radians` about (cx, cy).
  static AffineTransform Rotation(double radians, double cx = 0.0, double cy = 0.0);
  // Uniform scale about (cx, cy).
  static AffineTransform Scale(double s, double cx = 0.0, double cy = 0.0);
  // Non-uniform scale about (cx, cy).
  static AffineTransform Scale(double sx, double sy, double cx, double cy);

  // Composition: (*this) applied after `first` — Apply(Compose(f), p) ==
  // Apply(*this, Apply(f, p)).
  AffineTransform Compose(const AffineTransform& first) const;

  TimedPoint Apply(const TimedPoint& p) const;
  void ApplyInPlace(double& x, double& y) const;
  Gesture Apply(const Gesture& g) const;

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }
  double d() const { return d_; }
  double tx() const { return tx_; }
  double ty() const { return ty_; }

 private:
  double a_ = 1.0, b_ = 0.0, c_ = 0.0, d_ = 1.0;
  double tx_ = 0.0, ty_ = 0.0;
};

// Uniformly shifts the time stamps of `g` so the first point is at `t0`,
// preserving inter-point deltas. Returns an empty gesture unchanged.
Gesture RebaseTime(const Gesture& g, double t0);

// Scales the time axis by `factor` about the first point (tempo change).
Gesture ScaleTempo(const Gesture& g, double factor);

}  // namespace grandma::geom

#endif  // GRANDMA_SRC_GEOM_TRANSFORM_H_
