#include "geom/gesture.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace grandma::geom {

double BoundingBox::DiagonalLength() const {
  const double w = width();
  const double h = height();
  return std::sqrt(w * w + h * h);
}

Gesture Gesture::Subgesture(std::size_t i) const {
  if (i > points_.size()) {
    throw std::out_of_range("Gesture::Subgesture: prefix longer than gesture");
  }
  return Gesture(std::vector<TimedPoint>(points_.begin(), points_.begin() + i));
}

double Gesture::PathLength() const {
  double length = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    length += Distance(points_[i - 1], points_[i]);
  }
  return length;
}

double Gesture::Duration() const {
  if (points_.size() < 2) {
    return 0.0;
  }
  return points_.back().t - points_.front().t;
}

BoundingBox Gesture::Bounds() const {
  if (points_.empty()) {
    return BoundingBox{};
  }
  BoundingBox box{points_[0].x, points_[0].y, points_[0].x, points_[0].y};
  for (const TimedPoint& p : points_) {
    box.min_x = std::min(box.min_x, p.x);
    box.min_y = std::min(box.min_y, p.y);
    box.max_x = std::max(box.max_x, p.x);
    box.max_y = std::max(box.max_y, p.y);
  }
  return box;
}

bool Gesture::PassesNear(double x, double y, double radius) const {
  const double r2 = radius * radius;
  const TimedPoint target{x, y, 0.0};
  for (const TimedPoint& p : points_) {
    if (SquaredDistance(p, target) <= r2) {
      return true;
    }
  }
  // Also test segment interiors so fast mouse motion cannot jump over the
  // target between samples.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const TimedPoint& a = points_[i - 1];
    const TimedPoint& b = points_[i];
    const double abx = b.x - a.x;
    const double aby = b.y - a.y;
    const double len2 = abx * abx + aby * aby;
    if (len2 == 0.0) {
      continue;
    }
    double u = ((x - a.x) * abx + (y - a.y) * aby) / len2;
    u = std::clamp(u, 0.0, 1.0);
    const double px = a.x + u * abx;
    const double py = a.y + u * aby;
    const double dx = x - px;
    const double dy = y - py;
    if (dx * dx + dy * dy <= r2) {
      return true;
    }
  }
  return false;
}

std::string Gesture::ToString() const {
  std::ostringstream os;
  os << "Gesture{" << points_.size() << " pts";
  if (!points_.empty()) {
    os << ", (" << points_.front().x << "," << points_.front().y << ")..(" << points_.back().x
       << "," << points_.back().y << ")";
  }
  os << "}";
  return os.str();
}

bool EnclosesPoint(const Gesture& g, double x, double y) {
  const auto& pts = g.points();
  if (pts.size() < 3) {
    return false;
  }
  bool inside = false;
  // Standard even-odd ray cast against the closed polygon (last -> first edge
  // included), robust to the open-ended strokes users actually draw.
  for (std::size_t i = 0, j = pts.size() - 1; i < pts.size(); j = i++) {
    const bool crosses = (pts[i].y > y) != (pts[j].y > y);
    if (!crosses) {
      continue;
    }
    const double x_at_y =
        pts[j].x + (pts[i].x - pts[j].x) * (y - pts[j].y) / (pts[i].y - pts[j].y);
    if (x < x_at_y) {
      inside = !inside;
    }
  }
  return inside;
}

TimedPoint Centroid(const Gesture& g) {
  if (g.empty()) {
    return TimedPoint{};
  }
  double sx = 0.0;
  double sy = 0.0;
  double st = 0.0;
  for (const TimedPoint& p : g) {
    sx += p.x;
    sy += p.y;
    st += p.t;
  }
  const double n = static_cast<double>(g.size());
  return TimedPoint{sx / n, sy / n, st / n};
}

}  // namespace grandma::geom
