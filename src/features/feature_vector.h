// The feature-vector representation of a gesture: Rubine's thirteen features,
// each updatable in constant time per mouse point so arbitrarily long
// gestures can be handled (Section 4.2 of the paper).
#ifndef GRANDMA_SRC_FEATURES_FEATURE_VECTOR_H_
#define GRANDMA_SRC_FEATURES_FEATURE_VECTOR_H_

#include <array>
#include <cstddef>
#include <string_view>

#include "linalg/vec_view.h"
#include "linalg/vector.h"

namespace grandma::features {

// Indices of the individual features within a feature vector. Numbering
// follows Rubine's f1..f13 (the USENIX paper says "currently twelve"; the
// companion SIGGRAPH paper and dissertation define thirteen — we implement
// all thirteen and let callers mask any subset out).
enum Feature : std::size_t {
  kInitialCos = 0,       // f1: cosine of the initial angle (at the third point)
  kInitialSin = 1,       // f2: sine of the initial angle
  kBboxDiagonal = 2,     // f3: length of the bounding-box diagonal
  kBboxAngle = 3,        // f4: angle of the bounding-box diagonal
  kStartEndDistance = 4, // f5: distance between first and last point
  kStartEndCos = 5,      // f6: cosine of the angle between first and last point
  kStartEndSin = 6,      // f7: sine of that angle
  kPathLength = 7,       // f8: total gesture length
  kTotalAngle = 8,       // f9: total (signed) angle traversed
  kTotalAbsAngle = 9,    // f10: sum of |turning angle|
  kSharpness = 10,       // f11: sum of squared turning angle
  kMaxSpeedSquared = 11, // f12: maximum squared speed
  kDuration = 12,        // f13: gesture duration
};

inline constexpr std::size_t kNumFeatures = 13;

// Short identifier (e.g. "f9_total_angle") for diagnostics and serialization.
std::string_view FeatureName(Feature f);

// One-line human description of the feature.
std::string_view FeatureDescription(Feature f);

// A mask selecting a subset of the thirteen features; used to train
// classifiers on reduced feature sets (e.g. dropping the time-dependent f12,
// f13 for synthetic data sweeps, as Rubine suggests for some devices).
class FeatureMask {
 public:
  // All thirteen features enabled.
  constexpr FeatureMask() { enabled_.fill(true); }

  static FeatureMask All() { return FeatureMask(); }
  // Geometry-only: every feature except max-speed and duration.
  static FeatureMask GeometryOnly();

  void set(Feature f, bool enabled) { enabled_[f] = enabled; }
  bool test(Feature f) const { return enabled_[f]; }

  // Number of enabled features.
  std::size_t count() const;

  // Projects a full 13-entry vector onto the enabled features, in index order.
  linalg::Vector Project(const linalg::Vector& full) const;

  // Allocation-free flavor for the per-point kernel: writes the enabled
  // features of `full` (which must have kNumFeatures entries) into `out`
  // (which must have count() entries). Throws std::invalid_argument on a
  // size mismatch, exactly like Project.
  void ProjectInto(linalg::VecView full, linalg::MutVecView out) const;

  friend bool operator==(const FeatureMask&, const FeatureMask&) = default;

 private:
  std::array<bool, kNumFeatures> enabled_{};
};

}  // namespace grandma::features

#endif  // GRANDMA_SRC_FEATURES_FEATURE_VECTOR_H_
