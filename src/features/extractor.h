// Incremental feature extraction: every feature is maintained in O(1) work
// per mouse point, which is what makes both arbitrarily long gestures and
// per-point eager recognition affordable (the paper reports 0.5 ms per point
// on a MicroVAX II for exactly this update).
#ifndef GRANDMA_SRC_FEATURES_EXTRACTOR_H_
#define GRANDMA_SRC_FEATURES_EXTRACTOR_H_

#include <cstddef>

#include "features/feature_vector.h"
#include "geom/gesture.h"
#include "geom/point.h"
#include "linalg/vec_view.h"
#include "linalg/vector.h"

namespace grandma::features {

// Streaming extractor. Usage:
//   FeatureExtractor fx;
//   for each point p: fx.AddPoint(p);
//   linalg::Vector f = fx.Features();
// Features() may be called after every AddPoint (eager recognition does); it
// is O(kNumFeatures), independent of how many points have been seen.
//
// Gestures with fewer than kMinPoints points do not carry enough geometry for
// the angle features; Features() is still defined (degenerate features are 0)
// so that very short gestures such as GDP's `dot` remain classifiable.
//
// Thread-safety: none — an extractor is per-stroke mutable state owned by a
// single thread. Distinct extractors are independent (no shared statics).
class FeatureExtractor {
 public:
  // Minimum number of points for a fully defined feature vector.
  static constexpr std::size_t kMinPoints = 3;

  FeatureExtractor() = default;

  // Folds one point into the running state. Points should already be
  // min-distance filtered (see geom::MinDistanceFilter); the extractor itself
  // accepts any input, including coincident points.
  void AddPoint(const geom::TimedPoint& p);

  // Number of points seen so far.
  std::size_t point_count() const { return count_; }

  // Snapshot of the current 13-entry feature vector. Allocates the result;
  // the per-point hot path uses FeaturesInto instead.
  linalg::Vector Features() const;

  // In-place snapshot for the per-point kernel: writes all kNumFeatures
  // entries into `out` (typically a view over a caller-owned
  // std::array<double, kNumFeatures>); no heap. Throws std::invalid_argument
  // when out.size() != kNumFeatures. Values are bit-identical to Features().
  void FeaturesInto(linalg::MutVecView out) const;

  // Restart for a new gesture.
  void Reset();

 private:
  std::size_t count_ = 0;

  // Anchors.
  double x0_ = 0.0, y0_ = 0.0, t0_ = 0.0;   // first point
  double x2_ = 0.0, y2_ = 0.0;              // third point (defines f1/f2)
  double last_x_ = 0.0, last_y_ = 0.0, last_t_ = 0.0;

  // Bounding box.
  double min_x_ = 0.0, max_x_ = 0.0, min_y_ = 0.0, max_y_ = 0.0;

  // Previous segment delta (for turning angles).
  double prev_dx_ = 0.0, prev_dy_ = 0.0;
  bool have_prev_delta_ = false;

  // Running sums.
  double path_length_ = 0.0;
  double total_angle_ = 0.0;
  double total_abs_angle_ = 0.0;
  double sharpness_ = 0.0;
  double max_speed_sq_ = 0.0;
};

// Convenience: extract the feature vector of a complete gesture.
linalg::Vector ExtractFeatures(const geom::Gesture& g);

// Extracts features of every prefix g[i] for i in [kMinPoints, |g|]; the
// result's entry k corresponds to prefix length kMinPoints + k. This is the
// bulk operation the eager trainer runs over every training example, done in
// O(|g|) total (not O(|g|^2)) thanks to the incremental extractor.
std::vector<linalg::Vector> ExtractPrefixFeatures(const geom::Gesture& g);

}  // namespace grandma::features

#endif  // GRANDMA_SRC_FEATURES_EXTRACTOR_H_
