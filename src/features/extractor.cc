#include "features/extractor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace grandma::features {

void FeatureExtractor::AddPoint(const geom::TimedPoint& p) {
  if (count_ == 0) {
    x0_ = p.x;
    y0_ = p.y;
    t0_ = p.t;
    min_x_ = max_x_ = p.x;
    min_y_ = max_y_ = p.y;
    last_x_ = p.x;
    last_y_ = p.y;
    last_t_ = p.t;
    count_ = 1;
    return;
  }

  if (count_ == 2) {
    // This point is the third: it anchors the initial-angle features. Rubine
    // measures the initial direction at the third point because the second
    // point of a stroke is dominated by sensor noise.
    x2_ = p.x;
    y2_ = p.y;
  }

  const double dx = p.x - last_x_;
  const double dy = p.y - last_y_;
  const double dt = p.t - last_t_;

  path_length_ += std::sqrt(dx * dx + dy * dy);

  if (have_prev_delta_) {
    // Turning angle between the previous and current segment. The printed
    // formula in the paper uses arctan of (cross/dot); like Rubine's own
    // implementation we use atan2 of (cross, dot), the true turning angle in
    // (-pi, pi], which behaves correctly at direction reversals.
    const double cross = prev_dx_ * dy - prev_dy_ * dx;
    const double dot = dx * prev_dx_ + dy * prev_dy_;
    if (cross != 0.0 || dot != 0.0) {
      const double theta = std::atan2(cross, dot);
      total_angle_ += theta;
      total_abs_angle_ += std::abs(theta);
      sharpness_ += theta * theta;
    }
  }
  if (dx != 0.0 || dy != 0.0) {
    prev_dx_ = dx;
    prev_dy_ = dy;
    have_prev_delta_ = true;
  }

  // Speed sample only when the segment has a positive, finite dt: duplicate
  // timestamps (dt == 0) would divide to Inf, and reordered events (dt < 0)
  // or a NaN clock would poison max_speed_sq_ for the rest of the gesture.
  if (dt > 0.0 && std::isfinite(dt)) {
    const double speed_sq = (dx * dx + dy * dy) / (dt * dt);
    if (std::isfinite(speed_sq)) {
      max_speed_sq_ = std::max(max_speed_sq_, speed_sq);
    }
  }

  min_x_ = std::min(min_x_, p.x);
  max_x_ = std::max(max_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_y_ = std::max(max_y_, p.y);

  last_x_ = p.x;
  last_y_ = p.y;
  last_t_ = p.t;
  ++count_;
}

linalg::Vector FeatureExtractor::Features() const {
  linalg::Vector f(kNumFeatures);
  FeaturesInto(f.view());
  return f;
}

void FeatureExtractor::FeaturesInto(linalg::MutVecView f) const {
  TRACE_SPAN_FINE("features.snapshot");
  if (f.size() != kNumFeatures) {
    throw std::invalid_argument("FeatureExtractor::FeaturesInto expects a 13-entry view");
  }
  linalg::Fill(f, 0.0);
  if (count_ == 0) {
    return;
  }

  // f1, f2: initial angle at the third point.
  if (count_ >= kMinPoints) {
    const double dx = x2_ - x0_;
    const double dy = y2_ - y0_;
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d > 0.0) {
      f[kInitialCos] = dx / d;
      f[kInitialSin] = dy / d;
    }
  }

  // f3, f4: bounding-box diagonal.
  const double bw = max_x_ - min_x_;
  const double bh = max_y_ - min_y_;
  f[kBboxDiagonal] = std::sqrt(bw * bw + bh * bh);
  if (bw != 0.0 || bh != 0.0) {
    f[kBboxAngle] = std::atan2(bh, bw);
  }

  // f5, f6, f7: first-to-last displacement.
  const double ex = last_x_ - x0_;
  const double ey = last_y_ - y0_;
  const double e = std::sqrt(ex * ex + ey * ey);
  f[kStartEndDistance] = e;
  if (e > 0.0) {
    f[kStartEndCos] = ex / e;
    f[kStartEndSin] = ey / e;
  }

  f[kPathLength] = path_length_;
  f[kTotalAngle] = total_angle_;
  f[kTotalAbsAngle] = total_abs_angle_;
  f[kSharpness] = sharpness_;
  f[kMaxSpeedSquared] = max_speed_sq_;
  f[kDuration] = last_t_ - t0_;
}

void FeatureExtractor::Reset() { *this = FeatureExtractor(); }

linalg::Vector ExtractFeatures(const geom::Gesture& g) {
  TRACE_SPAN("features.extract");
  FeatureExtractor fx;
  for (const geom::TimedPoint& p : g) {
    fx.AddPoint(p);
  }
  return fx.Features();
}

std::vector<linalg::Vector> ExtractPrefixFeatures(const geom::Gesture& g) {
  TRACE_SPAN("features.prefixes");
  std::vector<linalg::Vector> out;
  if (g.size() < FeatureExtractor::kMinPoints) {
    return out;
  }
  out.reserve(g.size() - FeatureExtractor::kMinPoints + 1);
  FeatureExtractor fx;
  for (std::size_t i = 0; i < g.size(); ++i) {
    fx.AddPoint(g[i]);
    if (fx.point_count() >= FeatureExtractor::kMinPoints) {
      out.push_back(fx.Features());
    }
  }
  return out;
}

}  // namespace grandma::features
