#include "features/feature_vector.h"

#include <stdexcept>

namespace grandma::features {

std::string_view FeatureName(Feature f) {
  switch (f) {
    case kInitialCos:
      return "f1_initial_cos";
    case kInitialSin:
      return "f2_initial_sin";
    case kBboxDiagonal:
      return "f3_bbox_diagonal";
    case kBboxAngle:
      return "f4_bbox_angle";
    case kStartEndDistance:
      return "f5_start_end_distance";
    case kStartEndCos:
      return "f6_start_end_cos";
    case kStartEndSin:
      return "f7_start_end_sin";
    case kPathLength:
      return "f8_path_length";
    case kTotalAngle:
      return "f9_total_angle";
    case kTotalAbsAngle:
      return "f10_total_abs_angle";
    case kSharpness:
      return "f11_sharpness";
    case kMaxSpeedSquared:
      return "f12_max_speed_sq";
    case kDuration:
      return "f13_duration";
  }
  throw std::invalid_argument("FeatureName: bad feature index");
}

std::string_view FeatureDescription(Feature f) {
  switch (f) {
    case kInitialCos:
      return "cosine of the initial stroke angle, measured at the third point";
    case kInitialSin:
      return "sine of the initial stroke angle, measured at the third point";
    case kBboxDiagonal:
      return "length of the diagonal of the bounding box";
    case kBboxAngle:
      return "angle of the bounding-box diagonal";
    case kStartEndDistance:
      return "distance between the first and last points";
    case kStartEndCos:
      return "cosine of the angle from the first to the last point";
    case kStartEndSin:
      return "sine of the angle from the first to the last point";
    case kPathLength:
      return "total arc length of the stroke";
    case kTotalAngle:
      return "sum of signed turning angles along the stroke";
    case kTotalAbsAngle:
      return "sum of absolute turning angles along the stroke";
    case kSharpness:
      return "sum of squared turning angles (sharpness)";
    case kMaxSpeedSquared:
      return "maximum squared speed between consecutive points";
    case kDuration:
      return "total stroke duration in milliseconds";
  }
  throw std::invalid_argument("FeatureDescription: bad feature index");
}

FeatureMask FeatureMask::GeometryOnly() {
  FeatureMask mask;
  mask.set(kMaxSpeedSquared, false);
  mask.set(kDuration, false);
  return mask;
}

std::size_t FeatureMask::count() const {
  std::size_t n = 0;
  for (bool b : enabled_) {
    n += b ? 1 : 0;
  }
  return n;
}

linalg::Vector FeatureMask::Project(const linalg::Vector& full) const {
  linalg::Vector out(count());
  ProjectInto(full.view(), out.view());
  return out;
}

void FeatureMask::ProjectInto(linalg::VecView full, linalg::MutVecView out) const {
  if (full.size() != kNumFeatures) {
    throw std::invalid_argument("FeatureMask::Project expects a 13-entry vector");
  }
  if (out.size() != count()) {
    throw std::invalid_argument("FeatureMask::ProjectInto: output size != enabled count");
  }
  std::size_t j = 0;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (enabled_[i]) {
      out[j++] = full[i];
    }
  }
}

}  // namespace grandma::features
