#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace grandma::obs {

namespace {

// Name interning table. Fixed capacity, stores the literal pointers only —
// RegisterName never allocates. Guarded by its own mutex (cold path: each
// TRACE_SPAN site runs it once, at static-local init).
struct NameTable {
  std::mutex mu;
  std::array<const char*, kMaxNames> names{};
  std::size_t count = 0;
};

NameTable& Names() {
  static NameTable table;
  return table;
}

// Buffer registry. Owns every TraceBuffer ever acquired; buffers of exited
// threads are kept (their spans stay collectible) until ResetAll() zeroes
// them, at which point new threads recycle them instead of allocating.
struct BufferRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::uint32_t next_thread_index = 0;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry;  // never destroyed:
  // worker threads may still release buffers during process teardown.
  return *registry;
}

// Thread-exit hook: marks this thread's buffer as ownerless so ResetAll can
// recycle it. The spans survive (collectors read them after join).
struct ThreadSlot {
  TraceBuffer* buffer = nullptr;
  ~ThreadSlot() {
    if (buffer != nullptr) {
      buffer->owner_alive.store(false, std::memory_order_release);
      internal::tls_buffer = nullptr;
    }
  }
};

thread_local ThreadSlot t_slot;

}  // namespace

NameId RegisterName(const char* literal) {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  for (std::size_t i = 0; i < table.count; ++i) {
    if (table.names[i] == literal || std::strcmp(table.names[i], literal) == 0) {
      return static_cast<NameId>(i);
    }
  }
  if (table.count >= kMaxNames) {
    throw std::length_error("obs::RegisterName: kMaxNames span names exceeded");
  }
  table.names[table.count] = literal;
  return static_cast<NameId>(table.count++);
}

const char* NameOf(NameId id) {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  return id < table.count ? table.names[id] : "?";
}

std::size_t NumNames() {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.count;
}

namespace internal {

TraceBuffer& AcquireThreadBuffer() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  TraceBuffer* buffer = nullptr;
  for (auto& b : registry.buffers) {
    // Recyclable: owner exited AND contents already harvested (ResetAll).
    if (!b->owner_alive.load(std::memory_order_acquire) &&
        b->cursor.load(std::memory_order_acquire) == 0) {
      buffer = b.get();
      break;
    }
  }
  if (buffer == nullptr) {
    registry.buffers.push_back(std::make_unique<TraceBuffer>());
    buffer = registry.buffers.back().get();
  }
  buffer->owner_alive.store(true, std::memory_order_relaxed);
  buffer->thread_index = registry.next_thread_index++;
  buffer->depth = 0;
  buffer->current_session = 0;
  buffer->virtual_tick = 0;
  t_slot.buffer = buffer;
  tls_buffer = buffer;
  return *buffer;
}

}  // namespace internal

void ResetAll() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& b : registry.buffers) {
    b->depth = 0;
    b->current_session = 0;
    b->virtual_tick = 0;
    b->cursor.store(0, std::memory_order_release);
  }
  for (std::size_t id = 0; id < kMaxNames; ++id) {
    internal::StageHistogram& h = internal::g_stages[id];
    for (auto& bucket : h.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<ThreadTrace> CollectAll() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<ThreadTrace> out;
  for (const auto& b : registry.buffers) {
    const std::uint64_t cursor = b->cursor.load(std::memory_order_acquire);
    if (cursor == 0) {
      continue;
    }
    ThreadTrace t;
    t.thread_index = b->thread_index;
    t.dropped = cursor > kSpanCapacity ? cursor - kSpanCapacity : 0;
    const std::uint64_t first = cursor > kSpanCapacity ? cursor - kSpanCapacity : 0;
    t.spans.reserve(static_cast<std::size_t>(cursor - first));
    for (std::uint64_t seq = first; seq < cursor; ++seq) {
      t.spans.push_back(b->slots[seq % kSpanCapacity]);
    }
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(), [](const ThreadTrace& a, const ThreadTrace& b2) {
    return a.thread_index < b2.thread_index;
  });
  return out;
}

}  // namespace grandma::obs
