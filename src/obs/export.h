// Trace exporters: the chrome://tracing JSON format (load the file in
// chrome://tracing or https://ui.perfetto.dev) and flat per-stage latency
// summaries (p50/p95/p99) that serve::ServerMetrics merges into its snapshot.
#ifndef GRANDMA_SRC_OBS_EXPORT_H_
#define GRANDMA_SRC_OBS_EXPORT_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace grandma::obs {

// One stage's duration distribution, snapshot form. Units are whatever the
// clock produced: nanoseconds under ClockMode::kReal, virtual ticks under
// kVirtual (the queue.wait stage is always real nanoseconds — see
// RecordManualSpan). Percentiles are bucket upper bounds: conservative,
// never under-reported.
struct StageSummary {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  double mean = 0.0;

  std::string ToJson() const;
};

// Snapshot of every stage with at least one recorded span, in NameId order.
// Process-wide (stages aggregate across all threads and servers); safe to
// call while recording threads run (relaxed reads, point-in-time view).
std::vector<StageSummary> SnapshotStages();

// Snapshot of one stage by name (e.g. "queue.wait"), or nullopt when the
// stage never recorded a span (or tracing is compiled out / disabled). The
// single-stage query the overload harness uses to report the queue-wait
// percentile feed without snapshotting every stage.
std::optional<StageSummary> SnapshotStage(std::string_view name);

// Serializes `threads` (from CollectAll or CaptureTrace) as a chrome-trace
// JSON object. Thread ids are renumbered 0..N-1 in the order given, so the
// bytes do not depend on which threads traced earlier in the process — under
// the virtual clock the output is byte-stable across runs (the golden-trace
// test pins this).
void ExportChromeTrace(const std::vector<ThreadTrace>& threads, std::ostream& out);

// CollectAll() + ExportChromeTrace into a string. Same quiescence contract
// as CollectAll.
std::string ChromeTraceJson();

}  // namespace grandma::obs

#endif  // GRANDMA_SRC_OBS_EXPORT_H_
