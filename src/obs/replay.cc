#include "obs/replay.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace grandma::obs {

namespace {

// One span flattened to the fields structural comparison cares about.
struct SpanKey {
  const char* name;
  std::uint32_t depth;
  std::uint64_t session;
  std::uint64_t t_start;
  std::uint64_t t_end;

  friend bool operator==(const SpanKey&, const SpanKey&) = default;
};

bool KeyLess(const SpanKey& a, const SpanKey& b) {
  const int c = std::strcmp(a.name, b.name);
  if (c != 0) {
    return c < 0;
  }
  if (a.depth != b.depth) {
    return a.depth < b.depth;
  }
  if (a.session != b.session) {
    return a.session < b.session;
  }
  if (a.t_start != b.t_start) {
    return a.t_start < b.t_start;
  }
  return a.t_end < b.t_end;
}

using ThreadKey = std::vector<SpanKey>;

std::vector<ThreadKey> Canonicalize(const std::vector<ThreadTrace>& threads,
                                    bool with_timestamps) {
  std::vector<ThreadKey> out;
  out.reserve(threads.size());
  for (const ThreadTrace& t : threads) {
    ThreadKey key;
    key.reserve(t.spans.size());
    for (const Span& s : t.spans) {
      key.push_back(SpanKey{NameOf(s.name_id), s.depth, s.session,
                            with_timestamps ? s.t_start : 0,
                            with_timestamps ? s.t_end : 0});
    }
    out.push_back(std::move(key));
  }
  // Canonical thread order: lexicographic by span content. Threads with
  // identical content are interchangeable, so ties are harmless.
  std::sort(out.begin(), out.end(), [](const ThreadKey& a, const ThreadKey& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(), KeyLess);
  });
  return out;
}

std::string DescribeSpan(const SpanKey& s) {
  std::ostringstream out;
  out << s.name << " depth=" << s.depth << " session=" << s.session << " t=[" << s.t_start
      << "," << s.t_end << "]";
  return out.str();
}

}  // namespace

std::vector<ThreadTrace> CaptureTrace(const std::function<void()>& workload, Detail detail,
                                      ClockMode clock) {
  const bool was_enabled = TracingEnabled();
  const Detail prev_detail = CurrentDetail();
  const ClockMode prev_clock = CurrentClockMode();

  EnableTracing(false);
  ResetAll();
  SetDetail(detail);
  SetClockMode(clock);
  EnableTracing(true);

  workload();

  EnableTracing(false);
  std::vector<ThreadTrace> out = CollectAll();

  SetDetail(prev_detail);
  SetClockMode(prev_clock);
  EnableTracing(was_enabled);
  return out;
}

bool StructurallyEqual(const std::vector<ThreadTrace>& a, const std::vector<ThreadTrace>& b,
                       bool compare_timestamps, std::string* diff) {
  const std::vector<ThreadKey> ca = Canonicalize(a, compare_timestamps);
  const std::vector<ThreadKey> cb = Canonicalize(b, compare_timestamps);
  if (ca.size() != cb.size()) {
    if (diff != nullptr) {
      std::ostringstream out;
      out << "thread count differs: " << ca.size() << " vs " << cb.size();
      *diff = out.str();
    }
    return false;
  }
  for (std::size_t t = 0; t < ca.size(); ++t) {
    if (ca[t].size() != cb[t].size()) {
      if (diff != nullptr) {
        std::ostringstream out;
        out << "thread " << t << " span count differs: " << ca[t].size() << " vs "
            << cb[t].size();
        *diff = out.str();
      }
      return false;
    }
    for (std::size_t i = 0; i < ca[t].size(); ++i) {
      if (!(ca[t][i] == cb[t][i])) {
        if (diff != nullptr) {
          *diff = "thread " + std::to_string(t) + " span " + std::to_string(i) +
                  " differs: " + DescribeSpan(ca[t][i]) + " vs " + DescribeSpan(cb[t][i]);
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace grandma::obs
