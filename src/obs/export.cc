#include "obs/export.h"

#include <ostream>
#include <sstream>

namespace grandma::obs {

namespace {

std::uint64_t PercentileUpperBound(const std::array<std::uint64_t, kStageBuckets>& buckets,
                                   std::uint64_t count, double p) {
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kStageBuckets; ++b) {
    seen += buckets[b];
    if (seen > 0 && static_cast<double>(seen) >= target) {
      return internal::BucketUpperBound(b);
    }
  }
  return internal::BucketUpperBound(kStageBuckets - 1);
}

}  // namespace

std::string StageSummary::ToJson() const {
  std::ostringstream out;
  out << "{\"name\": \"" << name << "\", \"count\": " << count << ", \"p50\": " << p50
      << ", \"p95\": " << p95 << ", \"p99\": " << p99 << ", \"mean\": " << mean << "}";
  return out.str();
}

std::vector<StageSummary> SnapshotStages() {
  std::vector<StageSummary> out;
  const std::size_t names = NumNames();
  for (std::size_t id = 0; id < names && id < kMaxNames; ++id) {
    const internal::StageHistogram& h = internal::g_stages[id];
    // One coherent local copy per stage: count, percentiles, and mean all
    // derive from the same point-in-time bucket snapshot.
    std::array<std::uint64_t, kStageBuckets> buckets;
    std::uint64_t count = 0;
    double weighted = 0.0;
    for (std::uint32_t b = 0; b < kStageBuckets; ++b) {
      buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
      count += buckets[b];
      weighted += static_cast<double>(buckets[b]) *
                  static_cast<double>(internal::BucketUpperBound(b));
    }
    if (count == 0) {
      continue;
    }
    StageSummary s;
    s.name = NameOf(static_cast<NameId>(id));
    s.count = count;
    s.p50 = PercentileUpperBound(buckets, count, 0.50);
    s.p95 = PercentileUpperBound(buckets, count, 0.95);
    s.p99 = PercentileUpperBound(buckets, count, 0.99);
    // Bucket-upper-bound mean: conservative like the percentiles (within the
    // ~19% quarter-log2 bucket width of the true mean).
    s.mean = weighted / static_cast<double>(count);
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<StageSummary> SnapshotStage(std::string_view name) {
  // Linear over the (<= kMaxNames) interned stages; fine for a diagnostics
  // query. Reuses SnapshotStages so the coherence contract is identical.
  for (StageSummary& s : SnapshotStages()) {
    if (s.name == name) {
      return std::move(s);
    }
  }
  return std::nullopt;
}

void ExportChromeTrace(const std::vector<ThreadTrace>& threads, std::ostream& out) {
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  std::uint32_t tid = 0;
  for (const ThreadTrace& t : threads) {
    for (const Span& s : t.spans) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "  {\"name\": \"" << NameOf(s.name_id) << "\", \"cat\": \"grandma\", "
          << "\"ph\": \"X\", \"pid\": 0, \"tid\": " << tid << ", \"ts\": " << s.t_start
          << ", \"dur\": " << (s.t_end - s.t_start) << ", \"args\": {\"session\": " << s.session
          << ", \"seq\": " << s.seq << ", \"depth\": " << s.depth << "}}";
    }
    ++tid;
  }
  out << "\n]}\n";
}

std::string ChromeTraceJson() {
  std::ostringstream out;
  ExportChromeTrace(CollectAll(), out);
  return out.str();
}

}  // namespace grandma::obs
