// Span-based execution tracing for the recognition pipeline (distinct from
// io::EventTrace, which records *input* events for playback — this layer
// records *where time goes* while those inputs are processed).
//
// Design constraints, in order:
//   1. Zero heap allocations on the hot path. Every span lands in a
//      per-thread fixed-capacity ring buffer of POD Span records; the buffer
//      itself is acquired once per thread (warm-up) from a registry that
//      recycles buffers of exited threads.
//   2. Deterministic under the synth/event-queue harness. With the virtual
//      clock, timestamps are per-thread tick counters — two runs of the same
//      seeded workload produce byte-identical traces, which makes the trace
//      itself a correctness oracle (tests/obs_trace_replay_test.cc).
//   3. Compiles out entirely. Under -DGRANDMA_TRACING=OFF the TRACE_* macros
//      expand to nothing: no name registration, no enabled check, no code.
//   4. Race-free recording. Each buffer has exactly one writer (its owning
//      thread); records are published with a release store of the cursor.
//      Collectors (CollectAll) must run quiesced — after the traced threads
//      joined, which the serve layer's Shutdown() provides.
//
// Instrumentation vocabulary:
//   TRACE_SPAN("stage.name")        — coarse RAII span, always recorded when
//                                     tracing is enabled at runtime;
//   TRACE_SPAN_FINE("stage.name")   — per-point inner stage, recorded only at
//                                     Detail::kFine (keeps default-enabled
//                                     overhead within the 10% budget);
//   TRACE_SESSION_SCOPE(id)         — tags nested spans with a session id;
//   TRACE_MANUAL_SPAN(name, ns, id) — cross-thread duration measured
//                                     externally (the queue enqueue->dequeue
//                                     wait), recorded by the consumer.
#ifndef GRANDMA_SRC_OBS_TRACE_H_
#define GRANDMA_SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace grandma::obs {

// True when the TRACE_* macros expand to real instrumentation (the
// GRANDMA_TRACING cmake option). Tests use this to assert either direction:
// spans exist, or the macros provably vanished.
#if defined(GRANDMA_TRACING_ENABLED) && GRANDMA_TRACING_ENABLED
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

using NameId = std::uint32_t;

// Fixed capacities: the whole subsystem is sized at compile time so that
// recording never allocates. 64 distinct span names is ~4x what the pipeline
// uses; 16384 retained spans per thread covers several thousand points of
// fine-detail tracing before the ring wraps (wrapping drops the oldest
// records, never blocks or allocates).
inline constexpr std::size_t kMaxNames = 64;
inline constexpr std::size_t kSpanCapacity = 16384;
inline constexpr std::size_t kStageBuckets = 256;

// One completed span. POD, 48 bytes, written exactly once at span close.
struct Span {
  NameId name_id = 0;
  // Nesting depth at open (0 = top level on its thread).
  std::uint32_t depth = 0;
  // Session tag inherited from the innermost TRACE_SESSION_SCOPE (0 if none).
  std::uint64_t session = 0;
  // Per-thread record index, assigned at close; strictly increasing.
  std::uint64_t seq = 0;
  // Clock ticks: nanoseconds since an arbitrary epoch (real clock) or
  // per-thread virtual ticks (virtual clock). t_end >= t_start always.
  std::uint64_t t_start = 0;
  std::uint64_t t_end = 0;
};

enum class ClockMode : std::uint8_t {
  kReal,     // steady_clock nanoseconds — wall-time profiling
  kVirtual,  // per-thread tick counter — deterministic replay / golden traces
};

enum class Detail : std::uint8_t {
  kCoarse,  // TRACE_SPAN only (default; per-point cost is one span)
  kFine,    // also TRACE_SPAN_FINE (per-point inner stages)
};

// Per-thread span storage. The owning thread is the only writer of `slots`,
// `depth`, `current_session`, and `virtual_tick`; `cursor` publishes records
// to collectors with release/acquire. Heap-allocated once by the registry and
// recycled when the owning thread exits (see trace.cc).
struct TraceBuffer {
  std::array<Span, kSpanCapacity> slots{};
  // Records ever written (monotonic). slot(seq) = slots[seq % kSpanCapacity];
  // only the last min(cursor, kSpanCapacity) records are retained.
  std::atomic<std::uint64_t> cursor{0};
  std::uint32_t depth = 0;
  std::uint64_t current_session = 0;
  std::uint64_t virtual_tick = 0;
  // Registration-order identity of the owning thread (fresh on every acquire,
  // including buffer reuse).
  std::uint32_t thread_index = 0;
  std::atomic<bool> owner_alive{true};
};

namespace internal {

// Runtime switches, relaxed-loaded on the hot path. Inline so the enabled
// check compiles to one load + branch at every instrumentation site.
inline std::atomic<bool> g_enabled{false};
inline std::atomic<bool> g_fine{false};
inline std::atomic<bool> g_virtual{false};

inline thread_local TraceBuffer* tls_buffer = nullptr;

// Cold path: registers (or recycles) a buffer for this thread. Defined in
// trace.cc; allocates at most once per thread lifetime.
TraceBuffer& AcquireThreadBuffer();

inline TraceBuffer& ThisThreadBuffer() {
  TraceBuffer* b = tls_buffer;
  return b != nullptr ? *b : AcquireThreadBuffer();
}

inline std::uint64_t TickNow(TraceBuffer& buf) {
  if (g_virtual.load(std::memory_order_relaxed)) {
    return ++buf.virtual_tick;
  }
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

inline void WriteSpan(TraceBuffer& buf, NameId id, std::uint32_t depth, std::uint64_t t_start,
                      std::uint64_t t_end) {
  const std::uint64_t seq = buf.cursor.load(std::memory_order_relaxed);
  Span& s = buf.slots[seq % kSpanCapacity];
  s.name_id = id;
  s.depth = depth;
  s.session = buf.current_session;
  s.seq = seq;
  s.t_start = t_start;
  s.t_end = t_end;
  buf.cursor.store(seq + 1, std::memory_order_release);
}

// Quarter-log2 duration buckets: exact for 0..15, then four buckets per
// power of two (growth ~1.19x) up to 2^63. All bit ops — no float math on
// the recording path, unlike serve's log()-based histogram.
inline std::uint32_t BucketOf(std::uint64_t v) {
  if (v < 16) {
    return static_cast<std::uint32_t>(v);
  }
  const int k = 63 - std::countl_zero(v);
  return static_cast<std::uint32_t>(16 + 4 * (k - 4) + ((v >> (k - 2)) & 3));
}

// Inclusive upper bound of bucket `b` (inverse of BucketOf).
inline std::uint64_t BucketUpperBound(std::uint32_t b) {
  if (b < 16) {
    return b;
  }
  const std::uint32_t k = 4 + (b - 16) / 4;
  const std::uint64_t frac = (b - 16) % 4;
  return ((frac + 5) << (k - 2)) - 1;
}

// Process-wide per-stage duration histograms, indexed by NameId. Relaxed
// atomic increments: many recording threads, snapshot readers tolerate a
// point-in-time view. ~130 KB of .bss.
//
// Deliberately a bare bucket array: recording is exactly ONE relaxed RMW per
// span close (the 10% per-point overhead budget in bench/trace_profile.cc
// has no room for separate count/total counters). Count, percentiles, and
// the mean are all derived from the buckets at snapshot time
// (obs::SnapshotStages), which makes every derived statistic a conservative
// bucket-upper-bound figure.
struct StageHistogram {
  std::array<std::atomic<std::uint64_t>, kStageBuckets> buckets{};
};

inline std::array<StageHistogram, kMaxNames> g_stages{};

inline void RecordStage(NameId id, std::uint64_t duration) {
  g_stages[id].buckets[BucketOf(duration)].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

// --- Runtime control ------------------------------------------------------
// All safe to call from any thread, but flipping them mid-workload makes the
// trace a mixture; tests bracket workloads with enable/disable.

inline void EnableTracing(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}
inline bool TracingEnabled() { return internal::g_enabled.load(std::memory_order_relaxed); }

inline void SetDetail(Detail d) {
  internal::g_fine.store(d == Detail::kFine, std::memory_order_relaxed);
}
inline Detail CurrentDetail() {
  return internal::g_fine.load(std::memory_order_relaxed) ? Detail::kFine : Detail::kCoarse;
}

inline void SetClockMode(ClockMode m) {
  internal::g_virtual.store(m == ClockMode::kVirtual, std::memory_order_relaxed);
}
inline ClockMode CurrentClockMode() {
  return internal::g_virtual.load(std::memory_order_relaxed) ? ClockMode::kVirtual
                                                             : ClockMode::kReal;
}

// Interns a span-name literal; the same string from any site returns the same
// id. The string is NOT copied — pass string literals only. Throws
// std::length_error past kMaxNames. Cold (sites cache the id in a static).
NameId RegisterName(const char* literal);
const char* NameOf(NameId id);
std::size_t NumNames();

// Zeroes every registered buffer (cursor, depth, session, virtual clock) and
// the stage histograms, and makes buffers of exited threads reusable.
// Contract: no thread may be recording concurrently (quiesced).
void ResetAll();

// The retained spans of one thread, oldest first, in seq order.
struct ThreadTrace {
  std::uint32_t thread_index = 0;
  // Records overwritten by ring wrap (cursor - kSpanCapacity when positive).
  std::uint64_t dropped = 0;
  std::vector<Span> spans;
};

// Snapshot of every thread's retained spans (threads with none are skipped),
// sorted by thread_index. Contract: writers quiesced — call after the traced
// threads joined (serve::RecognitionServer::Shutdown) or from the only
// tracing thread.
std::vector<ThreadTrace> CollectAll();

// --- RAII recording -------------------------------------------------------

class ScopedSpan {
 public:
  struct FineTag {};

  explicit ScopedSpan(NameId id) {
    if (internal::g_enabled.load(std::memory_order_relaxed)) {
      Open(id);
    } else {
      buf_ = nullptr;
    }
  }

  ScopedSpan(NameId id, FineTag) {
    if (internal::g_enabled.load(std::memory_order_relaxed) &&
        internal::g_fine.load(std::memory_order_relaxed)) {
      Open(id);
    } else {
      buf_ = nullptr;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (buf_ == nullptr) {
      return;
    }
    const std::uint64_t t_end = internal::TickNow(*buf_);
    --buf_->depth;
    internal::WriteSpan(*buf_, id_, depth_, t_start_, t_end);
    internal::RecordStage(id_, t_end - t_start_);
  }

 private:
  void Open(NameId id) {
    buf_ = &internal::ThisThreadBuffer();
    id_ = id;
    depth_ = buf_->depth++;
    t_start_ = internal::TickNow(*buf_);
  }

  TraceBuffer* buf_;
  NameId id_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t t_start_ = 0;
};

// Tags every span recorded on this thread inside the scope with `session`.
class SessionScope {
 public:
  explicit SessionScope(std::uint64_t session) {
    if (!internal::g_enabled.load(std::memory_order_relaxed)) {
      buf_ = nullptr;
      return;
    }
    buf_ = &internal::ThisThreadBuffer();
    prev_ = buf_->current_session;
    buf_->current_session = session;
  }

  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

  ~SessionScope() {
    if (buf_ != nullptr) {
      buf_->current_session = prev_;
    }
  }

 private:
  TraceBuffer* buf_;
  std::uint64_t prev_ = 0;
};

// Records a span whose duration was measured externally (e.g. the
// enqueue->dequeue wait, timed across threads with the real clock by the
// server). Under the real clock the span is back-dated by `duration_ns`;
// under the virtual clock it is recorded at the consumer's current tick with
// zero tick extent (cross-thread tick arithmetic would be meaningless) while
// the histogram still accumulates the real nanoseconds.
inline void RecordManualSpan(NameId id, std::uint64_t duration_ns, std::uint64_t session) {
  if (!internal::g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  TraceBuffer& buf = internal::ThisThreadBuffer();
  const std::uint64_t t_end = internal::TickNow(buf);
  const std::uint64_t t_start = internal::g_virtual.load(std::memory_order_relaxed)
                                    ? t_end
                                    : (duration_ns <= t_end ? t_end - duration_ns : 0);
  const std::uint64_t saved = buf.current_session;
  buf.current_session = session;
  internal::WriteSpan(buf, id, buf.depth, t_start, t_end);
  buf.current_session = saved;
  internal::RecordStage(id, duration_ns);
}

}  // namespace grandma::obs

// --- Instrumentation macros ----------------------------------------------
// Each site caches its interned NameId in a function-local static (one guard
// load per pass after the first), then opens an RAII span. Under
// GRANDMA_TRACING=OFF every macro is a no-op statement and the names are
// never registered — the hot libraries contain no tracing code at all.

#define GRANDMA_OBS_CONCAT_(a, b) a##b
#define GRANDMA_OBS_CONCAT(a, b) GRANDMA_OBS_CONCAT_(a, b)

#if defined(GRANDMA_TRACING_ENABLED) && GRANDMA_TRACING_ENABLED

#define TRACE_SPAN(name_literal)                                                      \
  static const ::grandma::obs::NameId GRANDMA_OBS_CONCAT(grandma_obs_name_,          \
                                                         __LINE__) =                 \
      ::grandma::obs::RegisterName(name_literal);                                    \
  const ::grandma::obs::ScopedSpan GRANDMA_OBS_CONCAT(grandma_obs_span_, __LINE__)(  \
      GRANDMA_OBS_CONCAT(grandma_obs_name_, __LINE__))

#define TRACE_SPAN_FINE(name_literal)                                                \
  static const ::grandma::obs::NameId GRANDMA_OBS_CONCAT(grandma_obs_name_,          \
                                                         __LINE__) =                 \
      ::grandma::obs::RegisterName(name_literal);                                    \
  const ::grandma::obs::ScopedSpan GRANDMA_OBS_CONCAT(grandma_obs_span_, __LINE__)(  \
      GRANDMA_OBS_CONCAT(grandma_obs_name_, __LINE__),                               \
      ::grandma::obs::ScopedSpan::FineTag{})

#define TRACE_SESSION_SCOPE(session_id)                                              \
  const ::grandma::obs::SessionScope GRANDMA_OBS_CONCAT(grandma_obs_sess_,           \
                                                        __LINE__)(session_id)

#define TRACE_MANUAL_SPAN(name_literal, duration_ns, session_id)                     \
  do {                                                                               \
    static const ::grandma::obs::NameId grandma_obs_manual_name =                    \
        ::grandma::obs::RegisterName(name_literal);                                  \
    ::grandma::obs::RecordManualSpan(grandma_obs_manual_name, (duration_ns),         \
                                     (session_id));                                  \
  } while (0)

#else  // tracing compiled out: the macros vanish.

#define TRACE_SPAN(name_literal) static_cast<void>(0)
#define TRACE_SPAN_FINE(name_literal) static_cast<void>(0)
#define TRACE_SESSION_SCOPE(session_id) static_cast<void>(0)
#define TRACE_MANUAL_SPAN(name_literal, duration_ns, session_id) static_cast<void>(0)

#endif  // GRANDMA_TRACING_ENABLED

#endif  // GRANDMA_SRC_OBS_TRACE_H_
