// The trace-replay harness: runs a workload under a fresh deterministic
// tracing configuration and compares the resulting span trees structurally.
// Because the virtual clock makes per-thread timestamps a pure function of
// the work performed, two runs of the same seeded workload must produce
// IDENTICAL traces — any divergence (extra span, different nesting, shifted
// tick) is a real nondeterminism bug somewhere in the pipeline. Tracing
// thereby doubles as a correctness oracle (tests/obs_trace_replay_test.cc).
#ifndef GRANDMA_SRC_OBS_REPLAY_H_
#define GRANDMA_SRC_OBS_REPLAY_H_

#include <functional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace grandma::obs {

// Resets all trace state, runs `workload` with tracing enabled under the
// given detail/clock, restores the previous tracing configuration, and
// returns the collected per-thread spans. The workload must quiesce before
// returning (join any threads it spawned — a serve server's Shutdown, for
// example); buffers of those threads are still collected.
std::vector<ThreadTrace> CaptureTrace(const std::function<void()>& workload,
                                      Detail detail = Detail::kFine,
                                      ClockMode clock = ClockMode::kVirtual);

// Structural equality of two captures: same number of threads, and each
// thread's span sequence matches in name, depth, session, and (when
// `compare_timestamps`) virtual start/end ticks. Thread identity is
// canonicalized by sorting each capture's threads on their span content, so
// nondeterministic thread registration order does not produce false
// mismatches. On mismatch, `diff` (when non-null) receives a one-line
// description of the first difference.
bool StructurallyEqual(const std::vector<ThreadTrace>& a, const std::vector<ThreadTrace>& b,
                       bool compare_timestamps = true, std::string* diff = nullptr);

}  // namespace grandma::obs

#endif  // GRANDMA_SRC_OBS_REPLAY_H_
