#include "linalg/matrix.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace grandma::linalg {

namespace {
void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix shape mismatch in ") + op);
  }
}
}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix initializer rows have differing lengths");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    m(i, i) = d[i];
  }
  return m;
}

Matrix Matrix::Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      m(i, j) = a[i] * b[j];
    }
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at index out of range");
  }
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at index out of range");
  }
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  CheckSameShape(*this, rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += rhs.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  CheckSameShape(*this, rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= rhs.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) {
    v *= s;
  }
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Vector Matrix::Row(std::size_t r) const {
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    v[c] = (*this)(r, c);
  }
  return v;
}

Vector Matrix::Col(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    v[r] = (*this)(r, c);
  }
  return v;
}

double Matrix::MaxAbs() const {
  double max_abs = 0.0;
  for (double v : data_) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  return max_abs;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) {
    return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) {
        return false;
      }
    }
  }
  return true;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r != 0) {
      os << "; ";
    }
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) {
        os << ", ";
      }
      os << (*this)(r, c);
    }
  }
  os << "]";
  return os.str();
}

Vector Multiply(const Matrix& m, const Vector& x) {
  if (m.cols() != x.size()) {
    throw std::invalid_argument("Multiply(Matrix, Vector): dimension mismatch");
  }
  Vector y(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      sum += m(r, c) * x[c];
    }
    y[r] = sum;
  }
  return y;
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Multiply(Matrix, Matrix): dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

double QuadraticForm(const Vector& x, const Matrix& m, const Vector& y) {
  return QuadraticForm(x.view(), m, y.view());
}

double QuadraticForm(VecView x, const Matrix& m, VecView y) {
  if (m.rows() != x.size() || m.cols() != y.size()) {
    throw std::invalid_argument("QuadraticForm: dimension mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * Dot(m.RowView(i), y);
  }
  return sum;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace grandma::linalg
