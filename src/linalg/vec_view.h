// Non-owning views over contiguous double storage, plus the small dense
// kernels (dot / axpy / norm) the classify-time hot path runs on. This is the
// zero-allocation counterpart of linalg::Vector: training-time code keeps the
// owning, resizable Vector; the per-point recognition kernel works entirely
// on views into caller-owned, fixed-capacity scratch (see eager::Workspace).
//
// Views are cheap value types (pointer + length); pass them by value. Bounds
// and size agreement are assert-checked only — these functions sit inside the
// per-mouse-point loop, where the calling layer has already validated
// dimensions once per stroke (or once per call) and an exception check per
// element would be pure overhead.
//
// Thread-safety: a view is as safe as the storage it points at; distinct
// views over distinct storage are independent.
#ifndef GRANDMA_SRC_LINALG_VEC_VIEW_H_
#define GRANDMA_SRC_LINALG_VEC_VIEW_H_

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace grandma::linalg {

// Read-only view of `size` doubles starting at `data`.
class VecView {
 public:
  constexpr VecView() = default;
  constexpr VecView(const double* data, std::size_t size) : data_(data), size_(size) {}

  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const double* data() const { return data_; }

  double operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  constexpr const double* begin() const { return data_; }
  constexpr const double* end() const { return data_ + size_; }

  // Sub-view of the first `n` elements (n <= size()).
  VecView first(std::size_t n) const {
    assert(n <= size_);
    return VecView(data_, n);
  }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
};

// Mutable view; converts implicitly to VecView.
class MutVecView {
 public:
  constexpr MutVecView() = default;
  constexpr MutVecView(double* data, std::size_t size) : data_(data), size_(size) {}

  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr double* data() const { return data_; }

  double& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  constexpr double* begin() const { return data_; }
  constexpr double* end() const { return data_ + size_; }

  constexpr operator VecView() const { return VecView(data_, size_); }  // NOLINT(google-explicit-constructor)

  MutVecView first(std::size_t n) const {
    assert(n <= size_);
    return MutVecView(data_, n);
  }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

// Views over std::array scratch (the fixed-capacity backing the hot path
// uses); `n` defaults to the whole array, or views the first n slots.
template <std::size_t N>
inline MutVecView ViewOf(std::array<double, N>& a, std::size_t n = N) {
  assert(n <= N);
  return MutVecView(a.data(), n);
}
template <std::size_t N>
inline VecView ViewOf(const std::array<double, N>& a, std::size_t n = N) {
  assert(n <= N);
  return VecView(a.data(), n);
}

// --- Kernels -----------------------------------------------------------
// All size requirements are assert-checked (see file comment). Accumulation
// order matches the Vector-based equivalents element for element, so results
// are bit-identical to the owning API.

// Inner product; a.size() must equal b.size().
inline double Dot(VecView a, VecView b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

// y += alpha * x; sizes must match.
inline void Axpy(double alpha, VecView x, MutVecView y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

inline double SquaredNorm(VecView v) {
  double sum = 0.0;
  for (double x : v) {
    sum += x * x;
  }
  return sum;
}

inline double Norm(VecView v) { return std::sqrt(SquaredNorm(v)); }

inline void Fill(MutVecView v, double value) {
  for (double& x : v) {
    x = value;
  }
}

// dst = src; sizes must match.
inline void Copy(VecView src, MutVecView dst) {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = src[i];
  }
}

// dst = a - b, element-wise; all three sizes must match.
inline void Subtract(VecView a, VecView b, MutVecView dst) {
  assert(a.size() == b.size() && a.size() == dst.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    dst[i] = a[i] - b[i];
  }
}

}  // namespace grandma::linalg

#endif  // GRANDMA_SRC_LINALG_VEC_VIEW_H_
