// LU factorization with partial pivoting, and the solve/inverse/determinant
// operations classifier training needs.
#ifndef GRANDMA_SRC_LINALG_SOLVE_H_
#define GRANDMA_SRC_LINALG_SOLVE_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace grandma::linalg {

// The result of LU factorization with partial pivoting: P*A = L*U packed into
// one matrix (unit lower triangle implicit).
class LuDecomposition {
 public:
  // Factorizes `a` (must be square). Check ok() before using the results;
  // a singular matrix yields ok() == false.
  explicit LuDecomposition(const Matrix& a);

  bool ok() const { return ok_; }
  std::size_t dimension() const { return lu_.rows(); }

  // Solves A x = b. Requires ok().
  Vector Solve(const Vector& b) const;

  // Solves A X = B column-by-column. Requires ok().
  Matrix Solve(const Matrix& b) const;

  // Returns A^{-1}. Requires ok().
  Matrix Inverse() const;

  // det(A); defined (as 0 or the product so far) even when !ok().
  double Determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivot_sign_ = 1;
  bool ok_ = false;
};

// Convenience wrappers. Return std::nullopt when `a` is singular.
std::optional<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);
std::optional<Matrix> Invert(const Matrix& a);
double Determinant(const Matrix& a);

// Inverts a symmetric matrix that is expected to be positive semi-definite
// (a covariance estimate). If plain inversion fails or is badly conditioned,
// escalating ridge terms lambda*I are added (lambda = `initial_ridge`,
// growing by 10x up to `max_ridge`) until inversion succeeds. This mirrors
// the "fix the matrix and go on" repair Rubine's trainer performs when
// features are linearly dependent in the training data. Returns the inverse
// and reports the ridge actually used through `ridge_used` (0.0 when the
// matrix was invertible as-is). Returns std::nullopt only if even max_ridge
// fails, which cannot happen for a finite symmetric matrix in practice.
std::optional<Matrix> InvertCovarianceWithRepair(const Matrix& a, double initial_ridge = 1e-8,
                                                 double max_ridge = 1e6,
                                                 double* ridge_used = nullptr);

}  // namespace grandma::linalg

#endif  // GRANDMA_SRC_LINALG_SOLVE_H_
