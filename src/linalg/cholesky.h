// Cholesky factorization for symmetric positive-definite matrices. Used both
// as a fast SPD solver and as a definiteness test for covariance estimates.
#ifndef GRANDMA_SRC_LINALG_CHOLESKY_H_
#define GRANDMA_SRC_LINALG_CHOLESKY_H_

#include <optional>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace grandma::linalg {

// Lower-triangular Cholesky factor: A = L * L^T.
class CholeskyDecomposition {
 public:
  // Factorizes `a`, which must be square and symmetric. ok() is false when
  // the matrix is not (numerically) positive definite.
  explicit CholeskyDecomposition(const Matrix& a);

  bool ok() const { return ok_; }
  std::size_t dimension() const { return l_.rows(); }

  // The lower-triangular factor L. Requires ok().
  const Matrix& factor() const { return l_; }

  // Solves A x = b via two triangular solves. Requires ok().
  Vector Solve(const Vector& b) const;

  // A^{-1}. Requires ok().
  Matrix Inverse() const;

  // det(A) = prod(L_ii)^2. Requires ok().
  double Determinant() const;
  // log det(A); numerically safer for near-singular covariances.
  double LogDeterminant() const;

 private:
  Matrix l_;
  bool ok_ = false;
};

// True when `a` is symmetric positive definite (numerically).
bool IsPositiveDefinite(const Matrix& a);

// Solves an SPD system; std::nullopt when not positive definite.
std::optional<Vector> SolveSpd(const Matrix& a, const Vector& b);

}  // namespace grandma::linalg

#endif  // GRANDMA_SRC_LINALG_CHOLESKY_H_
