// Dense double-precision vector for the small feature-space problems GRANDMA
// solves (typical dimension: 13 features, a few dozen classes). Simplicity and
// numerical transparency are preferred over BLAS-grade performance.
#ifndef GRANDMA_SRC_LINALG_VECTOR_H_
#define GRANDMA_SRC_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vec_view.h"

namespace grandma::linalg {

// A resizable dense vector of doubles. Value semantics throughout: copies are
// deep and cheap at the sizes this library works with.
//
// Element access comes in two flavors with different checking guarantees:
//   - operator[] is assert-checked, i.e. checked in debug builds only
//     (builds without NDEBUG); in release builds an out-of-range index is
//     undefined behavior.
//   - at() throws std::out_of_range on a bad index in ALL builds.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Assert-checked access: bounds are verified in debug builds only; an
  // out-of-range index in a release (NDEBUG) build is undefined behavior.
  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  // Checked access: throws std::out_of_range on a bad index in all builds.
  double& at(std::size_t i) { return data_.at(i); }
  double at(std::size_t i) const { return data_.at(i); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  // Non-owning views over the storage (see linalg/vec_view.h); valid until
  // the vector is resized or destroyed.
  VecView view() const { return VecView(data_.data(), data_.size()); }
  MutVecView view() { return MutVecView(data_.data(), data_.size()); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  // Element-wise arithmetic. Sizes must match; mismatches throw
  // std::invalid_argument (dimension errors are programmer errors but are
  // cheap to diagnose eagerly at these sizes).
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
  friend Vector operator*(double s, Vector rhs) { return rhs *= s; }
  friend Vector operator/(Vector lhs, double s) { return lhs /= s; }

  bool operator==(const Vector& rhs) const { return data_ == rhs.data_; }

  // Euclidean norm and its square.
  double norm() const;
  double squared_norm() const;

  // Fills every element with `value`.
  void fill(double value);

  // Human-readable "[a, b, c]" rendering, mainly for test diagnostics.
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

// Inner product. Sizes must match.
double Dot(const Vector& a, const Vector& b);

// Returns max_i |a_i - b_i|; vectors must be the same size.
double MaxAbsDifference(const Vector& a, const Vector& b);

// True when every |a_i - b_i| <= tol.
bool AlmostEqual(const Vector& a, const Vector& b, double tol);

}  // namespace grandma::linalg

#endif  // GRANDMA_SRC_LINALG_VECTOR_H_
