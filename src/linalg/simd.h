// Runtime-dispatched SIMD kernels for the recognition hot path, plus the
// aligned-allocation facility the flat weight blocks live in.
//
// Three tiers form the dispatch ladder:
//   kScalar — plain loops, the reference implementation every other tier is
//             tested against (bounded-ULP for reduction kernels, bit-exact
//             for EvaluateAll);
//   kSse2   — 2-wide double vectors: SSE2 on x86-64 (baseline, always
//             available there), NEON on aarch64;
//   kAvx2   — 4-wide double vectors (x86 only, detected at runtime).
//
// The tier is selected ONCE, on first kernel call: the GRANDMA_SIMD
// environment variable ("scalar", "sse2", "neon", "avx2") wins if it names a
// supported tier, otherwise the best tier the CPU supports. Tests and
// benches can override with ForceTier; the swap is an atomic pointer store,
// so concurrent readers always see a coherent kernel table (but mixing
// ForceTier with in-flight kernels changes which tier those kernels use —
// force tiers only from single-threaded setup code).
//
// Numerical contract:
//   - EvaluateAll is bit-identical across ALL tiers: each class's score is
//     an independent accumulation chain in feature order (the SIMD tiers
//     vectorize ACROSS classes, never within a chain) and no FMA contraction
//     is permitted in this translation unit (-ffp-contract=off).
//   - Axpy is element-wise and therefore also bit-identical across tiers.
//   - Dot / SquaredNorm / QuadraticForm use per-lane partial sums, so their
//     results differ from scalar by reassociation only: the error is bounded
//     by n*eps*sum|terms| (enforced by tests/linalg_simd_test.cc).
//
// Building with -DGRANDMA_SIMD=OFF defines GRANDMA_SIMD_DISABLED: only the
// scalar tier is compiled, BestSupportedTier() == kScalar, and ForceTier to
// any vector tier fails — the fallback path can be CI-gated directly.
#ifndef GRANDMA_SRC_LINALG_SIMD_H_
#define GRANDMA_SRC_LINALG_SIMD_H_

#include <cstddef>

#include "linalg/vec_view.h"

namespace grandma::linalg::simd {

enum class Tier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// True unless the library was built with -DGRANDMA_SIMD=OFF.
#ifdef GRANDMA_SIMD_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// "scalar", "sse2" (or "neon" on aarch64), "avx2".
const char* TierName(Tier t);

// The widest tier this build + CPU supports.
Tier BestSupportedTier();

// The tier the dispatched kernels below currently run at.
Tier ActiveTier();

// Forces dispatch to `t`; false (and no change) when the tier is not
// supported by this build/CPU. For tests and benches.
bool ForceTier(Tier t);

// Drops any forced tier and re-runs the startup selection (env, then best).
void ResetTier();

// --- Dispatched kernels ------------------------------------------------
// Size agreement is assert-checked, exactly like the scalar kernels in
// vec_view.h: these sit inside the per-point loop.

// Inner product (per-lane partial sums; bounded-ULP vs scalar).
double Dot(VecView a, VecView b);

// y += alpha * x (element-wise; bit-identical across tiers).
void Axpy(double alpha, VecView x, MutVecView y);

// sum v[i]^2 (per-lane partial sums; bounded-ULP vs scalar).
double SquaredNorm(VecView v);

// x^T m y over a row-major n x n matrix block (n = x.size() == y.size());
// per-row dots use the dispatched Dot.
double QuadraticForm(VecView x, const double* m, VecView y);

// The batched evaluator primitive. For every class c in [0, classes):
//   scores[c] = (sum_i f[i] * soa[i * stride + c]) + biases[c]
// with the sum accumulated in feature order, which makes the result
// bit-identical to the classic per-class "bias + Dot(weights_row, f)"
// (addition is commutative; the chain is the same sequence of operations).
// `soa` is the feature-major structure-of-arrays weight block: row i holds
// class-indexed weights for feature i, rows are `stride` doubles apart
// (stride >= classes; padding lanes are never stored to).
void EvaluateAll(const double* soa, std::size_t stride, const double* biases,
                 const double* f, std::size_t dim, double* scores, std::size_t classes);

// Two feature vectors through ONE sweep of the weight block: s0/s1 get
// exactly what two EvaluateAll calls would produce, bit for bit (each
// point's per-class chain is the same operation sequence; pairing only
// shares the weight loads between the two chains). This is the batch
// evaluator's memory-bandwidth lever: at 200+ classes the SoA block
// no longer fits L1, and pairing halves the per-point weight traffic.
void EvaluateAll2(const double* soa, std::size_t stride, const double* biases,
                  const double* f0, const double* f1, std::size_t dim, double* s0, double* s1,
                  std::size_t classes);

// A whole batch of feature rows through class-tiled sweeps of the weight
// block: row r's scores land at scores + r * scores_stride and are bit-
// identical to a row-at-a-time EvaluateAll (class tiling and row pairing
// never reorder a per-(row, class) chain). One weight-block sweep serves
// the entire batch — at 200+ classes the block outgrows L1 and this is the
// difference between per-point and per-batch memory traffic.
void EvaluateBatch(const double* soa, std::size_t stride, const double* biases,
                   const double* features, std::size_t batch, std::size_t feature_stride,
                   double* scores, std::size_t scores_stride, std::size_t dim,
                   std::size_t classes);

// Index of the maximum element under the running strict-> scan semantics
// every argmax in the classifier uses: the FIRST occurrence of the maximum
// wins ties, and the result is identical across tiers (it is an index, so
// "bit-identical" is exact equality). The vector tiers compute the max and
// then locate its first occurrence — equivalent to the scalar scan whenever
// no element is NaN; any NaN input falls back to the scalar scan so the
// NaN-never-displaces-the-winner property is preserved exactly. n == 0
// returns 0.
std::size_t ArgMax(const double* v, std::size_t n);

// Fused evaluate + fire-side check for prefix-partitioned class layouts:
// computes the EvaluateAll scores for `f` WITHOUT storing them and returns
// whether the first-max winner (ArgMax semantics above) lands in the class
// prefix [0, split). The AUC keeps complete sets in the prefix, so this is
// its entire per-point fire decision — one weight-block sweep, no score
// buffer, no argmax pass. Winner-in-prefix reduces to
//   !(max over [split, classes) > max over [0, split))
// for NaN-free scores (first-index-wins resolves exact ties to the prefix);
// any NaN score defers to the scalar scan, so the result is identical
// across tiers in all cases. split == 0 returns false; split >= classes
// returns true.
bool EvaluateArgMaxInPrefix(const double* soa, std::size_t stride, const double* biases,
                            const double* f, std::size_t dim, std::size_t split,
                            std::size_t classes);

// --- Aligned allocation -------------------------------------------------

// Cache-line alignment for the flat kernel blocks: covers 32-byte AVX2
// vectors and keeps each block from straddling lines it doesn't own.
inline constexpr std::size_t kBlockAlignment = 64;

// Owning, kBlockAlignment-aligned buffer of doubles with value semantics.
// The hot-path counterpart of std::vector<double> for the classifier's flat
// weight/mean blocks: allocation happens at (re)build time only, never
// inside a kernel.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t size) { assign(size, 0.0); }
  AlignedBuffer(const AlignedBuffer& other);
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(const AlignedBuffer& other);
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  // Reallocates to `size` doubles, all set to `value`.
  void assign(std::size_t size, double value);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double* data() { return data_; }
  const double* data() const { return data_; }

  double& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

 private:
  void Release();

  double* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace grandma::linalg::simd

#endif  // GRANDMA_SRC_LINALG_SIMD_H_
