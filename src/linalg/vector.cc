#include "linalg/vector.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace grandma::linalg {

namespace {
void CheckSameSize(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("Vector size mismatch in ") + op + ": " +
                                std::to_string(a.size()) + " vs " + std::to_string(b.size()));
  }
}
}  // namespace

double& Vector::operator[](std::size_t i) {
  assert(i < data_.size());
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  assert(i < data_.size());
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  CheckSameSize(*this, rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += rhs.data_[i];
  }
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  CheckSameSize(*this, rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= rhs.data_[i];
  }
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) {
    v *= s;
  }
  return *this;
}

Vector& Vector::operator/=(double s) {
  for (double& v : data_) {
    v /= s;
  }
  return *this;
}

double Vector::norm() const { return std::sqrt(squared_norm()); }

double Vector::squared_norm() const {
  double sum = 0.0;
  for (double v : data_) {
    sum += v * v;
  }
  return sum;
}

void Vector::fill(double value) {
  for (double& v : data_) {
    v = value;
  }
}

std::string Vector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << data_[i];
  }
  os << "]";
  return os.str();
}

double Dot(const Vector& a, const Vector& b) {
  CheckSameSize(a, b, "Dot");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

double MaxAbsDifference(const Vector& a, const Vector& b) {
  CheckSameSize(a, b, "MaxAbsDifference");
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

bool AlmostEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) {
    return false;
  }
  return MaxAbsDifference(a, b) <= tol;
}

}  // namespace grandma::linalg
