#include "linalg/stats.h"

#include <stdexcept>
#include <utility>

namespace grandma::linalg {

void MeanAccumulator::Add(const Vector& sample) {
  if (sample.size() != sum_.size()) {
    throw std::invalid_argument("MeanAccumulator::Add: dimension mismatch");
  }
  sum_ += sample;
  ++count_;
}

Vector MeanAccumulator::Mean() const {
  if (count_ == 0) {
    return Vector(sum_.size());
  }
  return sum_ / static_cast<double>(count_);
}

void ScatterAccumulator::Add(const Vector& sample) {
  if (sample.size() != mean_.size()) {
    throw std::invalid_argument("ScatterAccumulator::Add: dimension mismatch");
  }
  ++count_;
  const Vector delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  const Vector delta2 = sample - mean_;
  // scatter += delta * delta2^T  (symmetric by construction in exact math;
  // we symmetrize to keep floating-point noise out of Cholesky).
  for (std::size_t i = 0; i < mean_.size(); ++i) {
    for (std::size_t j = 0; j < mean_.size(); ++j) {
      scatter_(i, j) += 0.5 * (delta[i] * delta2[j] + delta[j] * delta2[i]);
    }
  }
}

ScatterAccumulator ScatterAccumulator::FromMoments(Vector mean, Matrix scatter,
                                                   std::size_t count) {
  if (scatter.rows() != mean.size() || scatter.cols() != mean.size()) {
    throw std::invalid_argument("ScatterAccumulator::FromMoments: shape mismatch");
  }
  ScatterAccumulator out(mean.size());
  out.mean_ = std::move(mean);
  out.scatter_ = std::move(scatter);
  out.count_ = count;
  return out;
}

Matrix ScatterAccumulator::SampleCovariance() const {
  if (count_ < 2) {
    throw std::logic_error("ScatterAccumulator::SampleCovariance needs >= 2 samples");
  }
  return scatter_ * (1.0 / static_cast<double>(count_ - 1));
}

void PooledCovariance::AddClass(const ScatterAccumulator& class_scatter) {
  if (class_scatter.dimension() != dimension_) {
    throw std::invalid_argument("PooledCovariance::AddClass: dimension mismatch");
  }
  scatter_sum_ += class_scatter.Scatter();
  ++num_classes_;
  total_examples_ += class_scatter.count();
}

Matrix PooledCovariance::Estimate() const {
  if (total_examples_ <= num_classes_) {
    throw std::logic_error(
        "PooledCovariance::Estimate needs more examples than classes "
        "(each class must contribute at least one degree of freedom)");
  }
  const double dof = static_cast<double>(total_examples_ - num_classes_);
  return scatter_sum_ * (1.0 / dof);
}

}  // namespace grandma::linalg
