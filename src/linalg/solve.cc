#include "linalg/solve.h"

#include <cmath>
#include <stdexcept>

namespace grandma::linalg {

namespace {
// Relative threshold under which a pivot is treated as zero.
constexpr double kSingularRelTol = 1e-13;
}  // namespace

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a), pivots_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuDecomposition requires a square matrix");
  }
  const std::size_t n = lu_.rows();
  const double scale = std::max(lu_.MaxAbs(), 1.0);
  ok_ = true;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: pick the largest-magnitude entry on or below the diagonal.
    std::size_t pivot_row = col;
    double pivot_mag = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    pivots_[col] = pivot_row;
    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(col, c), lu_(pivot_row, c));
      }
      pivot_sign_ = -pivot_sign_;
    }
    if (pivot_mag <= kSingularRelTol * scale) {
      ok_ = false;
      continue;  // Leave the column; Determinant() still sees the ~0 pivot.
    }
    const double inv_pivot = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) * inv_pivot;
      lu_(r, col) = factor;
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

Vector LuDecomposition::Solve(const Vector& b) const {
  if (!ok_) {
    throw std::logic_error("LuDecomposition::Solve on a singular factorization");
  }
  const std::size_t n = dimension();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::Solve: size mismatch");
  }
  Vector x = b;
  // Apply the row permutation.
  for (std::size_t i = 0; i < n; ++i) {
    if (pivots_[i] != i) {
      std::swap(x[i], x[pivots_[i]]);
    }
  }
  // Forward substitution with the implicit unit lower triangle.
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= lu_(i, j) * x[j];
    }
    x[i] = sum;
  }
  // Back substitution with U.
  for (std::size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      sum -= lu_(i, j) * x[j];
    }
    x[i] = sum / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::Solve(const Matrix& b) const {
  const std::size_t n = dimension();
  if (b.rows() != n) {
    throw std::invalid_argument("LuDecomposition::Solve(Matrix): size mismatch");
  }
  Matrix x(n, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector col = Solve(b.Col(c));
    for (std::size_t r = 0; r < n; ++r) {
      x(r, c) = col[r];
    }
  }
  return x;
}

Matrix LuDecomposition::Inverse() const { return Solve(Matrix::Identity(dimension())); }

double LuDecomposition::Determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < dimension(); ++i) {
    det *= lu_(i, i);
  }
  return det;
}

std::optional<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  LuDecomposition lu(a);
  if (!lu.ok()) {
    return std::nullopt;
  }
  return lu.Solve(b);
}

std::optional<Matrix> Invert(const Matrix& a) {
  LuDecomposition lu(a);
  if (!lu.ok()) {
    return std::nullopt;
  }
  return lu.Inverse();
}

double Determinant(const Matrix& a) { return LuDecomposition(a).Determinant(); }

std::optional<Matrix> InvertCovarianceWithRepair(const Matrix& a, double initial_ridge,
                                                 double max_ridge, double* ridge_used) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("InvertCovarianceWithRepair requires a square matrix");
  }
  {
    LuDecomposition lu(a);
    if (lu.ok()) {
      if (ridge_used != nullptr) {
        *ridge_used = 0.0;
      }
      return lu.Inverse();
    }
  }
  // Scale the ridge to the magnitude of the matrix so that repair behaves the
  // same regardless of feature units.
  const double scale = std::max(a.MaxAbs(), 1.0);
  for (double ridge = initial_ridge; ridge <= max_ridge; ridge *= 10.0) {
    Matrix repaired = a;
    const double lambda = ridge * scale;
    for (std::size_t i = 0; i < repaired.rows(); ++i) {
      repaired(i, i) += lambda;
    }
    LuDecomposition lu(repaired);
    if (lu.ok()) {
      if (ridge_used != nullptr) {
        *ridge_used = lambda;
      }
      return lu.Inverse();
    }
  }
  return std::nullopt;
}

}  // namespace grandma::linalg
