// Running mean / scatter accumulators used to build per-class statistics and
// the pooled ("average") covariance estimate of Rubine's training procedure.
#ifndef GRANDMA_SRC_LINALG_STATS_H_
#define GRANDMA_SRC_LINALG_STATS_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace grandma::linalg {

// Accumulates a sample mean incrementally.
class MeanAccumulator {
 public:
  explicit MeanAccumulator(std::size_t dimension) : sum_(dimension) {}

  void Add(const Vector& sample);

  std::size_t count() const { return count_; }
  std::size_t dimension() const { return sum_.size(); }

  // Mean of the samples added so far; a zero vector when count() == 0.
  Vector Mean() const;

 private:
  Vector sum_;
  std::size_t count_ = 0;
};

// Accumulates a scatter matrix sum_e (x_e - mean)(x_e - mean)^T using
// Welford-style updates, so samples stream in one pass.
class ScatterAccumulator {
 public:
  explicit ScatterAccumulator(std::size_t dimension)
      : mean_(dimension), scatter_(dimension, dimension) {}

  void Add(const Vector& sample);

  // Reconstructs an accumulator from persisted moments — the exact inverse
  // of Mean()/Scatter()/count(). Because the Welford recursion only reads
  // (mean, scatter, count), adding further samples to the reconstructed
  // instance continues bit-identically to the original, which is what makes
  // user-delta snapshot rehydration deterministic. `scatter` must be square
  // with side mean.size() (throws std::invalid_argument otherwise).
  static ScatterAccumulator FromMoments(Vector mean, Matrix scatter, std::size_t count);

  std::size_t count() const { return count_; }
  std::size_t dimension() const { return mean_.size(); }

  Vector Mean() const { return mean_; }

  // The raw scatter matrix (sum of outer products of deviations).
  const Matrix& Scatter() const { return scatter_; }

  // Sample covariance Scatter()/(count-1); throws when count() < 2.
  Matrix SampleCovariance() const;

 private:
  Vector mean_;
  Matrix scatter_;
  std::size_t count_ = 0;
};

// Rubine's pooled covariance: the scatter matrices of all classes summed and
// divided by (total_examples - num_classes). This estimates the common
// within-class covariance the linear discriminant assumes.
class PooledCovariance {
 public:
  explicit PooledCovariance(std::size_t dimension)
      : dimension_(dimension), scatter_sum_(dimension, dimension) {}

  // Folds in one class's scatter.
  void AddClass(const ScatterAccumulator& class_scatter);

  std::size_t num_classes() const { return num_classes_; }
  std::size_t total_examples() const { return total_examples_; }

  // The pooled estimate; throws when total_examples() <= num_classes().
  Matrix Estimate() const;

 private:
  std::size_t dimension_;
  Matrix scatter_sum_;
  std::size_t num_classes_ = 0;
  std::size_t total_examples_ = 0;
};

}  // namespace grandma::linalg

#endif  // GRANDMA_SRC_LINALG_STATS_H_
