// Kernel tables for the dispatch ladder declared in simd.h. This file is
// compiled with -ffp-contract=off (see src/linalg/CMakeLists.txt): no
// mul+add here may fuse into an FMA, or the bit-identity contract between
// the scalar and vector tiers of EvaluateAll would silently break on
// FMA-capable hardware.
#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#if !defined(GRANDMA_SIMD_DISABLED)
#if defined(__x86_64__) || defined(__i386__)
#define GRANDMA_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define GRANDMA_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace grandma::linalg::simd {

namespace {

// Raw-pointer kernel signatures; the VecView entry points below unwrap once
// and assert sizes, so the per-tier implementations stay branch-light.
struct KernelTable {
  Tier tier;
  double (*dot)(const double* a, const double* b, std::size_t n);
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  double (*squared_norm)(const double* v, std::size_t n);
  void (*evaluate_all)(const double* soa, std::size_t stride, const double* biases,
                       const double* f, std::size_t dim, double* scores, std::size_t classes);
};

// --- Scalar tier (the reference) ---------------------------------------

double DotScalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void AxpyScalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double SquaredNormScalar(const double* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += v[i] * v[i];
  }
  return sum;
}

void EvaluateAllScalar(const double* soa, std::size_t stride, const double* biases,
                       const double* f, std::size_t dim, double* scores,
                       std::size_t classes) {
  for (std::size_t c = 0; c < classes; ++c) {
    scores[c] = 0.0;
  }
  for (std::size_t i = 0; i < dim; ++i) {
    const double alpha = f[i];
    const double* row = soa + i * stride;
    for (std::size_t c = 0; c < classes; ++c) {
      scores[c] += alpha * row[c];
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    scores[c] += biases[c];
  }
}

constexpr KernelTable kScalarTable{Tier::kScalar, DotScalar, AxpyScalar, SquaredNormScalar,
                                   EvaluateAllScalar};

#if defined(GRANDMA_SIMD_X86)

// --- SSE2 tier (x86-64 baseline) ---------------------------------------

double DotSse2(const double* a, const double* b, std::size_t n) {
  __m128d acc = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_pd(acc, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  // Lane 0 + lane 1, then the odd tail element in order.
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double sum = lanes[0] + lanes[1];
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void AxpySse2(double alpha, const double* x, double* y, std::size_t n) {
  const __m128d va = _mm_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d prod = _mm_mul_pd(va, _mm_loadu_pd(x + i));
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double SquaredNormSse2(const double* v, std::size_t n) { return DotSse2(v, v, n); }

void EvaluateAllSse2(const double* soa, std::size_t stride, const double* biases,
                     const double* f, std::size_t dim, double* scores, std::size_t classes) {
  std::size_t c = 0;
  // 8-class blocks: four independent accumulators hide the add latency.
  for (; c + 8 <= classes; c += 8) {
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m128d ff = _mm_set1_pd(f[i]);
      const double* row = col + i * stride;
      a0 = _mm_add_pd(a0, _mm_mul_pd(ff, _mm_loadu_pd(row)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(ff, _mm_loadu_pd(row + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(ff, _mm_loadu_pd(row + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(ff, _mm_loadu_pd(row + 6)));
    }
    _mm_storeu_pd(scores + c, _mm_add_pd(a0, _mm_loadu_pd(biases + c)));
    _mm_storeu_pd(scores + c + 2, _mm_add_pd(a1, _mm_loadu_pd(biases + c + 2)));
    _mm_storeu_pd(scores + c + 4, _mm_add_pd(a2, _mm_loadu_pd(biases + c + 4)));
    _mm_storeu_pd(scores + c + 6, _mm_add_pd(a3, _mm_loadu_pd(biases + c + 6)));
  }
  for (; c + 2 <= classes; c += 2) {
    __m128d acc = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(f[i]), _mm_loadu_pd(col + i * stride)));
    }
    _mm_storeu_pd(scores + c, _mm_add_pd(acc, _mm_loadu_pd(biases + c)));
  }
  for (; c < classes; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc += f[i] * soa[i * stride + c];
    }
    scores[c] = acc + biases[c];
  }
}

constexpr KernelTable kSse2Table{Tier::kSse2, DotSse2, AxpySse2, SquaredNormSse2,
                                 EvaluateAllSse2};

// --- AVX2 tier (runtime-detected) --------------------------------------

__attribute__((target("avx2"))) double DotAvx2(const double* a, const double* b,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

__attribute__((target("avx2"))) void AxpyAvx2(double alpha, const double* x, double* y,
                                              std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

__attribute__((target("avx2"))) double SquaredNormAvx2(const double* v, std::size_t n) {
  return DotAvx2(v, v, n);
}

__attribute__((target("avx2"))) void EvaluateAllAvx2(const double* soa, std::size_t stride,
                                                     const double* biases, const double* f,
                                                     std::size_t dim, double* scores,
                                                     std::size_t classes) {
  std::size_t c = 0;
  // 16-class blocks: four independent 4-wide accumulators.
  for (; c + 16 <= classes; c += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m256d ff = _mm256_set1_pd(f[i]);
      const double* row = col + i * stride;
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(ff, _mm256_loadu_pd(row)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 4)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 8)));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 12)));
    }
    _mm256_storeu_pd(scores + c, _mm256_add_pd(a0, _mm256_loadu_pd(biases + c)));
    _mm256_storeu_pd(scores + c + 4, _mm256_add_pd(a1, _mm256_loadu_pd(biases + c + 4)));
    _mm256_storeu_pd(scores + c + 8, _mm256_add_pd(a2, _mm256_loadu_pd(biases + c + 8)));
    _mm256_storeu_pd(scores + c + 12, _mm256_add_pd(a3, _mm256_loadu_pd(biases + c + 12)));
  }
  for (; c + 4 <= classes; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(_mm256_set1_pd(f[i]), _mm256_loadu_pd(col + i * stride)));
    }
    _mm256_storeu_pd(scores + c, _mm256_add_pd(acc, _mm256_loadu_pd(biases + c)));
  }
  for (; c < classes; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc += f[i] * soa[i * stride + c];
    }
    scores[c] = acc + biases[c];
  }
}

constexpr KernelTable kAvx2Table{Tier::kAvx2, DotAvx2, AxpyAvx2, SquaredNormAvx2,
                                 EvaluateAllAvx2};

#elif defined(GRANDMA_SIMD_NEON)

// --- NEON tier (aarch64 baseline; fills the kSse2 rung) -----------------

double DotNeon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void AxpyNeon(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double SquaredNormNeon(const double* v, std::size_t n) { return DotNeon(v, v, n); }

void EvaluateAllNeon(const double* soa, std::size_t stride, const double* biases,
                     const double* f, std::size_t dim, double* scores, std::size_t classes) {
  std::size_t c = 0;
  for (; c + 8 <= classes; c += 8) {
    float64x2_t a0 = vdupq_n_f64(0.0);
    float64x2_t a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0);
    float64x2_t a3 = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const float64x2_t ff = vdupq_n_f64(f[i]);
      const double* row = col + i * stride;
      a0 = vaddq_f64(a0, vmulq_f64(ff, vld1q_f64(row)));
      a1 = vaddq_f64(a1, vmulq_f64(ff, vld1q_f64(row + 2)));
      a2 = vaddq_f64(a2, vmulq_f64(ff, vld1q_f64(row + 4)));
      a3 = vaddq_f64(a3, vmulq_f64(ff, vld1q_f64(row + 6)));
    }
    vst1q_f64(scores + c, vaddq_f64(a0, vld1q_f64(biases + c)));
    vst1q_f64(scores + c + 2, vaddq_f64(a1, vld1q_f64(biases + c + 2)));
    vst1q_f64(scores + c + 4, vaddq_f64(a2, vld1q_f64(biases + c + 4)));
    vst1q_f64(scores + c + 6, vaddq_f64(a3, vld1q_f64(biases + c + 6)));
  }
  for (; c + 2 <= classes; c += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(f[i]), vld1q_f64(col + i * stride)));
    }
    vst1q_f64(scores + c, vaddq_f64(acc, vld1q_f64(biases + c)));
  }
  for (; c < classes; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc += f[i] * soa[i * stride + c];
    }
    scores[c] = acc + biases[c];
  }
}

constexpr KernelTable kSse2Table{Tier::kSse2, DotNeon, AxpyNeon, SquaredNormNeon,
                                 EvaluateAllNeon};

#endif  // GRANDMA_SIMD_X86 / GRANDMA_SIMD_NEON

bool TierSupported(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kSse2:
#if defined(GRANDMA_SIMD_X86) || defined(GRANDMA_SIMD_NEON)
      return true;
#else
      return false;
#endif
    case Tier::kAvx2:
#if defined(GRANDMA_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kSse2:
#if defined(GRANDMA_SIMD_X86) || defined(GRANDMA_SIMD_NEON)
      return &kSse2Table;
#else
      return &kScalarTable;
#endif
    case Tier::kAvx2:
#if defined(GRANDMA_SIMD_X86)
      return &kAvx2Table;
#else
      return &kScalarTable;
#endif
  }
  return &kScalarTable;
}

// The startup selection: GRANDMA_SIMD env override when it names a
// supported tier, otherwise the best supported tier.
Tier StartupTier() {
  if (const char* env = std::getenv("GRANDMA_SIMD")) {
    const std::string v(env);
    Tier requested = Tier::kScalar;
    bool recognized = true;
    if (v == "scalar" || v == "off") {
      requested = Tier::kScalar;
    } else if (v == "sse2" || v == "neon") {
      requested = Tier::kSse2;
    } else if (v == "avx2") {
      requested = Tier::kAvx2;
    } else {
      recognized = false;
    }
    if (recognized && TierSupported(requested)) {
      return requested;
    }
  }
  return BestSupportedTier();
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First call (or a racing pair of first calls — both compute the same
    // table, so the double store is benign).
    table = TableFor(StartupTier());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

}  // namespace

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
#if defined(GRANDMA_SIMD_NEON)
      return "neon";
#else
      return "sse2";
#endif
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier BestSupportedTier() {
  if (TierSupported(Tier::kAvx2)) {
    return Tier::kAvx2;
  }
  if (TierSupported(Tier::kSse2)) {
    return Tier::kSse2;
  }
  return Tier::kScalar;
}

Tier ActiveTier() { return Active().tier; }

bool ForceTier(Tier t) {
  if (!TierSupported(t)) {
    return false;
  }
  g_active.store(TableFor(t), std::memory_order_release);
  return true;
}

void ResetTier() { g_active.store(TableFor(StartupTier()), std::memory_order_release); }

double Dot(VecView a, VecView b) {
  assert(a.size() == b.size());
  return Active().dot(a.data(), b.data(), a.size());
}

void Axpy(double alpha, VecView x, MutVecView y) {
  assert(x.size() == y.size());
  Active().axpy(alpha, x.data(), y.data(), x.size());
}

double SquaredNorm(VecView v) { return Active().squared_norm(v.data(), v.size()); }

double QuadraticForm(VecView x, const double* m, VecView y) {
  assert(x.size() == y.size());
  const KernelTable& table = Active();
  const std::size_t n = x.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += x[i] * table.dot(m + i * n, y.data(), n);
  }
  return sum;
}

void EvaluateAll(const double* soa, std::size_t stride, const double* biases,
                 const double* f, std::size_t dim, double* scores, std::size_t classes) {
  assert(stride >= classes);
  Active().evaluate_all(soa, stride, biases, f, dim, scores, classes);
}

// --- AlignedBuffer ------------------------------------------------------

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other) {
  assign(other.size_, 0.0);
  if (size_ != 0) {
    std::memcpy(data_, other.data_, size_ * sizeof(double));
  }
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this != &other) {
    assign(other.size_, 0.0);
    if (size_ != 0) {
      std::memcpy(data_, other.data_, size_ * sizeof(double));
    }
  }
  return *this;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { Release(); }

void AlignedBuffer::Release() {
  if (data_ != nullptr) {
    ::operator delete[](data_, std::align_val_t(kBlockAlignment));
    data_ = nullptr;
  }
  size_ = 0;
}

void AlignedBuffer::assign(std::size_t size, double value) {
  if (size != size_) {
    Release();
    if (size != 0) {
      data_ = static_cast<double*>(
          ::operator new[](size * sizeof(double), std::align_val_t(kBlockAlignment)));
      size_ = size;
    }
  }
  for (std::size_t i = 0; i < size_; ++i) {
    data_[i] = value;
  }
}

}  // namespace grandma::linalg::simd
