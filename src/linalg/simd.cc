// Kernel tables for the dispatch ladder declared in simd.h. This file is
// compiled with -ffp-contract=off (see src/linalg/CMakeLists.txt): no
// mul+add here may fuse into an FMA, or the bit-identity contract between
// the scalar and vector tiers of EvaluateAll would silently break on
// FMA-capable hardware.
#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>

#if !defined(GRANDMA_SIMD_DISABLED)
#if defined(__x86_64__) || defined(__i386__)
#define GRANDMA_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define GRANDMA_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace grandma::linalg::simd {

namespace {

// Raw-pointer kernel signatures; the VecView entry points below unwrap once
// and assert sizes, so the per-tier implementations stay branch-light.
struct KernelTable {
  Tier tier;
  double (*dot)(const double* a, const double* b, std::size_t n);
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  double (*squared_norm)(const double* v, std::size_t n);
  void (*evaluate_all)(const double* soa, std::size_t stride, const double* biases,
                       const double* f, std::size_t dim, double* scores, std::size_t classes);
  void (*evaluate_all2)(const double* soa, std::size_t stride, const double* biases,
                        const double* f0, const double* f1, std::size_t dim, double* s0,
                        double* s1, std::size_t classes);
  std::size_t (*argmax)(const double* v, std::size_t n);
  bool (*argmax_in_prefix)(const double* soa, std::size_t stride, const double* biases,
                           const double* f, std::size_t dim, std::size_t split,
                           std::size_t classes);
};

// --- Scalar tier (the reference) ---------------------------------------

double DotScalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void AxpyScalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double SquaredNormScalar(const double* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += v[i] * v[i];
  }
  return sum;
}

void EvaluateAllScalar(const double* soa, std::size_t stride, const double* biases,
                       const double* f, std::size_t dim, double* scores,
                       std::size_t classes) {
  for (std::size_t c = 0; c < classes; ++c) {
    scores[c] = 0.0;
  }
  for (std::size_t i = 0; i < dim; ++i) {
    const double alpha = f[i];
    const double* row = soa + i * stride;
    for (std::size_t c = 0; c < classes; ++c) {
      scores[c] += alpha * row[c];
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    scores[c] += biases[c];
  }
}

// Two points through one weight-block sweep. Each point's per-class chain
// is the exact operation sequence of EvaluateAllScalar (zero, += in feature
// order, bias last), so the results are bit-identical to two single-point
// calls — the pairing only changes which chain a weight row feeds next,
// never the order within a chain.
void EvaluateAll2Scalar(const double* soa, std::size_t stride, const double* biases,
                        const double* f0, const double* f1, std::size_t dim, double* s0,
                        double* s1, std::size_t classes) {
  for (std::size_t c = 0; c < classes; ++c) {
    s0[c] = 0.0;
    s1[c] = 0.0;
  }
  for (std::size_t i = 0; i < dim; ++i) {
    const double a0 = f0[i];
    const double a1 = f1[i];
    const double* row = soa + i * stride;
    for (std::size_t c = 0; c < classes; ++c) {
      s0[c] += a0 * row[c];
      s1[c] += a1 * row[c];
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    s0[c] += biases[c];
    s1[c] += biases[c];
  }
}

std::size_t ArgMaxScalar(const double* v, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] > v[best]) {
      best = i;
    }
  }
  return best;
}

// One class's score, exactly as EvaluateAllScalar computes it: the feature
// sum in index order, bias added last.
double ScoreAtScalar(const double* soa, std::size_t stride, const double* biases,
                     const double* f, std::size_t dim, std::size_t c) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += f[i] * soa[i * stride + c];
  }
  return acc + biases[c];
}

// The fused fire-check reference: evaluate every class's score (same chains
// as EvaluateAll) and report whether the running strict-> argmax — first
// index wins ties, NaN never displaces the winner — lands in [0, split).
// No score buffer: this is the per-point AUC decision, where only the
// winner's SIDE of the split matters, never its index or value.
bool EvaluateArgMaxInPrefixScalar(const double* soa, std::size_t stride, const double* biases,
                                  const double* f, std::size_t dim, std::size_t split,
                                  std::size_t classes) {
  if (split == 0) {
    return false;
  }
  if (split >= classes) {
    return true;
  }
  double best = ScoreAtScalar(soa, stride, biases, f, dim, 0);
  std::size_t winner = 0;
  for (std::size_t c = 1; c < classes; ++c) {
    const double s = ScoreAtScalar(soa, stride, biases, f, dim, c);
    if (s > best) {
      best = s;
      winner = c;
    }
  }
  return winner < split;
}

constexpr KernelTable kScalarTable{
    Tier::kScalar,     DotScalar,          AxpyScalar,  SquaredNormScalar,
    EvaluateAllScalar, EvaluateAll2Scalar, ArgMaxScalar, EvaluateArgMaxInPrefixScalar};

#if defined(GRANDMA_SIMD_X86)

// --- SSE2 tier (x86-64 baseline) ---------------------------------------

double DotSse2(const double* a, const double* b, std::size_t n) {
  __m128d acc = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_pd(acc, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  // Lane 0 + lane 1, then the odd tail element in order.
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double sum = lanes[0] + lanes[1];
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void AxpySse2(double alpha, const double* x, double* y, std::size_t n) {
  const __m128d va = _mm_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d prod = _mm_mul_pd(va, _mm_loadu_pd(x + i));
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double SquaredNormSse2(const double* v, std::size_t n) { return DotSse2(v, v, n); }

void EvaluateAllSse2(const double* soa, std::size_t stride, const double* biases,
                     const double* f, std::size_t dim, double* scores, std::size_t classes) {
  std::size_t c = 0;
  // 8-class blocks: four independent accumulators hide the add latency.
  for (; c + 8 <= classes; c += 8) {
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m128d ff = _mm_set1_pd(f[i]);
      const double* row = col + i * stride;
      a0 = _mm_add_pd(a0, _mm_mul_pd(ff, _mm_loadu_pd(row)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(ff, _mm_loadu_pd(row + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(ff, _mm_loadu_pd(row + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(ff, _mm_loadu_pd(row + 6)));
    }
    _mm_storeu_pd(scores + c, _mm_add_pd(a0, _mm_loadu_pd(biases + c)));
    _mm_storeu_pd(scores + c + 2, _mm_add_pd(a1, _mm_loadu_pd(biases + c + 2)));
    _mm_storeu_pd(scores + c + 4, _mm_add_pd(a2, _mm_loadu_pd(biases + c + 4)));
    _mm_storeu_pd(scores + c + 6, _mm_add_pd(a3, _mm_loadu_pd(biases + c + 6)));
  }
  for (; c + 2 <= classes; c += 2) {
    __m128d acc = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(f[i]), _mm_loadu_pd(col + i * stride)));
    }
    _mm_storeu_pd(scores + c, _mm_add_pd(acc, _mm_loadu_pd(biases + c)));
  }
  for (; c < classes; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc += f[i] * soa[i * stride + c];
    }
    scores[c] = acc + biases[c];
  }
}

void EvaluateAll2Sse2(const double* soa, std::size_t stride, const double* biases,
                      const double* f0, const double* f1, std::size_t dim, double* s0,
                      double* s1, std::size_t classes) {
  std::size_t c = 0;
  // 8-class blocks, both points at once: each weight load feeds two chains.
  for (; c + 8 <= classes; c += 8) {
    __m128d p0a0 = _mm_setzero_pd();
    __m128d p0a1 = _mm_setzero_pd();
    __m128d p0a2 = _mm_setzero_pd();
    __m128d p0a3 = _mm_setzero_pd();
    __m128d p1a0 = _mm_setzero_pd();
    __m128d p1a1 = _mm_setzero_pd();
    __m128d p1a2 = _mm_setzero_pd();
    __m128d p1a3 = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m128d ff0 = _mm_set1_pd(f0[i]);
      const __m128d ff1 = _mm_set1_pd(f1[i]);
      const double* row = col + i * stride;
      const __m128d w0 = _mm_loadu_pd(row);
      const __m128d w1 = _mm_loadu_pd(row + 2);
      const __m128d w2 = _mm_loadu_pd(row + 4);
      const __m128d w3 = _mm_loadu_pd(row + 6);
      p0a0 = _mm_add_pd(p0a0, _mm_mul_pd(ff0, w0));
      p0a1 = _mm_add_pd(p0a1, _mm_mul_pd(ff0, w1));
      p0a2 = _mm_add_pd(p0a2, _mm_mul_pd(ff0, w2));
      p0a3 = _mm_add_pd(p0a3, _mm_mul_pd(ff0, w3));
      p1a0 = _mm_add_pd(p1a0, _mm_mul_pd(ff1, w0));
      p1a1 = _mm_add_pd(p1a1, _mm_mul_pd(ff1, w1));
      p1a2 = _mm_add_pd(p1a2, _mm_mul_pd(ff1, w2));
      p1a3 = _mm_add_pd(p1a3, _mm_mul_pd(ff1, w3));
    }
    const __m128d b0 = _mm_loadu_pd(biases + c);
    const __m128d b1 = _mm_loadu_pd(biases + c + 2);
    const __m128d b2 = _mm_loadu_pd(biases + c + 4);
    const __m128d b3 = _mm_loadu_pd(biases + c + 6);
    _mm_storeu_pd(s0 + c, _mm_add_pd(p0a0, b0));
    _mm_storeu_pd(s0 + c + 2, _mm_add_pd(p0a1, b1));
    _mm_storeu_pd(s0 + c + 4, _mm_add_pd(p0a2, b2));
    _mm_storeu_pd(s0 + c + 6, _mm_add_pd(p0a3, b3));
    _mm_storeu_pd(s1 + c, _mm_add_pd(p1a0, b0));
    _mm_storeu_pd(s1 + c + 2, _mm_add_pd(p1a1, b1));
    _mm_storeu_pd(s1 + c + 4, _mm_add_pd(p1a2, b2));
    _mm_storeu_pd(s1 + c + 6, _mm_add_pd(p1a3, b3));
  }
  for (; c + 2 <= classes; c += 2) {
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m128d w = _mm_loadu_pd(col + i * stride);
      acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_set1_pd(f0[i]), w));
      acc1 = _mm_add_pd(acc1, _mm_mul_pd(_mm_set1_pd(f1[i]), w));
    }
    const __m128d b = _mm_loadu_pd(biases + c);
    _mm_storeu_pd(s0 + c, _mm_add_pd(acc0, b));
    _mm_storeu_pd(s1 + c, _mm_add_pd(acc1, b));
  }
  for (; c < classes; ++c) {
    double acc0 = 0.0;
    double acc1 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double w = soa[i * stride + c];
      acc0 += f0[i] * w;
      acc1 += f1[i] * w;
    }
    s0[c] = acc0 + biases[c];
    s1[c] = acc1 + biases[c];
  }
}

std::size_t ArgMaxSse2(const double* v, std::size_t n) {
  if (n < 4) {
    return ArgMaxScalar(v, n);
  }
  // Pass 1: the maximum value, plus a NaN sweep. maxpd's NaN behaviour is
  // operand-order dependent, so any NaN anywhere means the vector max is
  // untrustworthy — defer to the scalar scan, whose strict-> semantics
  // (NaN never displaces the winner) are the contract. Four independent
  // accumulators: a single max chain is latency-bound (this pass IS the
  // kernel's cost at large n).
  __m128d m0 = _mm_loadu_pd(v);
  __m128d m1 = m0;
  __m128d m2 = m0;
  __m128d m3 = m0;
  __m128d unord = _mm_cmpunord_pd(m0, m0);
  std::size_t i = 2;
  for (; i + 8 <= n; i += 8) {
    const __m128d x0 = _mm_loadu_pd(v + i);
    const __m128d x1 = _mm_loadu_pd(v + i + 2);
    const __m128d x2 = _mm_loadu_pd(v + i + 4);
    const __m128d x3 = _mm_loadu_pd(v + i + 6);
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(x0, x0));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(x1, x1));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(x2, x2));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(x3, x3));
    m0 = _mm_max_pd(m0, x0);
    m1 = _mm_max_pd(m1, x1);
    m2 = _mm_max_pd(m2, x2);
    m3 = _mm_max_pd(m3, x3);
  }
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(v + i);
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(x, x));
    m0 = _mm_max_pd(m0, x);
  }
  if (_mm_movemask_pd(unord) != 0) {
    return ArgMaxScalar(v, n);
  }
  const __m128d vmax = _mm_max_pd(_mm_max_pd(m0, m1), _mm_max_pd(m2, m3));
  double lanes[2];
  _mm_storeu_pd(lanes, vmax);
  double m = lanes[0] >= lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) {
    if (!(v[i] == v[i])) {
      return ArgMaxScalar(v, n);
    }
    if (v[i] > m) {
      m = v[i];
    }
  }
  // Pass 2: first index holding the max. With no NaNs this is exactly the
  // index the running strict-> scan keeps (ties never displace), and ±0.0
  // compare equal under cmpeq just as neither displaces the other under >.
  const __m128d vm = _mm_set1_pd(m);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const int mask = _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(v + j), vm));
    if (mask != 0) {
      return j + ((mask & 1) != 0 ? 0 : 1);
    }
  }
  for (; j < n; ++j) {
    if (v[j] == m) {
      return j;
    }
  }
  return 0;  // Unreachable: m was read from v.
}

// Max score over classes [begin, end): the same per-class chains as
// EvaluateAllSse2, max-merged in registers instead of stored. Max is
// associative and commutative on VALUES (only the sign of a +/-0 tie and
// NaN ordering depend on merge order), so the merged maximum equals the
// scalar running maximum for any NaN-free range; *nan_seen reports NaNs so
// the caller can fall back to the exact scalar scan.
double MaxScoresRangeSse2(const double* soa, std::size_t stride, const double* biases,
                          const double* f, std::size_t dim, std::size_t begin, std::size_t end,
                          bool* nan_seen) {
  const __m128d ninf = _mm_set1_pd(-std::numeric_limits<double>::infinity());
  __m128d best0 = ninf;
  __m128d best1 = ninf;
  __m128d best2 = ninf;
  __m128d best3 = ninf;
  __m128d unord = _mm_setzero_pd();
  std::size_t c = begin;
  for (; c + 8 <= end; c += 8) {
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m128d ff = _mm_set1_pd(f[i]);
      const double* row = col + i * stride;
      a0 = _mm_add_pd(a0, _mm_mul_pd(ff, _mm_loadu_pd(row)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(ff, _mm_loadu_pd(row + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(ff, _mm_loadu_pd(row + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(ff, _mm_loadu_pd(row + 6)));
    }
    a0 = _mm_add_pd(a0, _mm_loadu_pd(biases + c));
    a1 = _mm_add_pd(a1, _mm_loadu_pd(biases + c + 2));
    a2 = _mm_add_pd(a2, _mm_loadu_pd(biases + c + 4));
    a3 = _mm_add_pd(a3, _mm_loadu_pd(biases + c + 6));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(a0, a0));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(a1, a1));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(a2, a2));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(a3, a3));
    best0 = _mm_max_pd(best0, a0);
    best1 = _mm_max_pd(best1, a1);
    best2 = _mm_max_pd(best2, a2);
    best3 = _mm_max_pd(best3, a3);
  }
  for (; c + 2 <= end; c += 2) {
    __m128d acc = _mm_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(f[i]), _mm_loadu_pd(col + i * stride)));
    }
    acc = _mm_add_pd(acc, _mm_loadu_pd(biases + c));
    unord = _mm_or_pd(unord, _mm_cmpunord_pd(acc, acc));
    best0 = _mm_max_pd(best0, acc);
  }
  if (_mm_movemask_pd(unord) != 0) {
    *nan_seen = true;
    return 0.0;
  }
  const __m128d merged = _mm_max_pd(_mm_max_pd(best0, best1), _mm_max_pd(best2, best3));
  double lanes[2];
  _mm_storeu_pd(lanes, merged);
  double m = lanes[0] >= lanes[1] ? lanes[0] : lanes[1];
  for (; c < end; ++c) {
    const double s = ScoreAtScalar(soa, stride, biases, f, dim, c);
    if (!(s == s)) {
      *nan_seen = true;
      return 0.0;
    }
    if (s > m) {
      m = s;
    }
  }
  return m;
}

bool EvaluateArgMaxInPrefixSse2(const double* soa, std::size_t stride, const double* biases,
                                const double* f, std::size_t dim, std::size_t split,
                                std::size_t classes) {
  if (split == 0) {
    return false;
  }
  if (split >= classes) {
    return true;
  }
  // The winner's index is never needed — only which side of the split it
  // falls on. Prefix classes come first, so the first-max winner is in the
  // prefix exactly when the suffix max does not strictly beat the prefix
  // max. NaN anywhere defers to the scalar scan, whose sticky-NaN argmax
  // semantics are the contract.
  bool nan_seen = false;
  const double prefix_max =
      MaxScoresRangeSse2(soa, stride, biases, f, dim, 0, split, &nan_seen);
  if (!nan_seen) {
    const double suffix_max =
        MaxScoresRangeSse2(soa, stride, biases, f, dim, split, classes, &nan_seen);
    if (!nan_seen) {
      return !(suffix_max > prefix_max);
    }
  }
  return EvaluateArgMaxInPrefixScalar(soa, stride, biases, f, dim, split, classes);
}

constexpr KernelTable kSse2Table{
    Tier::kSse2,     DotSse2,          AxpySse2,   SquaredNormSse2,
    EvaluateAllSse2, EvaluateAll2Sse2, ArgMaxSse2, EvaluateArgMaxInPrefixSse2};

// --- AVX2 tier (runtime-detected) --------------------------------------

__attribute__((target("avx2"))) double DotAvx2(const double* a, const double* b,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

__attribute__((target("avx2"))) void AxpyAvx2(double alpha, const double* x, double* y,
                                              std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

__attribute__((target("avx2"))) double SquaredNormAvx2(const double* v, std::size_t n) {
  return DotAvx2(v, v, n);
}

__attribute__((target("avx2"))) void EvaluateAllAvx2(const double* soa, std::size_t stride,
                                                     const double* biases, const double* f,
                                                     std::size_t dim, double* scores,
                                                     std::size_t classes) {
  std::size_t c = 0;
  // 16-class blocks: four independent 4-wide accumulators.
  for (; c + 16 <= classes; c += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m256d ff = _mm256_set1_pd(f[i]);
      const double* row = col + i * stride;
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(ff, _mm256_loadu_pd(row)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 4)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 8)));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 12)));
    }
    _mm256_storeu_pd(scores + c, _mm256_add_pd(a0, _mm256_loadu_pd(biases + c)));
    _mm256_storeu_pd(scores + c + 4, _mm256_add_pd(a1, _mm256_loadu_pd(biases + c + 4)));
    _mm256_storeu_pd(scores + c + 8, _mm256_add_pd(a2, _mm256_loadu_pd(biases + c + 8)));
    _mm256_storeu_pd(scores + c + 12, _mm256_add_pd(a3, _mm256_loadu_pd(biases + c + 12)));
  }
  for (; c + 4 <= classes; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(_mm256_set1_pd(f[i]), _mm256_loadu_pd(col + i * stride)));
    }
    _mm256_storeu_pd(scores + c, _mm256_add_pd(acc, _mm256_loadu_pd(biases + c)));
  }
  for (; c < classes; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc += f[i] * soa[i * stride + c];
    }
    scores[c] = acc + biases[c];
  }
}

__attribute__((target("avx2"))) void EvaluateAll2Avx2(const double* soa, std::size_t stride,
                                                      const double* biases, const double* f0,
                                                      const double* f1, std::size_t dim,
                                                      double* s0, double* s1,
                                                      std::size_t classes) {
  std::size_t c = 0;
  // 16-class blocks, both points at once: 4 weight loads + 2 broadcasts feed
  // 8 accumulators (14 live ymm registers).
  for (; c + 16 <= classes; c += 16) {
    __m256d p0a0 = _mm256_setzero_pd();
    __m256d p0a1 = _mm256_setzero_pd();
    __m256d p0a2 = _mm256_setzero_pd();
    __m256d p0a3 = _mm256_setzero_pd();
    __m256d p1a0 = _mm256_setzero_pd();
    __m256d p1a1 = _mm256_setzero_pd();
    __m256d p1a2 = _mm256_setzero_pd();
    __m256d p1a3 = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m256d ff0 = _mm256_set1_pd(f0[i]);
      const __m256d ff1 = _mm256_set1_pd(f1[i]);
      const double* row = col + i * stride;
      const __m256d w0 = _mm256_loadu_pd(row);
      const __m256d w1 = _mm256_loadu_pd(row + 4);
      const __m256d w2 = _mm256_loadu_pd(row + 8);
      const __m256d w3 = _mm256_loadu_pd(row + 12);
      p0a0 = _mm256_add_pd(p0a0, _mm256_mul_pd(ff0, w0));
      p0a1 = _mm256_add_pd(p0a1, _mm256_mul_pd(ff0, w1));
      p0a2 = _mm256_add_pd(p0a2, _mm256_mul_pd(ff0, w2));
      p0a3 = _mm256_add_pd(p0a3, _mm256_mul_pd(ff0, w3));
      p1a0 = _mm256_add_pd(p1a0, _mm256_mul_pd(ff1, w0));
      p1a1 = _mm256_add_pd(p1a1, _mm256_mul_pd(ff1, w1));
      p1a2 = _mm256_add_pd(p1a2, _mm256_mul_pd(ff1, w2));
      p1a3 = _mm256_add_pd(p1a3, _mm256_mul_pd(ff1, w3));
    }
    const __m256d b0 = _mm256_loadu_pd(biases + c);
    const __m256d b1 = _mm256_loadu_pd(biases + c + 4);
    const __m256d b2 = _mm256_loadu_pd(biases + c + 8);
    const __m256d b3 = _mm256_loadu_pd(biases + c + 12);
    _mm256_storeu_pd(s0 + c, _mm256_add_pd(p0a0, b0));
    _mm256_storeu_pd(s0 + c + 4, _mm256_add_pd(p0a1, b1));
    _mm256_storeu_pd(s0 + c + 8, _mm256_add_pd(p0a2, b2));
    _mm256_storeu_pd(s0 + c + 12, _mm256_add_pd(p0a3, b3));
    _mm256_storeu_pd(s1 + c, _mm256_add_pd(p1a0, b0));
    _mm256_storeu_pd(s1 + c + 4, _mm256_add_pd(p1a1, b1));
    _mm256_storeu_pd(s1 + c + 8, _mm256_add_pd(p1a2, b2));
    _mm256_storeu_pd(s1 + c + 12, _mm256_add_pd(p1a3, b3));
  }
  for (; c + 4 <= classes; c += 4) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m256d w = _mm256_loadu_pd(col + i * stride);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(f0[i]), w));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_set1_pd(f1[i]), w));
    }
    const __m256d b = _mm256_loadu_pd(biases + c);
    _mm256_storeu_pd(s0 + c, _mm256_add_pd(acc0, b));
    _mm256_storeu_pd(s1 + c, _mm256_add_pd(acc1, b));
  }
  for (; c < classes; ++c) {
    double acc0 = 0.0;
    double acc1 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double w = soa[i * stride + c];
      acc0 += f0[i] * w;
      acc1 += f1[i] * w;
    }
    s0[c] = acc0 + biases[c];
    s1[c] = acc1 + biases[c];
  }
}

__attribute__((target("avx2"))) std::size_t ArgMaxAvx2(const double* v, std::size_t n) {
  if (n < 8) {
    return ArgMaxSse2(v, n);
  }
  // Same two-pass shape as the SSE2 kernel, 4 lanes wide, with the same
  // four-accumulator unroll to break the max latency chain.
  __m256d m0 = _mm256_loadu_pd(v);
  __m256d m1 = m0;
  __m256d m2 = m0;
  __m256d m3 = m0;
  __m256d unord = _mm256_cmp_pd(m0, m0, _CMP_UNORD_Q);
  std::size_t i = 4;
  for (; i + 16 <= n; i += 16) {
    const __m256d x0 = _mm256_loadu_pd(v + i);
    const __m256d x1 = _mm256_loadu_pd(v + i + 4);
    const __m256d x2 = _mm256_loadu_pd(v + i + 8);
    const __m256d x3 = _mm256_loadu_pd(v + i + 12);
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(x0, x0, _CMP_UNORD_Q));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(x1, x1, _CMP_UNORD_Q));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(x2, x2, _CMP_UNORD_Q));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(x3, x3, _CMP_UNORD_Q));
    m0 = _mm256_max_pd(m0, x0);
    m1 = _mm256_max_pd(m1, x1);
    m2 = _mm256_max_pd(m2, x2);
    m3 = _mm256_max_pd(m3, x3);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
    m0 = _mm256_max_pd(m0, x);
  }
  if (_mm256_movemask_pd(unord) != 0) {
    return ArgMaxScalar(v, n);
  }
  const __m256d vmax = _mm256_max_pd(_mm256_max_pd(m0, m1), _mm256_max_pd(m2, m3));
  double lanes[4];
  _mm256_storeu_pd(lanes, vmax);
  double m = lanes[0];
  for (int lane = 1; lane < 4; ++lane) {
    if (lanes[lane] > m) {
      m = lanes[lane];
    }
  }
  for (; i < n; ++i) {
    if (!(v[i] == v[i])) {
      return ArgMaxScalar(v, n);
    }
    if (v[i] > m) {
      m = v[i];
    }
  }
  const __m256d vm = _mm256_set1_pd(m);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(v + j), vm, _CMP_EQ_OQ));
    if (mask != 0) {
      return j + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; j < n; ++j) {
    if (v[j] == m) {
      return j;
    }
  }
  return 0;  // Unreachable: m was read from v.
}

// Max score over classes [begin, end): EvaluateAllAvx2's 16-class block
// shape, max-merged in registers instead of stored (see the SSE2 variant
// for why the merged max equals the scalar running max on NaN-free input).
__attribute__((target("avx2"))) double MaxScoresRangeAvx2(const double* soa, std::size_t stride,
                                                          const double* biases, const double* f,
                                                          std::size_t dim, std::size_t begin,
                                                          std::size_t end, bool* nan_seen) {
  const __m256d ninf = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  __m256d best0 = ninf;
  __m256d best1 = ninf;
  __m256d best2 = ninf;
  __m256d best3 = ninf;
  __m256d unord = _mm256_setzero_pd();
  std::size_t c = begin;
  for (; c + 16 <= end; c += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const __m256d ff = _mm256_set1_pd(f[i]);
      const double* row = col + i * stride;
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(ff, _mm256_loadu_pd(row)));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 4)));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 8)));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(ff, _mm256_loadu_pd(row + 12)));
    }
    a0 = _mm256_add_pd(a0, _mm256_loadu_pd(biases + c));
    a1 = _mm256_add_pd(a1, _mm256_loadu_pd(biases + c + 4));
    a2 = _mm256_add_pd(a2, _mm256_loadu_pd(biases + c + 8));
    a3 = _mm256_add_pd(a3, _mm256_loadu_pd(biases + c + 12));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(a0, a0, _CMP_UNORD_Q));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(a1, a1, _CMP_UNORD_Q));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(a2, a2, _CMP_UNORD_Q));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(a3, a3, _CMP_UNORD_Q));
    best0 = _mm256_max_pd(best0, a0);
    best1 = _mm256_max_pd(best1, a1);
    best2 = _mm256_max_pd(best2, a2);
    best3 = _mm256_max_pd(best3, a3);
  }
  for (; c + 4 <= end; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(_mm256_set1_pd(f[i]), _mm256_loadu_pd(col + i * stride)));
    }
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(biases + c));
    unord = _mm256_or_pd(unord, _mm256_cmp_pd(acc, acc, _CMP_UNORD_Q));
    best0 = _mm256_max_pd(best0, acc);
  }
  if (_mm256_movemask_pd(unord) != 0) {
    *nan_seen = true;
    return 0.0;
  }
  const __m256d merged = _mm256_max_pd(_mm256_max_pd(best0, best1), _mm256_max_pd(best2, best3));
  double lanes[4];
  _mm256_storeu_pd(lanes, merged);
  double m = lanes[0];
  for (int lane = 1; lane < 4; ++lane) {
    if (lanes[lane] > m) {
      m = lanes[lane];
    }
  }
  for (; c < end; ++c) {
    const double s = ScoreAtScalar(soa, stride, biases, f, dim, c);
    if (!(s == s)) {
      *nan_seen = true;
      return 0.0;
    }
    if (s > m) {
      m = s;
    }
  }
  return m;
}

__attribute__((target("avx2"))) bool EvaluateArgMaxInPrefixAvx2(const double* soa,
                                                                std::size_t stride,
                                                                const double* biases,
                                                                const double* f, std::size_t dim,
                                                                std::size_t split,
                                                                std::size_t classes) {
  if (split == 0) {
    return false;
  }
  if (split >= classes) {
    return true;
  }
  bool nan_seen = false;
  const double prefix_max =
      MaxScoresRangeAvx2(soa, stride, biases, f, dim, 0, split, &nan_seen);
  if (!nan_seen) {
    const double suffix_max =
        MaxScoresRangeAvx2(soa, stride, biases, f, dim, split, classes, &nan_seen);
    if (!nan_seen) {
      return !(suffix_max > prefix_max);
    }
  }
  return EvaluateArgMaxInPrefixScalar(soa, stride, biases, f, dim, split, classes);
}

constexpr KernelTable kAvx2Table{
    Tier::kAvx2,     DotAvx2,          AxpyAvx2,   SquaredNormAvx2,
    EvaluateAllAvx2, EvaluateAll2Avx2, ArgMaxAvx2, EvaluateArgMaxInPrefixAvx2};

#elif defined(GRANDMA_SIMD_NEON)

// --- NEON tier (aarch64 baseline; fills the kSse2 rung) -----------------

double DotNeon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void AxpyNeon(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

double SquaredNormNeon(const double* v, std::size_t n) { return DotNeon(v, v, n); }

void EvaluateAllNeon(const double* soa, std::size_t stride, const double* biases,
                     const double* f, std::size_t dim, double* scores, std::size_t classes) {
  std::size_t c = 0;
  for (; c + 8 <= classes; c += 8) {
    float64x2_t a0 = vdupq_n_f64(0.0);
    float64x2_t a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0);
    float64x2_t a3 = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const float64x2_t ff = vdupq_n_f64(f[i]);
      const double* row = col + i * stride;
      a0 = vaddq_f64(a0, vmulq_f64(ff, vld1q_f64(row)));
      a1 = vaddq_f64(a1, vmulq_f64(ff, vld1q_f64(row + 2)));
      a2 = vaddq_f64(a2, vmulq_f64(ff, vld1q_f64(row + 4)));
      a3 = vaddq_f64(a3, vmulq_f64(ff, vld1q_f64(row + 6)));
    }
    vst1q_f64(scores + c, vaddq_f64(a0, vld1q_f64(biases + c)));
    vst1q_f64(scores + c + 2, vaddq_f64(a1, vld1q_f64(biases + c + 2)));
    vst1q_f64(scores + c + 4, vaddq_f64(a2, vld1q_f64(biases + c + 4)));
    vst1q_f64(scores + c + 6, vaddq_f64(a3, vld1q_f64(biases + c + 6)));
  }
  for (; c + 2 <= classes; c += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(f[i]), vld1q_f64(col + i * stride)));
    }
    vst1q_f64(scores + c, vaddq_f64(acc, vld1q_f64(biases + c)));
  }
  for (; c < classes; ++c) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      acc += f[i] * soa[i * stride + c];
    }
    scores[c] = acc + biases[c];
  }
}

void EvaluateAll2Neon(const double* soa, std::size_t stride, const double* biases,
                      const double* f0, const double* f1, std::size_t dim, double* s0,
                      double* s1, std::size_t classes) {
  std::size_t c = 0;
  for (; c + 8 <= classes; c += 8) {
    float64x2_t p0a0 = vdupq_n_f64(0.0);
    float64x2_t p0a1 = vdupq_n_f64(0.0);
    float64x2_t p0a2 = vdupq_n_f64(0.0);
    float64x2_t p0a3 = vdupq_n_f64(0.0);
    float64x2_t p1a0 = vdupq_n_f64(0.0);
    float64x2_t p1a1 = vdupq_n_f64(0.0);
    float64x2_t p1a2 = vdupq_n_f64(0.0);
    float64x2_t p1a3 = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const float64x2_t ff0 = vdupq_n_f64(f0[i]);
      const float64x2_t ff1 = vdupq_n_f64(f1[i]);
      const double* row = col + i * stride;
      const float64x2_t w0 = vld1q_f64(row);
      const float64x2_t w1 = vld1q_f64(row + 2);
      const float64x2_t w2 = vld1q_f64(row + 4);
      const float64x2_t w3 = vld1q_f64(row + 6);
      p0a0 = vaddq_f64(p0a0, vmulq_f64(ff0, w0));
      p0a1 = vaddq_f64(p0a1, vmulq_f64(ff0, w1));
      p0a2 = vaddq_f64(p0a2, vmulq_f64(ff0, w2));
      p0a3 = vaddq_f64(p0a3, vmulq_f64(ff0, w3));
      p1a0 = vaddq_f64(p1a0, vmulq_f64(ff1, w0));
      p1a1 = vaddq_f64(p1a1, vmulq_f64(ff1, w1));
      p1a2 = vaddq_f64(p1a2, vmulq_f64(ff1, w2));
      p1a3 = vaddq_f64(p1a3, vmulq_f64(ff1, w3));
    }
    vst1q_f64(s0 + c, vaddq_f64(p0a0, vld1q_f64(biases + c)));
    vst1q_f64(s0 + c + 2, vaddq_f64(p0a1, vld1q_f64(biases + c + 2)));
    vst1q_f64(s0 + c + 4, vaddq_f64(p0a2, vld1q_f64(biases + c + 4)));
    vst1q_f64(s0 + c + 6, vaddq_f64(p0a3, vld1q_f64(biases + c + 6)));
    vst1q_f64(s1 + c, vaddq_f64(p1a0, vld1q_f64(biases + c)));
    vst1q_f64(s1 + c + 2, vaddq_f64(p1a1, vld1q_f64(biases + c + 2)));
    vst1q_f64(s1 + c + 4, vaddq_f64(p1a2, vld1q_f64(biases + c + 4)));
    vst1q_f64(s1 + c + 6, vaddq_f64(p1a3, vld1q_f64(biases + c + 6)));
  }
  for (; c + 2 <= classes; c += 2) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const float64x2_t w = vld1q_f64(col + i * stride);
      acc0 = vaddq_f64(acc0, vmulq_f64(vdupq_n_f64(f0[i]), w));
      acc1 = vaddq_f64(acc1, vmulq_f64(vdupq_n_f64(f1[i]), w));
    }
    const float64x2_t b = vld1q_f64(biases + c);
    vst1q_f64(s0 + c, vaddq_f64(acc0, b));
    vst1q_f64(s1 + c, vaddq_f64(acc1, b));
  }
  for (; c < classes; ++c) {
    double acc0 = 0.0;
    double acc1 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double w = soa[i * stride + c];
      acc0 += f0[i] * w;
      acc1 += f1[i] * w;
    }
    s0[c] = acc0 + biases[c];
    s1[c] = acc1 + biases[c];
  }
}

std::size_t ArgMaxNeon(const double* v, std::size_t n) {
  if (n < 4) {
    return ArgMaxScalar(v, n);
  }
  // vceqq(x, x) is all-ones per lane unless the lane is NaN; AND-accumulate
  // so any NaN clears a lane, then defer to the scalar scan (same contract
  // as the x86 kernels). Four max accumulators break the latency chain.
  float64x2_t m0 = vld1q_f64(v);
  float64x2_t m1 = m0;
  float64x2_t m2 = m0;
  float64x2_t m3 = m0;
  uint64x2_t ord = vceqq_f64(m0, m0);
  std::size_t i = 2;
  for (; i + 8 <= n; i += 8) {
    const float64x2_t x0 = vld1q_f64(v + i);
    const float64x2_t x1 = vld1q_f64(v + i + 2);
    const float64x2_t x2 = vld1q_f64(v + i + 4);
    const float64x2_t x3 = vld1q_f64(v + i + 6);
    ord = vandq_u64(ord, vceqq_f64(x0, x0));
    ord = vandq_u64(ord, vceqq_f64(x1, x1));
    ord = vandq_u64(ord, vceqq_f64(x2, x2));
    ord = vandq_u64(ord, vceqq_f64(x3, x3));
    m0 = vmaxq_f64(m0, x0);
    m1 = vmaxq_f64(m1, x1);
    m2 = vmaxq_f64(m2, x2);
    m3 = vmaxq_f64(m3, x3);
  }
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(v + i);
    ord = vandq_u64(ord, vceqq_f64(x, x));
    m0 = vmaxq_f64(m0, x);
  }
  if (vgetq_lane_u64(ord, 0) == 0 || vgetq_lane_u64(ord, 1) == 0) {
    return ArgMaxScalar(v, n);
  }
  const float64x2_t vmax = vmaxq_f64(vmaxq_f64(m0, m1), vmaxq_f64(m2, m3));
  const double lane0 = vgetq_lane_f64(vmax, 0);
  const double lane1 = vgetq_lane_f64(vmax, 1);
  double m = lane0 >= lane1 ? lane0 : lane1;
  for (; i < n; ++i) {
    if (!(v[i] == v[i])) {
      return ArgMaxScalar(v, n);
    }
    if (v[i] > m) {
      m = v[i];
    }
  }
  const float64x2_t vm = vdupq_n_f64(m);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const uint64x2_t eq = vceqq_f64(vld1q_f64(v + j), vm);
    if (vgetq_lane_u64(eq, 0) != 0) {
      return j;
    }
    if (vgetq_lane_u64(eq, 1) != 0) {
      return j + 1;
    }
  }
  for (; j < n; ++j) {
    if (v[j] == m) {
      return j;
    }
  }
  return 0;  // Unreachable: m was read from v.
}

// Max score over classes [begin, end): EvaluateAllNeon's 8-class block
// shape, max-merged in registers instead of stored (see the SSE2 variant
// for why the merged max equals the scalar running max on NaN-free input).
double MaxScoresRangeNeon(const double* soa, std::size_t stride, const double* biases,
                          const double* f, std::size_t dim, std::size_t begin, std::size_t end,
                          bool* nan_seen) {
  const float64x2_t ninf = vdupq_n_f64(-std::numeric_limits<double>::infinity());
  float64x2_t best0 = ninf;
  float64x2_t best1 = ninf;
  float64x2_t best2 = ninf;
  float64x2_t best3 = ninf;
  uint64x2_t ord = vdupq_n_u64(~0ULL);
  std::size_t c = begin;
  for (; c + 8 <= end; c += 8) {
    float64x2_t a0 = vdupq_n_f64(0.0);
    float64x2_t a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0);
    float64x2_t a3 = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      const float64x2_t ff = vdupq_n_f64(f[i]);
      const double* row = col + i * stride;
      a0 = vaddq_f64(a0, vmulq_f64(ff, vld1q_f64(row)));
      a1 = vaddq_f64(a1, vmulq_f64(ff, vld1q_f64(row + 2)));
      a2 = vaddq_f64(a2, vmulq_f64(ff, vld1q_f64(row + 4)));
      a3 = vaddq_f64(a3, vmulq_f64(ff, vld1q_f64(row + 6)));
    }
    a0 = vaddq_f64(a0, vld1q_f64(biases + c));
    a1 = vaddq_f64(a1, vld1q_f64(biases + c + 2));
    a2 = vaddq_f64(a2, vld1q_f64(biases + c + 4));
    a3 = vaddq_f64(a3, vld1q_f64(biases + c + 6));
    ord = vandq_u64(ord, vceqq_f64(a0, a0));
    ord = vandq_u64(ord, vceqq_f64(a1, a1));
    ord = vandq_u64(ord, vceqq_f64(a2, a2));
    ord = vandq_u64(ord, vceqq_f64(a3, a3));
    best0 = vmaxq_f64(best0, a0);
    best1 = vmaxq_f64(best1, a1);
    best2 = vmaxq_f64(best2, a2);
    best3 = vmaxq_f64(best3, a3);
  }
  for (; c + 2 <= end; c += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    const double* col = soa + c;
    for (std::size_t i = 0; i < dim; ++i) {
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(f[i]), vld1q_f64(col + i * stride)));
    }
    acc = vaddq_f64(acc, vld1q_f64(biases + c));
    ord = vandq_u64(ord, vceqq_f64(acc, acc));
    best0 = vmaxq_f64(best0, acc);
  }
  if (vgetq_lane_u64(ord, 0) == 0 || vgetq_lane_u64(ord, 1) == 0) {
    *nan_seen = true;
    return 0.0;
  }
  const float64x2_t merged = vmaxq_f64(vmaxq_f64(best0, best1), vmaxq_f64(best2, best3));
  const double lane0 = vgetq_lane_f64(merged, 0);
  const double lane1 = vgetq_lane_f64(merged, 1);
  double m = lane0 >= lane1 ? lane0 : lane1;
  for (; c < end; ++c) {
    const double s = ScoreAtScalar(soa, stride, biases, f, dim, c);
    if (!(s == s)) {
      *nan_seen = true;
      return 0.0;
    }
    if (s > m) {
      m = s;
    }
  }
  return m;
}

bool EvaluateArgMaxInPrefixNeon(const double* soa, std::size_t stride, const double* biases,
                                const double* f, std::size_t dim, std::size_t split,
                                std::size_t classes) {
  if (split == 0) {
    return false;
  }
  if (split >= classes) {
    return true;
  }
  bool nan_seen = false;
  const double prefix_max =
      MaxScoresRangeNeon(soa, stride, biases, f, dim, 0, split, &nan_seen);
  if (!nan_seen) {
    const double suffix_max =
        MaxScoresRangeNeon(soa, stride, biases, f, dim, split, classes, &nan_seen);
    if (!nan_seen) {
      return !(suffix_max > prefix_max);
    }
  }
  return EvaluateArgMaxInPrefixScalar(soa, stride, biases, f, dim, split, classes);
}

constexpr KernelTable kSse2Table{
    Tier::kSse2,     DotNeon,          AxpyNeon,   SquaredNormNeon,
    EvaluateAllNeon, EvaluateAll2Neon, ArgMaxNeon, EvaluateArgMaxInPrefixNeon};

#endif  // GRANDMA_SIMD_X86 / GRANDMA_SIMD_NEON

bool TierSupported(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kSse2:
#if defined(GRANDMA_SIMD_X86) || defined(GRANDMA_SIMD_NEON)
      return true;
#else
      return false;
#endif
    case Tier::kAvx2:
#if defined(GRANDMA_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kSse2:
#if defined(GRANDMA_SIMD_X86) || defined(GRANDMA_SIMD_NEON)
      return &kSse2Table;
#else
      return &kScalarTable;
#endif
    case Tier::kAvx2:
#if defined(GRANDMA_SIMD_X86)
      return &kAvx2Table;
#else
      return &kScalarTable;
#endif
  }
  return &kScalarTable;
}

// The startup selection: GRANDMA_SIMD env override when it names a
// supported tier, otherwise the best supported tier.
Tier StartupTier() {
  if (const char* env = std::getenv("GRANDMA_SIMD")) {
    const std::string v(env);
    Tier requested = Tier::kScalar;
    bool recognized = true;
    if (v == "scalar" || v == "off") {
      requested = Tier::kScalar;
    } else if (v == "sse2" || v == "neon") {
      requested = Tier::kSse2;
    } else if (v == "avx2") {
      requested = Tier::kAvx2;
    } else {
      recognized = false;
    }
    if (recognized && TierSupported(requested)) {
      return requested;
    }
  }
  return BestSupportedTier();
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First call (or a racing pair of first calls — both compute the same
    // table, so the double store is benign).
    table = TableFor(StartupTier());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

}  // namespace

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
#if defined(GRANDMA_SIMD_NEON)
      return "neon";
#else
      return "sse2";
#endif
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier BestSupportedTier() {
  if (TierSupported(Tier::kAvx2)) {
    return Tier::kAvx2;
  }
  if (TierSupported(Tier::kSse2)) {
    return Tier::kSse2;
  }
  return Tier::kScalar;
}

Tier ActiveTier() { return Active().tier; }

bool ForceTier(Tier t) {
  if (!TierSupported(t)) {
    return false;
  }
  g_active.store(TableFor(t), std::memory_order_release);
  return true;
}

void ResetTier() { g_active.store(TableFor(StartupTier()), std::memory_order_release); }

double Dot(VecView a, VecView b) {
  assert(a.size() == b.size());
  return Active().dot(a.data(), b.data(), a.size());
}

void Axpy(double alpha, VecView x, MutVecView y) {
  assert(x.size() == y.size());
  Active().axpy(alpha, x.data(), y.data(), x.size());
}

double SquaredNorm(VecView v) { return Active().squared_norm(v.data(), v.size()); }

double QuadraticForm(VecView x, const double* m, VecView y) {
  assert(x.size() == y.size());
  const KernelTable& table = Active();
  const std::size_t n = x.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += x[i] * table.dot(m + i * n, y.data(), n);
  }
  return sum;
}

void EvaluateAll(const double* soa, std::size_t stride, const double* biases,
                 const double* f, std::size_t dim, double* scores, std::size_t classes) {
  assert(stride >= classes);
  Active().evaluate_all(soa, stride, biases, f, dim, scores, classes);
}

void EvaluateAll2(const double* soa, std::size_t stride, const double* biases,
                  const double* f0, const double* f1, std::size_t dim, double* s0, double* s1,
                  std::size_t classes) {
  assert(stride >= classes);
  Active().evaluate_all2(soa, stride, biases, f0, f1, dim, s0, s1, classes);
}

void EvaluateBatch(const double* soa, std::size_t stride, const double* biases,
                   const double* features, std::size_t batch, std::size_t feature_stride,
                   double* scores, std::size_t scores_stride, std::size_t dim,
                   std::size_t classes) {
  assert(stride >= classes);
  assert(feature_stride >= dim);
  assert(scores_stride >= classes);
  // Hold the table once so every row of the batch runs the same tier even
  // if a ForceTier races in (documented single-threaded-only, but cheap to
  // be coherent about).
  const KernelTable& table = Active();
  // Class tiles sized so one tile's weight rows (kClassTile * dim doubles;
  // 6.5 KiB at the 13-feature extractor) stay L1-resident across the whole
  // batch: the full block is swept once per BATCH instead of once per row,
  // which is where the per-point cost at 200+ classes goes. Tiling classes
  // never touches a per-(row, class) accumulation chain, so results stay
  // bit-identical to row-at-a-time EvaluateAll on every tier. The tile
  // width is a multiple of every kernel's widest class block (16), so only
  // the final tile runs tail lanes.
  constexpr std::size_t kClassTile = 64;
  for (std::size_t c0 = 0; c0 < classes; c0 += kClassTile) {
    const std::size_t tile = classes - c0 < kClassTile ? classes - c0 : kClassTile;
    std::size_t r = 0;
    for (; r + 2 <= batch; r += 2) {
      table.evaluate_all2(soa + c0, stride, biases + c0, features + r * feature_stride,
                          features + (r + 1) * feature_stride, dim,
                          scores + r * scores_stride + c0, scores + (r + 1) * scores_stride + c0,
                          tile);
    }
    if (r < batch) {
      table.evaluate_all(soa + c0, stride, biases + c0, features + r * feature_stride, dim,
                         scores + r * scores_stride + c0, tile);
    }
  }
}

std::size_t ArgMax(const double* v, std::size_t n) {
  if (n == 0) {
    return 0;
  }
  return Active().argmax(v, n);
}

bool EvaluateArgMaxInPrefix(const double* soa, std::size_t stride, const double* biases,
                            const double* f, std::size_t dim, std::size_t split,
                            std::size_t classes) {
  assert(stride >= classes);
  return Active().argmax_in_prefix(soa, stride, biases, f, dim, split, classes);
}

// --- AlignedBuffer ------------------------------------------------------

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other) {
  assign(other.size_, 0.0);
  if (size_ != 0) {
    std::memcpy(data_, other.data_, size_ * sizeof(double));
  }
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this != &other) {
    assign(other.size_, 0.0);
    if (size_ != 0) {
      std::memcpy(data_, other.data_, size_ * sizeof(double));
    }
  }
  return *this;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { Release(); }

void AlignedBuffer::Release() {
  if (data_ != nullptr) {
    ::operator delete[](data_, std::align_val_t(kBlockAlignment));
    data_ = nullptr;
  }
  size_ = 0;
}

void AlignedBuffer::assign(std::size_t size, double value) {
  if (size != size_) {
    Release();
    if (size != 0) {
      data_ = static_cast<double*>(
          ::operator new[](size * sizeof(double), std::align_val_t(kBlockAlignment)));
      size_ = size;
    }
  }
  for (std::size_t i = 0; i < size_; ++i) {
    data_[i] = value;
  }
}

}  // namespace grandma::linalg::simd
