// Dense row-major double matrix sized for classifier training: covariance
// matrices of ~13 features and their inverses.
#ifndef GRANDMA_SRC_LINALG_MATRIX_H_
#define GRANDMA_SRC_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vec_view.h"
#include "linalg/vector.h"

namespace grandma::linalg {

// A dense rows x cols matrix of doubles, row-major. Value semantics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Builds from nested initializer lists; all rows must be the same length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix Identity(std::size_t n);
  // Diagonal matrix from the entries of `d`.
  static Matrix Diagonal(const Vector& d);
  // Rank-1 matrix a * b^T.
  static Matrix Outer(const Vector& a, const Vector& b);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  // Checked access; throws std::out_of_range in all builds.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  bool operator==(const Matrix& rhs) const = default;

  Matrix Transposed() const;

  // Returns row r as a vector.
  Vector Row(std::size_t r) const;
  Vector Col(std::size_t c) const;

  // Non-owning view of row r (rows are contiguous in the row-major storage);
  // valid until the matrix is resized or destroyed. Assert-checked.
  VecView RowView(std::size_t r) const {
    assert(r < rows_);
    return VecView(data_.data() + r * cols_, cols_);
  }

  // Raw row-major storage (rows * cols doubles, rows contiguous); valid
  // until the matrix is resized or destroyed. For the SIMD kernels.
  const double* data() const { return data_.data(); }

  // Largest absolute entry; 0 for an empty matrix.
  double MaxAbs() const;

  // True when the matrix equals its transpose to within `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

  std::string ToString() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Matrix-vector product; x.size() must equal m.cols().
Vector Multiply(const Matrix& m, const Vector& x);

// Matrix-matrix product; a.cols() must equal b.rows().
Matrix Multiply(const Matrix& a, const Matrix& b);

// Quadratic form x^T m y (m must be square with side x.size() == y.size()).
double QuadraticForm(const Vector& x, const Matrix& m, const Vector& y);

// View flavor for the classify-time kernel: identical accumulation order to
// the Vector overload (bit-identical results), no allocation. Dimension
// mismatches throw std::invalid_argument, as in the Vector overload — the
// check is once per call, not per element.
double QuadraticForm(VecView x, const Matrix& m, VecView y);

// True when every entry differs by at most tol.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);

}  // namespace grandma::linalg

#endif  // GRANDMA_SRC_LINALG_MATRIX_H_
