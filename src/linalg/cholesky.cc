#include "linalg/cholesky.h"

#include <cmath>
#include <stdexcept>

namespace grandma::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a) : l_(a.rows(), a.cols()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("CholeskyDecomposition requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9 * std::max(a.MaxAbs(), 1.0))) {
    ok_ = false;
    return;
  }
  const std::size_t n = a.rows();
  ok_ = true;
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      ok_ = false;
      return;
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l_(i, k) * l_(j, k);
      }
      l_(i, j) = sum / ljj;
    }
  }
}

Vector CholeskyDecomposition::Solve(const Vector& b) const {
  if (!ok_) {
    throw std::logic_error("CholeskyDecomposition::Solve on a failed factorization");
  }
  const std::size_t n = dimension();
  if (b.size() != n) {
    throw std::invalid_argument("CholeskyDecomposition::Solve: size mismatch");
  }
  // Forward solve L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= l_(i, j) * y[j];
    }
    y[i] = sum / l_(i, i);
  }
  // Back solve L^T x = y.
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      sum -= l_(j, i) * x[j];
    }
    x[i] = sum / l_(i, i);
  }
  return x;
}

Matrix CholeskyDecomposition::Inverse() const {
  const std::size_t n = dimension();
  Matrix inv(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    Vector e(n);
    e[c] = 1.0;
    const Vector col = Solve(e);
    for (std::size_t r = 0; r < n; ++r) {
      inv(r, c) = col[r];
    }
  }
  return inv;
}

double CholeskyDecomposition::Determinant() const {
  double det = 1.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    det *= l_(i, i);
  }
  return det * det;
}

double CholeskyDecomposition::LogDeterminant() const {
  double log_det = 0.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    log_det += std::log(l_(i, i));
  }
  return 2.0 * log_det;
}

bool IsPositiveDefinite(const Matrix& a) { return CholeskyDecomposition(a).ok(); }

std::optional<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  CholeskyDecomposition chol(a);
  if (!chol.ok()) {
    return std::nullopt;
  }
  return chol.Solve(b);
}

}  // namespace grandma::linalg
