
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multipath/classifier.cc" "src/multipath/CMakeFiles/grandma_multipath.dir/classifier.cc.o" "gcc" "src/multipath/CMakeFiles/grandma_multipath.dir/classifier.cc.o.d"
  "/root/repo/src/multipath/features.cc" "src/multipath/CMakeFiles/grandma_multipath.dir/features.cc.o" "gcc" "src/multipath/CMakeFiles/grandma_multipath.dir/features.cc.o.d"
  "/root/repo/src/multipath/multipath_gesture.cc" "src/multipath/CMakeFiles/grandma_multipath.dir/multipath_gesture.cc.o" "gcc" "src/multipath/CMakeFiles/grandma_multipath.dir/multipath_gesture.cc.o.d"
  "/root/repo/src/multipath/synth.cc" "src/multipath/CMakeFiles/grandma_multipath.dir/synth.cc.o" "gcc" "src/multipath/CMakeFiles/grandma_multipath.dir/synth.cc.o.d"
  "/root/repo/src/multipath/two_finger_transform.cc" "src/multipath/CMakeFiles/grandma_multipath.dir/two_finger_transform.cc.o" "gcc" "src/multipath/CMakeFiles/grandma_multipath.dir/two_finger_transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/grandma_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/grandma_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/grandma_features.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/grandma_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
