
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolkit/dispatcher.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/dispatcher.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/dispatcher.cc.o.d"
  "/root/repo/src/toolkit/drag_handler.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/drag_handler.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/drag_handler.cc.o.d"
  "/root/repo/src/toolkit/event.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/event.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/event.cc.o.d"
  "/root/repo/src/toolkit/gesture_handler.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/gesture_handler.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/gesture_handler.cc.o.d"
  "/root/repo/src/toolkit/model.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/model.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/model.cc.o.d"
  "/root/repo/src/toolkit/playback.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/playback.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/playback.cc.o.d"
  "/root/repo/src/toolkit/script.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/script.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/script.cc.o.d"
  "/root/repo/src/toolkit/script_semantics.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/script_semantics.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/script_semantics.cc.o.d"
  "/root/repo/src/toolkit/semantics.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/semantics.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/semantics.cc.o.d"
  "/root/repo/src/toolkit/view.cc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/view.cc.o" "gcc" "src/toolkit/CMakeFiles/grandma_toolkit.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eager/CMakeFiles/grandma_eager.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/grandma_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/grandma_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/grandma_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/grandma_features.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
