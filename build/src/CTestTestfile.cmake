# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("geom")
subdirs("robust")
subdirs("features")
subdirs("classify")
subdirs("synth")
subdirs("eager")
subdirs("toolkit")
subdirs("gdp")
subdirs("io")
subdirs("multipath")
