
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/fault_injector.cc" "src/robust/CMakeFiles/grandma_robust.dir/fault_injector.cc.o" "gcc" "src/robust/CMakeFiles/grandma_robust.dir/fault_injector.cc.o.d"
  "/root/repo/src/robust/fault_stats.cc" "src/robust/CMakeFiles/grandma_robust.dir/fault_stats.cc.o" "gcc" "src/robust/CMakeFiles/grandma_robust.dir/fault_stats.cc.o.d"
  "/root/repo/src/robust/stroke_validator.cc" "src/robust/CMakeFiles/grandma_robust.dir/stroke_validator.cc.o" "gcc" "src/robust/CMakeFiles/grandma_robust.dir/stroke_validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
