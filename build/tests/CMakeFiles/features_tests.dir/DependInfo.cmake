
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/features_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/features_tests.dir/features_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gdp/CMakeFiles/grandma_gdp.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/grandma_io.dir/DependInfo.cmake"
  "/root/repo/build/src/toolkit/CMakeFiles/grandma_toolkit.dir/DependInfo.cmake"
  "/root/repo/build/src/eager/CMakeFiles/grandma_eager.dir/DependInfo.cmake"
  "/root/repo/build/src/multipath/CMakeFiles/grandma_multipath.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/grandma_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/grandma_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/grandma_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/grandma_features.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
