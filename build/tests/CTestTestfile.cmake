# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build/tests/geom_tests[1]_include.cmake")
include("/root/repo/build/tests/features_tests[1]_include.cmake")
include("/root/repo/build/tests/classify_tests[1]_include.cmake")
include("/root/repo/build/tests/synth_tests[1]_include.cmake")
include("/root/repo/build/tests/eager_tests[1]_include.cmake")
include("/root/repo/build/tests/toolkit_tests[1]_include.cmake")
include("/root/repo/build/tests/gdp_tests[1]_include.cmake")
include("/root/repo/build/tests/io_tests[1]_include.cmake")
include("/root/repo/build/tests/robust_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/multipath_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/toolkit_model_tests[1]_include.cmake")
