# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig5_7_ud_walkthrough "/root/repo/build/bench/fig5_7_ud_walkthrough")
set_tests_properties(bench_smoke_fig5_7_ud_walkthrough PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_note_gestures "/root/repo/build/bench/fig8_note_gestures")
set_tests_properties(bench_smoke_fig8_note_gestures PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9_eight_directions "/root/repo/build/bench/fig9_eight_directions")
set_tests_properties(bench_smoke_fig9_eight_directions PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_gdp_gestures "/root/repo/build/bench/fig10_gdp_gestures")
set_tests_properties(bench_smoke_fig10_gdp_gestures PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3_gdp_semantics "/root/repo/build/bench/fig3_gdp_semantics")
set_tests_properties(bench_smoke_fig3_gdp_semantics PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table_full_classifier "/root/repo/build/bench/table_full_classifier")
set_tests_properties(bench_smoke_table_full_classifier PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table_rejection "/root/repo/build/bench/table_rejection")
set_tests_properties(bench_smoke_table_rejection PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_eager_training "/root/repo/build/bench/ablation_eager_training")
set_tests_properties(bench_smoke_ablation_eager_training PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_baseline_handcoded_eager "/root/repo/build/bench/baseline_handcoded_eager")
set_tests_properties(bench_smoke_baseline_handcoded_eager PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_render_figures "/root/repo/build/bench/render_figures")
set_tests_properties(bench_smoke_render_figures PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fault_sweep "/root/repo/build/bench/fault_sweep")
set_tests_properties(bench_smoke_fault_sweep PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_timing "/root/repo/build/bench/timing_per_point" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke_timing PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_claim_twophase "/root/repo/build/bench/claim_twophase_accuracy")
set_tests_properties(bench_smoke_claim_twophase PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
