# Empty compiler generated dependencies file for table_rejection.
# This may be replaced when dependencies are built.
