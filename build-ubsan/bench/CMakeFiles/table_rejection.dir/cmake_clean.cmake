file(REMOVE_RECURSE
  "CMakeFiles/table_rejection.dir/table_rejection.cc.o"
  "CMakeFiles/table_rejection.dir/table_rejection.cc.o.d"
  "table_rejection"
  "table_rejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_rejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
