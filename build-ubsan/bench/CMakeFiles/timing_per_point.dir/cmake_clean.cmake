file(REMOVE_RECURSE
  "CMakeFiles/timing_per_point.dir/timing_per_point.cc.o"
  "CMakeFiles/timing_per_point.dir/timing_per_point.cc.o.d"
  "timing_per_point"
  "timing_per_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_per_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
