# Empty dependencies file for timing_per_point.
# This may be replaced when dependencies are built.
