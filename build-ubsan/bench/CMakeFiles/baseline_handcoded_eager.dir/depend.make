# Empty dependencies file for baseline_handcoded_eager.
# This may be replaced when dependencies are built.
