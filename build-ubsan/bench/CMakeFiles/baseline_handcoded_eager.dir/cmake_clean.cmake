file(REMOVE_RECURSE
  "CMakeFiles/baseline_handcoded_eager.dir/baseline_handcoded_eager.cc.o"
  "CMakeFiles/baseline_handcoded_eager.dir/baseline_handcoded_eager.cc.o.d"
  "baseline_handcoded_eager"
  "baseline_handcoded_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_handcoded_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
