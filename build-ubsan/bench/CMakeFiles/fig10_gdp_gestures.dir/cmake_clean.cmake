file(REMOVE_RECURSE
  "CMakeFiles/fig10_gdp_gestures.dir/fig10_gdp_gestures.cc.o"
  "CMakeFiles/fig10_gdp_gestures.dir/fig10_gdp_gestures.cc.o.d"
  "fig10_gdp_gestures"
  "fig10_gdp_gestures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gdp_gestures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
