# Empty dependencies file for fig10_gdp_gestures.
# This may be replaced when dependencies are built.
