# Empty dependencies file for fig8_note_gestures.
# This may be replaced when dependencies are built.
