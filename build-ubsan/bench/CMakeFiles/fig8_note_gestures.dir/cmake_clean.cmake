file(REMOVE_RECURSE
  "CMakeFiles/fig8_note_gestures.dir/fig8_note_gestures.cc.o"
  "CMakeFiles/fig8_note_gestures.dir/fig8_note_gestures.cc.o.d"
  "fig8_note_gestures"
  "fig8_note_gestures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_note_gestures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
