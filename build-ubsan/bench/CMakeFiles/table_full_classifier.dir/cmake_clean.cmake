file(REMOVE_RECURSE
  "CMakeFiles/table_full_classifier.dir/table_full_classifier.cc.o"
  "CMakeFiles/table_full_classifier.dir/table_full_classifier.cc.o.d"
  "table_full_classifier"
  "table_full_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_full_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
