# Empty compiler generated dependencies file for table_full_classifier.
# This may be replaced when dependencies are built.
