file(REMOVE_RECURSE
  "CMakeFiles/claim_twophase_accuracy.dir/claim_twophase_accuracy.cc.o"
  "CMakeFiles/claim_twophase_accuracy.dir/claim_twophase_accuracy.cc.o.d"
  "claim_twophase_accuracy"
  "claim_twophase_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_twophase_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
