# Empty dependencies file for claim_twophase_accuracy.
# This may be replaced when dependencies are built.
