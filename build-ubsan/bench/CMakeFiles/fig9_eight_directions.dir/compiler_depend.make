# Empty compiler generated dependencies file for fig9_eight_directions.
# This may be replaced when dependencies are built.
