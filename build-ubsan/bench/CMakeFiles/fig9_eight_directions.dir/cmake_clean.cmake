file(REMOVE_RECURSE
  "CMakeFiles/fig9_eight_directions.dir/fig9_eight_directions.cc.o"
  "CMakeFiles/fig9_eight_directions.dir/fig9_eight_directions.cc.o.d"
  "fig9_eight_directions"
  "fig9_eight_directions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_eight_directions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
