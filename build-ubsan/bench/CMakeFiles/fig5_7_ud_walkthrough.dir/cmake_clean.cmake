file(REMOVE_RECURSE
  "CMakeFiles/fig5_7_ud_walkthrough.dir/fig5_7_ud_walkthrough.cc.o"
  "CMakeFiles/fig5_7_ud_walkthrough.dir/fig5_7_ud_walkthrough.cc.o.d"
  "fig5_7_ud_walkthrough"
  "fig5_7_ud_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_7_ud_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
