# Empty dependencies file for fig5_7_ud_walkthrough.
# This may be replaced when dependencies are built.
