# Empty compiler generated dependencies file for ablation_eager_training.
# This may be replaced when dependencies are built.
