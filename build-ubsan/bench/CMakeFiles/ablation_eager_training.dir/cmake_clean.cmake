file(REMOVE_RECURSE
  "CMakeFiles/ablation_eager_training.dir/ablation_eager_training.cc.o"
  "CMakeFiles/ablation_eager_training.dir/ablation_eager_training.cc.o.d"
  "ablation_eager_training"
  "ablation_eager_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
