# Empty compiler generated dependencies file for fig3_gdp_semantics.
# This may be replaced when dependencies are built.
