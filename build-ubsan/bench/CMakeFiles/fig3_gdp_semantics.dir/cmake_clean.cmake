file(REMOVE_RECURSE
  "CMakeFiles/fig3_gdp_semantics.dir/fig3_gdp_semantics.cc.o"
  "CMakeFiles/fig3_gdp_semantics.dir/fig3_gdp_semantics.cc.o.d"
  "fig3_gdp_semantics"
  "fig3_gdp_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gdp_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
