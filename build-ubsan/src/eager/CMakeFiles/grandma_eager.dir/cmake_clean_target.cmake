file(REMOVE_RECURSE
  "libgrandma_eager.a"
)
