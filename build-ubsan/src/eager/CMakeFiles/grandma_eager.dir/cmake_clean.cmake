file(REMOVE_RECURSE
  "CMakeFiles/grandma_eager.dir/accidental_mover.cc.o"
  "CMakeFiles/grandma_eager.dir/accidental_mover.cc.o.d"
  "CMakeFiles/grandma_eager.dir/auc.cc.o"
  "CMakeFiles/grandma_eager.dir/auc.cc.o.d"
  "CMakeFiles/grandma_eager.dir/eager_recognizer.cc.o"
  "CMakeFiles/grandma_eager.dir/eager_recognizer.cc.o.d"
  "CMakeFiles/grandma_eager.dir/evaluation.cc.o"
  "CMakeFiles/grandma_eager.dir/evaluation.cc.o.d"
  "CMakeFiles/grandma_eager.dir/subgesture_labeler.cc.o"
  "CMakeFiles/grandma_eager.dir/subgesture_labeler.cc.o.d"
  "libgrandma_eager.a"
  "libgrandma_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
