# Empty compiler generated dependencies file for grandma_eager.
# This may be replaced when dependencies are built.
