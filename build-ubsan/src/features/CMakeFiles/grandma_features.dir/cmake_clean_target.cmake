file(REMOVE_RECURSE
  "libgrandma_features.a"
)
