
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/extractor.cc" "src/features/CMakeFiles/grandma_features.dir/extractor.cc.o" "gcc" "src/features/CMakeFiles/grandma_features.dir/extractor.cc.o.d"
  "/root/repo/src/features/feature_vector.cc" "src/features/CMakeFiles/grandma_features.dir/feature_vector.cc.o" "gcc" "src/features/CMakeFiles/grandma_features.dir/feature_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
