file(REMOVE_RECURSE
  "CMakeFiles/grandma_features.dir/extractor.cc.o"
  "CMakeFiles/grandma_features.dir/extractor.cc.o.d"
  "CMakeFiles/grandma_features.dir/feature_vector.cc.o"
  "CMakeFiles/grandma_features.dir/feature_vector.cc.o.d"
  "libgrandma_features.a"
  "libgrandma_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
