# Empty compiler generated dependencies file for grandma_features.
# This may be replaced when dependencies are built.
