
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/evaluation.cc" "src/classify/CMakeFiles/grandma_classify.dir/evaluation.cc.o" "gcc" "src/classify/CMakeFiles/grandma_classify.dir/evaluation.cc.o.d"
  "/root/repo/src/classify/gesture_classifier.cc" "src/classify/CMakeFiles/grandma_classify.dir/gesture_classifier.cc.o" "gcc" "src/classify/CMakeFiles/grandma_classify.dir/gesture_classifier.cc.o.d"
  "/root/repo/src/classify/linear_classifier.cc" "src/classify/CMakeFiles/grandma_classify.dir/linear_classifier.cc.o" "gcc" "src/classify/CMakeFiles/grandma_classify.dir/linear_classifier.cc.o.d"
  "/root/repo/src/classify/multistroke.cc" "src/classify/CMakeFiles/grandma_classify.dir/multistroke.cc.o" "gcc" "src/classify/CMakeFiles/grandma_classify.dir/multistroke.cc.o.d"
  "/root/repo/src/classify/rejection.cc" "src/classify/CMakeFiles/grandma_classify.dir/rejection.cc.o" "gcc" "src/classify/CMakeFiles/grandma_classify.dir/rejection.cc.o.d"
  "/root/repo/src/classify/training_set.cc" "src/classify/CMakeFiles/grandma_classify.dir/training_set.cc.o" "gcc" "src/classify/CMakeFiles/grandma_classify.dir/training_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/features/CMakeFiles/grandma_features.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/robust/CMakeFiles/grandma_robust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
