# Empty compiler generated dependencies file for grandma_classify.
# This may be replaced when dependencies are built.
