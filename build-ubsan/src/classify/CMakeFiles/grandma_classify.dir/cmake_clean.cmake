file(REMOVE_RECURSE
  "CMakeFiles/grandma_classify.dir/evaluation.cc.o"
  "CMakeFiles/grandma_classify.dir/evaluation.cc.o.d"
  "CMakeFiles/grandma_classify.dir/gesture_classifier.cc.o"
  "CMakeFiles/grandma_classify.dir/gesture_classifier.cc.o.d"
  "CMakeFiles/grandma_classify.dir/linear_classifier.cc.o"
  "CMakeFiles/grandma_classify.dir/linear_classifier.cc.o.d"
  "CMakeFiles/grandma_classify.dir/multistroke.cc.o"
  "CMakeFiles/grandma_classify.dir/multistroke.cc.o.d"
  "CMakeFiles/grandma_classify.dir/rejection.cc.o"
  "CMakeFiles/grandma_classify.dir/rejection.cc.o.d"
  "CMakeFiles/grandma_classify.dir/training_set.cc.o"
  "CMakeFiles/grandma_classify.dir/training_set.cc.o.d"
  "libgrandma_classify.a"
  "libgrandma_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
