file(REMOVE_RECURSE
  "libgrandma_classify.a"
)
