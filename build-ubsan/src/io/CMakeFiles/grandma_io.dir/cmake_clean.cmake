file(REMOVE_RECURSE
  "CMakeFiles/grandma_io.dir/event_trace.cc.o"
  "CMakeFiles/grandma_io.dir/event_trace.cc.o.d"
  "CMakeFiles/grandma_io.dir/serialize.cc.o"
  "CMakeFiles/grandma_io.dir/serialize.cc.o.d"
  "libgrandma_io.a"
  "libgrandma_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
