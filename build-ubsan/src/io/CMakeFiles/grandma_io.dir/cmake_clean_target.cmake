file(REMOVE_RECURSE
  "libgrandma_io.a"
)
