# Empty compiler generated dependencies file for grandma_io.
# This may be replaced when dependencies are built.
