file(REMOVE_RECURSE
  "libgrandma_gdp.a"
)
