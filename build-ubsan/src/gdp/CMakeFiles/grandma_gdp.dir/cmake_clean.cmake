file(REMOVE_RECURSE
  "CMakeFiles/grandma_gdp.dir/app.cc.o"
  "CMakeFiles/grandma_gdp.dir/app.cc.o.d"
  "CMakeFiles/grandma_gdp.dir/canvas.cc.o"
  "CMakeFiles/grandma_gdp.dir/canvas.cc.o.d"
  "CMakeFiles/grandma_gdp.dir/document.cc.o"
  "CMakeFiles/grandma_gdp.dir/document.cc.o.d"
  "CMakeFiles/grandma_gdp.dir/scripting.cc.o"
  "CMakeFiles/grandma_gdp.dir/scripting.cc.o.d"
  "CMakeFiles/grandma_gdp.dir/session.cc.o"
  "CMakeFiles/grandma_gdp.dir/session.cc.o.d"
  "CMakeFiles/grandma_gdp.dir/shapes.cc.o"
  "CMakeFiles/grandma_gdp.dir/shapes.cc.o.d"
  "libgrandma_gdp.a"
  "libgrandma_gdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_gdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
