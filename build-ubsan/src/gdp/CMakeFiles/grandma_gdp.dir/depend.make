# Empty dependencies file for grandma_gdp.
# This may be replaced when dependencies are built.
