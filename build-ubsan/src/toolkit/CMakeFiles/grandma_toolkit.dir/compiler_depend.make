# Empty compiler generated dependencies file for grandma_toolkit.
# This may be replaced when dependencies are built.
