file(REMOVE_RECURSE
  "libgrandma_toolkit.a"
)
