file(REMOVE_RECURSE
  "CMakeFiles/grandma_toolkit.dir/dispatcher.cc.o"
  "CMakeFiles/grandma_toolkit.dir/dispatcher.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/drag_handler.cc.o"
  "CMakeFiles/grandma_toolkit.dir/drag_handler.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/event.cc.o"
  "CMakeFiles/grandma_toolkit.dir/event.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/gesture_handler.cc.o"
  "CMakeFiles/grandma_toolkit.dir/gesture_handler.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/model.cc.o"
  "CMakeFiles/grandma_toolkit.dir/model.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/playback.cc.o"
  "CMakeFiles/grandma_toolkit.dir/playback.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/script.cc.o"
  "CMakeFiles/grandma_toolkit.dir/script.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/script_semantics.cc.o"
  "CMakeFiles/grandma_toolkit.dir/script_semantics.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/semantics.cc.o"
  "CMakeFiles/grandma_toolkit.dir/semantics.cc.o.d"
  "CMakeFiles/grandma_toolkit.dir/view.cc.o"
  "CMakeFiles/grandma_toolkit.dir/view.cc.o.d"
  "libgrandma_toolkit.a"
  "libgrandma_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
