# Empty dependencies file for grandma_linalg.
# This may be replaced when dependencies are built.
