file(REMOVE_RECURSE
  "CMakeFiles/grandma_linalg.dir/cholesky.cc.o"
  "CMakeFiles/grandma_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/grandma_linalg.dir/matrix.cc.o"
  "CMakeFiles/grandma_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/grandma_linalg.dir/solve.cc.o"
  "CMakeFiles/grandma_linalg.dir/solve.cc.o.d"
  "CMakeFiles/grandma_linalg.dir/stats.cc.o"
  "CMakeFiles/grandma_linalg.dir/stats.cc.o.d"
  "CMakeFiles/grandma_linalg.dir/vector.cc.o"
  "CMakeFiles/grandma_linalg.dir/vector.cc.o.d"
  "libgrandma_linalg.a"
  "libgrandma_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
