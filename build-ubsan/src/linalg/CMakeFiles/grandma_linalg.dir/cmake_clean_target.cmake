file(REMOVE_RECURSE
  "libgrandma_linalg.a"
)
