
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/grandma_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/grandma_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/grandma_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/grandma_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/solve.cc" "src/linalg/CMakeFiles/grandma_linalg.dir/solve.cc.o" "gcc" "src/linalg/CMakeFiles/grandma_linalg.dir/solve.cc.o.d"
  "/root/repo/src/linalg/stats.cc" "src/linalg/CMakeFiles/grandma_linalg.dir/stats.cc.o" "gcc" "src/linalg/CMakeFiles/grandma_linalg.dir/stats.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/linalg/CMakeFiles/grandma_linalg.dir/vector.cc.o" "gcc" "src/linalg/CMakeFiles/grandma_linalg.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
