file(REMOVE_RECURSE
  "libgrandma_robust.a"
)
