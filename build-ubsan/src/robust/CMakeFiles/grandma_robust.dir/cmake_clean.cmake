file(REMOVE_RECURSE
  "CMakeFiles/grandma_robust.dir/fault_injector.cc.o"
  "CMakeFiles/grandma_robust.dir/fault_injector.cc.o.d"
  "CMakeFiles/grandma_robust.dir/fault_stats.cc.o"
  "CMakeFiles/grandma_robust.dir/fault_stats.cc.o.d"
  "CMakeFiles/grandma_robust.dir/stroke_validator.cc.o"
  "CMakeFiles/grandma_robust.dir/stroke_validator.cc.o.d"
  "libgrandma_robust.a"
  "libgrandma_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
