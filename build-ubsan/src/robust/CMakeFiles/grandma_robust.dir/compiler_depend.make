# Empty compiler generated dependencies file for grandma_robust.
# This may be replaced when dependencies are built.
