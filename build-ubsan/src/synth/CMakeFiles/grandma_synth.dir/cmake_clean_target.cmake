file(REMOVE_RECURSE
  "libgrandma_synth.a"
)
