# Empty compiler generated dependencies file for grandma_synth.
# This may be replaced when dependencies are built.
