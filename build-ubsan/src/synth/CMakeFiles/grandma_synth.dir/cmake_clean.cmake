file(REMOVE_RECURSE
  "CMakeFiles/grandma_synth.dir/generator.cc.o"
  "CMakeFiles/grandma_synth.dir/generator.cc.o.d"
  "CMakeFiles/grandma_synth.dir/path_spec.cc.o"
  "CMakeFiles/grandma_synth.dir/path_spec.cc.o.d"
  "CMakeFiles/grandma_synth.dir/sets.cc.o"
  "CMakeFiles/grandma_synth.dir/sets.cc.o.d"
  "libgrandma_synth.a"
  "libgrandma_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
