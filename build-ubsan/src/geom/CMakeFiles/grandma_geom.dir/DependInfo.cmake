
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/filter.cc" "src/geom/CMakeFiles/grandma_geom.dir/filter.cc.o" "gcc" "src/geom/CMakeFiles/grandma_geom.dir/filter.cc.o.d"
  "/root/repo/src/geom/gesture.cc" "src/geom/CMakeFiles/grandma_geom.dir/gesture.cc.o" "gcc" "src/geom/CMakeFiles/grandma_geom.dir/gesture.cc.o.d"
  "/root/repo/src/geom/resample.cc" "src/geom/CMakeFiles/grandma_geom.dir/resample.cc.o" "gcc" "src/geom/CMakeFiles/grandma_geom.dir/resample.cc.o.d"
  "/root/repo/src/geom/transform.cc" "src/geom/CMakeFiles/grandma_geom.dir/transform.cc.o" "gcc" "src/geom/CMakeFiles/grandma_geom.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
