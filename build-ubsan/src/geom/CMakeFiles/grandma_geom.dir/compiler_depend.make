# Empty compiler generated dependencies file for grandma_geom.
# This may be replaced when dependencies are built.
