file(REMOVE_RECURSE
  "CMakeFiles/grandma_geom.dir/filter.cc.o"
  "CMakeFiles/grandma_geom.dir/filter.cc.o.d"
  "CMakeFiles/grandma_geom.dir/gesture.cc.o"
  "CMakeFiles/grandma_geom.dir/gesture.cc.o.d"
  "CMakeFiles/grandma_geom.dir/resample.cc.o"
  "CMakeFiles/grandma_geom.dir/resample.cc.o.d"
  "CMakeFiles/grandma_geom.dir/transform.cc.o"
  "CMakeFiles/grandma_geom.dir/transform.cc.o.d"
  "libgrandma_geom.a"
  "libgrandma_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
