file(REMOVE_RECURSE
  "libgrandma_geom.a"
)
