file(REMOVE_RECURSE
  "libgrandma_multipath.a"
)
