# Empty dependencies file for grandma_multipath.
# This may be replaced when dependencies are built.
