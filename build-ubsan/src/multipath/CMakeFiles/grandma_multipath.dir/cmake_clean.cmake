file(REMOVE_RECURSE
  "CMakeFiles/grandma_multipath.dir/classifier.cc.o"
  "CMakeFiles/grandma_multipath.dir/classifier.cc.o.d"
  "CMakeFiles/grandma_multipath.dir/features.cc.o"
  "CMakeFiles/grandma_multipath.dir/features.cc.o.d"
  "CMakeFiles/grandma_multipath.dir/multipath_gesture.cc.o"
  "CMakeFiles/grandma_multipath.dir/multipath_gesture.cc.o.d"
  "CMakeFiles/grandma_multipath.dir/synth.cc.o"
  "CMakeFiles/grandma_multipath.dir/synth.cc.o.d"
  "CMakeFiles/grandma_multipath.dir/two_finger_transform.cc.o"
  "CMakeFiles/grandma_multipath.dir/two_finger_transform.cc.o.d"
  "libgrandma_multipath.a"
  "libgrandma_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grandma_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
