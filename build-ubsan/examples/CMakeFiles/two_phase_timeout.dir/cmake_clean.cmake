file(REMOVE_RECURSE
  "CMakeFiles/two_phase_timeout.dir/two_phase_timeout.cpp.o"
  "CMakeFiles/two_phase_timeout.dir/two_phase_timeout.cpp.o.d"
  "two_phase_timeout"
  "two_phase_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
