# Empty dependencies file for two_phase_timeout.
# This may be replaced when dependencies are built.
