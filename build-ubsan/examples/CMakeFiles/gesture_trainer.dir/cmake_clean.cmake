file(REMOVE_RECURSE
  "CMakeFiles/gesture_trainer.dir/gesture_trainer.cpp.o"
  "CMakeFiles/gesture_trainer.dir/gesture_trainer.cpp.o.d"
  "gesture_trainer"
  "gesture_trainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
