# Empty compiler generated dependencies file for gesture_trainer.
# This may be replaced when dependencies are built.
