file(REMOVE_RECURSE
  "CMakeFiles/multitouch_trs.dir/multitouch_trs.cpp.o"
  "CMakeFiles/multitouch_trs.dir/multitouch_trs.cpp.o.d"
  "multitouch_trs"
  "multitouch_trs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitouch_trs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
