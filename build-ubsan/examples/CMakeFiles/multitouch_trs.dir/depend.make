# Empty dependencies file for multitouch_trs.
# This may be replaced when dependencies are built.
