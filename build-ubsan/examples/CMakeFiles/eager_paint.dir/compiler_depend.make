# Empty compiler generated dependencies file for eager_paint.
# This may be replaced when dependencies are built.
