file(REMOVE_RECURSE
  "CMakeFiles/eager_paint.dir/eager_paint.cpp.o"
  "CMakeFiles/eager_paint.dir/eager_paint.cpp.o.d"
  "eager_paint"
  "eager_paint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_paint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
