file(REMOVE_RECURSE
  "CMakeFiles/gdp_cli.dir/gdp_cli.cpp.o"
  "CMakeFiles/gdp_cli.dir/gdp_cli.cpp.o.d"
  "gdp_cli"
  "gdp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
