# Empty compiler generated dependencies file for gdp_cli.
# This may be replaced when dependencies are built.
