# Empty dependencies file for gdp_session.
# This may be replaced when dependencies are built.
