file(REMOVE_RECURSE
  "CMakeFiles/gdp_session.dir/gdp_session.cpp.o"
  "CMakeFiles/gdp_session.dir/gdp_session.cpp.o.d"
  "gdp_session"
  "gdp_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
