# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-ubsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-ubsan/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/geom_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/features_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/classify_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/synth_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/eager_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/toolkit_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/gdp_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/io_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/robust_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/property_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/multipath_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/integration_tests[1]_include.cmake")
include("/root/repo/build-ubsan/tests/toolkit_model_tests[1]_include.cmake")
