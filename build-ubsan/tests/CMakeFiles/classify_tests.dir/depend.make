# Empty dependencies file for classify_tests.
# This may be replaced when dependencies are built.
