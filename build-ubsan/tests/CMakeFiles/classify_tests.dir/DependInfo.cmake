
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classify_evaluation_test.cc" "tests/CMakeFiles/classify_tests.dir/classify_evaluation_test.cc.o" "gcc" "tests/CMakeFiles/classify_tests.dir/classify_evaluation_test.cc.o.d"
  "/root/repo/tests/classify_linear_test.cc" "tests/CMakeFiles/classify_tests.dir/classify_linear_test.cc.o" "gcc" "tests/CMakeFiles/classify_tests.dir/classify_linear_test.cc.o.d"
  "/root/repo/tests/classify_multistroke_test.cc" "tests/CMakeFiles/classify_tests.dir/classify_multistroke_test.cc.o" "gcc" "tests/CMakeFiles/classify_tests.dir/classify_multistroke_test.cc.o.d"
  "/root/repo/tests/classify_rejection_test.cc" "tests/CMakeFiles/classify_tests.dir/classify_rejection_test.cc.o" "gcc" "tests/CMakeFiles/classify_tests.dir/classify_rejection_test.cc.o.d"
  "/root/repo/tests/classify_training_set_test.cc" "tests/CMakeFiles/classify_tests.dir/classify_training_set_test.cc.o" "gcc" "tests/CMakeFiles/classify_tests.dir/classify_training_set_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-ubsan/src/gdp/CMakeFiles/grandma_gdp.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/io/CMakeFiles/grandma_io.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/toolkit/CMakeFiles/grandma_toolkit.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/eager/CMakeFiles/grandma_eager.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/multipath/CMakeFiles/grandma_multipath.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/synth/CMakeFiles/grandma_synth.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/classify/CMakeFiles/grandma_classify.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/robust/CMakeFiles/grandma_robust.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/features/CMakeFiles/grandma_features.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/geom/CMakeFiles/grandma_geom.dir/DependInfo.cmake"
  "/root/repo/build-ubsan/src/linalg/CMakeFiles/grandma_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
