file(REMOVE_RECURSE
  "CMakeFiles/classify_tests.dir/classify_evaluation_test.cc.o"
  "CMakeFiles/classify_tests.dir/classify_evaluation_test.cc.o.d"
  "CMakeFiles/classify_tests.dir/classify_linear_test.cc.o"
  "CMakeFiles/classify_tests.dir/classify_linear_test.cc.o.d"
  "CMakeFiles/classify_tests.dir/classify_multistroke_test.cc.o"
  "CMakeFiles/classify_tests.dir/classify_multistroke_test.cc.o.d"
  "CMakeFiles/classify_tests.dir/classify_rejection_test.cc.o"
  "CMakeFiles/classify_tests.dir/classify_rejection_test.cc.o.d"
  "CMakeFiles/classify_tests.dir/classify_training_set_test.cc.o"
  "CMakeFiles/classify_tests.dir/classify_training_set_test.cc.o.d"
  "classify_tests"
  "classify_tests.pdb"
  "classify_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
