file(REMOVE_RECURSE
  "CMakeFiles/multipath_tests.dir/multipath_test.cc.o"
  "CMakeFiles/multipath_tests.dir/multipath_test.cc.o.d"
  "multipath_tests"
  "multipath_tests.pdb"
  "multipath_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
