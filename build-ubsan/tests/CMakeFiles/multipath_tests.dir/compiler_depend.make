# Empty compiler generated dependencies file for multipath_tests.
# This may be replaced when dependencies are built.
