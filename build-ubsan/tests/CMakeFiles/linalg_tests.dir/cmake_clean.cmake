file(REMOVE_RECURSE
  "CMakeFiles/linalg_tests.dir/linalg_cholesky_test.cc.o"
  "CMakeFiles/linalg_tests.dir/linalg_cholesky_test.cc.o.d"
  "CMakeFiles/linalg_tests.dir/linalg_matrix_test.cc.o"
  "CMakeFiles/linalg_tests.dir/linalg_matrix_test.cc.o.d"
  "CMakeFiles/linalg_tests.dir/linalg_solve_test.cc.o"
  "CMakeFiles/linalg_tests.dir/linalg_solve_test.cc.o.d"
  "CMakeFiles/linalg_tests.dir/linalg_stats_test.cc.o"
  "CMakeFiles/linalg_tests.dir/linalg_stats_test.cc.o.d"
  "CMakeFiles/linalg_tests.dir/linalg_vector_test.cc.o"
  "CMakeFiles/linalg_tests.dir/linalg_vector_test.cc.o.d"
  "linalg_tests"
  "linalg_tests.pdb"
  "linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
