file(REMOVE_RECURSE
  "CMakeFiles/geom_tests.dir/geom_filter_test.cc.o"
  "CMakeFiles/geom_tests.dir/geom_filter_test.cc.o.d"
  "CMakeFiles/geom_tests.dir/geom_gesture_test.cc.o"
  "CMakeFiles/geom_tests.dir/geom_gesture_test.cc.o.d"
  "CMakeFiles/geom_tests.dir/geom_resample_test.cc.o"
  "CMakeFiles/geom_tests.dir/geom_resample_test.cc.o.d"
  "CMakeFiles/geom_tests.dir/geom_transform_test.cc.o"
  "CMakeFiles/geom_tests.dir/geom_transform_test.cc.o.d"
  "geom_tests"
  "geom_tests.pdb"
  "geom_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
