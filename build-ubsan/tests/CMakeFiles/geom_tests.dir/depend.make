# Empty dependencies file for geom_tests.
# This may be replaced when dependencies are built.
