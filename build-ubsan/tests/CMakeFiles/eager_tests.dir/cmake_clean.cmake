file(REMOVE_RECURSE
  "CMakeFiles/eager_tests.dir/eager_auc_test.cc.o"
  "CMakeFiles/eager_tests.dir/eager_auc_test.cc.o.d"
  "CMakeFiles/eager_tests.dir/eager_labeler_test.cc.o"
  "CMakeFiles/eager_tests.dir/eager_labeler_test.cc.o.d"
  "CMakeFiles/eager_tests.dir/eager_mover_test.cc.o"
  "CMakeFiles/eager_tests.dir/eager_mover_test.cc.o.d"
  "CMakeFiles/eager_tests.dir/eager_options_test.cc.o"
  "CMakeFiles/eager_tests.dir/eager_options_test.cc.o.d"
  "CMakeFiles/eager_tests.dir/eager_recognizer_test.cc.o"
  "CMakeFiles/eager_tests.dir/eager_recognizer_test.cc.o.d"
  "eager_tests"
  "eager_tests.pdb"
  "eager_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
