# Empty compiler generated dependencies file for eager_tests.
# This may be replaced when dependencies are built.
