file(REMOVE_RECURSE
  "CMakeFiles/features_tests.dir/features_test.cc.o"
  "CMakeFiles/features_tests.dir/features_test.cc.o.d"
  "features_tests"
  "features_tests.pdb"
  "features_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
