# Empty dependencies file for features_tests.
# This may be replaced when dependencies are built.
