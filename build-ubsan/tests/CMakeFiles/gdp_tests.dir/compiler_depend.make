# Empty compiler generated dependencies file for gdp_tests.
# This may be replaced when dependencies are built.
