file(REMOVE_RECURSE
  "CMakeFiles/gdp_tests.dir/gdp_app_test.cc.o"
  "CMakeFiles/gdp_tests.dir/gdp_app_test.cc.o.d"
  "CMakeFiles/gdp_tests.dir/gdp_canvas_test.cc.o"
  "CMakeFiles/gdp_tests.dir/gdp_canvas_test.cc.o.d"
  "CMakeFiles/gdp_tests.dir/gdp_document_test.cc.o"
  "CMakeFiles/gdp_tests.dir/gdp_document_test.cc.o.d"
  "CMakeFiles/gdp_tests.dir/gdp_scripting_test.cc.o"
  "CMakeFiles/gdp_tests.dir/gdp_scripting_test.cc.o.d"
  "CMakeFiles/gdp_tests.dir/gdp_session_test.cc.o"
  "CMakeFiles/gdp_tests.dir/gdp_session_test.cc.o.d"
  "CMakeFiles/gdp_tests.dir/gdp_shapes_test.cc.o"
  "CMakeFiles/gdp_tests.dir/gdp_shapes_test.cc.o.d"
  "gdp_tests"
  "gdp_tests.pdb"
  "gdp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
