# Empty dependencies file for toolkit_model_tests.
# This may be replaced when dependencies are built.
