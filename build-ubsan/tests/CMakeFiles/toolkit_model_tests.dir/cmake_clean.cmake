file(REMOVE_RECURSE
  "CMakeFiles/toolkit_model_tests.dir/toolkit_model_test.cc.o"
  "CMakeFiles/toolkit_model_tests.dir/toolkit_model_test.cc.o.d"
  "toolkit_model_tests"
  "toolkit_model_tests.pdb"
  "toolkit_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolkit_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
