file(REMOVE_RECURSE
  "CMakeFiles/synth_tests.dir/synth_test.cc.o"
  "CMakeFiles/synth_tests.dir/synth_test.cc.o.d"
  "synth_tests"
  "synth_tests.pdb"
  "synth_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
