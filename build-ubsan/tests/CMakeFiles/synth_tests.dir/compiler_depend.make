# Empty compiler generated dependencies file for synth_tests.
# This may be replaced when dependencies are built.
