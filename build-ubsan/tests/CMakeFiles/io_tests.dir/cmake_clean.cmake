file(REMOVE_RECURSE
  "CMakeFiles/io_tests.dir/io_event_trace_test.cc.o"
  "CMakeFiles/io_tests.dir/io_event_trace_test.cc.o.d"
  "CMakeFiles/io_tests.dir/io_serialize_test.cc.o"
  "CMakeFiles/io_tests.dir/io_serialize_test.cc.o.d"
  "io_tests"
  "io_tests.pdb"
  "io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
