file(REMOVE_RECURSE
  "CMakeFiles/toolkit_tests.dir/toolkit_dispatcher_test.cc.o"
  "CMakeFiles/toolkit_tests.dir/toolkit_dispatcher_test.cc.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit_gesture_handler_test.cc.o"
  "CMakeFiles/toolkit_tests.dir/toolkit_gesture_handler_test.cc.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit_playback_test.cc.o"
  "CMakeFiles/toolkit_tests.dir/toolkit_playback_test.cc.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit_script_test.cc.o"
  "CMakeFiles/toolkit_tests.dir/toolkit_script_test.cc.o.d"
  "CMakeFiles/toolkit_tests.dir/toolkit_view_test.cc.o"
  "CMakeFiles/toolkit_tests.dir/toolkit_view_test.cc.o.d"
  "toolkit_tests"
  "toolkit_tests.pdb"
  "toolkit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolkit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
