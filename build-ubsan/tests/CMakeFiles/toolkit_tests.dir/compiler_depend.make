# Empty compiler generated dependencies file for toolkit_tests.
# This may be replaced when dependencies are built.
