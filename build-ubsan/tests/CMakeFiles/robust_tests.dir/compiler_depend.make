# Empty compiler generated dependencies file for robust_tests.
# This may be replaced when dependencies are built.
