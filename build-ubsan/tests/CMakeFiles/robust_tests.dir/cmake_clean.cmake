file(REMOVE_RECURSE
  "CMakeFiles/robust_tests.dir/robust_degenerate_test.cc.o"
  "CMakeFiles/robust_tests.dir/robust_degenerate_test.cc.o.d"
  "CMakeFiles/robust_tests.dir/robust_fault_injector_test.cc.o"
  "CMakeFiles/robust_tests.dir/robust_fault_injector_test.cc.o.d"
  "CMakeFiles/robust_tests.dir/robust_pipeline_test.cc.o"
  "CMakeFiles/robust_tests.dir/robust_pipeline_test.cc.o.d"
  "CMakeFiles/robust_tests.dir/robust_status_test.cc.o"
  "CMakeFiles/robust_tests.dir/robust_status_test.cc.o.d"
  "CMakeFiles/robust_tests.dir/robust_validator_test.cc.o"
  "CMakeFiles/robust_tests.dir/robust_validator_test.cc.o.d"
  "robust_tests"
  "robust_tests.pdb"
  "robust_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
