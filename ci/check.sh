#!/usr/bin/env bash
# The full pre-merge gauntlet, in the order a failure is cheapest to find:
#   1. tier-1: default configure + build + the whole ctest suite
#   2. hotpath: the zero-allocation gate and the legacy-vs-kernel speedup
#      gate (label `hotpath`, runs in the tier-1 build tree)
#   2b. chaos: crash-kill sweep over snapshot writes, corruption corpus,
#      and hot-swap-under-traffic recovery gates (label `chaos`)
#   3. asan / ubsan: full suite under AddressSanitizer and UBSan (includes
#      the snapshot fuzz/corruption tests in io_tests)
#   4. tsan: the threaded serve layer (label `serve`, including the
#      hot-swap tests) under ThreadSanitizer
# Usage: ci/check.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run() {
  echo
  echo "=== $* ==="
  "$@"
}

# 1. Tier-1 verify.
run cmake --preset default
run cmake --build --preset default -j "$JOBS"
run ctest --preset default

# 2. Hot-path allocation + speedup gates (already built by tier-1).
run ctest --preset default -L hotpath

# 2b. Crash-safety chaos gate: strided crash-kill sweep over snapshot
#     writes + corruption corpus + hot-swap-under-traffic (label `chaos`,
#     runs in the tier-1 build tree).
run ctest --preset default -L chaos

# 3. Memory-error and UB gates, full suite.
for san in asan ubsan; do
  run cmake --preset "$san"
  run cmake --build --preset "$san" -j "$JOBS"
  run ctest --preset "$san"
done

# 4. Data-race gate on the concurrent serve layer.
run cmake --preset tsan
run cmake --build --preset tsan -j "$JOBS"
run ctest --preset tsan

echo
echo "ci/check.sh: all gates passed"
