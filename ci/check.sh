#!/usr/bin/env bash
# The full pre-merge gauntlet, in the order a failure is cheapest to find:
#   1. tier-1: default configure + build + the whole ctest suite
#   2. hotpath: the zero-allocation gate and the legacy-vs-kernel speedup
#      gate (label `hotpath`, runs in the tier-1 build tree)
#   2b. chaos: crash-kill sweep over snapshot writes, corruption corpus,
#      and hot-swap-under-traffic recovery gates (label `chaos`)
#   2c. obs: tracing-layer gates — span well-formedness, trace-replay
#      determinism, golden chrome trace, overhead/alloc bench (label `obs`)
#   2d. soak: the fault-injected overload soak (label `soak`) — wire-format
#      round trip, adaptive admission under 2x overload, deadline budgets,
#      retry accounting, corrupt/truncated frame rejection
#   3. asan / ubsan: full suite under AddressSanitizer and UBSan (includes
#      the snapshot + event-wire fuzz/corruption tests in io_tests)
#   2f. touch: multi-contact robustness gates — contact lifecycle repair,
#      touch-attribute classification, front-end routing, touch-noise soak
#      smoke (label `touch`)
#   2g. lexicon: large-lexicon n-best gates — lexicon generation, n-best
#      invariants, selection determinism, serve n-best wiring, scaling
#      bench smoke (label `lexicon`)
#   4. tsan: the threaded serve, tracing, personalization, touch, and
#      lexicon layers (labels `serve`, `obs`, `personalize`, `touch`,
#      `lexicon`; the serve
#      label includes the admission/deadline/retry and
#      concurrent-metrics-snapshot tests alongside hot-swap) under
#      ThreadSanitizer
#   5. notrace: GRANDMA_TRACING=OFF build — proves the instrumented tree
#      still compiles with tracing compiled out, and the obs tests (which
#      then assert that zero spans are ever recorded) still pass
#   6. nosimd: GRANDMA_SIMD=OFF build — the scalar-only fallback must pass
#      the FULL tier-1 suite, and the hotpath bench gates run on both the
#      SIMD and scalar-only builds (the scalar build records
#      "speedup_gate": "skipped_no_simd")
#   7. artifacts: every BENCH_*.json the gauntlet produced is copied to the
#      repo root so the perf trajectory is trackable across PRs (the nosimd
#      hotpath result lands as BENCH_hotpath_nosimd.json)
# Usage: ci/check.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run() {
  echo
  echo "=== $* ==="
  "$@"
}

# 1. Tier-1 verify.
run cmake --preset default
run cmake --build --preset default -j "$JOBS"
run ctest --preset default

# 2. Hot-path allocation + speedup gates (already built by tier-1).
run ctest --preset default -L hotpath

# 2b. Crash-safety chaos gate: strided crash-kill sweep over snapshot
#     writes + corruption corpus + hot-swap-under-traffic (label `chaos`,
#     runs in the tier-1 build tree).
run ctest --preset default -L chaos

# 2c. Tracing-layer gate: property/replay/golden tests plus the overhead,
#     zero-allocation, and replay-determinism bench (label `obs`, runs in
#     the tier-1 build tree).
run ctest --preset default -L obs

# 2d. Overload-resilience soak gate: bench_smoke_overload replays a reduced
#     wire-format load through the adaptive-admission server with fault
#     injection and checks every hard gate (label `soak`, runs in the tier-1
#     build tree).
run ctest --preset default -L soak

# 2e. Personalization gate: user-delta math/snapshot/cache/serve-wiring unit
#     tests plus the churn bench smoke (adapted-vs-base accuracy, balanced
#     eviction/rehydration accounting, zero concurrent divergences) — label
#     `personalize`, runs in the tier-1 build tree. The same label rides the
#     tsan preset below.
run ctest --preset default -L personalize

# 2f. Multi-contact robustness gate: contact-tracker lifecycle repair,
#     touch-attribute classification, and TouchFrontEnd routing unit tests
#     plus the touch-noise soak smoke (zero throws under contact-level
#     faults, balanced contact accounting, zero untainted divergences,
#     bit-identical attribute streams) — label `touch`, runs in the tier-1
#     build tree. The same label rides the tsan preset below.
run ctest --preset default -L touch

# 2g. Large-lexicon gate: extensive-lexicon generation, n-best ranking
#     invariants (cross-tier identity at 200 classes), lexicon-selection
#     determinism/collision handling, the serve n-best wiring, and the
#     lexicon-scale bench smoke (accuracy/latency rows at 11/50/200 classes,
#     selection-vs-prefix comparison, n-best zero-allocation gate) — label
#     `lexicon`, runs in the tier-1 build tree. The same label rides the
#     tsan preset below.
run ctest --preset default -L lexicon

# 3. Memory-error and UB gates, full suite.
for san in asan ubsan; do
  run cmake --preset "$san"
  run cmake --build --preset "$san" -j "$JOBS"
  run ctest --preset "$san"
done

# 4. Data-race gate on the concurrent serve layer and the per-thread
#    tracing buffers (single-writer rings + stage histograms).
run cmake --preset tsan
run cmake --build --preset tsan -j "$JOBS"
run ctest --preset tsan

# 5. Compile-out gate: the whole tree must build with GRANDMA_TRACING=OFF
#    (TRACE_SPAN expands to a no-op) and the obs tests must still pass —
#    in that config they assert that no span is ever recorded.
run cmake --preset notrace
run cmake --build --preset notrace -j "$JOBS"
run ctest --preset notrace

# 6. Scalar-fallback gate: GRANDMA_SIMD=OFF compiles only the scalar kernel
#    tier; the FULL tier-1 suite (equivalence tests included — they then see
#    a single supported tier) must pass, proving no code path silently
#    requires vector hardware.
run cmake --preset nosimd
run cmake --build --preset nosimd -j "$JOBS"
run ctest --preset nosimd

# 6b. Hotpath bench gates on both kernel builds, full reps. The default
#     build enforces the batched-SIMD speedup gate (on vector-capable
#     hardware); the nosimd build records "skipped_no_simd" and still
#     enforces the allocation and legacy-speedup gates. Each writes
#     BENCH_hotpath.json into its own bench dir; the tier is recorded in
#     the JSON ("simd_tier") so regressions are attributable.
run env -C build/bench ./hotpath_per_point
run env -C build-nosimd/bench ./hotpath_per_point

# 7. Artifact collection: surface every benchmark JSON the gauntlet wrote at
#    the repo root so the numbers ride along with the PR. The nosimd hotpath
#    result is renamed to keep both kernel configurations side by side.
echo
echo "=== collecting BENCH_*.json artifacts ==="
for f in build/bench/BENCH_*.json; do
  [ -e "$f" ] && cp -v "$f" .
done
[ -e build-nosimd/bench/BENCH_hotpath.json ] &&
  cp -v build-nosimd/bench/BENCH_hotpath.json BENCH_hotpath_nosimd.json

echo
echo "ci/check.sh: all gates passed"
