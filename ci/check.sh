#!/usr/bin/env bash
# The full pre-merge gauntlet, in the order a failure is cheapest to find:
#   1. tier-1: default configure + build + the whole ctest suite
#   2. hotpath: the zero-allocation gate and the legacy-vs-kernel speedup
#      gate (label `hotpath`, runs in the tier-1 build tree)
#   2b. chaos: crash-kill sweep over snapshot writes, corruption corpus,
#      and hot-swap-under-traffic recovery gates (label `chaos`)
#   2c. obs: tracing-layer gates — span well-formedness, trace-replay
#      determinism, golden chrome trace, overhead/alloc bench (label `obs`)
#   2d. soak: the fault-injected overload soak (label `soak`) — wire-format
#      round trip, adaptive admission under 2x overload, deadline budgets,
#      retry accounting, corrupt/truncated frame rejection
#   3. asan / ubsan: full suite under AddressSanitizer and UBSan (includes
#      the snapshot + event-wire fuzz/corruption tests in io_tests)
#   4. tsan: the threaded serve and tracing layers (labels `serve` and
#      `obs`; the serve label includes the admission/deadline/retry and
#      concurrent-metrics-snapshot tests alongside hot-swap) under
#      ThreadSanitizer
#   5. notrace: GRANDMA_TRACING=OFF build — proves the instrumented tree
#      still compiles with tracing compiled out, and the obs tests (which
#      then assert that zero spans are ever recorded) still pass
# Usage: ci/check.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run() {
  echo
  echo "=== $* ==="
  "$@"
}

# 1. Tier-1 verify.
run cmake --preset default
run cmake --build --preset default -j "$JOBS"
run ctest --preset default

# 2. Hot-path allocation + speedup gates (already built by tier-1).
run ctest --preset default -L hotpath

# 2b. Crash-safety chaos gate: strided crash-kill sweep over snapshot
#     writes + corruption corpus + hot-swap-under-traffic (label `chaos`,
#     runs in the tier-1 build tree).
run ctest --preset default -L chaos

# 2c. Tracing-layer gate: property/replay/golden tests plus the overhead,
#     zero-allocation, and replay-determinism bench (label `obs`, runs in
#     the tier-1 build tree).
run ctest --preset default -L obs

# 2d. Overload-resilience soak gate: bench_smoke_overload replays a reduced
#     wire-format load through the adaptive-admission server with fault
#     injection and checks every hard gate (label `soak`, runs in the tier-1
#     build tree).
run ctest --preset default -L soak

# 2e. Personalization gate: user-delta math/snapshot/cache/serve-wiring unit
#     tests plus the churn bench smoke (adapted-vs-base accuracy, balanced
#     eviction/rehydration accounting, zero concurrent divergences) — label
#     `personalize`, runs in the tier-1 build tree. The same label rides the
#     tsan preset below.
run ctest --preset default -L personalize

# 3. Memory-error and UB gates, full suite.
for san in asan ubsan; do
  run cmake --preset "$san"
  run cmake --build --preset "$san" -j "$JOBS"
  run ctest --preset "$san"
done

# 4. Data-race gate on the concurrent serve layer and the per-thread
#    tracing buffers (single-writer rings + stage histograms).
run cmake --preset tsan
run cmake --build --preset tsan -j "$JOBS"
run ctest --preset tsan

# 5. Compile-out gate: the whole tree must build with GRANDMA_TRACING=OFF
#    (TRACE_SPAN expands to a no-op) and the obs tests must still pass —
#    in that config they assert that no span is ever recorded.
run cmake --preset notrace
run cmake --build --preset notrace -j "$JOBS"
run ctest --preset notrace

echo
echo "ci/check.sh: all gates passed"
