// Property tests for the n-best recognition surface: ranking order,
// probability calibration bounds, bit-identity of the top-1 entry with the
// single-answer Classify path, and cross-tier identity of the full ranking
// at a 200-class lexicon (EvaluateNBest rides the dispatched SoA evaluator,
// whose scores are bit-identical across tiers by design).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "classify/gesture_classifier.h"
#include "classify/linear_classifier.h"
#include "features/extractor.h"
#include "linalg/simd.h"
#include "synth/generator.h"
#include "synth/lexicon.h"
#include "synth/sets.h"

namespace grandma::classify {
namespace {

namespace simd = linalg::simd;

bool BitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

linalg::Vector ExtractFeatures(const geom::Gesture& g) {
  features::FeatureExtractor fx;
  for (const geom::TimedPoint& p : g) {
    fx.AddPoint(p);
  }
  return fx.Features();
}

// A trained 200-class lexicon classifier plus held-out probe strokes,
// shared across the tests (training 200 classes once keeps the suite fast).
struct LexiconFixture {
  GestureClassifier classifier;
  std::vector<geom::Gesture> probes;

  LexiconFixture() {
    synth::LexiconOptions lex;
    lex.num_classes = 200;
    const std::vector<synth::PathSpec> specs = synth::MakeExtensiveLexicon(lex);
    synth::NoiseModel noise;
    classifier.Train(synth::ToTrainingSet(synth::GenerateSet(specs, noise, 4, 1991)));
    synth::Rng rng(17);
    for (std::size_t c = 0; c < specs.size(); c += 7) {
      probes.push_back(synth::Generate(specs[c], noise, rng).gesture);
    }
  }
};

const LexiconFixture& Fixture() {
  static const LexiconFixture* fixture = new LexiconFixture;
  return *fixture;
}

struct NBestRun {
  std::array<NBestEntry, kMaxNBest> entries{};
  std::size_t count = 0;
  Classification top;
};

NBestRun RunNBest(const GestureClassifier& c, const geom::Gesture& g, std::size_t depth) {
  const linalg::Vector f = ExtractFeatures(g);
  linalg::Vector masked(c.mask().count());
  linalg::Vector scores(c.num_classes());
  linalg::Vector diff(c.mask().count());
  NBestRun run;
  run.count = c.EvaluateNBestView(f.view(), masked.view(), scores.view(), diff.view(),
                                  std::span<NBestEntry>(run.entries.data(), depth), &run.top);
  return run;
}

TEST(NBestTest, SortedByScoreWithLowestIdTies) {
  const LexiconFixture& fx = Fixture();
  for (const geom::Gesture& g : fx.probes) {
    const NBestRun run = RunNBest(fx.classifier, g, kMaxNBest);
    ASSERT_EQ(run.count, kMaxNBest);
    for (std::size_t k = 1; k < run.count; ++k) {
      // Strictly descending by score; equal scores must come in id order.
      if (run.entries[k].score == run.entries[k - 1].score) {
        EXPECT_GT(run.entries[k].class_id, run.entries[k - 1].class_id);
      } else {
        EXPECT_LT(run.entries[k].score, run.entries[k - 1].score);
      }
    }
  }
}

TEST(NBestTest, ProbabilitiesCalibratedAndBounded) {
  const LexiconFixture& fx = Fixture();
  for (const geom::Gesture& g : fx.probes) {
    const NBestRun run = RunNBest(fx.classifier, g, kMaxNBest);
    double sum = 0.0;
    for (std::size_t k = 0; k < run.count; ++k) {
      EXPECT_GE(run.entries[k].probability, 0.0);
      EXPECT_LE(run.entries[k].probability, 1.0);
      if (k > 0) {
        EXPECT_LE(run.entries[k].probability, run.entries[k - 1].probability);
      }
      sum += run.entries[k].probability;
    }
    // The n entries are a subset of the full softmax, so their mass can reach
    // 1.0 but never exceed it beyond summation rounding (a few ULP).
    EXPECT_LE(sum, 1.0 + 16.0 * std::numeric_limits<double>::epsilon());
  }
}

TEST(NBestTest, Top1BitIdenticalToClassify) {
  const LexiconFixture& fx = Fixture();
  for (const geom::Gesture& g : fx.probes) {
    const NBestRun run = RunNBest(fx.classifier, g, kMaxNBest);
    const Classification direct = fx.classifier.Classify(g);
    ASSERT_GT(run.count, 0u);
    EXPECT_EQ(run.entries[0].class_id, direct.class_id);
    EXPECT_TRUE(BitEqual(run.entries[0].score, direct.score));
    EXPECT_TRUE(BitEqual(run.entries[0].probability, direct.probability));
    // The `top` out-param carries the full Classification, also bit-equal.
    EXPECT_EQ(run.top.class_id, direct.class_id);
    EXPECT_TRUE(BitEqual(run.top.score, direct.score));
    EXPECT_TRUE(BitEqual(run.top.probability, direct.probability));
    EXPECT_TRUE(BitEqual(run.top.mahalanobis_squared, direct.mahalanobis_squared));
  }
}

TEST(NBestTest, ZeroDepthStillFillsTopFromClassify) {
  const LexiconFixture& fx = Fixture();
  const NBestRun run = RunNBest(fx.classifier, fx.probes.front(), 0);
  EXPECT_EQ(run.count, 0u);
  const Classification direct = fx.classifier.Classify(fx.probes.front());
  EXPECT_EQ(run.top.class_id, direct.class_id);
  EXPECT_TRUE(BitEqual(run.top.score, direct.score));
}

TEST(NBestTest, DepthClampedToClassCount) {
  // A 2-class classifier asked for kMaxNBest entries returns exactly 2.
  GestureClassifier two;
  synth::NoiseModel noise;
  two.Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 6, 1991)));
  synth::Rng rng(3);
  const geom::Gesture g =
      synth::Generate(synth::MakeUpDownSpecs().front(), noise, rng).gesture;
  const NBestRun run = RunNBest(two, g, kMaxNBest);
  EXPECT_EQ(run.count, std::min<std::size_t>(two.num_classes(), kMaxNBest));
}

TEST(NBestTest, EntriesNameDistinctClasses) {
  const LexiconFixture& fx = Fixture();
  for (const geom::Gesture& g : fx.probes) {
    const NBestRun run = RunNBest(fx.classifier, g, kMaxNBest);
    for (std::size_t i = 0; i < run.count; ++i) {
      for (std::size_t j = i + 1; j < run.count; ++j) {
        EXPECT_NE(run.entries[i].class_id, run.entries[j].class_id);
      }
    }
  }
}

// The ranking (ids, scores, probabilities) must be bitwise identical under
// every tier ForceTier accepts on this hardware — the SoA evaluator's
// cross-tier bit-identity contract extends through EvaluateNBest.
TEST(NBestTest, RankingIdenticalAcrossSimdTiers) {
  const LexiconFixture& fx = Fixture();
  const simd::Tier tiers[] = {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2};
  std::vector<std::vector<NBestRun>> per_tier;
  for (const simd::Tier t : tiers) {
    if (!simd::ForceTier(t)) {
      continue;
    }
    std::vector<NBestRun> runs;
    for (const geom::Gesture& g : fx.probes) {
      runs.push_back(RunNBest(fx.classifier, g, kMaxNBest));
    }
    per_tier.push_back(std::move(runs));
  }
  simd::ResetTier();
  ASSERT_GE(per_tier.size(), 1u);
  for (std::size_t t = 1; t < per_tier.size(); ++t) {
    ASSERT_EQ(per_tier[t].size(), per_tier[0].size());
    for (std::size_t s = 0; s < per_tier[t].size(); ++s) {
      const NBestRun& a = per_tier[0][s];
      const NBestRun& b = per_tier[t][s];
      ASSERT_EQ(a.count, b.count);
      for (std::size_t k = 0; k < a.count; ++k) {
        EXPECT_EQ(a.entries[k].class_id, b.entries[k].class_id);
        EXPECT_TRUE(BitEqual(a.entries[k].score, b.entries[k].score));
        EXPECT_TRUE(BitEqual(a.entries[k].probability, b.entries[k].probability));
      }
    }
  }
}

}  // namespace
}  // namespace grandma::classify
