// End-to-end tests of the hardened pipeline: fault injection -> validation ->
// classification must complete every stroke, account for every injected
// fault, and degrade (ridge repair, diagonal fallback, two-phase fallback)
// instead of throwing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "classify/gesture_classifier.h"
#include "classify/linear_classifier.h"
#include "classify/training_set.h"
#include "eager/eager_recognizer.h"
#include "geom/gesture.h"
#include "linalg/vector.h"
#include "robust/fault_injector.h"
#include "robust/fault_stats.h"
#include "robust/stroke_validator.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

classify::GestureTrainingSet Fig9Training(std::size_t per_class, std::uint64_t seed,
                                          const synth::NoiseModel& noise = {}) {
  return synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, per_class, seed));
}

// A noise model with every random term zeroed: all examples of a class are
// bit-identical, so per-class scatter (and the pooled covariance) is exactly
// singular — the worst case the covariance-repair ladder must handle.
synth::NoiseModel DegenerateNoise() {
  synth::NoiseModel noise;
  noise.spacing_sigma = 0.0;
  noise.point_jitter = 0.0;
  noise.rotation_sigma = 0.0;
  noise.scale_sigma = 0.0;
  noise.translation_sigma = 0.0;
  noise.tempo_sigma = 0.0;
  noise.point_tempo_sigma = 0.0;
  return noise;
}

double Accuracy(const classify::GestureClassifier& classifier,
                const std::vector<synth::LabeledSamples>& batches) {
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& batch : batches) {
    const classify::ClassId want = classifier.registry().Require(batch.class_name);
    for (const auto& sample : batch.samples) {
      ++total;
      if (classifier.Classify(sample.gesture).class_id == want) {
        ++correct;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

// The acceptance scenario: at a 10% fault rate the pipeline completes every
// stroke without throwing, classifies >= 80% of repairable faulted strokes
// correctly, and the stroke-level accounting covers every faulted stroke.
TEST(HardenedPipelineTest, TenPercentFaultSweepInvariant) {
  eager::EagerRecognizer recognizer;
  recognizer.Train(Fig9Training(10, 1991));

  const auto test_batches =
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), synth::NoiseModel{}, 25, 42);

  robust::FaultInjectorOptions fopts;
  fopts.fault_rate = 0.10;
  robust::FaultInjector injector(fopts, 2024);
  robust::StrokeValidator validator;
  robust::FaultStats stats;

  std::uint64_t faulted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t repaired = 0;
  std::uint64_t degraded = 0;
  std::size_t repairable_total = 0;
  std::size_t repairable_correct = 0;

  for (const auto& batch : test_batches) {
    const classify::ClassId want = recognizer.full().registry().Require(batch.class_name);
    for (const auto& sample : batch.samples) {
      ASSERT_NO_THROW({
        robust::InjectedFaults injected;
        const geom::Gesture damaged = injector.Corrupt(sample.gesture, &injected);
        robust::ValidationReport report;
        auto validated = validator.Validate(damaged, &report, &stats);

        if (injected.any()) {
          ++faulted;
          if (!validated.ok()) {
            ++rejected;
          } else if (report.repaired()) {
            ++repaired;
          } else {
            ++degraded;  // lossy (drop/truncate) but structurally clean
          }
        }

        if (validated.ok()) {
          // Replays the arrival of each surviving point, then classifies at
          // mouse-up — the full hardened path every stroke takes.
          eager::EagerStream stream(recognizer);
          for (const auto& p : *validated) {
            (void)stream.AddPoint(p);
          }
          const classify::Classification c = stream.ClassifyNow();
          ASSERT_TRUE(std::isfinite(c.score));
          if (injected.any() && injected.only_repairable()) {
            ++repairable_total;
            if (c.class_id == want) {
              ++repairable_correct;
            }
          }
        }
      });
    }
  }

  // Every faulted stroke is accounted for in exactly one outcome bucket, and
  // the injector's own record agrees.
  EXPECT_EQ(rejected + repaired + degraded, faulted);
  EXPECT_EQ(injector.record().strokes_faulted, faulted);
  EXPECT_EQ(injector.record().strokes_seen, 8u * 25u);
  EXPECT_GT(faulted, 0u);

  // Repairable faults must overwhelmingly still classify correctly.
  ASSERT_GT(repairable_total, 0u);
  const double repairable_accuracy =
      static_cast<double>(repairable_correct) / static_cast<double>(repairable_total);
  EXPECT_GE(repairable_accuracy, 0.8)
      << repairable_correct << "/" << repairable_total << "; stats:\n"
      << stats.ToString();

  // The validator's stroke buckets also cover everything it saw.
  EXPECT_EQ(stats.strokes_clean + stats.strokes_repaired + stats.strokes_rejected,
            stats.strokes_validated);
}

// Singular covariance (identical examples per class) must train via the
// ridge-repair path and still classify held-out clean gestures nearly as
// well as a classifier trained on well-conditioned data.
TEST(HardenedPipelineTest, SingularCovarianceRidgeFallback) {
  classify::GestureClassifier healthy;
  robust::FaultStats healthy_stats;
  const double healthy_ridge =
      healthy.Train(Fig9Training(10, 1991), features::FeatureMask::All(), &healthy_stats);
  EXPECT_EQ(healthy_ridge, 0.0);
  EXPECT_EQ(healthy_stats.covariance_ridge_repairs, 0u);

  classify::GestureClassifier degenerate;
  robust::FaultStats stats;
  const double ridge = degenerate.Train(Fig9Training(3, 5, DegenerateNoise()),
                                        features::FeatureMask::All(), &stats);
  EXPECT_GT(ridge, 0.0);
  EXPECT_EQ(stats.covariance_ridge_repairs, 1u);
  EXPECT_EQ(stats.covariance_diagonal_fallbacks, 0u);

  const auto held_out =
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), synth::NoiseModel{}, 25, 42);
  const double healthy_acc = Accuracy(healthy, held_out);
  const double degenerate_acc = Accuracy(degenerate, held_out);
  EXPECT_GE(degenerate_acc, 0.95 * healthy_acc)
      << "healthy " << healthy_acc << " vs ridge-repaired " << degenerate_acc;
}

TEST(HardenedPipelineTest, NonFiniteTrainingExamplesAreDroppedAndCounted) {
  classify::FeatureTrainingSet data;
  for (int e = 0; e < 6; ++e) {
    linalg::Vector v(2);
    v[0] = 0.1 * e;
    v[1] = 1.0 + 0.05 * e;
    data.Add(0, v);
    linalg::Vector w(2);
    w[0] = 10.0 + 0.1 * e;
    w[1] = -1.0 - 0.05 * e;
    data.Add(1, w);
  }
  linalg::Vector poison(2);
  poison[0] = std::numeric_limits<double>::quiet_NaN();
  poison[1] = 0.0;
  data.Add(0, poison);

  classify::LinearClassifier classifier;
  robust::FaultStats stats;
  ASSERT_NO_THROW(classifier.Train(data, &stats));
  EXPECT_EQ(stats.training_examples_dropped, 1u);
  ASSERT_TRUE(classifier.trained());

  linalg::Vector probe(2);
  probe[0] = 0.2;
  probe[1] = 1.1;
  EXPECT_EQ(classifier.Classify(probe).class_id, 0u);
}

TEST(HardenedPipelineTest, ClassWithOnlyNonFiniteExamplesStillThrows) {
  // Dropping every example of a class is not a degradation the classifier can
  // absorb — that is a structurally unusable training set.
  classify::FeatureTrainingSet data;
  for (int e = 0; e < 4; ++e) {
    linalg::Vector v(2);
    v[0] = e;
    v[1] = -e;
    data.Add(0, v);
    linalg::Vector poison(2);
    poison[0] = std::numeric_limits<double>::infinity();
    poison[1] = 0.0;
    data.Add(1, poison);
  }
  classify::LinearClassifier classifier;
  robust::FaultStats stats;
  EXPECT_THROW(classifier.Train(data, &stats), std::invalid_argument);
}

TEST(HardenedPipelineTest, UntrainableAucFallsBackToTwoPhase) {
  eager::EagerTrainOptions options;
  // No training gesture has this many points, so subgesture enumeration
  // produces an empty partition and AUC training fails.
  options.labeler.min_prefix_points = 100000;
  robust::FaultStats stats;
  options.stats = &stats;

  eager::EagerRecognizer recognizer;
  eager::EagerTrainReport report;
  ASSERT_NO_THROW(report = recognizer.Train(Fig9Training(10, 1991), options));

  EXPECT_TRUE(report.eager_fallback);
  EXPECT_TRUE(report.auc.degenerate);
  EXPECT_EQ(stats.eager_twophase_fallbacks, 1u);
  ASSERT_TRUE(recognizer.trained());
  EXPECT_EQ(recognizer.auc().mode(), eager::Auc::Mode::kAlwaysAmbiguous);

  // Two-phase behaviour: the stream never fires eagerly, but mouse-up
  // classification still works and is accurate.
  const auto held_out =
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), synth::NoiseModel{}, 10, 42);
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& batch : held_out) {
    const classify::ClassId want = recognizer.full().registry().Require(batch.class_name);
    for (const auto& sample : batch.samples) {
      eager::EagerStream stream(recognizer);
      for (const auto& p : sample.gesture) {
        EXPECT_FALSE(stream.AddPoint(p));
      }
      EXPECT_FALSE(stream.fired());
      ++total;
      if (stream.ClassifyNow().class_id == want) {
        ++correct;
      }
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace grandma
