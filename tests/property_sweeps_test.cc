// Parameterized property sweeps: invariants that must hold across gesture
// sets, noise levels, and feature subsets — the "does the whole pipeline
// stay sane as conditions vary" layer of the suite.
#include <gtest/gtest.h>

#include <cmath>

#include "classify/evaluation.h"
#include "classify/gesture_classifier.h"
#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "features/extractor.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

// ---------- Sweep 1: full-classifier accuracy across sets and noise ----------

struct ClassifierSweepParam {
  const char* set_name;
  double point_jitter;
  double rotation_sigma;
  double min_accuracy;
};

std::vector<synth::PathSpec> SpecsByName(const std::string& name) {
  if (name == "ud") {
    return synth::MakeUpDownSpecs();
  }
  if (name == "udr") {
    return synth::MakeUpDownRightSpecs();
  }
  if (name == "dirs8") {
    return synth::MakeEightDirectionSpecs();
  }
  if (name == "notes") {
    return synth::MakeNoteSpecs();
  }
  return synth::MakeGdpSpecs();
}

class ClassifierAccuracySweep : public ::testing::TestWithParam<ClassifierSweepParam> {};

TEST_P(ClassifierAccuracySweep, FullClassifierMeetsFloor) {
  const ClassifierSweepParam param = GetParam();
  synth::NoiseModel noise;
  noise.point_jitter = param.point_jitter;
  noise.rotation_sigma = param.rotation_sigma;
  const auto specs = SpecsByName(param.set_name);
  const auto train = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  const auto test = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 15, 7));
  classify::GestureClassifier classifier;
  classifier.Train(train);
  const double accuracy = classify::EvaluateClassifier(classifier, test).Accuracy();
  EXPECT_GE(accuracy, param.min_accuracy)
      << param.set_name << " jitter=" << param.point_jitter;
}

INSTANTIATE_TEST_SUITE_P(
    SetsAndNoise, ClassifierAccuracySweep,
    ::testing::Values(ClassifierSweepParam{"ud", 0.4, 0.05, 0.99},
                      ClassifierSweepParam{"ud", 1.5, 0.15, 0.95},
                      ClassifierSweepParam{"udr", 0.8, 0.10, 0.95},
                      ClassifierSweepParam{"dirs8", 0.4, 0.05, 0.97},
                      ClassifierSweepParam{"dirs8", 1.5, 0.15, 0.93},
                      ClassifierSweepParam{"notes", 0.8, 0.10, 0.95},
                      ClassifierSweepParam{"gdp", 0.8, 0.10, 0.95}),
    [](const ::testing::TestParamInfo<ClassifierSweepParam>& param_info) {
      return std::string(param_info.param.set_name) + "_case" + std::to_string(param_info.index);
    });

// ---------- Sweep 2: eager conservativeness across sets ----------

class EagerConservativenessSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(EagerConservativenessSweep, NoPrematureFiresOnTrainingData) {
  const auto specs = SpecsByName(GetParam());
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);
  // The tweak pass guarantees this on the (post-move) training partition;
  // measured over raw prefixes a tiny residue can remain, so allow 2%.
  EXPECT_LE(eager::TrainingPrematureFireRate(recognizer, training), 0.02) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sets, EagerConservativenessSweep,
                         ::testing::Values("ud", "udr", "dirs8", "notes", "gdp"));

// ---------- Sweep 3: eager accuracy tracks full accuracy ----------

struct EagerSweepParam {
  const char* set_name;
  double corner_loop_prob;
  double min_eager_accuracy;
};

class EagerAccuracySweep : public ::testing::TestWithParam<EagerSweepParam> {};

TEST_P(EagerAccuracySweep, EagerWithinToleranceOfFull) {
  const EagerSweepParam param = GetParam();
  const auto specs = SpecsByName(param.set_name);
  synth::NoiseModel noise;
  noise.corner_loop_prob = param.corner_loop_prob * 0.4;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);
  synth::NoiseModel test_noise;
  test_noise.corner_loop_prob = param.corner_loop_prob;
  const auto test = synth::GenerateSet(specs, test_noise, 15, 5);
  const auto eval = eager::EvaluateEager(recognizer, test);
  EXPECT_GE(eval.EagerAccuracy(), param.min_eager_accuracy) << param.set_name;
  // Eagerness never reports impossible values.
  EXPECT_GE(eval.MeanFractionSeen(), 0.0);
  EXPECT_LE(eval.MeanFractionSeen(), 1.0 + 1e-9);
  for (const auto& outcome : eval.outcomes) {
    EXPECT_GE(outcome.points_seen, recognizer.min_prefix_points());
    EXPECT_LE(outcome.points_seen, outcome.points_total);
  }
}

INSTANTIATE_TEST_SUITE_P(SetsAndLoops, EagerAccuracySweep,
                         ::testing::Values(EagerSweepParam{"ud", 0.0, 0.95},
                                           EagerSweepParam{"ud", 0.15, 0.85},
                                           EagerSweepParam{"dirs8", 0.0, 0.93},
                                           EagerSweepParam{"dirs8", 0.15, 0.85},
                                           EagerSweepParam{"gdp", 0.0, 0.85}),
                         [](const ::testing::TestParamInfo<EagerSweepParam>& param_info) {
                           return std::string(param_info.param.set_name) + "_case" +
                                  std::to_string(param_info.index);
                         });

// ---------- Sweep 4: feature extractor invariants under random strokes ----------

class FeatureInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeatureInvariantSweep, FeaturesFiniteAndStructurallySane) {
  synth::NoiseModel noise;
  noise.corner_loop_prob = 0.3;
  synth::Rng rng(GetParam());
  for (const auto& spec : synth::MakeGdpSpecs()) {
    const auto sample = synth::Generate(spec, noise, rng);
    const linalg::Vector f = features::ExtractFeatures(sample.gesture);
    ASSERT_EQ(f.size(), features::kNumFeatures);
    for (double v : f) {
      EXPECT_TRUE(std::isfinite(v)) << spec.class_name;
    }
    // Structural invariants.
    EXPECT_GE(f[features::kPathLength], f[features::kStartEndDistance] - 1e-9);
    EXPECT_GE(f[features::kTotalAbsAngle], std::abs(f[features::kTotalAngle]) - 1e-9);
    EXPECT_GE(f[features::kBboxDiagonal], 0.0);
    EXPECT_GE(f[features::kDuration], 0.0);
    const double c1 = f[features::kInitialCos];
    const double s1 = f[features::kInitialSin];
    const double norm = c1 * c1 + s1 * s1;
    EXPECT_TRUE(std::abs(norm - 1.0) < 1e-9 || norm == 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureInvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------- Sweep 5: training example count sensitivity ----------

class TrainingSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrainingSizeSweep, MoreExamplesNeverBreakTraining) {
  const std::size_t per_class = GetParam();
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, per_class, 1991));
  eager::EagerRecognizer recognizer;
  const auto report = recognizer.Train(training);
  EXPECT_TRUE(recognizer.trained());
  EXPECT_TRUE(report.auc.converged);
  const auto test = synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, 5, 3);
  const auto eval = eager::EvaluateEager(recognizer, test);
  EXPECT_GE(eval.FullAccuracy(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrainingSizeSweep, ::testing::Values(5u, 10u, 15u, 25u));

}  // namespace
}  // namespace grandma
