// Randomized numeric property tests: linear algebra identities on random
// matrices, geometric transform round-trips, and serialization robustness
// against corrupted input. Deterministic seeds; failures print the seed.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "geom/transform.h"
#include "io/serialize.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "linalg/stats.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

linalg::Matrix RandomMatrix(std::mt19937_64& rng, std::size_t n, double scale = 1.0) {
  std::uniform_real_distribution<double> dist(-scale, scale);
  linalg::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = dist(rng);
    }
  }
  return m;
}

// Random SPD matrix: A^T A + eps I.
linalg::Matrix RandomSpd(std::mt19937_64& rng, std::size_t n) {
  const linalg::Matrix a = RandomMatrix(rng, n);
  linalg::Matrix spd = Multiply(a.Transposed(), a);
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += 0.1;
  }
  return spd;
}

class LinalgPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinalgPropertySweep, LuInverseIdentity) {
  std::mt19937_64 rng(GetParam());
  for (std::size_t n : {2u, 3u, 5u, 8u, 13u}) {
    const linalg::Matrix a = RandomMatrix(rng, n, 5.0);
    linalg::LuDecomposition lu(a);
    if (!lu.ok()) {
      continue;  // random singular matrix: astronomically unlikely, but legal
    }
    EXPECT_TRUE(AlmostEqual(Multiply(a, lu.Inverse()), linalg::Matrix::Identity(n), 1e-7))
        << "seed " << GetParam() << " n " << n;
  }
}

TEST_P(LinalgPropertySweep, CholeskyAgreesWithLuOnSpd) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t n : {2u, 4u, 9u, 13u}) {
    const linalg::Matrix spd = RandomSpd(rng, n);
    linalg::Vector b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = dist(rng);
    }
    linalg::CholeskyDecomposition chol(spd);
    ASSERT_TRUE(chol.ok()) << "seed " << GetParam();
    linalg::LuDecomposition lu(spd);
    ASSERT_TRUE(lu.ok());
    EXPECT_TRUE(AlmostEqual(chol.Solve(b), lu.Solve(b), 1e-7));
    EXPECT_NEAR(chol.Determinant(), lu.Determinant(),
                1e-6 * std::abs(lu.Determinant()) + 1e-12);
  }
}

TEST_P(LinalgPropertySweep, MahalanobisQuadraticFormIsNonNegative) {
  std::mt19937_64 rng(GetParam() * 77 + 3);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  const std::size_t n = 6;
  const linalg::Matrix spd = RandomSpd(rng, n);
  const auto inv = linalg::Invert(spd);
  ASSERT_TRUE(inv.has_value());
  for (int trial = 0; trial < 20; ++trial) {
    linalg::Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = dist(rng);
    }
    EXPECT_GE(QuadraticForm(x, *inv, x), -1e-9);
  }
}

TEST_P(LinalgPropertySweep, ScatterAccumulatorOrderInvariance) {
  // Welford updates must not depend (beyond roundoff) on sample order.
  std::mt19937_64 rng(GetParam() * 13 + 1);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  std::vector<linalg::Vector> samples;
  for (int i = 0; i < 24; ++i) {
    samples.push_back(linalg::Vector{dist(rng), dist(rng), dist(rng)});
  }
  linalg::ScatterAccumulator forward(3);
  for (const auto& s : samples) {
    forward.Add(s);
  }
  linalg::ScatterAccumulator backward(3);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    backward.Add(*it);
  }
  EXPECT_TRUE(AlmostEqual(forward.Mean(), backward.Mean(), 1e-9));
  EXPECT_TRUE(AlmostEqual(forward.Scatter(), backward.Scatter(), 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinalgPropertySweep, ::testing::Values(1u, 2u, 3u, 4u, 5u));

class TransformPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformPropertySweep, RotationRoundTripsAndPreservesDistance) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  for (int trial = 0; trial < 10; ++trial) {
    const double theta = angle(rng);
    const double cx = dist(rng);
    const double cy = dist(rng);
    const auto fwd = geom::AffineTransform::Rotation(theta, cx, cy);
    const auto back = geom::AffineTransform::Rotation(-theta, cx, cy);
    const geom::TimedPoint p{dist(rng), dist(rng), 42.0};
    const geom::TimedPoint q{dist(rng), dist(rng), 43.0};
    const geom::TimedPoint rp = back.Apply(fwd.Apply(p));
    EXPECT_NEAR(rp.x, p.x, 1e-9);
    EXPECT_NEAR(rp.y, p.y, 1e-9);
    // Isometry: distances preserved.
    EXPECT_NEAR(geom::Distance(fwd.Apply(p), fwd.Apply(q)), geom::Distance(p, q), 1e-9);
  }
}

TEST_P(TransformPropertySweep, ComposeMatchesSequentialApplication) {
  std::mt19937_64 rng(GetParam() * 5 + 2);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  const auto f = geom::AffineTransform::Rotation(0.7, dist(rng), dist(rng));
  const auto g = geom::AffineTransform::Scale(1.3, dist(rng), dist(rng));
  const auto h = geom::AffineTransform::Translation(dist(rng), dist(rng));
  const auto combined = h.Compose(g.Compose(f));
  for (int trial = 0; trial < 10; ++trial) {
    const geom::TimedPoint p{dist(rng), dist(rng), 0.0};
    const geom::TimedPoint sequential = h.Apply(g.Apply(f.Apply(p)));
    const geom::TimedPoint composed = combined.Apply(p);
    EXPECT_NEAR(composed.x, sequential.x, 1e-9);
    EXPECT_NEAR(composed.y, sequential.y, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertySweep, ::testing::Values(1u, 2u, 3u));

class IoFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzzSweep, TruncatedAndMutatedInputNeverCrashes) {
  synth::NoiseModel noise;
  const auto set =
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 3, GetParam()));
  std::stringstream buffer;
  ASSERT_TRUE(io::SaveGestureSet(set, buffer));
  const std::string text = buffer.str();

  std::mt19937_64 rng(GetParam());
  // Truncations at random points: must return nullopt or a valid set, never
  // crash or hang.
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t cut = rng() % text.size();
    std::stringstream in(text.substr(0, cut));
    (void)io::LoadGestureSet(in);
  }
  // Byte mutations.
  for (int trial = 0; trial < 20; ++trial) {
    std::string mutated = text;
    mutated[rng() % mutated.size()] = static_cast<char>('!' + rng() % 90);
    std::stringstream in(mutated);
    const auto loaded = io::LoadGestureSet(in);
    if (loaded.has_value()) {
      // If it parsed, it must be structurally sound.
      EXPECT_LE(loaded->num_classes(), 10u);
    }
  }
}

TEST_P(IoFuzzSweep, ClassifierRoundTripUnderReparse) {
  synth::NoiseModel noise;
  const auto training =
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 6, GetParam()));
  classify::GestureClassifier classifier;
  classifier.Train(training);
  std::stringstream buffer;
  ASSERT_TRUE(io::SaveClassifier(classifier, buffer));
  // Save(Load(Save(x))) == Save(x): the format is a fixed point.
  auto loaded = io::LoadClassifier(buffer);
  ASSERT_TRUE(loaded.has_value());
  std::stringstream buffer2;
  ASSERT_TRUE(io::SaveClassifier(*loaded, buffer2));
  EXPECT_EQ(buffer.str(), buffer2.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzSweep, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace grandma
