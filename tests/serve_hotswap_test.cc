// Hot model reload: ModelRegistry swap/rollback semantics, session pinning
// at stroke boundaries, and the lifecycle-metrics balance invariants. Runs
// in the serve-labeled binary, so the tsan preset covers the concurrent
// swap-under-traffic test.
#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "io/snapshot.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

std::shared_ptr<const RecognizerBundle> TrainBundle(std::uint64_t seed) {
  return RecognizerBundle::Train(synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                         /*per_class=*/8, seed)));
}

std::vector<synth::GestureSample> TestStrokes(std::size_t per_class, std::uint64_t seed) {
  std::vector<synth::GestureSample> strokes;
  for (auto& batch :
       synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{}, per_class, seed)) {
    for (auto& sample : batch.samples) {
      strokes.push_back(std::move(sample));
    }
  }
  return strokes;
}

// Writes a bundle snapshot for `seed` and returns its path.
std::string WriteSnapshot(std::uint64_t seed, const std::string& path) {
  eager::EagerRecognizer recognizer;
  recognizer.Train(synth::ToTrainingSet(synth::GenerateSet(
      synth::MakeUpDownSpecs(), synth::NoiseModel{}, /*per_class=*/8, seed)));
  EXPECT_TRUE(io::SaveBundleSnapshotFile(recognizer, path).ok());
  return path;
}

TEST(ModelRegistryTest, SwapPublishesAndCounts) {
  auto a = TrainBundle(1);
  auto b = TrainBundle(2);
  ModelRegistry registry(a);
  EXPECT_EQ(registry.Current().get(), a.get());
  EXPECT_NE(a->version(), b->version());
  registry.Swap(b);
  EXPECT_EQ(registry.Current().get(), b.get());
  const auto m = registry.Metrics();
  EXPECT_EQ(m.model_swaps, 1u);
  EXPECT_EQ(m.snapshot_loads_ok, 0u);
  EXPECT_THROW(registry.Swap(nullptr), std::invalid_argument);
  EXPECT_THROW(ModelRegistry(nullptr), std::invalid_argument);
}

TEST(ModelRegistryTest, LoadFromFileSwapsOnSuccess) {
  ModelRegistry registry(TrainBundle(1));
  const std::string path = WriteSnapshot(5, "/tmp/grandma_hotswap_ok.snap");
  const auto v_before = registry.current_version();
  ASSERT_TRUE(registry.LoadFromFile(path).ok());
  EXPECT_NE(registry.current_version(), v_before);
  EXPECT_EQ(registry.last_good_path(), path);
  const auto m = registry.Metrics();
  EXPECT_EQ(m.snapshot_loads_ok, 1u);
  EXPECT_EQ(m.model_swaps, 1u);
  EXPECT_EQ(m.snapshot_loads_failed, 0u);
  EXPECT_EQ(m.rollbacks, 0u);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, CorruptLoadRollsBackToLastGood) {
  ModelRegistry registry(TrainBundle(1));
  const std::string good = WriteSnapshot(5, "/tmp/grandma_hotswap_good.snap");
  ASSERT_TRUE(registry.LoadFromFile(good).ok());
  const auto v_good = registry.current_version();

  // Corrupt a copy of the snapshot (flip a payload byte) and try to load it.
  std::string bytes;
  {
    std::ifstream in(good, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
  const std::string bad = "/tmp/grandma_hotswap_bad.snap";
  {
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const auto status = registry.LoadFromFile(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), robust::StatusCode::kCorruptSnapshot);
  // The serving model and last-good pointer are untouched.
  EXPECT_EQ(registry.current_version(), v_good);
  EXPECT_EQ(registry.last_good_path(), good);

  // Missing file: same containment, different reason.
  EXPECT_EQ(registry.LoadFromFile("/nonexistent-dir/x").code(),
            robust::StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.current_version(), v_good);

  std::remove(good.c_str());
  std::remove(bad.c_str());
}

// Satellite (f): the accounting balance invariant, end to end.
TEST(ModelRegistryTest, LifecycleMetricsBalance) {
  ModelRegistry registry(TrainBundle(1));
  const std::string good = WriteSnapshot(9, "/tmp/grandma_hotswap_balance.snap");
  std::uint64_t attempts = 0;
  for (int i = 0; i < 3; ++i, ++attempts) {
    ASSERT_TRUE(registry.LoadFromFile(good).ok());
  }
  for (int i = 0; i < 2; ++i, ++attempts) {
    ASSERT_FALSE(registry.LoadFromFile("/nonexistent-dir/x").ok());
  }
  registry.Swap(TrainBundle(2));  // direct swap, no load
  const auto m = registry.Metrics();
  EXPECT_EQ(m.snapshot_loads_ok + m.snapshot_loads_failed, attempts);
  EXPECT_EQ(m.snapshot_loads_ok, 3u);
  EXPECT_EQ(m.snapshot_loads_failed, 2u);
  EXPECT_EQ(m.rollbacks, m.snapshot_loads_failed);
  EXPECT_EQ(m.model_swaps, m.snapshot_loads_ok + 1);  // +1 direct Swap
  std::remove(good.c_str());
}

TEST(SessionPinningTest, MidStrokeSwapDoesNotMixModels) {
  auto a = TrainBundle(1);
  auto b = TrainBundle(2);
  std::vector<RecognitionResult> results;
  ResultSink sink = [&results](const RecognitionResult& r) { results.push_back(r); };

  const auto strokes = TestStrokes(/*per_class=*/1, /*seed=*/3);
  ASSERT_FALSE(strokes.empty());
  const auto& gesture = strokes.front().gesture;

  Session session(7, a);
  session.BeginStroke(1, sink, a);
  EXPECT_EQ(session.model_version(), a->version());
  session.AddPoints(1, gesture.points(), sink);

  // A swap mid-stroke: the pin argument only lands at the next boundary.
  session.BeginStroke(2, sink, b);  // implicit end of stroke 1 under model a
  EXPECT_EQ(session.model_version(), b->version());
  session.AddPoints(2, gesture.points(), sink);
  session.EndStroke(sink);

  ASSERT_GE(results.size(), 2u);
  for (const auto& r : results) {
    // Every result of stroke 1 carries a's version; stroke 2 carries b's.
    EXPECT_EQ(r.model_version, r.stroke == 1 ? a->version() : b->version());
  }
}

TEST(SessionPinningTest, PinKeepsOldBundleAliveThroughSwap) {
  auto a = TrainBundle(1);
  std::weak_ptr<const RecognizerBundle> watch = a;
  std::vector<RecognitionResult> results;
  ResultSink sink = [&results](const RecognitionResult& r) { results.push_back(r); };

  const auto strokes = TestStrokes(1, 3);
  Session session(7, a);
  session.BeginStroke(1, sink, std::move(a));  // session holds the only pin now
  session.AddPoints(1, strokes.front().gesture.points(), sink);
  EXPECT_FALSE(watch.expired());  // the open stroke keeps the model alive
  session.BeginStroke(2, sink, TrainBundle(2));
  EXPECT_TRUE(watch.expired());  // released at the boundary, not before
}

// The hot-swap gate, in-process: >=20 swaps while the server is live, and
// every result must match the single-threaded reference of the exact model
// version it claims to have used — zero divergences. Swaps happen on the
// submitting thread (racing the workers' Current() pins, which tsan checks);
// waiting for each stroke's result before the next swap makes the pinned
// version per stroke deterministic.
TEST(HotSwapUnderTrafficTest, NoDivergenceAcrossTwentySwaps) {
  std::vector<std::shared_ptr<const RecognizerBundle>> models;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    models.push_back(TrainBundle(seed));
  }
  auto registry = std::make_shared<ModelRegistry>(models[0]);

  std::mutex mu;
  std::vector<RecognitionResult> results;
  std::atomic<std::size_t> ends_seen{0};
  ServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 4096;
  options.overload = OverloadPolicy::kBlock;
  RecognitionServer server(registry, options, [&](const RecognitionResult& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
    }
    if (r.kind == ResultKind::kStrokeEnd) {
      ends_seen.fetch_add(1, std::memory_order_release);
    }
  });

  const auto strokes = TestStrokes(/*per_class=*/10, /*seed=*/11);
  ASSERT_GE(strokes.size(), 20u);
  for (std::size_t s = 0; s < strokes.size(); ++s) {
    // One swap per stroke; the worker pops this stroke's begin after the
    // swap (queue order), and the previous stroke already completed, so the
    // stroke verifiably pins models[s % 4].
    registry->Swap(models[s % models.size()]);
    const SessionId session = 1000 + (s % 8);
    const StrokeId stroke = static_cast<StrokeId>(s);
    ASSERT_TRUE(
        server.Submit({session, EventType::kStrokeBegin, stroke, {}, {}}).ok());
    ASSERT_TRUE(server
                    .Submit({session, EventType::kPoints, stroke,
                             strokes[s].gesture.points(), {}})
                    .ok());
    ASSERT_TRUE(server.Submit({session, EventType::kStrokeEnd, stroke, {}, {}}).ok());
    while (ends_seen.load(std::memory_order_acquire) <= s) {
      std::this_thread::yield();
    }
  }
  server.Shutdown();

  EXPECT_GE(registry->Metrics().model_swaps, 20u);

  // Each result replays its stroke through the exact model version it
  // reports; any weight-mixing mid-stroke would diverge.
  std::set<std::uint64_t> seen_versions;
  std::size_t end_results = 0;
  for (const auto& r : results) {
    if (r.kind != ResultKind::kStrokeEnd) {
      continue;
    }
    ++end_results;
    seen_versions.insert(r.model_version);
    const RecognizerBundle* model = models[r.stroke % models.size()].get();
    ASSERT_EQ(r.model_version, model->version()) << "stroke " << r.stroke;
    eager::EagerStream reference(model->recognizer());
    for (const auto& p : strokes[r.stroke].gesture) {
      reference.AddPoint(p);
    }
    const auto expected = reference.ClassifyNow();
    EXPECT_EQ(r.classification.class_id, expected.class_id) << "stroke " << r.stroke;
    EXPECT_EQ(r.classification.score, expected.score) << "stroke " << r.stroke;
    EXPECT_EQ(r.eager_fired, reference.fired()) << "stroke " << r.stroke;
    EXPECT_EQ(r.fired_at, reference.fired_at()) << "stroke " << r.stroke;
  }
  EXPECT_EQ(end_results, strokes.size());
  // The rotation actually exposed multiple model versions to clients.
  EXPECT_EQ(seen_versions.size(), models.size());
}

TEST(ServerRegistryTest, MetricsCarryModelLifecycle) {
  auto registry = std::make_shared<ModelRegistry>(TrainBundle(1));
  ServerOptions options;
  options.start_workers = false;
  RecognitionServer server(registry, options, {});
  registry->Swap(TrainBundle(2));
  const auto metrics = server.Metrics();
  EXPECT_EQ(metrics.models.model_swaps, 1u);
  EXPECT_NE(metrics.ToJson().find("\"model_swaps\": 1"), std::string::npos);
}

}  // namespace
}  // namespace grandma::serve
