// The full workflow a downstream application would run, end to end:
// synthesize training data -> persist the gesture set -> reload -> train an
// eager recognizer -> persist it -> reload -> wire it into a GRANDMA gesture
// handler -> drive interactions through the dispatcher -> observe semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "eager/evaluation.h"
#include "gdp/session.h"
#include "io/serialize.h"
#include "synth/generator.h"
#include "synth/sets.h"
#include "toolkit/dispatcher.h"
#include "toolkit/gesture_handler.h"
#include "toolkit/playback.h"

namespace grandma {
namespace {

TEST(IntegrationTest, FullPipelineFromSynthesisToInteraction) {
  // 1. Synthesize and persist a training set.
  synth::NoiseModel noise;
  const auto specs = synth::MakeEightDirectionSpecs();
  classify::GestureTrainingSet original =
      synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  std::stringstream set_buffer;
  ASSERT_TRUE(io::SaveGestureSet(original, set_buffer));

  // 2. Reload and train.
  auto reloaded_set = io::LoadGestureSet(set_buffer);
  ASSERT_TRUE(reloaded_set.has_value());
  eager::EagerRecognizer trained;
  trained.Train(*reloaded_set);

  // 3. Persist and reload the trained recognizer.
  std::stringstream recognizer_buffer;
  ASSERT_TRUE(io::SaveEagerRecognizer(trained, recognizer_buffer));
  auto recognizer = io::LoadEagerRecognizer(recognizer_buffer);
  ASSERT_TRUE(recognizer.has_value());

  // 4. The reloaded recognizer performs on fresh test data.
  const auto test = synth::GenerateSet(specs, noise, 10, 77);
  const eager::EagerEvaluation eval = eager::EvaluateEager(*recognizer, test);
  EXPECT_GE(eval.FullAccuracy(), 0.95);
  EXPECT_GE(eval.EagerAccuracy(), 0.9);

  // 5. Wire it into a gesture handler and run a live interaction with an
  //    eager transition followed by manipulation.
  toolkit::ViewClass window_class("Window");
  toolkit::View window(&window_class, "main");
  window.SetBounds({-1000, -1000, 2000, 2000});
  toolkit::VirtualClock clock;
  toolkit::Dispatcher dispatcher(&window, &clock);
  toolkit::PlaybackDriver driver(&dispatcher);

  toolkit::GestureHandler::Config config;
  config.enable_eager = true;
  auto handler =
      std::make_shared<toolkit::GestureHandler>("g", &*recognizer, config);
  window_class.AddHandler(handler);

  int recog_calls = 0;
  int manip_calls = 0;
  for (const auto& spec : specs) {
    toolkit::GestureSemantics semantics;
    semantics.recog = [&recog_calls](toolkit::SemanticContext&) -> std::any {
      ++recog_calls;
      return std::any();
    };
    semantics.manip = [&manip_calls](toolkit::SemanticContext&) { ++manip_calls; };
    handler->semantics().Set(spec.class_name, std::move(semantics));
  }

  driver.PlayStroke(gdp::MakeStrokeAt(specs[0], 0, 0, /*seed=*/5));
  EXPECT_EQ(handler->recognized_class(), specs[0].class_name);
  EXPECT_EQ(handler->last_transition(), toolkit::GestureHandler::Transition::kEager);
  EXPECT_EQ(recog_calls, 1);
  EXPECT_GT(manip_calls, 0);  // post-fire points became manipulation
}

TEST(IntegrationTest, EagerEvaluationMetricsAreInternallyConsistent) {
  synth::NoiseModel noise;
  const auto specs = synth::MakeUpDownSpecs();
  eager::EagerRecognizer recognizer;
  recognizer.Train(synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991)));
  const auto test = synth::GenerateSet(specs, noise, 20, 3);
  const eager::EagerEvaluation eval = eager::EvaluateEager(recognizer, test);

  ASSERT_EQ(eval.total, eval.outcomes.size());
  std::size_t eager_correct = 0;
  std::size_t full_correct = 0;
  std::size_t never_fired = 0;
  for (const auto& o : eval.outcomes) {
    eager_correct += o.eager_correct ? 1 : 0;
    full_correct += o.full_correct ? 1 : 0;
    never_fired += o.fired ? 0 : 1;
    EXPECT_LE(o.points_seen, o.points_total);
    EXPECT_GE(o.min_points, 1u);
    if (!o.fired) {
      // Never fired: eager result equals the full result by construction.
      EXPECT_EQ(o.eager_class, o.full_class);
      EXPECT_EQ(o.points_seen, o.points_total);
    }
  }
  EXPECT_EQ(eager_correct, eval.eager_correct);
  EXPECT_EQ(full_correct, eval.full_correct);
  EXPECT_EQ(never_fired, eval.never_fired);
  EXPECT_NEAR(eval.EagerAccuracy(),
              static_cast<double>(eager_correct) / static_cast<double>(eval.total), 1e-12);
}

TEST(IntegrationTest, ExampleNamesFollowFigureConvention) {
  synth::NoiseModel noise;
  const auto specs = synth::MakeUpDownSpecs();
  eager::EagerRecognizer recognizer;
  recognizer.Train(synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1)));
  const auto test = synth::GenerateSet(specs, noise, 3, 2);
  const eager::EagerEvaluation eval = eager::EvaluateEager(recognizer, test);
  // "U1", "U2", ..., "D1", ... mirroring the paper's "ru4" naming.
  ASSERT_GE(eval.outcomes.size(), 4u);
  EXPECT_EQ(eval.outcomes[0].example_name, "U1");
  EXPECT_EQ(eval.outcomes[3].example_name, "D1");
}

}  // namespace
}  // namespace grandma
