// The extensive-lexicon generator: capacity, name uniqueness, prefix
// determinism (the property the 50-vs-200 bench rows rely on), option
// validation, and that every emitted spec samples into a classifiable
// stroke.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "synth/generator.h"
#include "synth/lexicon.h"
#include "synth/path_spec.h"

namespace grandma::synth {
namespace {

TEST(LexiconTest, CapacityCoversHundredsOfClasses) {
  // The composed alphabets must hold well more than the 200-class default —
  // polylines of length 2-4 alone contribute over a thousand shapes.
  EXPECT_GE(ExtensiveLexiconCapacity(), 400u);
}

TEST(LexiconTest, EmitsRequestedClassCountWithUniqueNames) {
  LexiconOptions options;
  options.num_classes = 200;
  const std::vector<PathSpec> specs = MakeExtensiveLexicon(options);
  ASSERT_EQ(specs.size(), 200u);

  std::set<std::string> names;
  for (const PathSpec& spec : specs) {
    EXPECT_FALSE(spec.class_name.empty());
    EXPECT_TRUE(names.insert(spec.class_name).second)
        << "duplicate class name " << spec.class_name;
    EXPECT_FALSE(spec.segments.empty()) << spec.class_name;
  }
}

TEST(LexiconTest, EveryPrefixMixesShapeFamilies) {
  LexiconOptions options;
  options.num_classes = 24;
  const std::vector<PathSpec> specs = MakeExtensiveLexicon(options);
  std::size_t polys = 0, arcs = 0, hybrids = 0;
  for (const PathSpec& spec : specs) {
    if (spec.class_name.find("_poly_") != std::string::npos) ++polys;
    if (spec.class_name.find("_arc_") != std::string::npos) ++arcs;
    if (spec.class_name.find("_hyb_") != std::string::npos) ++hybrids;
  }
  EXPECT_GT(polys, 0u);
  EXPECT_GT(arcs, 0u);
  EXPECT_GT(hybrids, 0u);
  EXPECT_EQ(polys + arcs + hybrids, specs.size());
}

// Same seed, smaller count => strict prefix of the larger lexicon, down to
// the per-class pose draws. The 50-class bench row is the 200-class row's
// prefix because of exactly this property.
TEST(LexiconTest, SmallerLexiconIsStrictPrefixOfLarger) {
  LexiconOptions small_options;
  small_options.num_classes = 50;
  LexiconOptions large_options;
  large_options.num_classes = 200;
  const std::vector<PathSpec> small = MakeExtensiveLexicon(small_options);
  const std::vector<PathSpec> large = MakeExtensiveLexicon(large_options);
  ASSERT_EQ(small.size(), 50u);
  ASSERT_EQ(large.size(), 200u);

  for (std::size_t c = 0; c < small.size(); ++c) {
    ASSERT_EQ(small[c].class_name, large[c].class_name) << c;
    ASSERT_EQ(small[c].segments.size(), large[c].segments.size()) << c;
    // The pose draws (rotation/scale) bake into segment geometry; compare it
    // exactly — identical draws mean identical doubles, not just close ones.
    for (std::size_t s = 0; s < small[c].segments.size(); ++s) {
      const PathSegment& a = small[c].segments[s];
      const PathSegment& b = large[c].segments[s];
      ASSERT_EQ(a.kind, b.kind);
      ASSERT_EQ(a.x, b.x);
      ASSERT_EQ(a.y, b.y);
      ASSERT_EQ(a.cx, b.cx);
      ASSERT_EQ(a.cy, b.cy);
      ASSERT_EQ(a.radius, b.radius);
      ASSERT_EQ(a.start_angle, b.start_angle);
      ASSERT_EQ(a.sweep, b.sweep);
    }
  }
}

TEST(LexiconTest, SameOptionsAreByteIdentical) {
  LexiconOptions options;
  options.num_classes = 64;
  const std::vector<PathSpec> a = MakeExtensiveLexicon(options);
  const std::vector<PathSpec> b = MakeExtensiveLexicon(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].class_name, b[c].class_name);
    EXPECT_EQ(a[c].start_x, b[c].start_x);
    EXPECT_EQ(a[c].start_y, b[c].start_y);
  }
}

TEST(LexiconTest, DifferentSeedsChangePoseNotNames) {
  LexiconOptions a_options;
  a_options.num_classes = 16;
  LexiconOptions b_options = a_options;
  b_options.seed = a_options.seed + 1;
  const std::vector<PathSpec> a = MakeExtensiveLexicon(a_options);
  const std::vector<PathSpec> b = MakeExtensiveLexicon(b_options);
  ASSERT_EQ(a.size(), b.size());
  bool any_pose_differs = false;
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].class_name, b[c].class_name) << "names are shape identity, not pose";
    for (std::size_t s = 0; s < std::min(a[c].segments.size(), b[c].segments.size()); ++s) {
      if (a[c].segments[s].x != b[c].segments[s].x ||
          a[c].segments[s].radius != b[c].segments[s].radius) {
        any_pose_differs = true;
      }
    }
  }
  EXPECT_TRUE(any_pose_differs);
}

TEST(LexiconTest, RejectsBadOptions) {
  LexiconOptions over;
  over.num_classes = ExtensiveLexiconCapacity() + 1;
  EXPECT_THROW(MakeExtensiveLexicon(over), std::invalid_argument);

  LexiconOptions bad_scale;
  bad_scale.scale_lo = 2.0;
  bad_scale.scale_hi = 1.0;
  EXPECT_THROW(MakeExtensiveLexicon(bad_scale), std::invalid_argument);

  LexiconOptions bad_segment;
  bad_segment.segment_px = 0.0;
  EXPECT_THROW(MakeExtensiveLexicon(bad_segment), std::invalid_argument);
}

// Every spec must survive the generator: enough points to extract features
// from, no degenerate zero-length paths.
TEST(LexiconTest, EverySpecGeneratesAClassifiableStroke) {
  LexiconOptions options;
  options.num_classes = 200;
  const std::vector<PathSpec> specs = MakeExtensiveLexicon(options);
  NoiseModel noise;
  Rng rng(7);
  for (const PathSpec& spec : specs) {
    const GestureSample sample = Generate(spec, noise, rng);
    EXPECT_GE(sample.gesture.size(), 3u) << spec.class_name;
  }
}

}  // namespace
}  // namespace grandma::synth
