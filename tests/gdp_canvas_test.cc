#include "gdp/canvas.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace grandma::gdp {
namespace {

TEST(CanvasTest, PlotAndAt) {
  Canvas canvas(100, 100, 10, 10);
  canvas.Plot(5, 5, '#');
  EXPECT_EQ(canvas.At(5, 5), '#');
  EXPECT_EQ(canvas.At(95, 95), ' ');
  // Out of range: clipped on write, NUL on read.
  canvas.Plot(-5, 5, 'x');
  canvas.Plot(100, 5, 'x');
  EXPECT_EQ(canvas.At(-5, 5), '\0');
  EXPECT_EQ(canvas.InkedCellCount(), 1u);
}

TEST(CanvasTest, YUpOrientation) {
  Canvas canvas(100, 100, 10, 10);
  canvas.Plot(5, 95, 'T');  // near the top of the world
  canvas.Plot(5, 5, 'B');   // near the bottom
  const std::string s = canvas.ToString();
  // The 'T' row must appear before the 'B' row in the rendered text.
  EXPECT_LT(s.find('T'), s.find('B'));
}

TEST(CanvasTest, DrawSegmentCoversLine) {
  Canvas canvas(100, 100, 20, 20);
  canvas.DrawSegment(0, 50, 99, 50, '#');
  // Every column along the row should be inked.
  std::size_t count = 0;
  for (double x = 2.5; x < 100; x += 5.0) {
    count += canvas.At(x, 50) == '#' ? 1 : 0;
  }
  EXPECT_EQ(count, 20u);
}

TEST(CanvasTest, DrawEllipseApproximatesOutline) {
  Canvas canvas(100, 100, 50, 50);
  canvas.DrawEllipse(50, 50, 20, 10, 0.0, 'o');
  EXPECT_EQ(canvas.At(70, 50), 'o');
  EXPECT_EQ(canvas.At(50, 60), 'o');
  EXPECT_EQ(canvas.At(50, 50), ' ');
}

TEST(CanvasTest, DrawStringHorizontal) {
  Canvas canvas(100, 100, 50, 10);
  canvas.DrawString(10, 50, "abc");
  EXPECT_EQ(canvas.At(10, 50), 'a');
}

TEST(CanvasTest, GestureInkDotted) {
  Canvas canvas(100, 100, 50, 50);
  geom::Gesture g({{10, 10, 0}, {20, 20, 1}, {30, 30, 2}});
  canvas.DrawGestureInk(g);
  EXPECT_EQ(canvas.At(20, 20), '.');
}

TEST(CanvasTest, ToStringHasBorder) {
  Canvas canvas(10, 10, 4, 2);
  const std::string s = canvas.ToString();
  EXPECT_EQ(s, "+----+\n|    |\n|    |\n+----+\n");
}

TEST(CanvasTest, WritePgmProducesP5File) {
  Canvas canvas(10, 10, 4, 4);
  canvas.Plot(5, 5, '#');
  const std::string path = "/tmp/grandma_canvas_test.pgm";
  ASSERT_TRUE(canvas.WritePgm(path));
  std::ifstream in(path, std::ios::binary);
  std::string header;
  in >> header;
  EXPECT_EQ(header, "P5");
  std::remove(path.c_str());
}

TEST(CanvasTest, WritePgmFailsOnBadPath) {
  Canvas canvas(10, 10, 4, 4);
  EXPECT_FALSE(canvas.WritePgm("/nonexistent-dir/x.pgm"));
}

}  // namespace
}  // namespace grandma::gdp
