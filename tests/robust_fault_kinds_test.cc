// Exhaustiveness guard for the fault taxonomy. The compile-time side lives
// in fault_injector.cc (static_asserts pinning kNumFaultKinds, the
// point/contact split boundary, and the options' enabled-array size to the
// enum); this runtime side pins the per-kind tables — every kind has a
// distinct name, a repairability verdict consistent with the level split,
// and an enable switch the injector actually honors — so adding a FaultKind
// without updating every table is caught here even where a switch default
// would have silently absorbed it.
#include "robust/fault_injector.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "geom/contact.h"
#include "geom/gesture.h"
#include "synth/contact_synth.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::robust {
namespace {

std::vector<FaultKind> AllKinds() {
  std::vector<FaultKind> kinds;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    kinds.push_back(static_cast<FaultKind>(k));
  }
  return kinds;
}

TEST(FaultKindTablesTest, EveryKindHasADistinctName) {
  std::set<std::string> names;
  for (FaultKind kind : AllKinds()) {
    const std::string name = FaultKindName(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "FaultKindName missing a case for kind "
                               << static_cast<std::size_t>(kind);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), kNumFaultKinds);
}

TEST(FaultKindTablesTest, LevelSplitMatchesTheEnumLayout) {
  // The enum is laid out point-level first, contact-level after; the
  // boundary constant and the per-kind predicate must agree.
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    EXPECT_EQ(FaultKindContactLevel(kind), k >= kNumPointFaultKinds)
        << FaultKindName(kind);
  }
}

TEST(FaultKindTablesTest, ContactLevelKindsAreAllRepairable) {
  // The tracker stitches, rejects, or un-crosses every contact-level kind
  // back to usable geometry; only lossy point kinds (drop/truncate) degrade.
  for (FaultKind kind : AllKinds()) {
    if (FaultKindContactLevel(kind)) {
      EXPECT_TRUE(FaultKindRepairable(kind)) << FaultKindName(kind);
    }
  }
  EXPECT_FALSE(FaultKindRepairable(FaultKind::kDropPoints));
  EXPECT_FALSE(FaultKindRepairable(FaultKind::kTruncate));
}

TEST(FaultKindTablesTest, EnabledSwitchesAreHonoredPerKind) {
  // With exactly one kind enabled and fault_rate 1, only that kind may ever
  // appear in InjectedFaults — over a corpus that gives every kind a chance
  // to fire (multi-contact groups with enough points and contacts).
  const auto groups = synth::GenerateContactSet(synth::MakeTouchSpecs(),
                                                synth::NoiseModel{}, /*per_class=*/3,
                                                /*seed=*/33);
  for (std::size_t only = 0; only < kNumFaultKinds; ++only) {
    FaultInjectorOptions fopts;
    fopts.fault_rate = 1.0;
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
      fopts.enabled[k] = k == only;
    }
    FaultInjector injector(fopts, /*seed=*/1000 + only);
    bool fired = false;
    for (const auto& batch : groups) {
      for (const geom::ContactGroup& group : batch.groups) {
        InjectedFaults injected;
        (void)injector.CorruptContacts(group, &injected);
        for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
          if (k != only) {
            EXPECT_FALSE(injected.applied[k])
                << FaultKindName(static_cast<FaultKind>(k)) << " fired while only "
                << FaultKindName(static_cast<FaultKind>(only)) << " was enabled";
          }
        }
        fired = fired || injected.any();
      }
    }
    EXPECT_TRUE(fired) << FaultKindName(static_cast<FaultKind>(only))
                       << " never fired on a corpus that should admit it";
    EXPECT_EQ(injector.record().counts[only], injector.record().total_faults());
  }
}

TEST(FaultKindTablesTest, PointLevelEntryPointsNeverApplyContactKinds) {
  const auto batches = synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                          synth::NoiseModel{}, /*per_class=*/4, /*seed=*/44);
  FaultInjectorOptions fopts;
  fopts.fault_rate = 1.0;
  fopts.max_faults_per_stroke = kNumFaultKinds;  // give every kind the chance
  FaultInjector injector(fopts, /*seed=*/7);
  for (const auto& batch : batches) {
    for (const auto& sample : batch.samples) {
      InjectedFaults injected;
      (void)injector.Corrupt(sample.gesture, &injected);
      for (std::size_t k = kNumPointFaultKinds; k < kNumFaultKinds; ++k) {
        EXPECT_FALSE(injected.applied[k])
            << FaultKindName(static_cast<FaultKind>(k)) << " fired on a single stroke";
      }
    }
  }
}

}  // namespace
}  // namespace grandma::robust
