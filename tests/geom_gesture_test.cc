#include "geom/gesture.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace grandma::geom {
namespace {

Gesture MakeL() {
  // Right 30, then up 40 (3-4-5 triangle overall).
  return Gesture({{0, 0, 0}, {30, 0, 100}, {30, 40, 200}});
}

TEST(GestureTest, SizeAndAccess) {
  const Gesture g = MakeL();
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.front().x, 0.0);
  EXPECT_EQ(g.back().y, 40.0);
  EXPECT_EQ(g[1].x, 30.0);
}

TEST(GestureTest, SubgesturePrefix) {
  const Gesture g = MakeL();
  const Gesture sub = g.Subgesture(2);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.back().x, 30.0);
  EXPECT_EQ(g.Subgesture(0).size(), 0u);
  EXPECT_EQ(g.Subgesture(3), g);
  EXPECT_THROW(g.Subgesture(4), std::out_of_range);
}

TEST(GestureTest, PathLengthAndDuration) {
  const Gesture g = MakeL();
  EXPECT_DOUBLE_EQ(g.PathLength(), 70.0);
  EXPECT_DOUBLE_EQ(g.Duration(), 200.0);
  EXPECT_DOUBLE_EQ(Gesture().PathLength(), 0.0);
  EXPECT_DOUBLE_EQ(Gesture({{1, 1, 5}}).Duration(), 0.0);
}

TEST(GestureTest, Bounds) {
  const Gesture g = MakeL();
  const BoundingBox b = g.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, 0.0);
  EXPECT_DOUBLE_EQ(b.max_x, 30.0);
  EXPECT_DOUBLE_EQ(b.max_y, 40.0);
  EXPECT_DOUBLE_EQ(b.DiagonalLength(), 50.0);
  EXPECT_TRUE(b.Contains(15, 20));
  EXPECT_FALSE(b.Contains(31, 20));
}

TEST(GestureTest, PassesNearPointsAndSegments) {
  const Gesture g = MakeL();
  EXPECT_TRUE(g.PassesNear(30, 0, 1.0));    // at a sample
  EXPECT_TRUE(g.PassesNear(15, 0.5, 1.0));  // mid-segment, between samples
  EXPECT_TRUE(g.PassesNear(30, 20, 2.0));   // on the vertical segment
  EXPECT_FALSE(g.PassesNear(0, 40, 5.0));   // opposite corner
}

TEST(GestureTest, EnclosesPointWithClosedStroke) {
  // A square lasso.
  const Gesture square({{0, 0, 0}, {100, 0, 1}, {100, 100, 2}, {0, 100, 3}});
  EXPECT_TRUE(EnclosesPoint(square, 50, 50));
  EXPECT_FALSE(EnclosesPoint(square, 150, 50));
  EXPECT_FALSE(EnclosesPoint(square, -1, 50));
}

TEST(GestureTest, EnclosesNeedsThreePoints) {
  const Gesture line({{0, 0, 0}, {10, 0, 1}});
  EXPECT_FALSE(EnclosesPoint(line, 5, 0));
}

TEST(GestureTest, Centroid) {
  const Gesture g({{0, 0, 0}, {10, 20, 2}});
  const TimedPoint c = Centroid(g);
  EXPECT_DOUBLE_EQ(c.x, 5.0);
  EXPECT_DOUBLE_EQ(c.y, 10.0);
  EXPECT_DOUBLE_EQ(c.t, 1.0);
  EXPECT_DOUBLE_EQ(Centroid(Gesture()).x, 0.0);
}

TEST(GestureTest, AppendAndClear) {
  Gesture g;
  g.AppendPoint({1, 2, 3});
  EXPECT_EQ(g.size(), 1u);
  g.Clear();
  EXPECT_TRUE(g.empty());
}

TEST(PointTest, Distances) {
  const TimedPoint a{0, 0, 0};
  const TimedPoint b{3, 4, 9};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

}  // namespace
}  // namespace grandma::geom
