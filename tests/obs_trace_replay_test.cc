// The trace-replay determinism harness (ctest label `obs`): running the same
// seeded workload twice under the virtual clock must produce structurally
// IDENTICAL span trees — same spans, same nesting, same session tags, same
// tick timestamps. The trace is thereby a correctness oracle: any divergence
// is real nondeterminism in the pipeline, not noise. Covers both the
// single-threaded eager path and the concurrent recognition server (each
// shard worker's tick stream is a pure function of its deterministic event
// subsequence).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "eager/eager_recognizer.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

// Trained once, OUTSIDE any capture: training emits spans of its own, and a
// memoized trainer would make the first capture differ from the second.
const eager::EagerRecognizer& TestRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(
        synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownRightSpecs(), noise, 8, 404)));
    return r;
  }();
  return *recognizer;
}

std::vector<geom::Gesture> Strokes(std::uint32_t seed, std::size_t n) {
  std::vector<geom::Gesture> out;
  synth::NoiseModel noise;
  synth::Rng rng(seed);
  const auto specs = synth::MakeUpDownRightSpecs();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(synth::Generate(specs[i % specs.size()], noise, rng).gesture);
  }
  return out;
}

void RunEagerWorkload(const std::vector<geom::Gesture>& strokes) {
  eager::EagerStream stream(TestRecognizer());
  for (const geom::Gesture& g : strokes) {
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    (void)stream.ClassifyNow();
    stream.Reset();
  }
}

// A complete server lifecycle: construct, submit a fixed event sequence for
// `num_sessions` interleaved sessions, shut down (joins the shard workers —
// the quiescence CaptureTrace requires). kBlock keeps the event sequence
// each shard sees deterministic: nothing is ever shed.
void RunServeWorkload(const std::vector<geom::Gesture>& strokes, std::size_t num_sessions) {
  serve::ServerOptions options;
  options.num_shards = 2;
  options.overload = serve::OverloadPolicy::kBlock;
  auto bundle = serve::RecognizerBundle::FromRecognizer(TestRecognizer());
  serve::RecognitionServer server(std::move(bundle), options, serve::ResultSink{});
  serve::StrokeId stroke = 1;
  for (const geom::Gesture& g : strokes) {
    for (std::size_t s = 0; s < num_sessions; ++s) {
      const serve::SessionId session = 1000 + s;
      ASSERT_TRUE(server
                      .Submit({.session = session,
                               .type = serve::EventType::kStrokeBegin,
                               .stroke = stroke})
                      .ok());
      ASSERT_TRUE(server
                      .Submit({.session = session,
                               .type = serve::EventType::kPoints,
                               .stroke = stroke,
                               .points = g.points()})
                      .ok());
      ASSERT_TRUE(
          server
              .Submit({.session = session, .type = serve::EventType::kStrokeEnd, .stroke = stroke})
              .ok());
    }
    ++stroke;
  }
  server.Shutdown();
}

TEST(ObsTraceReplay, EagerWorkloadReplaysToIdenticalTrace) {
  (void)TestRecognizer();  // force the memoized training before any capture
  const auto strokes = Strokes(51, 6);
  const auto first = obs::CaptureTrace([&] { RunEagerWorkload(strokes); });
  const auto second = obs::CaptureTrace([&] { RunEagerWorkload(strokes); });

  std::string diff;
  EXPECT_TRUE(obs::StructurallyEqual(first, second, /*compare_timestamps=*/true, &diff))
      << diff;
  if (obs::kCompiledIn) {
    ASSERT_FALSE(first.empty());
    EXPECT_GT(first[0].spans.size(), strokes.size()) << "per-point spans were recorded";
  } else {
    EXPECT_TRUE(first.empty());
  }
}

TEST(ObsTraceReplay, CoarseDetailReplaysToIdenticalSmallerTrace) {
  (void)TestRecognizer();
  const auto strokes = Strokes(52, 4);
  const auto fine =
      obs::CaptureTrace([&] { RunEagerWorkload(strokes); }, obs::Detail::kFine);
  const auto coarse =
      obs::CaptureTrace([&] { RunEagerWorkload(strokes); }, obs::Detail::kCoarse);
  const auto coarse2 =
      obs::CaptureTrace([&] { RunEagerWorkload(strokes); }, obs::Detail::kCoarse);

  std::string diff;
  EXPECT_TRUE(obs::StructurallyEqual(coarse, coarse2, /*compare_timestamps=*/true, &diff))
      << diff;
  if (obs::kCompiledIn) {
    ASSERT_FALSE(fine.empty());
    ASSERT_FALSE(coarse.empty());
    EXPECT_LT(coarse[0].spans.size(), fine[0].spans.size())
        << "fine detail adds the per-point inner stages";
    EXPECT_FALSE(obs::StructurallyEqual(fine, coarse));
  }
}

TEST(ObsTraceReplay, ConcurrentServeWorkloadReplaysToIdenticalTrace) {
  (void)TestRecognizer();
  const auto strokes = Strokes(53, 4);
  const auto first = obs::CaptureTrace([&] { RunServeWorkload(strokes, 3); });
  const auto second = obs::CaptureTrace([&] { RunServeWorkload(strokes, 3); });

  std::string diff;
  EXPECT_TRUE(obs::StructurallyEqual(first, second, /*compare_timestamps=*/true, &diff))
      << diff;
  if (obs::kCompiledIn) {
    // Both shard workers recorded (three sessions cannot all hash to one
    // shard... but that is hash-dependent; assert at least one, and that the
    // two captures agree on how many).
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first.size(), second.size());
  } else {
    EXPECT_TRUE(first.empty());
  }
}

TEST(ObsTraceReplay, DivergentWorkloadsAreDetected) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "no spans to diverge when tracing is compiled out";
  }
  (void)TestRecognizer();
  const auto strokes = Strokes(54, 3);
  auto longer = strokes;
  longer.push_back(Strokes(55, 1)[0]);

  const auto a = obs::CaptureTrace([&] { RunEagerWorkload(strokes); });
  const auto b = obs::CaptureTrace([&] { RunEagerWorkload(longer); });

  std::string diff;
  EXPECT_FALSE(obs::StructurallyEqual(a, b, /*compare_timestamps=*/true, &diff));
  EXPECT_FALSE(diff.empty()) << "mismatch reports a first-difference description";
  // Ignoring timestamps does not save it: the extra stroke adds spans.
  EXPECT_FALSE(obs::StructurallyEqual(a, b, /*compare_timestamps=*/false));
}

TEST(ObsTraceReplay, CaptureRestoresPriorTracingConfiguration) {
  obs::EnableTracing(false);
  obs::SetDetail(obs::Detail::kCoarse);
  obs::SetClockMode(obs::ClockMode::kReal);

  (void)obs::CaptureTrace([&] { RunEagerWorkload(Strokes(56, 1)); }, obs::Detail::kFine,
                          obs::ClockMode::kVirtual);

  EXPECT_FALSE(obs::TracingEnabled());
  EXPECT_EQ(obs::CurrentDetail(), obs::Detail::kCoarse);
  EXPECT_EQ(obs::CurrentClockMode(), obs::ClockMode::kReal);
}

}  // namespace
}  // namespace grandma
