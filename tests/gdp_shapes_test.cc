#include "gdp/shapes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gdp/canvas.h"

namespace grandma::gdp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(LineShapeTest, BoundsAndHit) {
  LineShape line(0, 0, 30, 40);
  const geom::BoundingBox b = line.Bounds();
  EXPECT_DOUBLE_EQ(b.max_x, 30.0);
  EXPECT_DOUBLE_EQ(b.max_y, 40.0);
  EXPECT_TRUE(line.HitTest(15, 20, 1.0));   // midpoint
  EXPECT_TRUE(line.HitTest(16, 20, 2.0));   // near
  EXPECT_FALSE(line.HitTest(30, 0, 2.0));   // off the segment
}

TEST(LineShapeTest, EndpointsAndTranslate) {
  LineShape line(0, 0, 10, 0);
  line.SetEndpoint(1, 20, 5);
  EXPECT_DOUBLE_EQ(line.x1(), 20.0);
  line.Translate(1, 2);
  EXPECT_DOUBLE_EQ(line.x0(), 1.0);
  EXPECT_DOUBLE_EQ(line.y1(), 7.0);
  ASSERT_EQ(line.ControlPoints().size(), 2u);
}

TEST(LineShapeTest, RotateScale) {
  LineShape line(0, 0, 10, 0);
  line.RotateScaleAbout(0, 0, kPi / 2.0, 2.0);
  EXPECT_NEAR(line.x1(), 0.0, 1e-9);
  EXPECT_NEAR(line.y1(), 20.0, 1e-9);
  EXPECT_NEAR(line.x0(), 0.0, 1e-9);
}

TEST(LineShapeTest, CloneIsIndependent) {
  LineShape line(0, 0, 10, 0);
  auto copy = line.Clone();
  line.Translate(100, 0);
  EXPECT_DOUBLE_EQ(static_cast<LineShape*>(copy.get())->x0(), 0.0);
  EXPECT_EQ(copy->Kind(), "line");
}

TEST(RectShapeTest, CornersDefineGeometry) {
  RectShape rect(10, 20, 50, 60);
  EXPECT_DOUBLE_EQ(rect.cx(), 30.0);
  EXPECT_DOUBLE_EQ(rect.cy(), 40.0);
  EXPECT_DOUBLE_EQ(rect.width(), 40.0);
  EXPECT_DOUBLE_EQ(rect.height(), 40.0);
  const auto corners = rect.Corners();
  ASSERT_EQ(corners.size(), 4u);
}

TEST(RectShapeTest, HitTestOnOutlineOnly) {
  RectShape rect(0, 0, 40, 40);
  EXPECT_TRUE(rect.HitTest(0, 20, 1.0));    // left edge
  EXPECT_TRUE(rect.HitTest(20, 40, 1.0));   // top edge
  EXPECT_FALSE(rect.HitTest(20, 20, 1.0));  // interior: GDP hits outlines
}

TEST(RectShapeTest, SetCornersRubberbands) {
  RectShape rect(0, 0, 10, 10);
  rect.SetCorners(0, 0, 80, 30);
  EXPECT_DOUBLE_EQ(rect.width(), 80.0);
  EXPECT_DOUBLE_EQ(rect.height(), 30.0);
  EXPECT_DOUBLE_EQ(rect.cx(), 40.0);
}

TEST(RectShapeTest, RotateScaleChangesAngleAndSize) {
  RectShape rect(0, 0, 40, 20);
  rect.RotateScaleAbout(rect.cx(), rect.cy(), kPi / 4.0, 2.0);
  EXPECT_NEAR(rect.angle(), kPi / 4.0, 1e-9);
  EXPECT_NEAR(rect.width(), 80.0, 1e-9);
  // Center fixed when rotating about itself.
  EXPECT_NEAR(rect.cx(), 20.0, 1e-9);
  EXPECT_NEAR(rect.cy(), 10.0, 1e-9);
}

TEST(EllipseShapeTest, HitTestsOutline) {
  EllipseShape e(0, 0, 20, 10);
  EXPECT_TRUE(e.HitTest(20, 0, 1.0));
  EXPECT_TRUE(e.HitTest(0, 10, 1.0));
  EXPECT_FALSE(e.HitTest(0, 0, 1.0));  // center: not on the outline
  EXPECT_FALSE(e.HitTest(40, 0, 1.0));
}

TEST(EllipseShapeTest, BoundsOfRotatedEllipse) {
  EllipseShape e(0, 0, 20, 10, kPi / 2.0);
  const geom::BoundingBox b = e.Bounds();
  EXPECT_NEAR(b.max_x, 10.0, 1e-9);
  EXPECT_NEAR(b.max_y, 20.0, 1e-9);
}

TEST(EllipseShapeTest, SetRadiiAndRotateScale) {
  EllipseShape e(5, 5, 10, 10);
  e.SetRadii(15, 8);
  EXPECT_DOUBLE_EQ(e.rx(), 15.0);
  e.RotateScaleAbout(5, 5, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(e.rx(), 30.0);
  EXPECT_DOUBLE_EQ(e.cx(), 5.0);
}

TEST(TextShapeTest, BoundsTrackTextLength) {
  TextShape t(10, 50, "hello");
  const geom::BoundingBox b = t.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, 10.0);
  EXPECT_DOUBLE_EQ(b.max_x, 10.0 + 30.0);
  EXPECT_TRUE(t.HitTest(20, 45, 1.0));
  t.MoveTo(100, 100);
  EXPECT_DOUBLE_EQ(t.x(), 100.0);
  t.set_text("hi");
  EXPECT_EQ(t.text(), "hi");
}

TEST(DotShapeTest, HitNearPosition) {
  DotShape d(5, 5);
  EXPECT_TRUE(d.HitTest(6, 5, 1.0));
  EXPECT_FALSE(d.HitTest(10, 10, 1.0));
  d.Translate(10, 0);
  EXPECT_DOUBLE_EQ(d.x(), 15.0);
}

TEST(GroupShapeTest, AggregatesMembers) {
  GroupShape group;
  group.AddMember(std::make_unique<LineShape>(0, 0, 10, 0));
  group.AddMember(std::make_unique<DotShape>(50, 50));
  EXPECT_EQ(group.size(), 2u);
  const geom::BoundingBox b = group.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, 0.0);
  EXPECT_GE(b.max_x, 50.0);
  EXPECT_TRUE(group.HitTest(5, 0, 1.0));
  EXPECT_TRUE(group.HitTest(50, 50, 1.0));
  EXPECT_FALSE(group.HitTest(30, 30, 1.0));
}

TEST(GroupShapeTest, DeepCloneAndTransform) {
  GroupShape group;
  group.AddMember(std::make_unique<LineShape>(0, 0, 10, 0));
  auto copy = group.Clone();
  group.Translate(100, 100);
  // The clone kept the original geometry.
  EXPECT_TRUE(copy->HitTest(5, 0, 1.0));
  EXPECT_FALSE(copy->HitTest(105, 100, 1.0));
  group.RotateScaleAbout(100, 100, 0.0, 2.0);
  EXPECT_TRUE(group.HitTest(110, 100, 1.0));
}

TEST(ShapeTest, DefaultControlPointsAreBboxCorners) {
  EllipseShape e(0, 0, 10, 5);
  // EllipseShape overrides; use TextShape for the default.
  TextShape t(0, 10, "ab");
  const auto points = t.ControlPoints();
  EXPECT_EQ(points.size(), 4u);
}

TEST(ShapeTest, DescribeMentionsKindAndId) {
  DotShape d(1, 2);
  d.set_id(7);
  const std::string s = d.Describe();
  EXPECT_NE(s.find("dot"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
}

TEST(CanvasRenderTest, ShapesInkTheCanvas) {
  Canvas canvas(100, 100, 50, 25);
  LineShape(10, 10, 90, 90).Render(canvas);
  EXPECT_GT(canvas.InkedCellCount(), 10u);
  canvas.Clear();
  EXPECT_EQ(canvas.InkedCellCount(), 0u);
  EllipseShape(50, 50, 30, 20).Render(canvas);
  EXPECT_GT(canvas.InkedCellCount(), 10u);
}

}  // namespace
}  // namespace grandma::gdp
