#include "toolkit/view.h"

#include <gtest/gtest.h>

#include "toolkit/event_handler.h"

namespace grandma::toolkit {
namespace {

// A handler that records offers and can be configured to want/consume.
class ProbeHandler : public EventHandler {
 public:
  explicit ProbeHandler(std::string name, bool wants = true)
      : EventHandler(std::move(name)), wants_(wants) {}

  bool Wants(const InputEvent&, View&) const override { return wants_; }
  HandlerResponse OnEvent(const InputEvent&, View&) override {
    ++events_;
    return HandlerResponse::kConsumed;
  }

  int events() const { return events_; }

 private:
  bool wants_;
  int events_ = 0;
};

TEST(ViewClassTest, InheritanceChain) {
  ViewClass base("Base");
  ViewClass derived("Derived", &base);
  EXPECT_TRUE(derived.IsKindOf(base));
  EXPECT_TRUE(derived.IsKindOf(derived));
  EXPECT_FALSE(base.IsKindOf(derived));
}

TEST(ViewTest, HitTestUsesBounds) {
  ViewClass cls("V");
  View v(&cls, "v");
  v.SetBounds({0, 0, 10, 10});
  EXPECT_TRUE(v.HitTest(5, 5));
  EXPECT_FALSE(v.HitTest(11, 5));
}

TEST(ViewTest, FindViewAtPrefersTopmostChild) {
  ViewClass cls("V");
  View root(&cls, "root");
  root.SetBounds({0, 0, 100, 100});
  auto child1 = std::make_unique<View>(&cls, "child1");
  child1->SetBounds({10, 10, 50, 50});
  auto child2 = std::make_unique<View>(&cls, "child2");
  child2->SetBounds({30, 30, 70, 70});
  View* c1 = root.AddChild(std::move(child1));
  View* c2 = root.AddChild(std::move(child2));

  // Overlap region: the later-added child (topmost) wins.
  EXPECT_EQ(root.FindViewAt(40, 40), c2);
  EXPECT_EQ(root.FindViewAt(15, 15), c1);
  EXPECT_EQ(root.FindViewAt(90, 90), &root);
  EXPECT_EQ(root.FindViewAt(200, 200), nullptr);
  EXPECT_EQ(c1->parent(), &root);
}

TEST(ViewTest, RemoveChild) {
  ViewClass cls("V");
  View root(&cls, "root");
  root.SetBounds({0, 0, 100, 100});
  auto child = std::make_unique<View>(&cls, "child");
  child->SetBounds({0, 0, 10, 10});
  View* c = root.AddChild(std::move(child));
  EXPECT_TRUE(root.RemoveChild(c));
  EXPECT_FALSE(root.RemoveChild(c));
  EXPECT_EQ(root.children().size(), 0u);
}

TEST(ViewTest, HandlerChainOrdersInstanceBeforeClassBeforeSuper) {
  ViewClass base("Base");
  ViewClass derived("Derived", &base);
  auto base_handler = std::make_shared<ProbeHandler>("base");
  auto class_handler = std::make_shared<ProbeHandler>("class");
  auto instance_handler = std::make_shared<ProbeHandler>("instance");
  base.AddHandler(base_handler);
  derived.AddHandler(class_handler);

  View v(&derived, "v");
  v.AddHandler(instance_handler);

  const auto chain = v.HandlerChain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->name(), "instance");
  EXPECT_EQ(chain[1]->name(), "class");
  EXPECT_EQ(chain[2]->name(), "base");
}

TEST(ViewTest, ClassHandlerSharedAcrossInstances) {
  // The paper's efficiency argument: one handler serves every view of the
  // class.
  ViewClass cls("Shared");
  auto handler = std::make_shared<ProbeHandler>("h");
  cls.AddHandler(handler);
  View a(&cls, "a");
  View b(&cls, "b");
  ASSERT_EQ(a.HandlerChain().size(), 1u);
  EXPECT_EQ(a.HandlerChain()[0], b.HandlerChain()[0]);
}

TEST(ViewTest, MostRecentHandlerQueriedFirst) {
  ViewClass cls("V");
  View v(&cls, "v");
  auto first = std::make_shared<ProbeHandler>("first");
  auto second = std::make_shared<ProbeHandler>("second");
  v.AddHandler(first);
  v.AddHandler(second);
  EXPECT_EQ(v.HandlerChain()[0]->name(), "second");
}

TEST(ViewTest, RemoveHandler) {
  ViewClass cls("V");
  View v(&cls, "v");
  auto h = std::make_shared<ProbeHandler>("h");
  v.AddHandler(h);
  v.RemoveHandler(h.get());
  EXPECT_TRUE(v.HandlerChain().empty());
  cls.AddHandler(h);
  cls.RemoveHandler(h.get());
  EXPECT_TRUE(v.HandlerChain().empty());
}

}  // namespace
}  // namespace grandma::toolkit
