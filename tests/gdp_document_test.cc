#include "gdp/document.h"

#include <gtest/gtest.h>

namespace grandma::gdp {
namespace {

TEST(DocumentTest, AddAssignsIdsAndOwns) {
  Document doc;
  Shape* a = doc.Add(std::make_unique<DotShape>(1, 1));
  Shape* b = doc.Add(std::make_unique<DotShape>(2, 2));
  EXPECT_EQ(doc.size(), 2u);
  EXPECT_NE(a->id(), b->id());
  EXPECT_TRUE(doc.Contains(a));
  EXPECT_EQ(doc.FindById(a->id()), a);
  EXPECT_EQ(doc.FindById(999), nullptr);
}

TEST(DocumentTest, RemoveExtractsOwnership) {
  Document doc;
  Shape* a = doc.Add(std::make_unique<DotShape>(1, 1));
  std::unique_ptr<Shape> out = doc.Remove(a);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out.get(), a);
  EXPECT_EQ(doc.size(), 0u);
  EXPECT_FALSE(doc.Contains(a));
  // Removing again: nullptr.
  EXPECT_EQ(doc.Remove(a), nullptr);
}

TEST(DocumentTest, TopmostAtRespectsZOrder) {
  Document doc;
  doc.Add(std::make_unique<DotShape>(10, 10));
  Shape* top = doc.Add(std::make_unique<DotShape>(10, 10));
  EXPECT_EQ(doc.TopmostAt(10, 10, 2.0), top);
  EXPECT_EQ(doc.TopmostAt(50, 50, 2.0), nullptr);
}

TEST(DocumentTest, EnclosedByUsesStrokePolygon) {
  Document doc;
  Shape* inside = doc.Add(std::make_unique<DotShape>(50, 50));
  Shape* outside = doc.Add(std::make_unique<DotShape>(200, 200));
  // A lasso around (50, 50).
  geom::Gesture lasso({{0, 0, 0}, {100, 0, 1}, {100, 100, 2}, {0, 100, 3}});
  const auto enclosed = doc.EnclosedBy(lasso);
  ASSERT_EQ(enclosed.size(), 1u);
  EXPECT_EQ(enclosed[0], inside);
  (void)outside;
}

TEST(DocumentTest, AllShapesInZOrder) {
  Document doc;
  Shape* a = doc.Add(std::make_unique<DotShape>(1, 1));
  Shape* b = doc.Add(std::make_unique<DotShape>(2, 2));
  const auto all = doc.AllShapes();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], a);
  EXPECT_EQ(all[1], b);
}

TEST(DocumentTest, RenderDrawsAllShapes) {
  Document doc;
  doc.Add(std::make_unique<LineShape>(10, 10, 90, 10));
  doc.Add(std::make_unique<DotShape>(50, 50));
  Canvas canvas(100, 100, 50, 25);
  doc.Render(canvas);
  EXPECT_GT(canvas.InkedCellCount(), 5u);
}

}  // namespace
}  // namespace grandma::gdp
