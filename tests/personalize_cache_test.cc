// UserModelCache behavior: LRU order and budgets, eviction -> spill ->
// rehydration round trips, accounting invariants, damaged-spill fallback,
// epoch-based re-materialization, and a concurrent adapt+resolve hammering
// test that the tsan preset runs (label `personalize`).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "personalize/delta_snapshot.h"
#include "personalize/user_model_cache.h"

namespace grandma::personalize {
namespace {

namespace fs = std::filesystem;

// A stand-in "model": the number of examples the delta held when it was
// materialized. Cheap, and lets tests assert re-materialization happened.
using Model = std::shared_ptr<const std::size_t>;
using Cache = UserModelCache<Model>;

Cache::Materializer CountingMaterializer() {
  return [](const UserDelta& delta) -> Model {
    return std::make_shared<const std::size_t>(delta.examples());
  };
}

constexpr std::size_t kClasses = 4;
constexpr std::size_t kDim = 3;

linalg::Vector Sample(double v) { return linalg::Vector(kDim, v); }

robust::Status AdaptOnce(Cache& cache, UserId user, double v = 1.0,
                         std::uint64_t epoch = 1) {
  const linalg::Vector s = Sample(v);
  return cache.Adapt(user, /*class_id=*/0, s.view(), {kClasses, kDim}, epoch,
                     CountingMaterializer());
}

TEST(UserModelCacheTest, MissThenAdaptThenHit) {
  Cache cache(Cache::Options{.shards = 1, .max_entries = 8});
  EXPECT_EQ(cache.Resolve(5, 1, CountingMaterializer()), nullptr);
  ASSERT_TRUE(AdaptOnce(cache, 5).ok());
  Model m = cache.Resolve(5, 1, CountingMaterializer());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(*m, 1u);
  const CacheMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.lookups, 2u);
  EXPECT_EQ(metrics.hits, 1u);
  EXPECT_EQ(metrics.misses, 1u);
  EXPECT_EQ(metrics.adapts, 1u);
  EXPECT_EQ(metrics.resident_entries, 1u);
  EXPECT_GT(metrics.resident_bytes, 0u);
}

TEST(UserModelCacheTest, RejectsBadClassAndDimension) {
  Cache cache(Cache::Options{.shards = 1});
  const linalg::Vector s = Sample(1.0);
  EXPECT_EQ(cache
                .Adapt(1, /*class_id=*/kClasses, s.view(), {kClasses, kDim}, 1,
                       CountingMaterializer())
                .code(),
            robust::StatusCode::kInvalidArgument);
  const linalg::Vector wrong(kDim + 2, 1.0);
  EXPECT_EQ(cache
                .Adapt(1, /*class_id=*/0, wrong.view(), {kClasses, kDim}, 1,
                       CountingMaterializer())
                .code(),
            robust::StatusCode::kInvalidArgument);
}

TEST(UserModelCacheTest, LruEvictsColdestWhenOverEntryBudget) {
  // No spill dir: evictions drop deltas. 1 shard x 2 entries.
  Cache cache(Cache::Options{.shards = 1, .max_entries = 2});
  ASSERT_TRUE(AdaptOnce(cache, 1).ok());
  ASSERT_TRUE(AdaptOnce(cache, 2).ok());
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.Resolve(1, 1, CountingMaterializer()), nullptr);
  ASSERT_TRUE(AdaptOnce(cache, 3).ok());
  const CacheMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.evictions, 1u);
  EXPECT_EQ(metrics.evictions_dropped, 1u);
  EXPECT_EQ(metrics.resident_entries, 2u);
  EXPECT_NE(cache.Resolve(1, 1, CountingMaterializer()), nullptr);
  EXPECT_NE(cache.Resolve(3, 1, CountingMaterializer()), nullptr);
  // User 2's delta is gone (no spill dir).
  EXPECT_EQ(cache.Resolve(2, 1, CountingMaterializer()), nullptr);
}

TEST(UserModelCacheTest, ByteBudgetBoundsResidency) {
  // Budget that fits ~2 entries of this shape; the touched entry itself is
  // never evicted, so residency stays >= 1.
  Cache::Options options;
  options.shards = 1;
  options.max_entries = 1024;
  UserDelta probe(1, kClasses, kDim);
  const linalg::Vector s = Sample(1.0);
  probe.AddExample(0, s.view());
  options.max_bytes = probe.ApproxBytes() * 2 + 1;
  Cache cache(options);
  for (UserId u = 1; u <= 6; ++u) {
    ASSERT_TRUE(AdaptOnce(cache, u).ok());
  }
  const CacheMetrics metrics = cache.Metrics();
  EXPECT_GE(metrics.evictions, 4u);
  EXPECT_LE(metrics.resident_entries, 2u);
  EXPECT_GE(metrics.resident_entries, 1u);
  EXPECT_LE(metrics.resident_bytes, options.max_bytes + probe.ApproxBytes());
}

TEST(UserModelCacheTest, EvictSpillRehydrateRoundTripsTheDelta) {
  const fs::path dir = fs::temp_directory_path() / "grandma_cache_spill";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Cache::Options options{.shards = 1, .max_entries = 1, .spill_dir = dir.string()};
  Cache cache(options);
  ASSERT_TRUE(AdaptOnce(cache, 1, 1.0).ok());
  ASSERT_TRUE(AdaptOnce(cache, 1, 2.0).ok());
  // Adapting user 2 evicts user 1 -> spill to disk.
  ASSERT_TRUE(AdaptOnce(cache, 2).ok());
  EXPECT_TRUE(fs::exists(dir / UserDeltaFileName(1)));
  {
    const CacheMetrics m = cache.Metrics();
    EXPECT_EQ(m.evictions, 1u);
    EXPECT_EQ(m.spills_ok, 1u);
    EXPECT_EQ(m.spills_failed, 0u);
    EXPECT_EQ(m.resident_entries, 1u);
  }
  // Resolving user 1 rehydrates the full two-example delta (and evicts 2).
  Model m1 = cache.Resolve(1, 1, CountingMaterializer());
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(*m1, 2u);
  // Continue adapting after rehydration; count keeps growing from 2.
  ASSERT_TRUE(AdaptOnce(cache, 1, 3.0).ok());
  Model m1b = cache.Resolve(1, 1, CountingMaterializer());
  ASSERT_NE(m1b, nullptr);
  EXPECT_EQ(*m1b, 3u);
  const CacheMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.rehydrations_ok, 1u);
  EXPECT_EQ(metrics.rehydrations_failed, 0u);
  EXPECT_LE(metrics.rehydrations_ok, metrics.spills_ok);
  fs::remove_all(dir);
}

TEST(UserModelCacheTest, DamagedSpillCountsAndFallsBackToNull) {
  const fs::path dir = fs::temp_directory_path() / "grandma_cache_damaged";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Cache cache(Cache::Options{.shards = 1, .max_entries = 4, .spill_dir = dir.string()});
  // Hand-plant a garbage spill file for user 9.
  {
    std::ofstream f(dir / UserDeltaFileName(9), std::ios::binary);
    f << "grandma-snapshot v1 user-delta\nbytes 4 crc32 00000000\nXXXX";
  }
  EXPECT_EQ(cache.Resolve(9, 1, CountingMaterializer()), nullptr);
  const CacheMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.rehydrations_failed, 1u);
  EXPECT_EQ(metrics.misses, 1u);
  fs::remove_all(dir);
}

TEST(UserModelCacheTest, EpochChangeRematerializesWithoutLosingDelta) {
  Cache cache(Cache::Options{.shards = 1});
  std::atomic<int> builds{0};
  auto materializer = [&](const UserDelta& delta) -> Model {
    builds.fetch_add(1);
    return std::make_shared<const std::size_t>(delta.examples());
  };
  const linalg::Vector s = Sample(1.0);
  ASSERT_TRUE(cache.Adapt(1, 0, s.view(), {kClasses, kDim}, /*epoch=*/1, materializer).ok());
  EXPECT_EQ(builds.load(), 1);
  // Same epoch: hit, no rebuild.
  ASSERT_NE(cache.Resolve(1, 1, materializer), nullptr);
  EXPECT_EQ(builds.load(), 1);
  // New epoch (base swapped): rebuilt once, delta intact.
  Model m = cache.Resolve(1, 2, materializer);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(*m, 1u);
  EXPECT_EQ(builds.load(), 2);
  ASSERT_NE(cache.Resolve(1, 2, materializer), nullptr);
  EXPECT_EQ(builds.load(), 2);
}

TEST(UserModelCacheTest, ShapeResetDiscardsStaleDelta) {
  Cache cache(Cache::Options{.shards = 1});
  ASSERT_TRUE(AdaptOnce(cache, 1).ok());
  // The "base model" changed shape: adapting with the new shape restarts.
  const linalg::Vector wide(kDim + 1, 1.0);
  ASSERT_TRUE(cache
                  .Adapt(1, 0, wide.view(), {kClasses, kDim + 1}, 2,
                         CountingMaterializer())
                  .ok());
  Model m = cache.Resolve(1, 2, CountingMaterializer());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(*m, 1u);  // restarted: one example under the new shape
  EXPECT_EQ(cache.Metrics().shape_resets, 1u);
}

TEST(UserModelCacheTest, AccountingStaysBalancedUnderConcurrentChurn) {
  const fs::path dir = fs::temp_directory_path() / "grandma_cache_concurrent";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Cache::Options options;
  options.shards = 4;
  options.max_entries = 16;  // small: force churn
  options.spill_dir = dir.string();
  Cache cache(options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> null_resolves{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const UserId user = 1 + ((t * 131 + i * 17) % 64);
        if (i % 3 == 0) {
          ASSERT_TRUE(AdaptOnce(cache, user, 1.0 + t).ok());
        } else if (cache.Resolve(user, 1, CountingMaterializer()) == nullptr) {
          null_resolves.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const CacheMetrics m = cache.Metrics();
  EXPECT_EQ(m.lookups, m.hits + m.misses);
  EXPECT_EQ(m.evictions, m.spills_ok + m.spills_failed + m.evictions_dropped);
  EXPECT_EQ(m.spills_failed, 0u);
  EXPECT_EQ(m.rehydrations_failed, 0u);
  EXPECT_LE(m.rehydrations_ok, m.spills_ok);
  EXPECT_GT(m.evictions, 0u);  // the small cache actually churned
  EXPECT_LE(m.resident_entries, options.max_entries);
  EXPECT_EQ(m.adapts, static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 3 + 1));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace grandma::personalize
